//! End-to-end diagnostics: the training telemetry stream's JSONL schema,
//! the structured event ring, and memory accounting through the full
//! stack.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf::nn::train::train_classifier_step;
use s4tf::prelude::*;
use serde_json::Value;
use std::sync::Mutex;

// diag state (metrics path, step counter, event ring) is process-global.
static SERIAL: Mutex<()> = Mutex::new(());

fn num(v: &Value, key: &str) -> f64 {
    match v.get(key) {
        Some(Value::Int(n)) => *n as f64,
        Some(Value::UInt(n)) => *n as f64,
        Some(Value::Float(f)) => *f,
        other => panic!("field `{key}` is not a number: {other:?}"),
    }
}

fn string<'a>(v: &'a Value, key: &str) -> &'a str {
    match v.get(key) {
        Some(Value::Str(s)) => s,
        other => panic!("field `{key}` is not a string: {other:?}"),
    }
}

fn toy_batch(device: &Device) -> (DTensor, DTensor) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let x = DTensor::from_tensor(Tensor::<f32>::randn(&[16, 4], &mut rng), device);
    let labels: Vec<usize> = (0..16).map(|i| i % 2).collect();
    let y = DTensor::from_tensor(Tensor::one_hot(&labels, 2), device);
    (x, y)
}

#[test]
fn two_step_training_loop_emits_schema_conformant_jsonl() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let path = std::env::temp_dir().join(format!("s4tf-metrics-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    s4tf::diag::set_metrics_path(Some(&path));
    s4tf::diag::reset_step_counter();

    let device = Device::lazy();
    let (x, y) = toy_batch(&device);
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let mut model = Dense::new(4, 2, Activation::Identity, &device, &mut rng);
    let mut opt = Sgd::new(0.1);
    let loss1 = train_classifier_step(&mut model, &mut opt, &x, &y);
    let loss2 = train_classifier_step(&mut model, &mut opt, &x, &y);
    s4tf::diag::set_metrics_path(None);

    let text = std::fs::read_to_string(&path).expect("metrics file written");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "one JSONL record per step: {text}");
    for (i, line) in lines.iter().enumerate() {
        let v: Value = serde_json::from_str(line).expect("valid JSON");
        assert_eq!(num(&v, "step") as u64, i as u64 + 1, "1-based steps");
        let loss = num(&v, "loss");
        let expected = if i == 0 { loss1 } else { loss2 };
        assert!((loss - expected).abs() < 1e-9, "loss matches return value");
        assert!(num(&v, "grad_norm") > 0.0);
        assert!(num(&v, "examples_per_sec") > 0.0);
        assert!(num(&v, "peak_bytes") > 0.0);
        assert!(num(&v, "live_bytes") >= 0.0);
        assert_eq!(string(&v, "backend"), "lazy");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn event_ring_captures_dispatch_compile_and_cache_traffic() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    s4tf::diag::clear_events();
    s4tf::diag::set_events_enabled(true);

    // One lazy step compiles (cache miss); the second hits the cache.
    let device = Device::lazy();
    let (x, y) = toy_batch(&device);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut model = Dense::new(4, 2, Activation::Identity, &device, &mut rng);
    let mut opt = Sgd::new(0.1);
    train_classifier_step(&mut model, &mut opt, &x, &y);
    train_classifier_step(&mut model, &mut opt, &x, &y);

    // An eager dispatch, for the op.dispatch event.
    let e = Device::eager();
    let a = DTensor::from_tensor(Tensor::<f32>::ones(&[4]), &e);
    let _ = a.add(&a).to_tensor();

    s4tf::diag::set_events_enabled(false);
    let events = s4tf::diag::events();
    let kinds: Vec<&str> = events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&"xla.cache.miss"), "kinds: {kinds:?}");
    assert!(kinds.contains(&"xla.compile.start"));
    assert!(kinds.contains(&"xla.compile.finish"));
    assert!(kinds.contains(&"xla.cache.hit"));
    assert!(kinds.contains(&"op.dispatch"));

    // The JSONL export is one valid JSON object per line with the shared
    // envelope (ts_us + kind) plus the per-kind fields.
    for line in s4tf::diag::events_jsonl().lines() {
        let v: Value = serde_json::from_str(line).expect("valid JSON");
        assert!(num(&v, "ts_us") >= 0.0);
        assert!(!string(&v, "kind").is_empty());
    }
    s4tf::diag::clear_events();
}

#[test]
fn memory_accounting_balances_through_the_full_stack() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let device = Device::naive();
    let baseline = s4tf::diag::memory_stats();
    {
        let (x, y) = toy_batch(&device);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut model = Dense::new(4, 2, Activation::Identity, &device, &mut rng);
        let mut opt = Sgd::new(0.1);
        train_classifier_step(&mut model, &mut opt, &x, &y);
        let during = s4tf::diag::memory_stats();
        assert!(during.live_bytes > baseline.live_bytes);
        assert!(during.allocs > baseline.allocs);
    }
    let after = s4tf::diag::memory_stats();
    assert_eq!(
        after.live_bytes, baseline.live_bytes,
        "all training-step storage must be freed"
    );
}
