//! Multi-process chaos scenarios for `s4tf::dist` (`harness = false`:
//! this binary re-execs itself as the worker processes, which the libtest
//! harness would intercept).
//!
//! Four scenarios, each judged against the in-process reference replay
//! ([`s4tf::dist::reference`]) and the sync checkpoint on disk:
//!
//! 1. fault-free 4-worker convergence, bit-identical to single-process;
//! 2. a `kill -9` mid-collective → DropShard expulsion, survivors redo
//!    the step and match the survivors-only baseline bit for bit;
//! 3. a killed worker restarts, rejoins from the sync checkpoint, and the
//!    full run still matches the report-derived schedule bit for bit;
//! 4. injected wire corruption surfaces a typed `RuntimeError` with peer
//!    attribution after bounded retries — never a hang.

use s4tf::dist::cluster::{self, ClusterConfig};
use s4tf::dist::coordinator::ClusterReport;
use s4tf::dist::lenet;
use s4tf::nn::checkpoint::{latest, Checkpoint};
use s4tf::tensor::FaultKind;
use std::path::PathBuf;
use std::time::Instant;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("s4tf-dist-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Reconstructs which ranks contributed at each committed step from the
/// coordinator's report: expelled ranks stop contributing at their death
/// step (the survivors redid it), rejoined ranks contribute again from
/// their admission step.
fn schedule_from_report(report: &ClusterReport, world: u32) -> Result<Vec<Vec<u32>>, String> {
    let mut schedule = Vec::new();
    for step in 0..report.steps_completed {
        let mut members: Vec<u32> = (0..world)
            .filter(|r| {
                let expelled_at = report
                    .expelled
                    .iter()
                    .filter(|(rank, _)| rank == r)
                    .map(|(_, s)| *s)
                    .max();
                let rejoined_at = report
                    .rejoined
                    .iter()
                    .filter(|(rank, _)| rank == r)
                    .map(|(_, s)| *s)
                    .max();
                match (expelled_at, rejoined_at) {
                    (None, _) => true,
                    (Some(e), None) => step < e,
                    (Some(e), Some(j)) => step < e || step >= j,
                }
            })
            .collect();
        members.sort_unstable();
        let recorded = report.steps[step as usize].survivors as usize;
        if members.len() != recorded {
            return Err(format!(
                "step {step}: derived {} members {members:?}, report says {recorded}",
                members.len()
            ));
        }
        schedule.push(members);
    }
    Ok(schedule)
}

/// Runs the reference replay for `report`'s schedule and checks the
/// multi-process run against it bit for bit: per-step mean losses and the
/// final sync checkpoint's serialized parameters.
fn assert_bit_identical(
    report: &ClusterReport,
    cfg: &ClusterConfig,
    label: &str,
) -> Result<(), String> {
    let schedule = schedule_from_report(report, cfg.world)?;
    let (ref_losses, ref_model, _device) = lenet::lenet_reference(
        &schedule,
        cfg.shard_batch,
        cfg.learning_rate,
        cfg.seed,
        cfg.data_seed,
        cfg.bucket_bytes,
    )
    .map_err(|e| format!("{label}: reference replay failed: {e}"))?;

    for (i, rec) in report.steps.iter().enumerate() {
        if rec.loss.to_bits() != ref_losses[i].to_bits() {
            return Err(format!(
                "{label}: step {i} loss diverged: cluster {} vs reference {} (schedule {:?})",
                rec.loss, ref_losses[i], schedule[i]
            ));
        }
    }

    let ckpt_path = latest(&report.ckpt_dir)
        .map_err(|e| format!("{label}: {e}"))?
        .ok_or_else(|| {
            format!(
                "{label}: no sync checkpoint in {}",
                report.ckpt_dir.display()
            )
        })?;
    let ckpt = Checkpoint::load(&ckpt_path).map_err(|e| format!("{label}: {e}"))?;
    if ckpt.step != report.steps_completed {
        return Err(format!(
            "{label}: final checkpoint at step {}, expected {}",
            ckpt.step, report.steps_completed
        ));
    }
    let ref_ckpt = Checkpoint::from_model(report.steps_completed, &ref_model)
        .map_err(|e| format!("{label}: {e}"))?;
    if ckpt.to_bytes() != ref_ckpt.to_bytes() {
        return Err(format!(
            "{label}: final model bits diverge from the reference replay (schedule {schedule:?})"
        ));
    }
    Ok(())
}

/// Scenario 1: 4 workers, no faults — bit-identical to single-process.
fn fault_free_bit_identical() -> Result<(), String> {
    let dir = scratch_dir("fault-free");
    let cfg = ClusterConfig::new(4, 3, dir.clone());
    let report = cluster::run(&cfg).map_err(|e| format!("cluster failed: {e}"))?;
    if report.steps_completed != 3 {
        return Err(format!("completed {} of 3 steps", report.steps_completed));
    }
    if !report.expelled.is_empty() || report.retries != 0 {
        return Err(format!(
            "unexpected faults: expelled {:?}, {} retries",
            report.expelled, report.retries
        ));
    }
    assert_bit_identical(&report, &cfg, "fault-free")?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// Scenario 2: `kill -9` mid-collective → DropShard expulsion; survivors
/// redo the step and match the survivors-only baseline.
fn dropshard_survives_kill() -> Result<(), String> {
    let dir = scratch_dir("dropshard");
    let mut cfg = ClusterConfig::new(4, 4, dir.clone());
    cfg.abort = Some((2, 1, "midring".to_string()));
    let report = cluster::run(&cfg).map_err(|e| format!("cluster failed: {e}"))?;
    if report.steps_completed != 4 {
        return Err(format!("completed {} of 4 steps", report.steps_completed));
    }
    if report.expelled.iter().map(|(r, _)| *r).collect::<Vec<_>>() != vec![2] {
        return Err(format!(
            "expected rank 2 expelled, got {:?}",
            report.expelled
        ));
    }
    if report.survivors != vec![0, 1, 3] {
        return Err(format!(
            "expected survivors [0,1,3], got {:?}",
            report.survivors
        ));
    }
    let renormalized = report.steps.last().map(|s| s.survivors);
    if renormalized != Some(3) {
        return Err(format!(
            "final step should renormalize over 3 shards, got {renormalized:?}"
        ));
    }
    assert_bit_identical(&report, &cfg, "dropshard")?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// Scenario 3: the killed worker restarts, rejoins from the sync
/// checkpoint at a commit boundary, and the whole run is bit-identical to
/// the report-derived schedule.
fn checkpoint_rejoin_bit_identical() -> Result<(), String> {
    let dir = scratch_dir("rejoin");
    let mut cfg = ClusterConfig::new(4, 10, dir.clone());
    cfg.abort = Some((3, 2, "precommit".to_string()));
    cfg.restart_ms = Some(0);
    let report = cluster::run(&cfg).map_err(|e| format!("cluster failed: {e}"))?;
    if report.steps_completed != 10 {
        return Err(format!("completed {} of 10 steps", report.steps_completed));
    }
    if !report.expelled.iter().any(|(r, _)| *r == 3) {
        return Err(format!(
            "expected rank 3 expelled, got {:?}",
            report.expelled
        ));
    }
    let Some((_, admitted_at)) = report.rejoined.iter().find(|(r, _)| *r == 3) else {
        return Err(format!(
            "rank 3 never rejoined (rejoined: {:?}, expelled: {:?})",
            report.rejoined, report.expelled
        ));
    };
    if report.survivors != vec![0, 1, 2, 3] {
        return Err(format!(
            "expected all four ranks active at the end, got {:?}",
            report.survivors
        ));
    }
    let back = report.steps[*admitted_at as usize].survivors;
    if back != 4 {
        return Err(format!(
            "step {admitted_at} after rejoin should have 4 shards, got {back}"
        ));
    }
    assert_bit_identical(&report, &cfg, "rejoin")?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// Scenario 4: injected wire corruption on every frame → a typed net
/// error with peer attribution after bounded retries, not a hang.
fn wire_corruption_is_typed_and_bounded() -> Result<(), String> {
    let dir = scratch_dir("corrupt");
    let mut cfg = ClusterConfig::new(2, 2, dir.clone());
    cfg.fault_spec = Some("net:1:9".to_string());
    cfg.net_mode = Some("corrupt".to_string());
    cfg.max_retries = 2;
    cfg.timeout_ms = 1500;
    cfg.deadline_ms = 60_000;
    let started = Instant::now();
    let result = cluster::run(&cfg);
    let elapsed = started.elapsed();
    let _ = std::fs::remove_dir_all(&dir);
    let err = match result {
        Ok(report) => {
            return Err(format!(
                "run should fail under total corruption, but completed {} steps",
                report.steps_completed
            ))
        }
        Err(e) => e,
    };
    if err.kind != FaultKind::Net {
        return Err(format!(
            "expected FaultKind::Net, got {:?}: {err}",
            err.kind
        ));
    }
    let msg = err.to_string();
    if !msg.contains("peer rank") {
        return Err(format!("error lacks peer attribution: {msg}"));
    }
    if elapsed.as_millis() as u64 >= cfg.deadline_ms {
        return Err(format!(
            "failure took {}ms — not bounded below the {}ms deadline",
            elapsed.as_millis(),
            cfg.deadline_ms
        ));
    }
    Ok(())
}

fn main() {
    // Worker role: the launcher re-execs this binary with
    // S4TF_DIST_ROLE=worker; everything below is launcher-only.
    lenet::worker_main_if_spawned();
    // The in-process reference must see the same determinism knobs the
    // launcher forces on the workers.
    std::env::set_var("S4TF_NUM_THREADS", "1");

    type Scenario = fn() -> Result<(), String>;
    let scenarios: [(&str, Scenario); 4] = [
        ("fault_free_bit_identical", fault_free_bit_identical),
        ("dropshard_survives_kill", dropshard_survives_kill),
        (
            "checkpoint_rejoin_bit_identical",
            checkpoint_rejoin_bit_identical,
        ),
        (
            "wire_corruption_is_typed_and_bounded",
            wire_corruption_is_typed_and_bounded,
        ),
    ];

    let filter = std::env::args().nth(1).filter(|a| !a.starts_with('-'));
    let mut failures = 0;
    let mut ran = 0;
    for (name, scenario) in scenarios {
        if let Some(f) = &filter {
            if !name.contains(f.as_str()) {
                continue;
            }
        }
        ran += 1;
        let started = Instant::now();
        match scenario() {
            Ok(()) => println!(
                "test distributed::{name} ... ok ({:.1}s)",
                started.elapsed().as_secs_f64()
            ),
            Err(msg) => {
                failures += 1;
                println!("test distributed::{name} ... FAILED\n    {msg}");
            }
        }
    }
    println!(
        "\ntest result: {}. {} passed; {failures} failed",
        if failures == 0 { "ok" } else { "FAILED" },
        ran - failures
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
