//! End-to-end training convergence: the models of §5 genuinely learn on
//! the synthetic datasets, and the four Table-4 spline strategies agree.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf::data::{Dataset, ImageSpec, PersonalizationData, SplineDataSpec};
use s4tf::models::spline::strategies::{all_strategies, NativeAot, SplineStrategy};
use s4tf::models::spline::ConvergenceCriteria;
use s4tf::models::{LeNet, ResNet, ResNetConfig};
use s4tf::nn::metrics::accuracy;
use s4tf::nn::train::train_classifier_step;
use s4tf::prelude::*;

#[test]
fn lenet_learns_synthetic_mnist() {
    let device = Device::naive();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let train = Dataset::generate(ImageSpec::mnist_like(), 256, 1);
    let test = Dataset::generate(ImageSpec::mnist_like(), 80, 2);
    let mut model = LeNet::new(&device, &mut rng);
    let mut opt = Sgd::with_momentum(0.05, 0.9);
    for step in 0..24 {
        let batch = train.batch(32, step, (step / 8) as u64);
        let x = DTensor::from_tensor(batch.images.clone(), &device);
        let y = DTensor::from_tensor(batch.one_hot(10), &device);
        train_classifier_step(&mut model, &mut opt, &x, &y);
    }
    let logits = model
        .forward(&DTensor::from_tensor(test.images.clone(), &device))
        .to_tensor();
    let acc = accuracy(&logits, &test.labels);
    assert!(acc > 0.6, "LeNet should be well past chance: {acc}");
}

#[test]
fn lenet_with_adam_learns_too() {
    let device = Device::naive();
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let train = Dataset::generate(ImageSpec::mnist_like(), 128, 3);
    let mut model = LeNet::new(&device, &mut rng);
    let mut opt = Adam::new(0.002);
    let mut first = 0.0;
    let mut last = 0.0;
    for step in 0..16 {
        let batch = train.batch(32, step, 0);
        let x = DTensor::from_tensor(batch.images.clone(), &device);
        let y = DTensor::from_tensor(batch.one_hot(10), &device);
        let loss = train_classifier_step(&mut model, &mut opt, &x, &y);
        if step == 0 {
            first = loss;
        }
        last = loss;
    }
    assert!(last < first, "Adam: loss {first} → {last}");
}

#[test]
fn small_resnet_learns_synthetic_cifar() {
    let device = Device::naive();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let train = Dataset::generate(ImageSpec::cifar_like(), 128, 4);
    let mut model = ResNet::new(ResNetConfig::resnet8_cifar(), &device, &mut rng);
    let mut opt = Sgd::with_momentum(0.03, 0.9);
    let mut losses = Vec::new();
    for step in 0..10 {
        let batch = train.batch(16, step, 0);
        let x = DTensor::from_tensor(batch.images.clone(), &device);
        let y = DTensor::from_tensor(batch.one_hot(10), &device);
        losses.push(train_classifier_step(&mut model, &mut opt, &x, &y));
    }
    let early: f64 = losses[..3].iter().sum::<f64>() / 3.0;
    let late: f64 = losses[losses.len() - 3..].iter().sum::<f64>() / 3.0;
    assert!(late < early, "ResNet loss should trend down: {losses:?}");
}

#[test]
fn spline_strategies_converge_and_agree_on_real_data() {
    let data = PersonalizationData::generate(SplineDataSpec::default(), 5);
    let reference = NativeAot.train(
        &data.global.x,
        &data.global.y,
        16,
        ConvergenceCriteria::default(),
    );
    assert!(reference.final_loss < 2e-3, "{}", reference.final_loss);
    for strategy in all_strategies() {
        let out = strategy.train(
            &data.global.x,
            &data.global.y,
            16,
            ConvergenceCriteria::default(),
        );
        // The paper's Table-4 verification: control points within 1.5%.
        for (a, b) in out.control_points.iter().zip(&reference.control_points) {
            let denom = b.abs().max(0.05);
            assert!(
                ((a - b) / denom).abs() < 0.015,
                "{}: {a} vs {b}",
                strategy.name()
            );
        }
    }
}

#[test]
fn dynamic_resnet_variants_assemble_and_run() {
    // §3.5: the ResNet family from one dynamically-configured constructor.
    let device = Device::lazy();
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    for n in [1usize, 2] {
        let cfg = ResNetConfig::cifar_variant(n);
        let depth = cfg.depth();
        let model = ResNet::new(cfg, &device, &mut rng);
        assert_eq!(model.blocks.len(), 3 * n);
        let x = DTensor::from_tensor(
            s4tf::tensor::Tensor::<f32>::randn(&[1, 16, 16, 3], &mut rng),
            &device,
        );
        let y = model.forward(&x).to_tensor();
        assert_eq!(y.dims(), &[1, 10], "depth-{depth} variant");
        assert!(y.all_finite());
    }
    // Distinct variants produce distinct traces → distinct cached programs.
    if let Device::Lazy(ctx) = &device {
        assert_eq!(ctx.cache().stats().misses, 2);
    }
}
