//! Cross-system AD consistency: the compile-time SIL transformation
//! (forward and reverse), the runtime tape, the differentiable-function
//! bundles, and central finite differences must all agree on the same
//! functions — including through control flow.

use s4tf::core::tape::Tape;
use s4tf::sil::ad::jvp::value_and_derivative;
use s4tf::sil::ad::vjp::differentiate;
use s4tf::sil::parser::parse_module_unwrap;
use s4tf::sil::Interpreter;

/// f(x, y) = sigmoid(sin(x)·y + x²/y), as IR.
const FANCY: &str = r#"
func @f(%x: f64, %y: f64) -> f64 {
bb0(%x: f64, %y: f64):
  %s = sin %x
  %sy = mul %s, %y
  %x2 = mul %x, %x
  %q = div %x2, %y
  %sum = add %sy, %q
  %r = sigmoid %sum
  ret %r
}
"#;

fn fancy_host(x: f64, y: f64) -> f64 {
    let s = x.sin() * y + x * x / y;
    1.0 / (1.0 + (-s).exp())
}

fn fancy_tape_grad(x: f64, y: f64) -> (f64, f64) {
    let tape = Tape::new();
    let xv = tape.var(x);
    let yv = tape.var(y);
    let inner = xv.sin() * yv + xv * xv / yv;
    // sigmoid via primitives
    let out = ((-inner).exp() + 1.0).powf(-1.0);
    let g = tape.gradients(out);
    (g.wrt(xv), g.wrt(yv))
}

#[test]
fn four_systems_agree_on_a_smooth_function() {
    let module = parse_module_unwrap(FANCY);
    let f = module.func_id("f").unwrap();
    let vjp = differentiate(&module, f).unwrap();
    let eps = 1e-6;

    for &(x, y) in &[(0.3, 1.2), (1.5, 0.7), (-0.8, 2.0)] {
        // Primal value agreement.
        let v_ir = Interpreter::new().run(&module, f, &[x, y]).unwrap()[0];
        assert!((v_ir - fancy_host(x, y)).abs() < 1e-12);

        // Reverse via SIL.
        let (_, g_sil) = vjp.value_with_gradient(&[x, y], 1.0).unwrap();
        // Forward via SIL (two directional derivatives).
        let (_, dx_fwd) = value_and_derivative(&module, f, &[x, y], &[1.0, 0.0]).unwrap();
        let (_, dy_fwd) = value_and_derivative(&module, f, &[x, y], &[0.0, 1.0]).unwrap();
        // Runtime tape.
        let (tx, ty) = fancy_tape_grad(x, y);
        // Finite differences.
        let fdx = (fancy_host(x + eps, y) - fancy_host(x - eps, y)) / (2.0 * eps);
        let fdy = (fancy_host(x, y + eps) - fancy_host(x, y - eps)) / (2.0 * eps);

        for (name, gx, gy) in [
            ("sil-reverse", g_sil[0], g_sil[1]),
            ("sil-forward", dx_fwd, dy_fwd),
            ("tape", tx, ty),
        ] {
            assert!(
                (gx - fdx).abs() < 1e-5,
                "{name} d/dx at ({x},{y}): {gx} vs {fdx}"
            );
            assert!(
                (gy - fdy).abs() < 1e-5,
                "{name} d/dy at ({x},{y}): {gy} vs {fdy}"
            );
        }
    }
}

/// An iterative function with data-dependent trip count: Newton-like
/// babylonian square root. Derivative of sqrt at a via iteration should
/// approach 1/(2√a).
const BABYLONIAN: &str = r#"
func @sqrt_iter(%a: f64) -> f64 {
bb0(%a: f64):
  %one = const 1.0
  %zero = const 0.0
  br bb1(%a, %zero)
bb1(%g: f64, %k: f64):
  %iters = const 20.0
  %c = cmp lt %k, %iters
  condbr %c, bb2(), bb3()
bb2():
  %q = div %a, %g
  %s = add %g, %q
  %half = const 0.5
  %gn = mul %s, %half
  %one2 = const 1.0
  %kn = add %k, %one2
  br bb1(%gn, %kn)
bb3():
  ret %g
}
"#;

#[test]
fn gradient_through_an_iterative_algorithm() {
    let module = parse_module_unwrap(BABYLONIAN);
    let f = module.func_id("sqrt_iter").unwrap();
    let vjp = differentiate(&module, f).unwrap();
    for &a in &[2.0f64, 9.0, 0.25, 123.456] {
        let (v, g) = vjp.value_with_gradient(&[a], 1.0).unwrap();
        assert!((v - a.sqrt()).abs() < 1e-9, "value at {a}");
        let expected = 0.5 / a.sqrt();
        assert!(
            (g[0] - expected).abs() < 1e-6,
            "gradient at {a}: {} vs {expected}",
            g[0]
        );
    }
}

/// The DifferentiableFn layer and SIL agree through composition.
#[test]
fn differentiable_fn_bundles_match_sil() {
    use s4tf::core::prelude::*;

    // h(x) = exp(sin(x)) built two ways.
    let sin_bundle = DifferentiableFn::<f64, f64>::new(
        |x| x.sin(),
        |x| {
            let x = *x;
            (x.sin(), Box::new(move |dx: &f64| x.cos() * dx) as _)
        },
        |x| {
            let x = *x;
            (x.sin(), Box::new(move |dy: &f64| x.cos() * dy) as _)
        },
    );
    let exp_bundle = DifferentiableFn::<f64, f64>::new(
        |x| x.exp(),
        |x| {
            let y = x.exp();
            (y, Box::new(move |dx: &f64| y * dx) as _)
        },
        |x| {
            let y = x.exp();
            (y, Box::new(move |dy: &f64| y * dy) as _)
        },
    );
    let h = sin_bundle.compose(&exp_bundle);

    let module = parse_module_unwrap(
        r#"
        func @h(%x: f64) -> f64 {
        bb0(%x: f64):
          %s = sin %x
          %e = exp %s
          ret %e
        }
        "#,
    );
    let f = module.func_id("h").unwrap();
    for &x in &[0.1f64, 0.9, 2.2] {
        let bundle_grad = gradient(&x, &h);
        let sil_grad = s4tf::sil::ad::gradient(&module, f, &[x]).unwrap()[0];
        assert!((bundle_grad - sil_grad).abs() < 1e-12);
        let bundle_fwd = derivative(x, &h);
        assert!((bundle_fwd - sil_grad).abs() < 1e-12);
    }
}

/// Custom derivatives (the @derivative(of:) registry) flow through SIL
/// synthesis end to end.
#[test]
fn custom_registered_derivative_is_used_by_both_modes() {
    s4tf::core::registry::register_unary(
        "softplus_custom",
        s4tf::core::registry::UnaryDerivative {
            f: |x| (1.0 + x.exp()).ln(),
            df: |x| 1.0 / (1.0 + (-x).exp()),
        },
    );
    let module = parse_module_unwrap(
        r#"
        func @f(%x: f64) -> f64 {
        bb0(%x: f64):
          %y = softplus_custom %x
          %z = mul %y, %y
          ret %z
        }
        "#,
    );
    let f = module.func_id("f").unwrap();
    let vjp = differentiate(&module, f).unwrap();
    let x = 0.8f64;
    let (v, g) = vjp.value_with_gradient(&[x], 1.0).unwrap();
    let sp = (1.0 + x.exp()).ln();
    let dsp = 1.0 / (1.0 + (-x).exp());
    assert!((v - sp * sp).abs() < 1e-12);
    assert!((g[0] - 2.0 * sp * dsp).abs() < 1e-12);
}
