//! The telemetry backbone, exercised end-to-end: training on every
//! backend must populate the registry — dispatch-latency histograms per
//! backend, training-step instruments, pool counters, XLA cache/planner
//! stats and memory attribution — and the whole cross-section must
//! survive a round trip through the Prometheus text exposition.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf::metrics;
use s4tf::nn::train::train_classifier_step;
use s4tf::prelude::*;
use s4tf::tensor::pool;

/// Trains a small dense classifier for a few steps on `device`.
fn train_on(device: &Device, steps: usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut model = Dense::new(8, 4, Activation::Relu, device, &mut rng);
    let mut opt = Sgd::new(0.05);
    let x = DTensor::from_tensor(Tensor::randn(&[16, 8], &mut rng), device);
    let y = DTensor::from_tensor(Tensor::one_hot(&[0, 1, 2, 3].repeat(4), 4), device);
    for _ in 0..steps {
        let loss = train_classifier_step(&mut model, &mut opt, &x, &y);
        assert!(loss.is_finite());
    }
}

#[test]
fn training_populates_the_registry_on_every_backend() {
    metrics::set_enabled(true);
    for device in [Device::naive(), Device::eager(), Device::lazy()] {
        train_on(&device, 3);
    }

    let text = metrics::prometheus_text();

    // Dispatch latency histograms exist for each backend (count > 0).
    for backend in ["naive", "eager", "lazy"] {
        let needle = format!("s4tf_dispatch_latency_us_count{{backend=\"{backend}\",");
        let total: u64 = text
            .lines()
            .filter_map(|l| l.strip_prefix(needle.as_str()))
            .filter_map(|rest| rest.rsplit(' ').next()?.parse::<u64>().ok())
            .sum();
        assert!(
            total > 0,
            "no dispatch latency recorded for backend {backend}:\n{text}"
        );
    }

    // Training-loop instruments: step-time histogram and step counter.
    let step_count = text
        .lines()
        .find_map(|l| l.strip_prefix("s4tf_train_step_us_count "))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("s4tf_train_step_us histogram exported");
    assert!(
        step_count >= 9,
        "expected ≥9 steps recorded, got {step_count}"
    );
    let steps_total = text
        .lines()
        .find_map(|l| l.strip_prefix("s4tf_train_steps_total "))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("s4tf_train_steps_total exported");
    assert_eq!(steps_total, step_count);

    // The step-time p99 answers within the documented histogram bound:
    // finite, positive, and at least the p50.
    let h = metrics::histogram("s4tf_train_step_us", "");
    let (p50, p99) = (h.quantile(0.5), h.quantile(0.99));
    assert!(p50 > 0.0 && p99.is_finite() && p99 >= p50);

    // XLA pipeline: the lazy run compiled at least one program and hit
    // the cache on the repeat steps.
    assert!(text.contains("s4tf_xla_cache_total{result=\"miss\"}"));
    let hits = text
        .lines()
        .find_map(|l| l.strip_prefix("s4tf_xla_cache_total{result=\"hit\"} "))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("cache hit counter exported");
    assert!(hits > 0, "repeat lazy steps should hit the program cache");
    assert!(text.contains("s4tf_xla_compile_us_count "));

    // Memory attribution: headline gauges plus at least the host site.
    assert!(text.contains("# TYPE s4tf_mem_live_bytes gauge"));
    assert!(text.contains("s4tf_mem_peak_bytes "));
    assert!(text.contains("s4tf_mem_site_live_bytes{site=\"host\"}"));
    let sites = metrics::memory_by_site();
    assert!(sites.iter().any(|m| m.site == "host" && m.allocs > 0));
}

/// A sampler tick forwards every registry gauge to the profiler, so the
/// Chrome trace grows `"ph":"C"` counter tracks — live bytes and the
/// eager queue depth render as graphs alongside the span flame graph.
#[test]
fn sampler_feeds_chrome_trace_counter_tracks() {
    metrics::set_enabled(true);
    s4tf::profile::set_enabled(true);

    train_on(&Device::eager(), 2);
    metrics::sample_now();

    let json = s4tf::profile::chrome_trace_json();
    s4tf::profile::set_enabled(false);
    let value: serde_json::Value = serde_json::from_str(&json).expect("valid chrome JSON");
    let events = match value.get("traceEvents") {
        Some(serde_json::Value::Array(events)) => events.clone(),
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    let counter_tracks: Vec<String> = events
        .iter()
        .filter(|e| e.get("ph") == Some(&serde_json::Value::Str("C".to_string())))
        .filter_map(|e| match e.get("name") {
            Some(serde_json::Value::Str(s)) => Some(s.clone()),
            _ => None,
        })
        .collect();
    assert!(
        counter_tracks.iter().any(|n| n == "s4tf_mem_live_bytes"),
        "live-bytes counter track missing: {counter_tracks:?}"
    );
    assert!(
        counter_tracks
            .iter()
            .any(|n| n == "s4tf_queue_depth{queue=\"eager\"}"),
        "eager queue-depth counter track missing: {counter_tracks:?}"
    );
}

#[test]
fn pool_stats_and_planner_outcomes_are_public() {
    metrics::set_enabled(true);

    // The pool keeps public counters; recycling must show up in them.
    let before = pool::stats();
    for _ in 0..4 {
        let t = Tensor::<f32>::zeros(&[64, 64]);
        drop(t);
    }
    let after = pool::stats();
    assert!(
        after.hits + after.misses > before.hits + before.misses,
        "pool saw no traffic: {before:?} → {after:?}"
    );

    // Planner outcomes surface on the lazy device's cache stats.
    let device = Device::lazy();
    train_on(&device, 2);
    let stats = device.cache_stats().expect("lazy device has a cache");
    assert!(stats.misses > 0, "expected at least one compile: {stats:?}");
    assert!(
        stats.planned_bytes > 0,
        "planner budget missing from cache stats: {stats:?}"
    );
}
