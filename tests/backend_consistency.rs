//! The "illusion of eager execution" (paper §3.3), checked end-to-end:
//! the naive, eager and lazy backends must be observationally equivalent —
//! identical numerics for forward passes, gradients, and whole training
//! trajectories.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf::data::{Dataset, ImageSpec};
use s4tf::models::{LeNet, ResNet, ResNetConfig};
use s4tf::nn::train::train_classifier_step;
use s4tf::prelude::*;

/// Ports a LeNet's weights onto another device.
fn lenet_on(device: &Device, reference: &LeNet) -> LeNet {
    let mut m = reference.clone();
    let port = |t: &DTensor| DTensor::from_tensor(t.to_tensor(), device);
    m.conv1.filter = port(&reference.conv1.filter);
    m.conv1.bias = port(&reference.conv1.bias);
    m.conv2.filter = port(&reference.conv2.filter);
    m.conv2.bias = port(&reference.conv2.bias);
    m.fc1.weight = port(&reference.fc1.weight);
    m.fc1.bias = port(&reference.fc1.bias);
    m.fc2.weight = port(&reference.fc2.weight);
    m.fc2.bias = port(&reference.fc2.bias);
    m.fc3.weight = port(&reference.fc3.weight);
    m.fc3.bias = port(&reference.fc3.bias);
    m
}

#[test]
fn lenet_training_trajectories_agree_across_backends() {
    let data = Dataset::generate(ImageSpec::mnist_like(), 64, 11);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let naive = Device::naive();
    let reference = LeNet::new(&naive, &mut rng);

    let mut final_losses = Vec::new();
    for device in [Device::naive(), Device::eager(), Device::lazy()] {
        let mut model = lenet_on(&device, &reference);
        let mut opt = Sgd::with_momentum(0.02, 0.9);
        let mut losses = Vec::new();
        for step in 0..4 {
            let batch = data.batch(16, step, 0);
            let x = DTensor::from_tensor(batch.images.clone(), &device);
            let y = DTensor::from_tensor(batch.one_hot(10), &device);
            losses.push(train_classifier_step(&mut model, &mut opt, &x, &y));
        }
        final_losses.push((device.kind(), losses));
    }
    let (_, reference_losses) = &final_losses[0];
    for (kind, losses) in &final_losses[1..] {
        for (a, b) in losses.iter().zip(reference_losses) {
            assert!(
                (a - b).abs() < 1e-4,
                "{kind} training diverged: {losses:?} vs {reference_losses:?}"
            );
        }
    }
}

#[test]
fn resnet_forward_agrees_across_backends() {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let naive = Device::naive();
    let reference_model = ResNet::new(ResNetConfig::resnet8_cifar(), &naive, &mut rng);
    let xs = s4tf::tensor::Tensor::<f32>::randn(&[2, 16, 16, 3], &mut rng);
    let reference = reference_model
        .forward(&DTensor::from_tensor(xs.clone(), &naive))
        .to_tensor();

    for device in [Device::eager(), Device::lazy()] {
        // Rebuild with identical weights by regenerating from the same seed
        // on the target device (initializers are deterministic).
        let mut rng2 = ChaCha8Rng::seed_from_u64(8);
        let model = ResNet::new(ResNetConfig::resnet8_cifar(), &device, &mut rng2);
        let y = model
            .forward(&DTensor::from_tensor(xs.clone(), &device))
            .to_tensor();
        assert!(
            y.allclose(&reference, 1e-3),
            "{}: max diff {}",
            device.kind(),
            y.max_abs_diff(&reference)
        );
    }
}

#[test]
fn lazy_backend_fuses_and_caches_during_resnet_training() {
    let device = Device::lazy();
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut model = ResNet::new(ResNetConfig::resnet8_cifar(), &device, &mut rng);
    let mut opt = Sgd::new(0.01);
    let data = Dataset::generate(ImageSpec::cifar_like(), 16, 12);
    for step in 0..3 {
        let batch = data.batch(8, 0, step);
        let x = DTensor::from_tensor(batch.images.clone(), &device);
        let y = DTensor::from_tensor(batch.one_hot(10), &device);
        train_classifier_step(&mut model, &mut opt, &x, &y);
    }
    let Device::Lazy(ctx) = &device else {
        unreachable!()
    };
    let stats = ctx.cache().stats();
    assert_eq!(stats.misses, 1, "one program for the whole training step");
    assert_eq!(stats.hits, 2);
}

#[test]
fn eager_pipeline_runs_ahead_of_observation() {
    let device = Device::eager();
    let mut rng = ChaCha8Rng::seed_from_u64(10);
    let x = DTensor::from_tensor(
        s4tf::tensor::Tensor::<f32>::randn(&[64, 64], &mut rng),
        &device,
    );
    // Dispatch a deep chain; dispatching must be much faster than the
    // computation it enqueues.
    let dispatch_start = std::time::Instant::now();
    let mut h = x.clone();
    for _ in 0..60 {
        h = h.matmul(&x).tanh();
    }
    let dispatch_time = dispatch_start.elapsed();
    let drain_start = std::time::Instant::now();
    let _ = h.to_tensor();
    let drain_time = drain_start.elapsed();
    assert!(
        dispatch_time < drain_time,
        "dispatch ({dispatch_time:?}) should outpace execution ({drain_time:?})"
    );
}

#[test]
fn observation_is_the_only_distinguisher() {
    // Identical programs with interleaved host observation produce
    // identical results on all devices (timing aside).
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let xs = s4tf::tensor::Tensor::<f32>::randn(&[3, 3], &mut rng);
    let mut outs = Vec::new();
    for device in [Device::naive(), Device::eager(), Device::lazy()] {
        let x = DTensor::from_tensor(xs.clone(), &device);
        let a = x.exp();
        let host_peek = a.to_tensor(); // observe mid-program
        let b = a.mul(&x).sum();
        outs.push((host_peek, b.to_tensor().scalar_value()));
    }
    for (peek, val) in &outs[1..] {
        assert!(peek.allclose(&outs[0].0, 1e-6));
        assert!((val - outs[0].1).abs() < 1e-4);
    }
}

/// The SIMD dispatch switch must be invisible at the backend level: on
/// each dispatch path all three backends agree, and per backend the two
/// paths agree within FMA-rounding tolerance (the lane kernels use fused
/// multiply-adds; see `s4tf_tensor::simd`). Runs a LeNet forward so the
/// comparison covers conv2d, GEMM, elementwise and reduction kernels at
/// once — including lenet-c1's out_c = 6, the narrow-panel GEMM case.
#[test]
fn simd_paths_agree_on_every_backend() {
    let data = Dataset::generate(ImageSpec::mnist_like(), 16, 21);
    let batch = data.batch(8, 0, 0);
    let mut rng = ChaCha8Rng::seed_from_u64(22);
    let naive = Device::naive();
    let reference = LeNet::new(&naive, &mut rng);

    let mut per_path = Vec::new();
    for simd in [false, true] {
        s4tf::tensor::set_simd_enabled(simd);
        let mut outs = Vec::new();
        for device in [Device::naive(), Device::eager(), Device::lazy()] {
            let model = lenet_on(&device, &reference);
            let x = DTensor::from_tensor(batch.images.clone(), &device);
            outs.push((device.kind(), model.forward(&x).to_tensor()));
        }
        let (_, reference_out) = &outs[0];
        for (kind, y) in &outs[1..] {
            assert!(
                y.allclose(reference_out, 1e-4),
                "{kind} diverged from naive on the {} path",
                if simd { "simd" } else { "scalar" }
            );
        }
        per_path.push(outs.remove(0).1);
    }
    s4tf::tensor::set_simd_enabled(true);
    assert!(
        per_path[0].allclose(&per_path[1], 1e-3),
        "scalar and simd paths diverged beyond FMA tolerance: max diff {}",
        per_path[0].max_abs_diff(&per_path[1])
    );
}
