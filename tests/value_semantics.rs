//! Integration tests for paper §4: mutable value semantics across the
//! whole stack — the Figure 5 semantics, copy-on-write behavior, in-place
//! optimizer updates, and the Figure 8 inout/pass-by-value equivalence.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf::models::LeNet;
use s4tf::prelude::*;
use s4tf::tensor::storage::cow_copy_count;

/// Paper Figure 5, third column: `var y = x; x[0] += 1` leaves `y`
/// untouched.
#[test]
fn figure_5_swift_array_semantics() {
    let mut x = Tensor::from_vec(vec![3.0f32], &[1]);
    let y = x.clone();
    *x.at_mut(&[0]) += 1.0;
    assert_eq!(x.as_slice(), &[4.0]);
    assert_eq!(y.as_slice(), &[3.0], "no spooky action at a distance");
}

/// "Large values are copied lazily, upon mutation, and only when shared."
#[test]
fn copies_happen_lazily_upon_mutation_and_only_when_shared() {
    let mut a = Tensor::<f32>::zeros(&[1024]);

    // Unshared mutation: no copy.
    let before = cow_copy_count();
    a.add_scalar_assign(1.0);
    assert_eq!(cow_copy_count(), before, "unique mutation must not copy");

    // Sharing alone: no copy.
    let b = a.clone();
    assert_eq!(cow_copy_count(), before, "cloning must be O(1)");
    assert!(a.shares_storage_with(&b));

    // First mutation through a shared handle: exactly one copy.
    a.add_scalar_assign(1.0);
    assert_eq!(cow_copy_count(), before + 1);
    assert!(!a.shares_storage_with(&b));

    // Subsequent mutations: unique again, no more copies.
    a.add_scalar_assign(1.0);
    assert_eq!(cow_copy_count(), before + 1);
}

/// §4.2: training updates the model in place — the optimizer's unique
/// borrow never materializes a second copy of unshared parameters.
#[test]
fn optimizer_update_is_in_place_when_unshared() {
    let mut model = Tensor::<f32>::zeros(&[4096]);
    let grad = Tensor::<f32>::ones(&[4096]);
    let mut opt = Sgd::<Tensor<f32>>::new(0.1);
    let before = cow_copy_count();
    for _ in 0..10 {
        opt.update(&mut model, &grad);
    }
    assert_eq!(
        cow_copy_count(),
        before,
        "in-place updates must not copy the weights"
    );
    assert!((model.as_slice()[0] + 1.0).abs() < 1e-6);
}

/// Whole models are value types: assigning one and training it leaves the
/// original untouched (the property that makes checkpoint-keeping trivial).
#[test]
fn models_are_value_types() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let d = Device::naive();
    let mut model = LeNet::new(&d, &mut rng);
    let checkpoint = model.clone();

    let x = DTensor::from_tensor(Tensor::<f32>::randn(&[2, 28, 28, 1], &mut rng), &d);
    let (y, pb) = model.forward_with_pullback(&x);
    let (grads, _) = pb(&y.ones_like());
    model.move_along(&grads.scaled_by(-0.1));

    // The checkpoint still produces the original outputs.
    let restored = checkpoint.forward(&x).to_tensor();
    let trained = model.forward(&x).to_tensor();
    assert!(
        restored.max_abs_diff(&trained) > 1e-6,
        "training must have changed the live model"
    );
    assert_eq!(
        restored,
        y.to_tensor(),
        "the checkpoint must be unaffected by training"
    );
}

/// Paper Figure 8: a call using `&mut` (inout) is equivalent to a
/// pass-by-value call returning the updated value.
#[test]
fn figure_8_inout_equals_pass_by_value() {
    fn inc_inout(x: &mut i64) -> bool {
        *x += 1;
        *x < 10
    }
    fn inc_by_value(x0: i64) -> (i64, bool) {
        let x = x0 + 1;
        (x, x < 10)
    }
    let mut y1 = 2i64;
    let z1 = inc_inout(&mut y1);
    let (y2, z2) = inc_by_value(2);
    assert_eq!((y1, z1), (y2, z2));
    assert_eq!((y1, z1), (3, true), "both programs print \"3 true\"");
}

/// The same value semantics hold for DTensor on all three devices.
#[test]
fn dtensor_value_semantics_everywhere() {
    for device in [Device::naive(), Device::eager(), Device::lazy()] {
        let x = DTensor::from_tensor(Tensor::from_vec(vec![3.0f32], &[1]), &device);
        let mut y = x.clone();
        y.scaled_add_assign(1.0, &x.ones_like());
        assert_eq!(x.to_tensor().as_slice(), &[3.0], "{}", device.kind());
        assert_eq!(y.to_tensor().as_slice(), &[4.0], "{}", device.kind());
    }
}

/// Gradients are first-class values (§4.2): they can be stored, compared
/// and combined like any other value.
#[test]
fn gradients_are_first_class() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let d = Device::naive();
    let model = Dense::new(3, 2, Activation::Tanh, &d, &mut rng);
    let x = DTensor::from_tensor(Tensor::<f32>::randn(&[4, 3], &mut rng), &d);
    let (y, pb) = model.forward_with_pullback(&x);
    let (g1, _) = pb(&y.ones_like());
    let (g2, _) = pb(&y.ones_like());
    // Stored, doubled, compared.
    let doubled = g1.adding(&g2);
    let direct = g1.scaled_by(2.0);
    assert!(doubled
        .weight
        .to_tensor()
        .allclose(&direct.weight.to_tensor(), 1e-6));
    let zero = s4tf::nn::layers::DenseTangent::zero();
    assert_eq!(g1.adding(&zero).weight.to_tensor(), g1.weight.to_tensor());
}
