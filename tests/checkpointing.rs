//! End-to-end checkpointing: because models are value types of plain
//! tensors (§4.1 — no `Variable` wrappers), a checkpoint is just the
//! parameter tensors, serializable with ordinary serde.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf::models::LeNet;
use s4tf::prelude::*;
use std::collections::BTreeMap;

/// Extracts a LeNet's parameters as named host tensors.
fn checkpoint(model: &LeNet) -> BTreeMap<String, Tensor<f32>> {
    let mut m = BTreeMap::new();
    m.insert("conv1.filter".into(), model.conv1.filter.to_tensor());
    m.insert("conv1.bias".into(), model.conv1.bias.to_tensor());
    m.insert("conv2.filter".into(), model.conv2.filter.to_tensor());
    m.insert("conv2.bias".into(), model.conv2.bias.to_tensor());
    m.insert("fc1.weight".into(), model.fc1.weight.to_tensor());
    m.insert("fc1.bias".into(), model.fc1.bias.to_tensor());
    m.insert("fc2.weight".into(), model.fc2.weight.to_tensor());
    m.insert("fc2.bias".into(), model.fc2.bias.to_tensor());
    m.insert("fc3.weight".into(), model.fc3.weight.to_tensor());
    m.insert("fc3.bias".into(), model.fc3.bias.to_tensor());
    m
}

/// Restores a checkpoint onto a model placed on `device`.
fn restore(model: &mut LeNet, ckpt: &BTreeMap<String, Tensor<f32>>, device: &Device) {
    let get = |k: &str| DTensor::from_tensor(ckpt[k].clone(), device);
    model.conv1.filter = get("conv1.filter");
    model.conv1.bias = get("conv1.bias");
    model.conv2.filter = get("conv2.filter");
    model.conv2.bias = get("conv2.bias");
    model.fc1.weight = get("fc1.weight");
    model.fc1.bias = get("fc1.bias");
    model.fc2.weight = get("fc2.weight");
    model.fc2.bias = get("fc2.bias");
    model.fc3.weight = get("fc3.weight");
    model.fc3.bias = get("fc3.bias");
}

#[test]
fn lenet_checkpoint_round_trips_through_json_across_devices() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let naive = Device::naive();
    let trained = LeNet::new(&naive, &mut rng);
    let x = DTensor::from_tensor(Tensor::<f32>::randn(&[2, 28, 28, 1], &mut rng), &naive);
    let expected = trained.forward(&x).to_tensor();

    // Serialize → JSON → deserialize.
    let json = serde_json::to_string(&checkpoint(&trained)).unwrap();
    let restored_ckpt: BTreeMap<String, Tensor<f32>> = serde_json::from_str(&json).unwrap();

    // Restore onto a *lazy-device* model: checkpoints are device-agnostic.
    let lazy = Device::lazy();
    let mut rng2 = ChaCha8Rng::seed_from_u64(99); // different init, then overwritten
    let mut fresh = LeNet::new(&lazy, &mut rng2);
    restore(&mut fresh, &restored_ckpt, &lazy);
    let xl = DTensor::from_tensor(x.to_tensor(), &lazy);
    let out = fresh.forward(&xl).to_tensor();
    assert!(
        out.allclose(&expected, 1e-5),
        "restored model must reproduce the trained model's outputs"
    );
}

#[test]
fn checkpoints_are_snapshots_not_references() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let d = Device::naive();
    let mut model = LeNet::new(&d, &mut rng);
    let ckpt = checkpoint(&model);
    // Train the live model; the checkpoint must not move (value semantics).
    let x = DTensor::from_tensor(Tensor::<f32>::randn(&[1, 28, 28, 1], &mut rng), &d);
    let (y, pb) = model.forward_with_pullback(&x);
    let (g, _) = pb(&y.ones_like());
    model.move_along(&g.scaled_by(-1.0));
    assert!(
        ckpt["fc3.weight"].max_abs_diff(&model.fc3.weight.to_tensor()) > 1e-6,
        "training moved the live weights"
    );
}
