//! End-to-end checkpointing through `nn::checkpoint`: because models are
//! value types of plain tensors (§4.1 — no `Variable` wrappers), a
//! checkpoint is just the named parameter tensors, serialized into the
//! versioned, checksummed binary format with atomic writes.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf::models::LeNet;
use s4tf::nn::checkpoint::{self, Checkpoint};
use s4tf::nn::train::train_classifier_step;
use s4tf::prelude::*;
use s4tf::tensor::FaultKind;
use std::path::PathBuf;

/// A fresh scratch directory, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("s4tf-ckpt-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic, linearly separable minibatch for a LeNet-shaped input:
/// class 0 is a dark image, class 1 a bright one.
fn lenet_batch(step: u64, n: usize, device: &Device) -> (DTensor, DTensor) {
    let mut rng = ChaCha8Rng::seed_from_u64(1000 + step);
    let mut pixels = Vec::with_capacity(n * 28 * 28);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 2;
        let base: f32 = if class == 0 { -0.5 } else { 0.5 };
        for _ in 0..28 * 28 {
            pixels.push(base + Tensor::<f32>::randn(&[1], &mut rng).scalar_value() * 0.1);
        }
        labels.push(class);
    }
    (
        DTensor::from_tensor(Tensor::from_vec(pixels, &[n, 28, 28, 1]), device),
        DTensor::from_tensor(Tensor::one_hot(&labels, 10), device),
    )
}

#[test]
fn lenet_checkpoint_round_trips_across_devices() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let naive = Device::naive();
    let trained = LeNet::new(&naive, &mut rng);
    let x = DTensor::from_tensor(Tensor::<f32>::randn(&[2, 28, 28, 1], &mut rng), &naive);
    let expected = trained.forward(&x).to_tensor();

    // Serialize → binary file → load.
    let dir = scratch("roundtrip");
    let path = Checkpoint::from_model(0, &trained)
        .unwrap()
        .save(&dir)
        .unwrap();
    let restored_ckpt = Checkpoint::load(&path).unwrap();
    assert_eq!(restored_ckpt.len(), 10, "5 layers × (weight, bias)");
    assert!(restored_ckpt.get("conv1.filter").is_some());
    assert!(restored_ckpt.get("fc3.bias").is_some());

    // Restore onto *eager-* and *lazy-device* models: checkpoints are
    // device-agnostic.
    for device in [Device::eager(), Device::lazy()] {
        let mut rng2 = ChaCha8Rng::seed_from_u64(99); // different init, then overwritten
        let mut fresh = LeNet::new(&device, &mut rng2);
        restored_ckpt.restore(&mut fresh, &device).unwrap();
        let xd = DTensor::from_tensor(x.to_tensor(), &device);
        let out = fresh.forward(&xd).to_tensor();
        assert!(
            out.allclose(&expected, 1e-5),
            "{}: restored model must reproduce the trained model's outputs",
            device.kind()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoints_are_snapshots_not_references() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let d = Device::naive();
    let mut model = LeNet::new(&d, &mut rng);
    let ckpt = Checkpoint::from_model(0, &model).unwrap();
    // Train the live model; the checkpoint must not move (value semantics).
    let x = DTensor::from_tensor(Tensor::<f32>::randn(&[1, 28, 28, 1], &mut rng), &d);
    let (y, pb) = model.forward_with_pullback(&x);
    let (g, _) = pb(&y.ones_like());
    model.move_along(&g.scaled_by(-1.0));
    assert!(
        ckpt.get("fc3.weight")
            .unwrap()
            .max_abs_diff(&model.fc3.weight.to_tensor())
            > 1e-6,
        "training moved the live weights"
    );
}

#[test]
fn corrupted_checkpoint_is_a_typed_error_not_a_panic() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let d = Device::naive();
    let model = LeNet::new(&d, &mut rng);
    let dir = scratch("corrupt");
    let path = Checkpoint::from_model(3, &model)
        .unwrap()
        .save(&dir)
        .unwrap();

    // Flip one byte in the middle of the file: the checksum must catch it
    // and surface a typed I/O error, never a garbage model or a panic.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let err = Checkpoint::load(&path).unwrap_err();
    assert_eq!(err.kind, FaultKind::Io);
    assert_eq!(err.op, "checkpoint.load");
    assert!(err.to_string().contains("checksum mismatch"), "{err}");

    // Truncation (a torn write that dodged the atomic rename) too.
    std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
    let err = Checkpoint::load(&path).unwrap_err();
    assert_eq!(err.kind, FaultKind::Io);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn latest_discovers_the_newest_checkpoint() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let d = Device::naive();
    let model = LeNet::new(&d, &mut rng);
    let dir = scratch("latest");
    assert_eq!(checkpoint::latest(&dir).unwrap(), None);
    for step in [2, 9, 5] {
        Checkpoint::from_model(step, &model)
            .unwrap()
            .save(&dir)
            .unwrap();
    }
    let newest = checkpoint::latest(&dir).unwrap().unwrap();
    assert_eq!(checkpoint::step_of(&newest), Some(9));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The crash-resume acceptance test: a training run killed mid-step
/// resumes from the latest checkpoint and finishes **bit-identically** to
/// an uninterrupted run — possible because SGD is stateless, the data
/// order is a pure function of the step index, and the interrupted step's
/// partial effects died with the "process" (here: a discarded session).
#[test]
fn killed_training_run_resumes_bit_identically() {
    let device = Device::naive();
    let total_steps = 10;
    let every = 4;
    let model_init = {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        LeNet::new(&device, &mut rng)
    };
    let run_one_step = |model: &mut LeNet, step: u64| -> f64 {
        let (x, y) = lenet_batch(step, 4, &Device::naive());
        let mut opt = Sgd::new(0.05);
        train_classifier_step(model, &mut opt, &x, &y)
    };

    // Reference: an uninterrupted run.
    let dir_a = scratch("uninterrupted");
    let mut reference = TrainingSession::new(model_init.clone(), &device, &dir_a, every).unwrap();
    assert_eq!(reference.resumed_from(), None);
    while reference.step < total_steps {
        reference.run_step(run_one_step).unwrap();
    }

    // Crash run: same schedule, killed mid-step 7 (after checkpoint at 4).
    let dir_b = scratch("crashed");
    {
        let mut doomed = TrainingSession::new(model_init.clone(), &device, &dir_b, every).unwrap();
        while doomed.step < 6 {
            doomed.run_step(run_one_step).unwrap();
        }
        // Simulate the kill arriving mid-step 7: the step mutates the
        // model, then the process dies before run_step returns — all of
        // that state evaporates with the session.
        run_one_step(&mut doomed.model, doomed.step);
        // (session dropped here without checkpointing)
    }

    // Survivor: resumes from ckpt-00000004 and replays steps 4..10.
    let mut resumed = TrainingSession::new(model_init.clone(), &device, &dir_b, every).unwrap();
    assert_eq!(
        resumed.resumed_from(),
        Some(4),
        "must pick up from the last durable snapshot, not the crash point"
    );
    while resumed.step < total_steps {
        resumed.run_step(run_one_step).unwrap();
    }

    // Bit-identical: exact f32 equality, not allclose.
    let final_a = Checkpoint::from_model(total_steps, &reference.model).unwrap();
    let final_b = Checkpoint::from_model(total_steps, &resumed.model).unwrap();
    for name in final_a.names() {
        let a = final_a.get(name).unwrap().as_slice().to_vec();
        let b = final_b.get(name).unwrap().as_slice().to_vec();
        assert!(
            a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "`{name}` differs after resume — not bit-identical"
        );
    }
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
