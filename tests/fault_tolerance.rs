//! End-to-end fault-tolerance: deterministic injection, poisoned-value
//! propagation with first-error attribution on all three backends,
//! data-parallel fault policies, XLA-compile fallback, and the chaos-run
//! acceptance criterion (LeNet keeps training under kernel faults).
//!
//! The fault spec is process-global, so every test takes the `SERIAL`
//! lock **and** installs its own spec explicitly (`set_fault_spec` beats
//! the `S4TF_FAULT_SPEC` env var, which CI's chaos job exports).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf::fault::{self, would_inject, FaultSite};
use s4tf::models::LeNet;
use s4tf::nn::checkpoint::{self, Checkpoint};
use s4tf::nn::train::{
    data_parallel_classifier_step_with_policy, train_classifier_step, FaultPolicy,
};
use s4tf::prelude::*;
use s4tf::tensor::FaultKind;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A linearly separable 2-class problem, shardable 4 ways.
fn toy_shards(device: &Device, n_shards: usize, per_shard: usize) -> Vec<(DTensor, DTensor)> {
    let mut rng = ChaCha8Rng::seed_from_u64(300);
    (0..n_shards)
        .map(|_| {
            let mut data = Vec::with_capacity(per_shard * 2);
            let mut labels = Vec::with_capacity(per_shard);
            for i in 0..per_shard {
                let class = i % 2;
                let center = if class == 0 { -2.0 } else { 2.0 };
                data.push(center + Tensor::<f32>::randn(&[1], &mut rng).scalar_value() * 0.5);
                data.push(center * 0.5 + Tensor::<f32>::randn(&[1], &mut rng).scalar_value() * 0.5);
                labels.push(class);
            }
            (
                DTensor::from_tensor(Tensor::from_vec(data, &[per_shard, 2]), device),
                DTensor::from_tensor(Tensor::one_hot(&labels, 2), device),
            )
        })
        .collect()
}

fn bitwise_eq(a: &Tensor<f32>, b: &Tensor<f32>) -> bool {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Same spec seed → the same ops fault, observed end-to-end through the
/// runtime (not just the `would_inject` hash): a pipeline of 40 naive ops
/// replayed under the same spec poisons the identical subset.
#[test]
fn same_seed_replays_the_same_injected_fault_sequence() {
    let _g = serial();
    let device = Device::naive();
    let t = Tensor::from_vec(vec![1.0f32, -2.0, 3.0], &[3]);
    let run = || -> Vec<bool> {
        (0..40)
            .map(|_| {
                let x = DTensor::from_tensor(t.clone(), &device);
                x.relu().to_tensor_checked().is_ok()
            })
            .collect()
    };

    fault::set_fault_spec(Some("kernel:0.3:42")).unwrap();
    let a = run();
    fault::set_fault_spec(Some("kernel:0.3:42")).unwrap();
    let b = run();
    assert_eq!(a, b, "same seed must fault the same ops");
    assert!(a.iter().any(|&ok| !ok), "p=0.3 over 40 ops faults some");
    assert!(a.iter().any(|&ok| ok), "...but not all");

    fault::set_fault_spec(Some("kernel:0.3:43")).unwrap();
    let c = run();
    assert_ne!(a, c, "a different seed faults a different subset");
    fault::set_fault_spec(None).unwrap();
}

/// A fault poisons the value it struck; downstream ops propagate the
/// poison without re-attributing it, and observation surfaces the *first*
/// error — with the original op mnemonic — identically on naive, eager,
/// and lazy.
#[test]
fn poisoned_values_surface_the_first_error_on_every_backend() {
    let _g = serial();
    let t = Tensor::from_vec(vec![1.0f32, -2.0, 3.0], &[3]);
    for device in [Device::naive(), Device::eager(), Device::lazy()] {
        fault::set_fault_spec(Some("kernel:1:0")).unwrap();
        let x = DTensor::from_tensor(t.clone(), &device);
        let z = x.relu().mul_scalar(2.0); // relu faults; mul_scalar inherits
        let err = z
            .to_tensor_checked()
            .expect_err("injected fault must surface at observation");
        assert_eq!(err.kind, FaultKind::Injected, "{}: {err}", device.kind());
        // Naive/eager attribute the individual op. The lazy backend's
        // unit of execution is the fused kernel, which names its
        // constituents — `relu` must appear either way.
        assert!(
            err.op == "relu" || (err.op.starts_with("fused[") && err.op.contains("relu")),
            "{}: must carry the *first* faulting op, not the one observed (got `{}`)",
            device.kind(),
            err.op
        );
        fault::set_fault_spec(None).unwrap();
        device.sync_checked().ok(); // drain sticky state
    }
}

/// The infallible observation path still works — it panics with the full
/// attributed error rather than a generic message.
#[test]
fn infallible_to_tensor_panics_with_the_attributed_error() {
    let _g = serial();
    fault::set_fault_spec(Some("kernel:1:0")).unwrap();
    let device = Device::naive();
    let x = DTensor::from_tensor(Tensor::from_vec(vec![1.0f32, 2.0], &[2]), &device);
    let y = x.relu();
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| y.to_tensor()))
        .expect_err("poisoned value must panic on infallible read");
    let msg = s4tf::tensor::panic_message(&*payload);
    assert!(msg.contains("relu"), "panic must name the op: {msg}");
    assert!(msg.contains("injected"), "panic must name the cause: {msg}");
    fault::set_fault_spec(None).unwrap();
}

/// `sync_checked` surfaces (and drains) the first recorded error on the
/// eager device, so a handled fault cannot leak into the next step.
#[test]
fn eager_sync_checked_drains_the_first_error() {
    let _g = serial();
    fault::set_fault_spec(Some("kernel:1:0")).unwrap();
    let device = Device::eager();
    let x = DTensor::from_tensor(Tensor::from_vec(vec![1.0f32, 2.0], &[2]), &device);
    let _poisoned = x.relu();
    let err = device.sync_checked().expect_err("first error must surface");
    assert_eq!(err.op, "relu");
    assert_eq!(err.kind, FaultKind::Injected);
    fault::set_fault_spec(None).unwrap();
    assert!(
        device.sync_checked().is_ok(),
        "error state must drain after being observed"
    );
    // The queue is healthy again.
    let y = x.mul_scalar(3.0).to_tensor_checked().unwrap();
    assert_eq!(y.as_slice(), &[3.0, 6.0]);
}

/// `DropShard` renormalizes the gradient average over the survivors: a
/// step that loses one shard to an `allreduce` fault matches a no-fault
/// step computed over the surviving shards alone.
#[test]
fn drop_shard_matches_the_no_fault_step_over_survivors() {
    let _g = serial();
    // Pick a seed where exactly one of the 4 per-shard draws (p=0.5)
    // injects — the deterministic hash makes this a compile-time-ish fact.
    let seed = (0u64..)
        .find(|&s| {
            (0..4)
                .filter(|&i| would_inject(s, FaultSite::Allreduce, i, 0.5))
                .count()
                == 1
        })
        .unwrap();
    let dropped = (0..4)
        .position(|i| would_inject(seed, FaultSite::Allreduce, i, 0.5))
        .unwrap();

    let device = Device::naive();
    let shards = toy_shards(&device, 4, 8);
    let init = {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        Dense::new(2, 2, Activation::Tanh, &device, &mut rng)
    };

    // Faulted step: shard `dropped` loses its all-reduce contribution.
    fault::set_fault_spec(Some(&format!("allreduce:0.5:{seed}"))).unwrap();
    let mut faulted = init.clone();
    let mut opt = Sgd::new(0.3);
    data_parallel_classifier_step_with_policy(
        &mut faulted,
        &mut opt,
        &shards,
        FaultPolicy::DropShard,
    )
    .expect("3 of 4 shards survive");
    assert!(fault::injections(FaultSite::Allreduce) >= 1);
    fault::set_fault_spec(None).unwrap();

    // Reference: a clean step over only the survivors.
    let survivors: Vec<_> = shards
        .iter()
        .enumerate()
        .filter(|(k, _)| *k != dropped)
        .map(|(_, s)| s.clone())
        .collect();
    let mut reference = init.clone();
    let mut opt = Sgd::new(0.3);
    data_parallel_classifier_step_with_policy(
        &mut reference,
        &mut opt,
        &survivors,
        FaultPolicy::FailFast,
    )
    .unwrap();

    assert!(
        faulted
            .weight
            .to_tensor()
            .allclose(&reference.weight.to_tensor(), 1e-7),
        "renormalized mean must equal the survivors-only mean"
    );
    assert!(faulted
        .bias
        .to_tensor()
        .allclose(&reference.bias.to_tensor(), 1e-7));
}

/// `Retry` re-runs a failed shard and succeeds when the fault was
/// transient; `FailFast` on the same spec surfaces it as a typed error
/// and — transactionally — leaves the model untouched.
#[test]
fn retry_recovers_where_fail_fast_surfaces() {
    let _g = serial();
    // Seed where draw 0 (shard 0's all-reduce) injects but draws 1..5 —
    // including the retry's re-draw at index 4 — do not.
    let seed = (0u64..)
        .find(|&s| {
            would_inject(s, FaultSite::Allreduce, 0, 0.5)
                && !(1..5).any(|i| would_inject(s, FaultSite::Allreduce, i, 0.5))
        })
        .unwrap();
    let spec = format!("allreduce:0.5:{seed}");

    let device = Device::naive();
    let shards = toy_shards(&device, 4, 8);
    let init = {
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        Dense::new(2, 2, Activation::Tanh, &device, &mut rng)
    };

    // Clean reference step over all 4 shards.
    fault::set_fault_spec(None).unwrap();
    let mut reference = init.clone();
    let mut opt = Sgd::new(0.3);
    data_parallel_classifier_step_with_policy(
        &mut reference,
        &mut opt,
        &shards,
        FaultPolicy::FailFast,
    )
    .unwrap();

    // Retry(2): the transient fault is absorbed; result matches the
    // clean step exactly.
    fault::set_fault_spec(Some(&spec)).unwrap();
    let mut retried = init.clone();
    let mut opt = Sgd::new(0.3);
    data_parallel_classifier_step_with_policy(
        &mut retried,
        &mut opt,
        &shards,
        FaultPolicy::Retry(2),
    )
    .expect("retry must absorb a transient allreduce fault");
    assert!(retried
        .weight
        .to_tensor()
        .allclose(&reference.weight.to_tensor(), 1e-7));

    // FailFast under the identical spec: typed error, model unchanged.
    fault::set_fault_spec(Some(&spec)).unwrap();
    let mut untouched = init.clone();
    let mut opt = Sgd::new(0.3);
    let err = data_parallel_classifier_step_with_policy(
        &mut untouched,
        &mut opt,
        &shards,
        FaultPolicy::FailFast,
    )
    .expect_err("FailFast must surface the shard fault");
    assert_eq!(err.kind, FaultKind::Injected);
    assert_eq!(err.op, "allreduce.mean");
    assert!(
        bitwise_eq(&untouched.weight.to_tensor(), &init.weight.to_tensor()),
        "a failed step must leave the model exactly as it was"
    );
    fault::set_fault_spec(None).unwrap();
}

/// An injected XLA-compile failure exhausts its retries, falls back to
/// the trace interpreter, and training proceeds with results matching the
/// uninjected run.
#[test]
fn compile_fallback_matches_the_uninjected_run() {
    let _g = serial();
    let train = |device: &Device| -> (Tensor<f32>, Tensor<f32>) {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let shards = toy_shards(device, 1, 16);
        let (x, y) = &shards[0];
        let mut model = Dense::new(2, 2, Activation::Tanh, device, &mut rng);
        let mut opt = Sgd::new(0.3);
        for _ in 0..3 {
            train_classifier_step(&mut model, &mut opt, x, y);
        }
        (model.weight.to_tensor(), model.bias.to_tensor())
    };

    fault::set_fault_spec(None).unwrap();
    let clean = train(&Device::lazy());

    fault::set_fault_spec(Some("compile:1:3")).unwrap();
    let device = Device::lazy();
    let faulted = train(&device);
    let stats = device.cache_stats().unwrap();
    assert!(
        stats.compile_fallbacks >= 1,
        "every compile fails → the interpreter must have been used: {stats:?}"
    );
    fault::set_fault_spec(None).unwrap();

    assert!(
        clean.0.allclose(&faulted.0, 1e-6) && clean.1.allclose(&faulted.1, 1e-6),
        "interpreter fallback must compute what the compiled program would"
    );
}

/// Checkpoint I/O faults surface as typed errors with the right site
/// attribution — never a torn file or a panic.
#[test]
fn checkpoint_io_faults_are_typed_errors() {
    let _g = serial();
    let dir = std::env::temp_dir().join(format!("s4tf-faultio-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let device = Device::naive();
    let mut rng = ChaCha8Rng::seed_from_u64(34);
    let model = Dense::new(2, 2, Activation::Identity, &device, &mut rng);
    let ckpt = Checkpoint::from_model(5, &model).unwrap();

    fault::set_fault_spec(Some("checkpoint_io:1:0")).unwrap();
    let err = ckpt.save(&dir).expect_err("write fault must surface");
    assert_eq!(err.kind, FaultKind::Injected);
    assert_eq!(err.op, "checkpoint.save");

    fault::set_fault_spec(Some("io:1:0")).unwrap();
    let err = checkpoint::latest(&dir).expect_err("read fault must surface");
    assert_eq!(err.kind, FaultKind::Injected);

    // And with injection off, the same calls succeed.
    fault::set_fault_spec(None).unwrap();
    let path = ckpt.save(&dir).unwrap();
    assert_eq!(checkpoint::latest(&dir).unwrap(), Some(path));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance chaos run: LeNet data-parallel training under
/// `kernel:0.05` faults with `DropShard` completes every step (failed
/// steps roll back and are skipped), logs the injections as diag events,
/// and still converges.
#[test]
fn lenet_chaos_run_survives_and_converges_under_drop_shard() {
    let _g = serial();
    let device = Device::naive();
    let mut rng = ChaCha8Rng::seed_from_u64(40);
    let mut model = LeNet::new(&device, &mut rng);
    let mut opt = Sgd::new(0.05);

    // 4 shards × 4 images of a separable task: dark ↔ class 0, bright ↔ 1.
    let shards: Vec<(DTensor, DTensor)> = (0..4)
        .map(|k| {
            let mut srng = ChaCha8Rng::seed_from_u64(500 + k);
            let n = 4;
            let mut pixels = Vec::with_capacity(n * 28 * 28);
            let mut labels = Vec::with_capacity(n);
            for i in 0..n {
                let class = i % 2;
                let base: f32 = if class == 0 { -0.5 } else { 0.5 };
                for _ in 0..28 * 28 {
                    pixels.push(base + Tensor::<f32>::randn(&[1], &mut srng).scalar_value() * 0.1);
                }
                labels.push(class);
            }
            (
                DTensor::from_tensor(Tensor::from_vec(pixels, &[n, 28, 28, 1]), &device),
                DTensor::from_tensor(Tensor::one_hot(&labels, 10), &device),
            )
        })
        .collect();

    // Clean evaluation in a protected region: the probe itself must not
    // draw injections (on the naive device ops run on this thread).
    let eval_loss = |model: &LeNet| -> f64 {
        let _protect = fault::suppress();
        let mut total = 0.0;
        for (x, y) in &shards {
            let logits = model.forward(x);
            let (loss, _) = softmax_cross_entropy(&logits, y);
            total += loss.loss_value();
        }
        total / shards.len() as f64
    };

    s4tf::diag::set_events_enabled(true);
    s4tf::diag::clear_events();
    fault::set_fault_spec(Some("kernel:0.05:7")).unwrap();
    let initial = eval_loss(&model);

    // A LeNet shard draws ~70 kernel injections per forward/backward, so
    // at p=0.05 most shards die and many steps lose *all* shards. Which
    // steps survive depends on thread interleaving (draw indices are
    // claimed dynamically), so run until enough steps have landed, with a
    // hard cap as the liveness bound.
    let target_ok = 5;
    let max_steps = 150;
    let mut ok_steps = 0;
    let mut steps = 0;
    while ok_steps < target_ok && steps < max_steps {
        steps += 1;
        match data_parallel_classifier_step_with_policy(
            &mut model,
            &mut opt,
            &shards,
            FaultPolicy::DropShard,
        ) {
            Ok(loss) => {
                assert!(loss.is_finite());
                ok_steps += 1;
            }
            // Every shard faulted: the step rolled back; just skip it.
            Err(e) => assert_ne!(e.kind, FaultKind::Shape, "only injected/kernel faults: {e}"),
        }
    }
    let kernel_injections = fault::injections(FaultSite::Kernel);
    let final_loss = eval_loss(&model);
    fault::set_fault_spec(None).unwrap();
    s4tf::diag::set_events_enabled(false);

    assert!(
        kernel_injections > 0,
        "p=0.05 over a LeNet chaos run must inject"
    );
    assert!(
        ok_steps >= target_ok,
        "chaos run starved: only {ok_steps} steps survived in {steps}"
    );
    let events = s4tf::diag::events_jsonl();
    assert!(
        events.contains("fault.injected"),
        "injections must be logged as diag events"
    );
    assert!(
        events.contains("fault.shard_dropped") || events.contains("fault.shard_failed"),
        "shard handling must be logged as diag events"
    );
    assert!(
        final_loss < initial,
        "chaos training must still converge: {initial} → {final_loss}"
    );
}
