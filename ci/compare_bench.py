#!/usr/bin/env python3
"""Benchmark regression gate: diff a measured bench artifact against its
checked-in baseline.

Usage:
    python3 ci/compare_bench.py MEASURED.json BASELINE.json \
        [--fail-under 0.7] [--notice-over 1.3] [--strict]

Both files must be artifacts of the same bench binary (`kernels` or
`ops`). For every case present in the baseline, the measured GFLOP/s is
compared as a ratio; a case below ``--fail-under`` x baseline is a
regression, above ``--notice-over`` x is a notice (update the baseline to
bank the win). The schema of the measured file is validated first, so a
bench binary that drops a field fails here rather than producing an
uncomparable artifact.

Throughput is only comparable between like machines. When the two
artifacts' machine fingerprints differ, regressions are reported but
downgraded to warnings (exit 0) unless ``--strict`` is given — CI runners
are not the machine the baseline was recorded on.
"""

import argparse
import json
import sys

# Per-bench schema: (result key fields, required result fields, metrics).
# Every metric listed is gated independently against the baseline's value
# for the same key — for `kernels` that means the active dispatch path
# (gflops_1, usually simd8) AND the scalar reference path
# (gflops_scalar_1) each hold their own line, so a SIMD win cannot mask a
# scalar-path regression or vice versa.
SCHEMAS = {
    "kernels": {
        "key": ("kernel", "case"),
        "required": (
            "kernel", "case", "path", "threads_1_ms", "threads_n_ms",
            "threads_scalar_1_ms", "speedup", "flops", "bytes",
            "gflops_1", "gflops_n", "gflops_scalar_1",
        ),
        "metrics": ("gflops_1", "gflops_scalar_1"),
    },
    "ops": {
        "key": ("op", "case", "backend"),
        "required": (
            "op", "case", "backend", "path", "median_ms", "iqr_ms",
            "trials", "flops", "bytes", "gflops", "gbs",
        ),
        "metrics": ("gflops",),
    },
    # Multi-process ring all-reduce: throughput gates advisory only (the
    # baseline's 1-worker row records ring_gbps 0, which is skipped); the
    # schema check is the hard gate — a bench that stops emitting the
    # step-time quantiles or the predicted-vs-measured columns fails here.
    "dist": {
        "key": ("case",),
        "required": (
            "case", "workers", "steps", "step_ms_p50", "step_ms_p99",
            "allreduce_ms_p50", "ring_gbps", "tx_bytes_per_step",
            "final_loss", "predicted_step_ms", "measured_over_predicted",
        ),
        "metrics": ("ring_gbps",),
    },
}


def load(path):
    with open(path) as f:
        return json.load(f)


def validate(doc, path):
    """Schema-checks one artifact; returns its bench kind."""
    kind = doc.get("bench")
    if kind not in SCHEMAS:
        sys.exit(f"{path}: unknown bench kind {kind!r}")
    schema = SCHEMAS[kind]
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        sys.exit(f"{path}: empty or missing results")
    machine = doc.get("machine")
    if not isinstance(machine, dict) or "fingerprint" not in machine:
        sys.exit(f"{path}: missing machine fingerprint")
    for r in results:
        for field in schema["required"]:
            if field not in r:
                sys.exit(f"{path}: result missing field {field!r}: {r}")
        for metric in schema["metrics"]:
            if r[metric] < 0:
                sys.exit(f"{path}: negative {metric}: {r}")
    return kind


# Metrics measured on the scalar reference path regardless of the active
# dispatch path; these stay comparable even when measured and baseline
# artifacts ran with different S4TF_SIMD settings.
PATH_INDEPENDENT = {"gflops_scalar_1"}


def keyed(doc, schema):
    """{key tuple: (dispatch path, {metric: value})} per result row."""
    return {
        tuple(r[k] for k in schema["key"]): (
            r.get("path", ""),
            {m: r[m] for m in schema["metrics"] if m in r},
        )
        for r in doc["results"]
    }


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("measured")
    ap.add_argument("baseline")
    ap.add_argument("--fail-under", type=float, default=0.7)
    ap.add_argument("--notice-over", type=float, default=1.3)
    ap.add_argument("--strict", action="store_true",
                    help="fail on regressions even across unlike machines")
    args = ap.parse_args()

    measured = load(args.measured)
    baseline = load(args.baseline)
    kind = validate(measured, args.measured)
    base_kind = validate(baseline, args.baseline)
    if kind != base_kind:
        sys.exit(f"bench kind mismatch: {kind} vs {base_kind}")
    schema = SCHEMAS[kind]

    m_fp = measured["machine"]["fingerprint"]
    b_fp = baseline["machine"]["fingerprint"]
    same_machine = m_fp == b_fp
    if not same_machine:
        print(f"note: machine mismatch (measured {m_fp}, baseline {b_fp}); "
              "regressions are advisory" + (" [--strict overrides]" if not args.strict else ""))

    got = keyed(measured, schema)
    want = keyed(baseline, schema)
    regressions, notices, compared, path_skips = [], [], 0, 0
    for key, (base_path, base_metrics) in sorted(want.items()):
        if key not in got:
            regressions.append(f"{key}: missing from measured artifact")
            continue
        m_path, m_metrics = got[key]
        for metric in schema["metrics"]:
            base_val = base_metrics.get(metric)
            if base_val is None or base_val <= 0:
                continue
            if base_path != m_path and metric not in PATH_INDEPENDENT:
                # e.g. a S4TF_SIMD=0 run against a simd8 baseline: the
                # active-path column measures a different kernel.
                path_skips += 1
                continue
            if metric not in m_metrics:
                regressions.append(f"{key}: missing metric {metric}")
                continue
            ratio = m_metrics[metric] / base_val
            compared += 1
            line = (f"{'/'.join(key)} [{metric}]: {m_metrics[metric]:.3f} "
                    f"vs baseline {base_val:.3f} GFLOP/s ({ratio:.2f}x)")
            if ratio < args.fail_under:
                regressions.append(line)
            elif ratio > args.notice_over:
                notices.append(line)

    print(f"{kind}: compared {compared} metric(s) against {args.baseline}")
    if path_skips:
        print(f"  note: {path_skips} active-path metric(s) skipped "
              "(dispatch path differs from baseline)")
    for n in notices:
        print(f"  faster (consider re-baselining): {n}")
    for r in regressions:
        print(f"  REGRESSION: {r}")
    if regressions and (same_machine or args.strict):
        sys.exit(f"{len(regressions)} case(s) regressed below "
                 f"{args.fail_under}x baseline")
    if regressions:
        print("regressions are advisory on this machine; exiting 0")
    if not regressions and not notices:
        print("  all cases within tolerance")


if __name__ == "__main__":
    main()
