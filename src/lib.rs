//! # s4tf — Swift for TensorFlow, reproduced in Rust
//!
//! A from-scratch reproduction of *Swift for TensorFlow: A portable,
//! flexible platform for deep learning* (Saeta et al., MLSys 2021): a
//! language-integrated automatic-differentiation system decoupled from any
//! Tensor type, multiple Tensor execution backends (naive / eager /
//! lazy-tracing with a fusing JIT and program cache), and APIs organized
//! around mutable value semantics.
//!
//! This umbrella crate re-exports the platform's crates:
//!
//! | module | crate | paper section |
//! |--------|-------|---------------|
//! | [`tensor`] | `s4tf-tensor` | §3.1, §4 — CoW value-semantic tensors + CPU kernels |
//! | [`core`] | `s4tf-core` | §2.1 — `Differentiable`, differentiable function values, `@derivative(of:)` registry, Appendix B |
//! | [`sil`] | `s4tf-sil` | §2.2 — SSA IR + the AD code transformation (activity analysis, checking, JVP/VJP synthesis) |
//! | [`xla`] | `s4tf-xla` | §3.3 — the HLO-like fusing JIT + program cache |
//! | [`runtime`] | `s4tf-runtime` | §3 — naive/eager/lazy devices, `DTensor`, accelerator simulator |
//! | [`nn`] | `s4tf-nn` | §4.1–4.2 — `Layer`, optimizers (`inout` updates), training loop |
//! | [`models`] | `s4tf-models` | §5 — LeNet-5 (Figure 6), the ResNet family, the spline model |
//! | [`data`] | `s4tf-data` | §5 — synthetic dataset substitutes |
//! | [`profile`] | `s4tf-profile` | spans, counters and Chrome-trace export across every backend |
//! | [`metrics`] | `s4tf-metrics` | unified metrics registry: histograms with quantiles, memory attribution, Prometheus/JSONL export (`S4TF_METRICS_ADDR`, `S4TF_METRICS_INTERVAL`) |
//! | [`diag`] | `s4tf-diag` | numerics checking, IR/trace dumps, memory tracking, telemetry (`S4TF_CHECK_NUMERICS`, `S4TF_DUMP`, `S4TF_METRICS_FILE`) |
//! | [`fault`] | `s4tf-fault` | deterministic seed-driven fault injection for chaos runs (`S4TF_FAULT_SPEC`) |
//! | [`dist`] | `s4tf-dist` | §7 — multi-process data parallelism: fault-hardened ring all-reduce over local TCP, DropShard expulsion, checkpoint rejoin |
//! | [`threads`] | `s4tf-threads` | the work-chunking kernel thread pool (`S4TF_NUM_THREADS`) |
//!
//! ## Quickstart
//!
//! ```
//! use s4tf::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let device = Device::lazy(); // or Device::naive() / Device::eager()
//! let mut model = Dense::new(4, 2, Activation::Identity, &device, &mut rng);
//! let mut optimizer = Sgd::new(0.1);
//!
//! let x = DTensor::from_tensor(Tensor::randn(&[8, 4], &mut rng), &device);
//! let labels = DTensor::from_tensor(
//!     Tensor::one_hot(&[0, 1, 0, 1, 0, 1, 0, 1], 2), &device);
//! let loss = s4tf::nn::train::train_classifier_step(
//!     &mut model, &mut optimizer, &x, &labels);
//! assert!(loss.is_finite());
//! ```

pub use s4tf_core as core;
pub use s4tf_data as data;
pub use s4tf_diag as diag;
pub use s4tf_dist as dist;
pub use s4tf_fault as fault;
pub use s4tf_metrics as metrics;
pub use s4tf_models as models;
pub use s4tf_nn as nn;
pub use s4tf_profile as profile;
pub use s4tf_runtime as runtime;
pub use s4tf_sil as sil;
pub use s4tf_tensor as tensor;
pub use s4tf_threads as threads;
pub use s4tf_xla as xla;

/// The combined prelude: model-building surface plus the differentiable-
/// programming protocol.
pub mod prelude {
    pub use s4tf_nn::prelude::*;
}
