//! Error types for fallible tensor operations.
//!
//! Most kernels validate shapes with panics (documented per method) because a
//! shape mismatch is a programming error; the `try_*` entry points on
//! [`crate::Tensor`] return [`TensorError`] for callers — such as the lazy
//! graph compiler in `s4tf-xla` — that need to recover.

use std::error::Error;
use std::fmt;

/// Result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Error produced by a fallible tensor operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that must match (possibly after broadcasting) do not.
    ShapeMismatch {
        /// Left-hand shape, as dims.
        lhs: Vec<usize>,
        /// Right-hand shape, as dims.
        rhs: Vec<usize>,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// An operation requires a specific rank.
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the argument.
        actual: usize,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// A reshape target has a different element count.
    ElementCountMismatch {
        /// Element count of the source.
        from: usize,
        /// Element count of the target shape.
        to: usize,
    },
    /// An axis argument is out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// An index is out of bounds for a dimension.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The dimension size.
        dim: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => {
                write!(
                    f,
                    "rank mismatch in {op}: expected {expected}, got {actual}"
                )
            }
            TensorError::ElementCountMismatch { from, to } => {
                write!(f, "cannot reshape {from} elements into {to} elements")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::IndexOutOfBounds { index, dim } => {
                write!(f, "index {index} out of bounds for dimension of size {dim}")
            }
        }
    }
}

impl Error for TensorError {}

/// What category of fault a [`RuntimeError`] represents.
///
/// Mirrors the fault-injection sites of `s4tf-fault`, but lives here (in
/// the always-compiled tensor crate) because attributed errors are part of
/// the public runtime API even when injection is compiled out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Shape inference or validation failed.
    Shape,
    /// XLA compilation failed (after retry/fallback exhausted).
    Compile,
    /// A kernel panicked during execution.
    Kernel,
    /// File I/O failed (checkpoint read/write and friends).
    Io,
    /// A network/wire failure (frame checksum mismatch, peer reset,
    /// straggler timeout) in the distributed runtime.
    Net,
    /// A deliberately injected fault (`S4TF_FAULT_SPEC`).
    Injected,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Shape => "shape",
            FaultKind::Compile => "compile",
            FaultKind::Kernel => "kernel",
            FaultKind::Io => "io",
            FaultKind::Net => "net",
            FaultKind::Injected => "injected",
        })
    }
}

/// An attributed runtime failure.
///
/// Asynchronous backends cannot raise at the call site (paper §4): the
/// error is captured where it happens — with the op mnemonic, backend,
/// and (when profiling is on) the enclosing profile span — poisons the
/// value it would have produced, and surfaces at an observation point
/// (`to_host_checked` / `sync_checked`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError {
    /// Fault category.
    pub kind: FaultKind,
    /// The op mnemonic that failed (e.g. `"matmul"`), or a phase name for
    /// non-op failures (e.g. `"xla.compile"`, `"checkpoint.save"`).
    pub op: String,
    /// The backend the failure occurred on (`"naive"`, `"eager"`,
    /// `"lazy"`, or `"host"` for I/O).
    pub backend: &'static str,
    /// The innermost profile span open when the fault originated, if the
    /// `profile` feature captured one.
    pub span: Option<String>,
    /// Human-readable detail (panic payload, io error text, …).
    pub message: String,
}

impl RuntimeError {
    fn new(
        kind: FaultKind,
        op: impl Into<String>,
        backend: &'static str,
        message: impl Into<String>,
    ) -> Self {
        RuntimeError {
            kind,
            op: op.into(),
            backend,
            span: None,
            message: message.into(),
        }
    }

    /// A kernel execution failure.
    pub fn kernel(
        op: impl Into<String>,
        backend: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Self::new(FaultKind::Kernel, op, backend, message)
    }

    /// A compilation failure.
    pub fn compile(
        op: impl Into<String>,
        backend: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Self::new(FaultKind::Compile, op, backend, message)
    }

    /// A file-I/O failure.
    pub fn io(op: impl Into<String>, message: impl Into<String>) -> Self {
        Self::new(FaultKind::Io, op, "host", message)
    }

    /// A wire failure in the distributed runtime, attributed to the peer
    /// it occurred against. `peer` is the peer's worker rank, or `None`
    /// when the failure is not tied to one link (e.g. a listener error).
    pub fn net(op: impl Into<String>, peer: Option<usize>, message: impl Into<String>) -> Self {
        let message = message.into();
        let message = match peer {
            Some(rank) => format!("peer rank {rank}: {message}"),
            None => message,
        };
        Self::new(FaultKind::Net, op, "net", message)
    }

    /// A shape-validation failure.
    pub fn shape(op: impl Into<String>, backend: &'static str, message: impl Into<String>) -> Self {
        Self::new(FaultKind::Shape, op, backend, message)
    }

    /// A deliberately injected fault.
    pub fn injected(op: impl Into<String>, backend: &'static str, site: &str) -> Self {
        Self::new(
            FaultKind::Injected,
            op,
            backend,
            format!("injected fault at site `{site}` (S4TF_FAULT_SPEC)"),
        )
    }

    /// Attaches the originating profile span.
    pub fn with_span(mut self, span: Option<String>) -> Self {
        self.span = span;
        self
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fault in op `{}` on backend `{}`",
            self.kind, self.op, self.backend
        )?;
        if let Some(span) = &self.span {
            write!(f, " (span `{span}`)")?;
        }
        if !self.message.is_empty() {
            write!(f, ": {}", self.message)?;
        }
        Ok(())
    }
}

impl Error for RuntimeError {}

/// Extracts a readable message from a `catch_unwind` payload.
///
/// Panic payloads are `&str` for literal messages and `String` for
/// formatted ones; anything else gets a placeholder.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TensorError::ShapeMismatch {
            lhs: vec![2, 3],
            rhs: vec![4],
            op: "add",
        };
        assert_eq!(e.to_string(), "shape mismatch in add: [2, 3] vs [4]");
        let e = TensorError::ElementCountMismatch { from: 6, to: 8 };
        assert_eq!(e.to_string(), "cannot reshape 6 elements into 8 elements");
        let e = TensorError::AxisOutOfRange { axis: 3, rank: 2 };
        assert_eq!(e.to_string(), "axis 3 out of range for rank 2");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<TensorError>();
        assert_err::<RuntimeError>();
    }

    #[test]
    fn runtime_error_display_carries_attribution() {
        let e =
            RuntimeError::kernel("matmul", "eager", "boom").with_span(Some("train.step".into()));
        let s = e.to_string();
        assert!(s.contains("kernel fault"), "{s}");
        assert!(s.contains("`matmul`"), "{s}");
        assert!(s.contains("`eager`"), "{s}");
        assert!(s.contains("`train.step`"), "{s}");
        assert!(s.contains("boom"), "{s}");

        let e = RuntimeError::injected("add", "lazy", "dispatch");
        assert!(e.to_string().contains("injected fault"), "{e}");
        assert!(e.to_string().contains("S4TF_FAULT_SPEC"), "{e}");
    }

    #[test]
    fn panic_message_downcasts_common_payloads() {
        let err = std::panic::catch_unwind(|| panic!("literal")).unwrap_err();
        assert_eq!(panic_message(&*err), "literal");
        let err = std::panic::catch_unwind(|| panic!("{}", 42)).unwrap_err();
        assert_eq!(panic_message(&*err), "42");
        let err = std::panic::catch_unwind(|| std::panic::panic_any(7u32)).unwrap_err();
        assert_eq!(panic_message(&*err), "non-string panic payload");
    }
}
