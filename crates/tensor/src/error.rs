//! Error types for fallible tensor operations.
//!
//! Most kernels validate shapes with panics (documented per method) because a
//! shape mismatch is a programming error; the `try_*` entry points on
//! [`crate::Tensor`] return [`TensorError`] for callers — such as the lazy
//! graph compiler in `s4tf-xla` — that need to recover.

use std::error::Error;
use std::fmt;

/// Result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Error produced by a fallible tensor operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that must match (possibly after broadcasting) do not.
    ShapeMismatch {
        /// Left-hand shape, as dims.
        lhs: Vec<usize>,
        /// Right-hand shape, as dims.
        rhs: Vec<usize>,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// An operation requires a specific rank.
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the argument.
        actual: usize,
        /// The operation that was attempted.
        op: &'static str,
    },
    /// A reshape target has a different element count.
    ElementCountMismatch {
        /// Element count of the source.
        from: usize,
        /// Element count of the target shape.
        to: usize,
    },
    /// An axis argument is out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// An index is out of bounds for a dimension.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The dimension size.
        dim: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => {
                write!(
                    f,
                    "rank mismatch in {op}: expected {expected}, got {actual}"
                )
            }
            TensorError::ElementCountMismatch { from, to } => {
                write!(f, "cannot reshape {from} elements into {to} elements")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::IndexOutOfBounds { index, dim } => {
                write!(f, "index {index} out of bounds for dimension of size {dim}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TensorError::ShapeMismatch {
            lhs: vec![2, 3],
            rhs: vec![4],
            op: "add",
        };
        assert_eq!(e.to_string(), "shape mismatch in add: [2, 3] vs [4]");
        let e = TensorError::ElementCountMismatch { from: 6, to: 8 };
        assert_eq!(e.to_string(), "cannot reshape 6 elements into 8 elements");
        let e = TensorError::AxisOutOfRange { axis: 3, rank: 2 };
        assert_eq!(e.to_string(), "axis 3 out of range for rank 2");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<TensorError>();
    }
}
