//! The [`Tensor`] type: a contiguous, row-major multi-dimensional array with
//! mutable value semantics.

use crate::dtype::{Float, Scalar};
use crate::error::{Result, TensorError};
use crate::shape::Shape;
use crate::storage::Storage;
use rand::Rng;
use std::fmt;

/// A non-finite element found by [`Tensor::check_finite`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonFinite {
    /// Flat (row-major) index of the first non-finite element.
    pub index: usize,
    /// The offending value, widened to `f64`.
    pub value: f64,
    /// `"NaN"`, `"+Inf"` or `"-Inf"`.
    pub kind: &'static str,
}

impl fmt::Display for NonFinite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at flat index {}", self.kind, self.index)
    }
}

impl std::error::Error for NonFinite {}

/// A multi-dimensional array with mutable value semantics.
///
/// `Tensor` is the paper's central data type (§3). Cloning is O(1) and the
/// clone is a logically disjoint *value*: the shared buffer is copied lazily
/// on first mutation (copy-on-write, see [`Storage`]). All kernels are
/// row-major, single-threaded CPU implementations (the paper's "naïve
/// Tensor", §3.1).
///
/// ```
/// use s4tf_tensor::Tensor;
/// let x = Tensor::from_vec(vec![1.0f32, 2.0, 3.0], &[3]);
/// let y = &x + &x;
/// assert_eq!(y.as_slice(), &[2.0, 4.0, 6.0]);
/// ```
#[derive(Clone)]
pub struct Tensor<T: Scalar = f32> {
    shape: Shape,
    storage: Storage<T>,
}

impl<T: Scalar> Tensor<T> {
    // ---------------------------------------------------------------- ctors

    /// Creates a tensor from a flat row-major buffer and a shape.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the shape's element count.
    pub fn from_vec(data: Vec<T>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.num_elements(),
            "buffer of {} elements cannot have shape {shape}",
            data.len()
        );
        Tensor {
            shape,
            storage: Storage::from_vec(data),
        }
    }

    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Errors
    /// Returns [`TensorError::ElementCountMismatch`] if sizes disagree.
    pub fn try_from_vec(data: Vec<T>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.num_elements() {
            return Err(TensorError::ElementCountMismatch {
                from: data.len(),
                to: shape.num_elements(),
            });
        }
        Ok(Tensor {
            shape,
            storage: Storage::from_vec(data),
        })
    }

    /// Creates a rank-0 (scalar) tensor.
    pub fn scalar(value: T) -> Self {
        Tensor {
            shape: Shape::scalar(),
            storage: Storage::filled(1, value),
        }
    }

    /// A tensor filled with `value`.
    pub fn full(value: T, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        Tensor {
            shape,
            storage: Storage::filled(n, value),
        }
    }

    /// A tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        Self::full(T::zero(), dims)
    }

    /// A tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(T::one(), dims)
    }

    /// A tensor of zeros with the same shape as `other`.
    pub fn zeros_like(other: &Tensor<T>) -> Self {
        Self::zeros(other.shape.dims())
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let (mut data, recycled) = crate::pool::zeroed_vec::<T>(n * n);
        for i in 0..n {
            data[i * n + i] = T::one();
        }
        Tensor::from_pooled_vec((data, recycled), &[n, n])
    }

    /// `[0, 1, 2, …, n-1]` as a rank-1 tensor.
    pub fn arange(n: usize) -> Self {
        let data = crate::pool::collect_n(n, (0..n).map(T::from_usize));
        Tensor::from_pooled_vec(data, &[n])
    }

    /// Builds a tensor by evaluating `f` at every flat index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> T) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        let (data, recycled) = crate::pool::collect_n(n, (0..n).map(&mut f));
        Tensor {
            shape,
            storage: Storage::from_vec_flagged(data, recycled),
        }
    }

    // -------------------------------------------------------- crate plumbing

    /// Assembles a tensor from a shape and storage (no copy). Crate-internal:
    /// used by O(1) reshape.
    pub(crate) fn from_parts(shape: Shape, storage: Storage<T>) -> Self {
        debug_assert_eq!(shape.num_elements(), storage.len());
        Tensor { shape, storage }
    }

    /// A tensor holding a copy of `data`, recycling pooled capacity when
    /// available (the pool-aware spelling of `from_vec(data.to_vec(), …)`).
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the shape's element count.
    pub fn copy_of_slice(data: &[T], dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.num_elements(),
            "buffer of {} elements cannot have shape {shape}",
            data.len()
        );
        Tensor {
            shape,
            storage: Storage::copy_of_slice(data),
        }
    }

    /// Assembles a tensor from a buffer whose pool provenance is known
    /// (the flag returned by the `crate::pool` allocation helpers), so a
    /// recycled buffer is not double-counted as a fresh allocation.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the shape's element count.
    pub(crate) fn from_pooled_vec((data, recycled): (Vec<T>, bool), dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.num_elements(),
            "buffer of {} elements cannot have shape {shape}",
            data.len()
        );
        Tensor {
            shape,
            storage: Storage::from_vec_flagged(data, recycled),
        }
    }

    /// The underlying storage (crate-internal; no CoW trigger).
    pub(crate) fn storage(&self) -> &Storage<T> {
        &self.storage
    }

    // ------------------------------------------------------------ accessors

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's dimension extents.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> usize {
        self.shape.num_elements()
    }

    /// Read-only flat (row-major) view of the elements.
    pub fn as_slice(&self) -> &[T] {
        self.storage.as_slice()
    }

    /// Mutable flat view; triggers copy-on-write if the buffer is shared.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.storage.as_mut_slice()
    }

    /// Extracts the elements as a `Vec`, copying only if shared.
    pub fn into_vec(self) -> Vec<T> {
        self.storage.into_vec()
    }

    /// The element at a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn at(&self, index: &[usize]) -> T {
        self.as_slice()[self.shape.flat_index(index)]
    }

    /// Mutable reference to the element at a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut T {
        let flat = self.shape.flat_index(index);
        &mut self.as_mut_slice()[flat]
    }

    /// The single element of a scalar (or one-element) tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn scalar_value(&self) -> T {
        assert_eq!(
            self.num_elements(),
            1,
            "scalar_value on tensor of shape {}",
            self.shape
        );
        self.as_slice()[0]
    }

    /// True if `self` and `other` currently share storage (CoW diagnostics).
    pub fn shares_storage_with(&self, other: &Tensor<T>) -> bool {
        self.storage.ptr_eq(&other.storage)
    }

    /// True if this tensor uniquely owns its buffer — in-place mutation
    /// will not trigger a copy. The runtime layers use this to decide
    /// when an operand can be updated in place or donated (paper §4.2).
    pub fn storage_unique(&self) -> bool {
        self.storage.is_unique()
    }

    // ------------------------------------------------------------ functional

    /// Applies `f` element-wise, producing a new tensor. Large tensors
    /// split across the thread pool; results are identical for every
    /// thread count since `f` is applied independently per element.
    pub fn map<U: Scalar>(&self, f: impl Fn(T) -> U + Sync) -> Tensor<U> {
        let src = self.as_slice();
        let storage = if src.len() >= crate::par::ELEMWISE_GRAIN && s4tf_threads::num_threads() > 1
        {
            let (mut out, recycled) = crate::pool::zeroed_vec::<U>(src.len());
            s4tf_threads::parallel_chunks_mut(
                &mut out,
                1,
                crate::par::ELEMWISE_GRAIN,
                |start, chunk| {
                    let src = &src[start..start + chunk.len()];
                    // `vectorize` only changes codegen (wider registers,
                    // fused mul_add), never the per-element arithmetic,
                    // so both dispatch paths are bit-identical here.
                    crate::simd::vectorize(|| {
                        for (o, &x) in chunk.iter_mut().zip(src) {
                            *o = f(x);
                        }
                    });
                },
            );
            Storage::from_vec_flagged(out, recycled)
        } else {
            let (out, recycled) = crate::simd::vectorize(|| {
                crate::pool::collect_n(src.len(), src.iter().map(|&x| f(x)))
            });
            Storage::from_vec_flagged(out, recycled)
        };
        Tensor {
            shape: self.shape.clone(),
            storage,
        }
    }

    /// Applies `f` element-wise in place (thread-pooled above the
    /// element-wise grain; see [`Tensor::map`]).
    pub fn map_assign(&mut self, f: impl Fn(T) -> T + Sync) {
        s4tf_threads::parallel_chunks_mut(
            self.as_mut_slice(),
            1,
            crate::par::ELEMWISE_GRAIN,
            |_, chunk| {
                crate::simd::vectorize(|| {
                    for x in chunk {
                        *x = f(*x);
                    }
                });
            },
        );
    }

    /// Element-wise combination of two same-shaped tensors.
    ///
    /// # Panics
    /// Panics if the shapes differ (no broadcasting; see
    /// [`Tensor::add`](crate::ops::elementwise) and friends for broadcasting
    /// variants).
    pub fn zip_map(&self, other: &Tensor<T>, f: impl Fn(T, T) -> T + Sync) -> Tensor<T> {
        assert_eq!(
            self.shape, other.shape,
            "zip_map requires identical shapes ({} vs {})",
            self.shape, other.shape
        );
        let lhs = self.as_slice();
        let rhs = other.as_slice();
        let storage = if lhs.len() >= crate::par::ELEMWISE_GRAIN && s4tf_threads::num_threads() > 1
        {
            let (mut out, recycled) = crate::pool::zeroed_vec::<T>(lhs.len());
            s4tf_threads::parallel_chunks_mut(
                &mut out,
                1,
                crate::par::ELEMWISE_GRAIN,
                |start, chunk| {
                    crate::simd::vectorize(|| {
                        for (i, o) in chunk.iter_mut().enumerate() {
                            *o = f(lhs[start + i], rhs[start + i]);
                        }
                    });
                },
            );
            Storage::from_vec_flagged(out, recycled)
        } else {
            let (out, recycled) = crate::simd::vectorize(|| {
                crate::pool::collect_n(lhs.len(), lhs.iter().zip(rhs).map(|(&a, &b)| f(a, b)))
            });
            Storage::from_vec_flagged(out, recycled)
        };
        Tensor {
            shape: self.shape.clone(),
            storage,
        }
    }

    /// Casts every element to another scalar type via `f64`.
    pub fn cast<U: Scalar>(&self) -> Tensor<U> {
        self.map(|x| U::from_f64(x.to_f64()))
    }
}

impl<T: Float> Tensor<T> {
    /// Standard-normal random tensor (Box–Muller over the given generator).
    pub fn randn<R: Rng + ?Sized>(dims: &[usize], rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            data.push(T::from_f64(r * theta.cos()));
            if data.len() < n {
                data.push(T::from_f64(r * theta.sin()));
            }
        }
        Tensor {
            shape,
            storage: Storage::from_vec(data),
        }
    }

    /// Uniform random tensor over `[low, high)`.
    pub fn rand_uniform<R: Rng + ?Sized>(dims: &[usize], low: T, high: T, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let (lo, hi) = (low.to_f64(), high.to_f64());
        let data = (0..shape.num_elements())
            .map(|_| T::from_f64(rng.gen_range(lo..hi)))
            .collect();
        Tensor {
            shape,
            storage: Storage::from_vec(data),
        }
    }

    /// Glorot/Xavier-uniform initialization for a weight of shape `dims`,
    /// with explicit fan-in/fan-out (used by Dense and Conv layers).
    pub fn glorot_uniform<R: Rng + ?Sized>(
        dims: &[usize],
        fan_in: usize,
        fan_out: usize,
        rng: &mut R,
    ) -> Self {
        let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
        Self::rand_uniform(dims, T::from_f64(-limit), T::from_f64(limit), rng)
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.as_slice().iter().all(|&x| x.is_finite_())
    }

    /// Checks every element for NaN/Inf, reporting the first offender
    /// with its flat index — the host-side entry point of the numerics
    /// checking pillar (the device paths scan automatically under
    /// `S4TF_CHECK_NUMERICS=1`).
    ///
    /// ```
    /// use s4tf_tensor::Tensor;
    /// let t = Tensor::from_vec(vec![1.0, f32::NAN, 3.0], &[3]);
    /// let err = t.check_finite().unwrap_err();
    /// assert_eq!((err.index, err.kind), (1, "NaN"));
    /// ```
    pub fn check_finite(&self) -> std::result::Result<(), NonFinite> {
        match self.as_slice().iter().position(|&x| !x.is_finite_()) {
            None => Ok(()),
            Some(index) => {
                let value = self.as_slice()[index].to_f64();
                Err(NonFinite {
                    index,
                    value,
                    kind: if value.is_nan() {
                        "NaN"
                    } else if value > 0.0 {
                        "+Inf"
                    } else {
                        "-Inf"
                    },
                })
            }
        }
    }

    /// Maximum absolute element-wise difference to `other`.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor<T>) -> f64 {
        assert_eq!(self.shape, other.shape, "max_abs_diff requires same shape");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// True if all elements are within `tol` of `other`'s.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn allclose(&self, other: &Tensor<T>, tol: f64) -> bool {
        self.max_abs_diff(other) <= tol
    }
}

impl<T: Scalar + serde::Serialize> serde::Serialize for Tensor<T> {
    /// Serializes as `{ dims, data }` — the value-semantics checkpoint
    /// format (a tensor is just its shape and contents; no graph state).
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("dims".to_string(), serde::Serialize::to_value(self.dims())),
            (
                "data".to_string(),
                serde::Serialize::to_value(self.as_slice()),
            ),
        ])
    }
}

impl<T: Scalar + serde::Deserialize> serde::Deserialize for Tensor<T> {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let dims: Vec<usize> = serde::field(value, "dims")?;
        let data: Vec<T> = serde::field(value, "data")?;
        Tensor::try_from_vec(data, &dims).map_err(serde::de::Error::custom)
    }
}

impl<T: Scalar> PartialEq for Tensor<T> {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.as_slice() == other.as_slice()
    }
}

impl<T: Scalar> Default for Tensor<T> {
    /// The rank-0 zero tensor.
    fn default() -> Self {
        Tensor::scalar(T::zero())
    }
}

impl<T: Scalar> fmt::Debug for Tensor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={}, ", self.shape)?;
        let slice = self.as_slice();
        if slice.len() <= 16 {
            write!(f, "data={slice:?})")
        } else {
            write!(
                f,
                "data=[{:?}, {:?}, …; {}])",
                slice[0],
                slice[1],
                slice.len()
            )
        }
    }
}

impl<T: Scalar> fmt::Display for Tensor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<T: Scalar> From<T> for Tensor<T> {
    fn from(value: T) -> Self {
        Tensor::scalar(value)
    }
}

impl<T: Scalar> From<Vec<T>> for Tensor<T> {
    /// A rank-1 tensor over the vector's elements.
    fn from(data: Vec<T>) -> Self {
        let n = data.len();
        Tensor::from_vec(data, &[n])
    }
}

impl<T: Scalar> FromIterator<T> for Tensor<T> {
    /// Collects into a rank-1 tensor.
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let data: Vec<T> = iter.into_iter().collect();
        data.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::<f32>::zeros(&[2, 2]).as_slice(), &[0.0; 4]);
        assert_eq!(Tensor::<f32>::ones(&[3]).as_slice(), &[1.0; 3]);
        assert_eq!(Tensor::full(2.5f32, &[2]).as_slice(), &[2.5, 2.5]);
        assert_eq!(Tensor::<f32>::eye(2).as_slice(), &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(Tensor::<f32>::arange(3).as_slice(), &[0.0, 1.0, 2.0]);
        assert_eq!(Tensor::<i32>::arange(3).as_slice(), &[0, 1, 2]);
        let t = Tensor::<f32>::from_fn(&[2, 2], |i| i as f32);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "cannot have shape")]
    fn from_vec_size_mismatch_panics() {
        Tensor::from_vec(vec![1.0f32, 2.0], &[3]);
    }

    #[test]
    fn try_from_vec() {
        assert!(Tensor::try_from_vec(vec![1.0f32, 2.0], &[2]).is_ok());
        assert!(matches!(
            Tensor::try_from_vec(vec![1.0f32], &[2]),
            Err(TensorError::ElementCountMismatch { from: 1, to: 2 })
        ));
    }

    #[test]
    fn indexing() {
        let mut t = Tensor::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.at(&[1, 0]), 3.0);
        *t.at_mut(&[1, 0]) = 9.0;
        assert_eq!(t.at(&[1, 0]), 9.0);
        assert_eq!(Tensor::scalar(5.0f32).scalar_value(), 5.0);
    }

    #[test]
    fn value_semantics_clone_then_mutate() {
        let a = Tensor::from_vec(vec![1.0f32, 2.0], &[2]);
        let mut b = a.clone();
        assert!(a.shares_storage_with(&b));
        *b.at_mut(&[0]) = 10.0;
        assert!(!a.shares_storage_with(&b));
        assert_eq!(a.as_slice(), &[1.0, 2.0]);
        assert_eq!(b.as_slice(), &[10.0, 2.0]);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(vec![1.0f32, -2.0], &[2]);
        assert_eq!(a.map(|x| x * 2.0).as_slice(), &[2.0, -4.0]);
        let b = Tensor::from_vec(vec![10.0f32, 20.0], &[2]);
        assert_eq!(a.zip_map(&b, |x, y| x + y).as_slice(), &[11.0, 18.0]);
        let mut c = a.clone();
        c.map_assign(|x| x + 1.0);
        assert_eq!(c.as_slice(), &[2.0, -1.0]);
    }

    #[test]
    fn cast() {
        let a = Tensor::from_vec(vec![1.9f32, -2.9], &[2]);
        let b: Tensor<i32> = a.cast();
        assert_eq!(b.as_slice(), &[1, -2]);
    }

    #[test]
    fn random_init_deterministic_and_shaped() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let a = Tensor::<f32>::randn(&[101], &mut rng);
        assert_eq!(a.num_elements(), 101);
        assert!(a.all_finite());
        let mut rng2 = ChaCha8Rng::seed_from_u64(7);
        let b = Tensor::<f32>::randn(&[101], &mut rng2);
        assert_eq!(a, b);

        let u = Tensor::<f32>::rand_uniform(&[1000], -1.0, 1.0, &mut rng);
        assert!(u.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));

        let g = Tensor::<f32>::glorot_uniform(&[10, 10], 10, 10, &mut rng);
        let limit = (6.0f32 / 20.0).sqrt();
        assert!(g.as_slice().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn randn_statistics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let t = Tensor::<f64>::randn(&[10000], &mut rng);
        let mean = t.as_slice().iter().sum::<f64>() / 10000.0;
        let var = t
            .as_slice()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / 10000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn comparisons_and_debug() {
        let a = Tensor::from_vec(vec![1.0f32, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0f32, 2.0], &[1, 2]);
        assert_ne!(a, b, "same data, different shape");
        assert!(format!("{a:?}").contains("shape=[2]"));
        let big = Tensor::<f32>::zeros(&[100]);
        assert!(format!("{big:?}").contains("100"));
        assert_eq!(Tensor::<f32>::default().scalar_value(), 0.0);
    }

    #[test]
    fn allclose_and_diff() {
        let a = Tensor::from_vec(vec![1.0f32, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0f32, 2.1], &[2]);
        assert!((a.max_abs_diff(&b) - 0.1).abs() < 1e-6);
        assert!(a.allclose(&b, 0.2));
        assert!(!a.allclose(&b, 0.05));
    }

    #[test]
    fn conversions() {
        let t: Tensor<f32> = 3.5.into();
        assert_eq!(t.rank(), 0);
        let v: Tensor<f32> = vec![1.0, 2.0].into();
        assert_eq!(v.dims(), &[2]);
        let c: Tensor<i32> = (0..3).collect();
        assert_eq!(c.as_slice(), &[0, 1, 2]);
        assert_eq!(Tensor::from_vec(vec![1i32, 2], &[2]).into_vec(), vec![1, 2]);
    }
}
