//! Analytic per-kernel cost model: exact FLOP and bytes-moved formulas
//! for every kernel family the runtime dispatches.
//!
//! The formulas are the standard dense-linear-algebra counts (matmul is
//! `2·m·k·n`, conv2d is its im2col GEMM, elementwise ops are one FLOP per
//! output element) with bytes counted as *algorithmic* traffic: every
//! operand read once plus the output written once, in units of the f32
//! element size. They deliberately ignore caches and re-reads — the point
//! is a stable denominator for achieved-GFLOP/s and arithmetic-intensity
//! reporting, not a machine model.
//!
//! The op-level mapping (HLO mnemonic → formula) lives in `s4tf-xla`,
//! which knows the op vocabulary; this module owns the arithmetic so the
//! formulas are unit-testable against hand counts without a graph.

/// Size of one `f32` element in bytes.
pub const F32_BYTES: u64 = 4;

/// The analytic cost of one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCost {
    /// Floating-point operations (adds, multiplies, comparisons, and
    /// transcendental calls each count 1).
    pub flops: u64,
    /// Bytes moved: every input element read once + every output element
    /// written once.
    pub bytes: u64,
}

impl OpCost {
    /// A zero cost (shape-only ops).
    pub const ZERO: OpCost = OpCost { flops: 0, bytes: 0 };

    /// Builds a cost from raw counts.
    pub fn new(flops: u64, bytes: u64) -> OpCost {
        OpCost { flops, bytes }
    }

    /// Arithmetic intensity in FLOPs per byte (0 when no bytes move).
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.flops as f64 / self.bytes as f64
        }
    }
}

impl std::ops::Add for OpCost {
    type Output = OpCost;
    fn add(self, rhs: OpCost) -> OpCost {
        OpCost {
            flops: self.flops + rhs.flops,
            bytes: self.bytes + rhs.bytes,
        }
    }
}

impl std::ops::AddAssign for OpCost {
    fn add_assign(&mut self, rhs: OpCost) {
        self.flops += rhs.flops;
        self.bytes += rhs.bytes;
    }
}

impl std::iter::Sum for OpCost {
    fn sum<I: Iterator<Item = OpCost>>(iter: I) -> OpCost {
        iter.fold(OpCost::ZERO, |a, b| a + b)
    }
}

/// `C[m,n] = A[m,k] · B[k,n]`: one multiply + one add per inner-product
/// term, `2·m·k·n` total; reads both operands, writes the product.
pub fn matmul(m: usize, k: usize, n: usize) -> OpCost {
    OpCost {
        flops: 2 * (m * k * n) as u64,
        bytes: F32_BYTES * (m * k + k * n + m * n) as u64,
    }
}

/// `y[m] = A[m,k] · x[k]` — matmul with `n = 1`.
pub fn matvec(m: usize, k: usize) -> OpCost {
    matmul(m, k, 1)
}

/// 2-D convolution, counted as its im2col GEMM: output `[n, oh, ow, c_out]`
/// over a filter `[kh, kw, c_in, c_out]` is a `(n·oh·ow) × (kh·kw·c_in) ×
/// c_out` matrix product. Bytes count the logical input/filter/output
/// reads, not the materialized im2col patch matrix (which is an
/// implementation detail the roofline should *charge against*, not hide).
#[allow(clippy::too_many_arguments)]
pub fn conv2d(
    n: usize,
    c_in: usize,
    kh: usize,
    kw: usize,
    c_out: usize,
    oh: usize,
    ow: usize,
    in_elems: usize,
) -> OpCost {
    OpCost {
        flops: 2 * (n * oh * ow * kh * kw * c_in * c_out) as u64,
        bytes: F32_BYTES * (in_elems + kh * kw * c_in * c_out + n * oh * ow * c_out) as u64,
    }
}

/// Both conv2d gradients perform the same multiply-accumulate volume as
/// the forward pass (each output-gradient element touches the same
/// `kh·kw·c_in` patch).
#[allow(clippy::too_many_arguments)]
pub fn conv2d_grad(
    n: usize,
    c_in: usize,
    kh: usize,
    kw: usize,
    c_out: usize,
    oh: usize,
    ow: usize,
    read_elems: usize,
    out_elems: usize,
) -> OpCost {
    OpCost {
        flops: 2 * (n * oh * ow * kh * kw * c_in * c_out) as u64,
        bytes: F32_BYTES * (read_elems + out_elems) as u64,
    }
}

/// Elementwise map: one FLOP per output element per fused instruction
/// (`n_ops = 1` for a plain unary/binary kernel).
pub fn elementwise(out_elems: usize, in_elems: usize, n_ops: usize) -> OpCost {
    OpCost {
        flops: (out_elems * n_ops) as u64,
        bytes: F32_BYTES * (in_elems + out_elems) as u64,
    }
}

/// Full or axis reduction over `in_elems` inputs producing `out_elems`
/// outputs: `in − out` combines, plus one scale per output for a mean.
pub fn reduce(in_elems: usize, out_elems: usize, is_mean: bool) -> OpCost {
    let combines = in_elems.saturating_sub(out_elems);
    OpCost {
        flops: (combines + if is_mean { out_elems } else { 0 }) as u64,
        bytes: F32_BYTES * (in_elems + out_elems) as u64,
    }
}

/// 2-D pooling: `window` combines per output element (average adds then
/// scales; max compares), reading the input once.
pub fn pool2d(in_elems: usize, out_elems: usize, window: usize) -> OpCost {
    OpCost {
        flops: (out_elems * window) as u64,
        bytes: F32_BYTES * (in_elems + out_elems) as u64,
    }
}

/// A pure data-movement op (transpose, broadcast, gather, copy-reshape):
/// zero FLOPs, reads `in_elems`, writes `out_elems`.
pub fn data_movement(in_elems: usize, out_elems: usize) -> OpCost {
    OpCost {
        flops: 0,
        bytes: F32_BYTES * (in_elems + out_elems) as u64,
    }
}

/// Scatter-add (the gather gradient): one add per scattered element.
pub fn scatter_add(in_elems: usize, out_elems: usize) -> OpCost {
    OpCost {
        flops: in_elems as u64,
        bytes: F32_BYTES * (in_elems + out_elems) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_hand_count() {
        // 2x3 · 3x4: every one of the 8 outputs is a 3-term inner product
        // = 3 multiplies + 3 adds (fma-style count) = 6 FLOPs.
        let c = matmul(2, 3, 4);
        assert_eq!(c.flops, 8 * 6);
        assert_eq!(c.bytes, 4 * (6 + 12 + 8));
        assert_eq!(matvec(5, 7), matmul(5, 7, 1));
    }

    #[test]
    fn conv2d_hand_count() {
        // 1x3x3x1 input (Valid, stride 1) with a 2x2x1x1 filter: 2x2
        // output, each element a 4-term inner product = 8 FLOPs.
        let c = conv2d(1, 1, 2, 2, 1, 2, 2, 9);
        assert_eq!(c.flops, 4 * 8);
        assert_eq!(c.bytes, 4 * (9 + 4 + 4));
    }

    #[test]
    fn conv2d_equals_its_im2col_gemm_flops() {
        // LeNet c1: 32x28x28x1 (Same) * 5x5x1x6 = GEMM (32·28·28)x(25)x6.
        let conv = conv2d(32, 1, 5, 5, 6, 28, 28, 32 * 28 * 28);
        let gemm = matmul(32 * 28 * 28, 5 * 5, 6);
        assert_eq!(conv.flops, gemm.flops);
    }

    #[test]
    fn elementwise_and_reduce_hand_counts() {
        assert_eq!(elementwise(10, 10, 1).flops, 10); // unary
        assert_eq!(elementwise(10, 20, 1).flops, 10); // binary: 1 FLOP/out
        assert_eq!(elementwise(10, 20, 1).bytes, 4 * 30);
        // sum of n elements is n-1 adds.
        assert_eq!(reduce(100, 1, false).flops, 99);
        // mean adds one scale per output.
        assert_eq!(reduce(100, 1, true).flops, 100);
        // axis reduce [4, 25] -> [4]: 4·24 adds.
        assert_eq!(reduce(100, 4, false).flops, 96);
    }

    #[test]
    fn pooling_and_movement() {
        // 2x2/2 pool over 4x4: 4 outputs, 4 combines each.
        assert_eq!(pool2d(16, 4, 4).flops, 16);
        assert_eq!(data_movement(16, 16).flops, 0);
        assert_eq!(data_movement(16, 16).bytes, 4 * 32);
        assert_eq!(scatter_add(8, 32).flops, 8);
    }

    #[test]
    fn costs_sum() {
        let a = OpCost::new(10, 100);
        let b = OpCost::new(5, 50);
        assert_eq!(a + b, OpCost::new(15, 150));
        let total: OpCost = [a, b, OpCost::ZERO].into_iter().sum();
        assert_eq!(total, OpCost::new(15, 150));
        assert!((OpCost::new(8, 4).intensity() - 2.0).abs() < 1e-12);
        assert_eq!(OpCost::ZERO.intensity(), 0.0);
    }
}
