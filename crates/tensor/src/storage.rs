//! Copy-on-write element storage — the mechanism behind the paper's
//! "large values are copied lazily, upon mutation, and only when shared"
//! (§4, "Mutable value semantics").
//!
//! A [`Storage`] clones in O(1) by bumping a reference count. The first
//! mutation through a *shared* storage copies the buffer
//! ([`std::sync::Arc::make_mut`]); mutation through a *uniquely owned*
//! storage is in-place and free. This is exactly Swift's CoW array behavior
//! that the paper relies on for both value semantics (§4) and in-place
//! optimizer updates (§4.2).

use crate::diag;
use crate::dtype::Scalar;
use crate::met;
use crate::pool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Global count of CoW buffer copies, for tests and the memory experiments
/// (Table 4): proves that unique mutation does not copy.
static COW_COPIES: AtomicU64 = AtomicU64::new(0);

/// Number of copy-on-write buffer copies performed process-wide so far.
pub fn cow_copy_count() -> u64 {
    COW_COPIES.load(Ordering::Relaxed)
}

/// Element buffer with allocation accounting: reports its byte size to
/// the `s4tf-diag` memory tracker when created and when released. The
/// `Drop` runs exactly once — when the last `Storage` sharing the buffer
/// goes away — so live-bytes bookkeeping is race-free by construction.
#[derive(Debug, Default)]
struct Buf<T: Scalar> {
    vec: Vec<T>,
    /// Bytes reported to the tracker (buffer capacity at creation).
    bytes: usize,
    /// Allocation site credited in the metrics registry's per-subsystem
    /// attribution (`""` when metrics are disabled — frees then no-op).
    site: &'static str,
}

impl<T: Scalar> Buf<T> {
    fn new(vec: Vec<T>) -> Self {
        let bytes = vec.capacity() * std::mem::size_of::<T>();
        diag::track_alloc(bytes);
        let site = met::mem_alloc(bytes);
        Buf { vec, bytes, site }
    }

    /// Wraps a buffer that came out of the recycling pool: live/peak
    /// accounting moves, but no allocator call is counted.
    fn recycled(vec: Vec<T>) -> Self {
        let bytes = vec.capacity() * std::mem::size_of::<T>();
        diag::track_recycled_alloc(bytes);
        let site = met::mem_alloc(bytes);
        Buf { vec, bytes, site }
    }

    /// Pool-aware copy of a slice.
    fn copy_of(data: &[T]) -> Self {
        match pool::take_vec::<T>(data.len()) {
            Some(mut v) => {
                v.extend_from_slice(data);
                Buf::recycled(v)
            }
            None => {
                let mut v = Vec::with_capacity(pool::recycle_capacity::<T>(data.len()));
                v.extend_from_slice(data);
                Buf::new(v)
            }
        }
    }

    /// Moves the elements out, settling the tracker account immediately
    /// (the subsequent `Drop` then has nothing left to report).
    fn take(mut self) -> Vec<T> {
        diag::track_free(self.bytes);
        met::mem_free(self.site, self.bytes);
        self.bytes = 0;
        std::mem::take(&mut self.vec)
    }
}

impl<T: Scalar> Clone for Buf<T> {
    /// A buffer copy (`Arc::make_mut` on a shared storage) needs fresh
    /// capacity — recycled from the pool when possible, and tracked as a
    /// fresh allocation otherwise.
    fn clone(&self) -> Self {
        Buf::copy_of(&self.vec)
    }
}

impl<T: Scalar> PartialEq for Buf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.vec == other.vec
    }
}

impl<T: Scalar> Drop for Buf<T> {
    /// The last `Storage` sharing the buffer dropped: offer the capacity
    /// to the recycling pool, and settle with the allocator only if the
    /// pool declines.
    fn drop(&mut self) {
        if self.bytes == 0 {
            return;
        }
        // The bytes leave tensor-live accounting either way: capacity the
        // pool keeps is reported separately as `s4tf_pool_resident_bytes`.
        met::mem_free(self.site, self.bytes);
        let vec = std::mem::take(&mut self.vec);
        if pool::give_vec(vec) {
            diag::track_recycled_free(self.bytes);
        } else {
            diag::track_free(self.bytes);
        }
    }
}

/// Reference-counted, copy-on-write element buffer.
///
/// ```
/// use s4tf_tensor::Storage;
/// let mut a = Storage::from_vec(vec![1, 2, 3]);
/// let b = a.clone();            // O(1): shared
/// a.as_mut_slice()[0] = 9;      // copies, then mutates
/// assert_eq!(b.as_slice()[0], 1);
/// assert_eq!(a.as_slice()[0], 9);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Storage<T: Scalar> {
    data: Arc<Buf<T>>,
}

impl<T: Scalar> Storage<T> {
    /// Creates storage owning `data`.
    pub fn from_vec(data: Vec<T>) -> Self {
        Storage {
            data: Arc::new(Buf::new(data)),
        }
    }

    /// Creates storage from a buffer obtained via [`crate::pool`]
    /// (tracked as recycled, not as a fresh allocation).
    pub(crate) fn from_recycled_vec(data: Vec<T>) -> Self {
        Storage {
            data: Arc::new(Buf::recycled(data)),
        }
    }

    /// Creates storage holding a copy of `data`, recycling pooled
    /// capacity when available.
    pub(crate) fn copy_of_slice(data: &[T]) -> Self {
        Storage {
            data: Arc::new(Buf::copy_of(data)),
        }
    }

    /// Wraps a buffer whose pool provenance the caller tracked.
    pub(crate) fn from_vec_flagged(data: Vec<T>, recycled: bool) -> Self {
        if recycled {
            Storage::from_recycled_vec(data)
        } else {
            Storage::from_vec(data)
        }
    }

    /// Creates storage of `n` copies of `value`, recycling pooled
    /// capacity when available.
    pub fn filled(n: usize, value: T) -> Self {
        match pool::take_vec::<T>(n) {
            Some(mut v) => {
                v.resize(n, value);
                Storage::from_recycled_vec(v)
            }
            None => {
                let mut v = Vec::with_capacity(pool::recycle_capacity::<T>(n));
                v.resize(n, value);
                Storage::from_vec(v)
            }
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.vec.len()
    }

    /// True if the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.vec.is_empty()
    }

    /// Read-only view of the elements.
    pub fn as_slice(&self) -> &[T] {
        &self.data.vec
    }

    /// Mutable view of the elements.
    ///
    /// If the buffer is shared with another `Storage`, it is copied first
    /// (copy-on-write); if uniquely owned, this is free.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if Arc::strong_count(&self.data) > 1 {
            COW_COPIES.fetch_add(1, Ordering::Relaxed);
        }
        Arc::make_mut(&mut self.data).vec.as_mut_slice()
    }

    /// True if this storage uniquely owns its buffer (mutation will not
    /// copy).
    pub fn is_unique(&self) -> bool {
        Arc::strong_count(&self.data) == 1
    }

    /// True if `self` and `other` share the same underlying buffer.
    pub fn ptr_eq(&self, other: &Storage<T>) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Extracts the underlying vector, copying only if shared.
    pub fn into_vec(self) -> Vec<T> {
        match Arc::try_unwrap(self.data) {
            Ok(buf) => buf.take(),
            Err(arc) => {
                COW_COPIES.fetch_add(1, Ordering::Relaxed);
                arc.vec.clone()
            }
        }
    }
}

impl<T: Scalar> From<Vec<T>> for Storage<T> {
    fn from(data: Vec<T>) -> Self {
        Storage::from_vec(data)
    }
}

impl<T: Scalar> FromIterator<T> for Storage<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Storage::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_buffer() {
        let a = Storage::from_vec(vec![1, 2, 3]);
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        assert!(!a.is_unique());
        assert!(!b.is_unique());
    }

    #[test]
    fn mutation_through_shared_copies() {
        let before = cow_copy_count();
        let mut a = Storage::from_vec(vec![1, 2, 3]);
        let b = a.clone();
        a.as_mut_slice()[0] = 42;
        assert_eq!(cow_copy_count(), before + 1);
        assert!(!a.ptr_eq(&b));
        assert_eq!(a.as_slice(), &[42, 2, 3]);
        assert_eq!(b.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn unique_mutation_is_in_place() {
        let mut a = Storage::from_vec(vec![1, 2, 3]);
        let before = cow_copy_count();
        let ptr = a.as_slice().as_ptr();
        a.as_mut_slice()[1] = 7;
        assert_eq!(cow_copy_count(), before);
        assert_eq!(a.as_slice().as_ptr(), ptr);
    }

    #[test]
    fn into_vec_unique_does_not_copy() {
        let a = Storage::from_vec(vec![1, 2, 3]);
        let before = cow_copy_count();
        let v = a.into_vec();
        assert_eq!(cow_copy_count(), before);
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn into_vec_shared_copies() {
        let a = Storage::from_vec(vec![1, 2, 3]);
        let _b = a.clone();
        let before = cow_copy_count();
        let v = a.into_vec();
        assert_eq!(cow_copy_count(), before + 1);
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn collect_and_len() {
        let s: Storage<i32> = (0..4).collect();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(Storage::<i32>::from_vec(vec![]).is_empty());
    }
}
