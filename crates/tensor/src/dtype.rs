//! Scalar element types.
//!
//! The paper's `Tensor<Scalar>` is generic over its element type; we mirror
//! that with a sealed [`Scalar`] trait (integer and floating-point elements)
//! and a [`Float`] refinement for the transcendental kernels.

use std::fmt::Debug;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

mod private {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
    impl Sealed for i32 {}
    impl Sealed for i64 {}
}

/// Element type storable in a [`crate::Tensor`].
///
/// This trait is sealed; it is implemented for `f32`, `f64`, `i32` and `i64`.
pub trait Scalar:
    private::Sealed
    + Copy
    + Debug
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Lossy conversion from `f64` (used by fills, ranges and literals).
    fn from_f64(v: f64) -> Self;
    /// Lossy conversion to `f64` (used by reductions and display).
    fn to_f64(self) -> f64;
    /// Conversion from `usize` (used by `arange` and counts).
    fn from_usize(v: usize) -> Self {
        Self::from_f64(v as f64)
    }
    /// Element-wise maximum.
    fn maximum(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
    /// Element-wise minimum.
    fn minimum(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }
    /// Absolute value.
    fn abs_val(self) -> Self {
        if self < Self::zero() {
            -self
        } else {
            self
        }
    }
    /// The process-wide buffer-recycling pool for this element type
    /// (see [`crate::pool`]). The static lives inside each impl's method
    /// body — the standard stand-in for per-type generic statics.
    #[doc(hidden)]
    fn buffer_pool() -> &'static crate::pool::TypedPool<Self>;
}

/// Floating-point element type, required by transcendental kernels
/// (`exp`, `ln`, `softmax`, …), random initializers and gradient checking.
pub trait Float: Scalar {
    /// Smallest positive normal value (used to guard divisions).
    fn tiny() -> Self;
    /// Negative infinity (identity for max-reductions).
    fn neg_infinity() -> Self;
    /// `e^self`.
    fn exp_(self) -> Self;
    /// Natural logarithm.
    fn ln_(self) -> Self;
    /// Square root.
    fn sqrt_(self) -> Self;
    /// `self^p`.
    fn powf_(self, p: Self) -> Self;
    /// Hyperbolic tangent.
    fn tanh_(self) -> Self;
    /// Sine.
    fn sin_(self) -> Self;
    /// Cosine.
    fn cos_(self) -> Self;
    /// True if NaN.
    fn is_nan_(self) -> bool;
    /// True if finite.
    fn is_finite_(self) -> bool;
}

macro_rules! impl_scalar_float {
    ($t:ty) => {
        impl Scalar for $t {
            fn zero() -> Self {
                0.0
            }
            fn one() -> Self {
                1.0
            }
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            fn to_f64(self) -> f64 {
                self as f64
            }
            fn buffer_pool() -> &'static $crate::pool::TypedPool<Self> {
                static POOL: $crate::pool::TypedPool<$t> = $crate::pool::TypedPool::new();
                &POOL
            }
        }

        impl Float for $t {
            fn tiny() -> Self {
                <$t>::MIN_POSITIVE
            }
            fn neg_infinity() -> Self {
                <$t>::NEG_INFINITY
            }
            fn exp_(self) -> Self {
                self.exp()
            }
            fn ln_(self) -> Self {
                self.ln()
            }
            fn sqrt_(self) -> Self {
                self.sqrt()
            }
            fn powf_(self, p: Self) -> Self {
                self.powf(p)
            }
            fn tanh_(self) -> Self {
                self.tanh()
            }
            fn sin_(self) -> Self {
                self.sin()
            }
            fn cos_(self) -> Self {
                self.cos()
            }
            fn is_nan_(self) -> bool {
                self.is_nan()
            }
            fn is_finite_(self) -> bool {
                self.is_finite()
            }
        }
    };
}

macro_rules! impl_scalar_int {
    ($t:ty) => {
        impl Scalar for $t {
            fn zero() -> Self {
                0
            }
            fn one() -> Self {
                1
            }
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            fn to_f64(self) -> f64 {
                self as f64
            }
            fn buffer_pool() -> &'static $crate::pool::TypedPool<Self> {
                static POOL: $crate::pool::TypedPool<$t> = $crate::pool::TypedPool::new();
                &POOL
            }
        }
    };
}

impl_scalar_float!(f32);
impl_scalar_float!(f64);
impl_scalar_int!(i32);
impl_scalar_int!(i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(f32::zero(), 0.0);
        assert_eq!(f32::one(), 1.0);
        assert_eq!(i32::zero(), 0);
        assert_eq!(i64::one(), 1);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(f64::from_f64(2.5).to_f64(), 2.5);
        assert_eq!(i32::from_f64(2.9), 2);
        assert_eq!(f32::from_usize(7), 7.0);
    }

    #[test]
    fn min_max_abs() {
        assert_eq!(Scalar::maximum(3.0f32, -4.0), 3.0);
        assert_eq!(Scalar::minimum(3.0f32, -4.0), -4.0);
        assert_eq!((-4i32).abs_val(), 4);
        assert_eq!(4i64.abs_val(), 4);
    }

    #[test]
    fn float_ops() {
        assert!((1.0f32.exp_() - std::f32::consts::E).abs() < 1e-6);
        assert_eq!(4.0f64.sqrt_(), 2.0);
        assert!(f32::neg_infinity() < f32::MIN);
        assert!(f64::tiny() > 0.0);
        assert!(f32::NAN.is_nan_());
        assert!(1.0f32.is_finite_());
    }
}
