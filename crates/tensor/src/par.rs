//! Grain sizes for the thread-pooled CPU kernels (rationale in
//! DESIGN.md, "CPU parallelism").

/// Elements per chunk for element-wise kernels (`map`, `zip_map`, the
/// in-place assigns): below this, pool dispatch costs more than the
/// loop itself, so small tensors always run inline on the caller.
pub(crate) const ELEMWISE_GRAIN: usize = 4096;

/// Source elements per chunk for reductions (`sum`, `dot`, `max`, …).
pub(crate) const REDUCE_GRAIN: usize = 4096;
