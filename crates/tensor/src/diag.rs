//! Internal shim over `s4tf-diag`: with the `diag` feature this
//! re-exports the real diagnostics layer; without it, the shared no-op
//! mirror (`crates/diag/src/noop_shim.rs`) is `include!`d, so
//! instrumentation sites compile identically and cost nothing.

// Not every crate uses every hook; keep the shim surface uniform.
#![allow(dead_code, unused_imports, unused_macros)]

#[cfg(feature = "diag")]
pub(crate) use s4tf_diag::{
    check_f32s, dump, dump_enabled, event, events_enabled, memory_stats, metrics_enabled,
    next_step, numerics_enabled, record_step, reset_peak_bytes, track_alloc, track_free,
    track_recycled_alloc, track_recycled_free, MemoryStats, StepRecord,
};

#[cfg(not(feature = "diag"))]
include!("../../diag/src/noop_shim.rs");
