//! Tensor shapes, row-major strides, index arithmetic and NumPy-style
//! broadcasting.

use crate::error::{Result, TensorError};
use std::fmt;

/// The shape of a tensor: its extent along each dimension.
///
/// Shapes are small value types (mutable value semantics, like everything in
/// this crate). A rank-0 shape denotes a scalar with one element.
///
/// ```
/// use s4tf_tensor::Shape;
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.num_elements(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl serde::Serialize for Shape {
    /// Serializes as the bare dims array.
    fn to_value(&self) -> serde::Value {
        serde::Serialize::to_value(&self.0)
    }
}

impl serde::Deserialize for Shape {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        Vec::<usize>::from_value(value).map(Shape)
    }
}

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extents along each dimension.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent along dimension `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Total number of elements (1 for a scalar shape).
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// True if any dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.0.contains(&0)
    }

    /// Row-major (C-order) strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat (row-major) offset.
    ///
    /// # Panics
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.rank(),
            "index rank {} != shape rank {}",
            index.len(),
            self.rank()
        );
        let mut flat = 0;
        for (axis, (&i, &d)) in index.iter().zip(self.0.iter()).enumerate() {
            assert!(i < d, "index {i} out of bounds for axis {axis} (size {d})");
            flat = flat * d + i;
        }
        flat
    }

    /// Converts a flat offset back to a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if `flat >= num_elements()`.
    pub fn multi_index(&self, flat: usize) -> Vec<usize> {
        assert!(flat < self.num_elements().max(1), "flat index out of range");
        let mut rem = flat;
        let mut index = vec![0; self.rank()];
        for axis in (0..self.rank()).rev() {
            index[axis] = rem % self.0[axis];
            rem /= self.0[axis];
        }
        index
    }

    /// Validates an axis, returning it unchanged.
    ///
    /// # Errors
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn check_axis(&self, axis: usize) -> Result<usize> {
        if axis < self.rank() {
            Ok(axis)
        } else {
            Err(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
        }
    }

    /// The shape with `axis` removed.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    pub fn removing(&self, axis: usize) -> Shape {
        let mut dims = self.0.clone();
        dims.remove(axis);
        Shape(dims)
    }

    /// The shape with `axis` set to 1 (keep-dims reduction result).
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    pub fn keeping(&self, axis: usize) -> Shape {
        let mut dims = self.0.clone();
        dims[axis] = 1;
        Shape(dims)
    }

    /// The shape with an extra dimension of extent 1 inserted at `axis`.
    ///
    /// # Panics
    /// Panics if `axis > rank`.
    pub fn inserting(&self, axis: usize) -> Shape {
        let mut dims = self.0.clone();
        dims.insert(axis, 1);
        Shape(dims)
    }

    /// Computes the NumPy-style broadcast of two shapes.
    ///
    /// Trailing dimensions are aligned; each pair must be equal or one of
    /// them must be 1.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when the shapes are not
    /// broadcast-compatible.
    ///
    /// ```
    /// use s4tf_tensor::Shape;
    /// let a = Shape::new(&[4, 1, 3]);
    /// let b = Shape::new(&[2, 3]);
    /// assert_eq!(Shape::broadcast(&a, &b)?, Shape::new(&[4, 2, 3]));
    /// # Ok::<(), s4tf_tensor::TensorError>(())
    /// ```
    pub fn broadcast(lhs: &Shape, rhs: &Shape) -> Result<Shape> {
        let rank = lhs.rank().max(rhs.rank());
        let mut dims = vec![0; rank];
        for (i, dim) in dims.iter_mut().enumerate() {
            let l = if i < rank - lhs.rank() {
                1
            } else {
                lhs.0[i - (rank - lhs.rank())]
            };
            let r = if i < rank - rhs.rank() {
                1
            } else {
                rhs.0[i - (rank - rhs.rank())]
            };
            if l == r || l == 1 || r == 1 {
                *dim = l.max(r);
            } else {
                return Err(TensorError::ShapeMismatch {
                    lhs: lhs.0.clone(),
                    rhs: rhs.0.clone(),
                    op: "broadcast",
                });
            }
        }
        Ok(Shape(dims))
    }

    /// Axes of `self` (aligned to `target`'s trailing dimensions) along which
    /// broadcasting replicated data — i.e. the axes a gradient must be summed
    /// over to undo the broadcast. Returned as axes of `target`.
    ///
    /// # Panics
    /// Panics if `self` does not broadcast to `target`.
    pub fn broadcast_reduction_axes(&self, target: &Shape) -> Vec<usize> {
        let out = Shape::broadcast(self, target).expect("shapes must be broadcast-compatible");
        assert_eq!(&out, target, "self must broadcast exactly to target");
        let offset = target.rank() - self.rank();
        let mut axes = Vec::new();
        for i in 0..target.rank() {
            if i < offset || (self.0[i - offset] == 1 && target.0[i] != 1) {
                axes.push(i);
            }
        }
        axes
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.num_elements(), 24);
        assert_eq!(s.dims(), &[2, 3, 4]);
        assert_eq!(s.dim(1), 3);
        assert!(!s.is_empty());
        assert!(Shape::new(&[2, 0]).is_empty());
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.num_elements(), 1);
        assert_eq!(s.flat_index(&[]), 0);
        assert_eq!(s.multi_index(0), Vec::<usize>::new());
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::scalar().strides(), Vec::<usize>::new());
    }

    #[test]
    fn index_round_trip() {
        let s = Shape::new(&[2, 3, 4]);
        for flat in 0..24 {
            let multi = s.multi_index(flat);
            assert_eq!(s.flat_index(&multi), flat);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn flat_index_bounds() {
        Shape::new(&[2, 2]).flat_index(&[2, 0]);
    }

    #[test]
    fn broadcast_rules() {
        let b = |a: &[usize], b: &[usize]| Shape::broadcast(&Shape::new(a), &Shape::new(b));
        assert_eq!(b(&[2, 3], &[2, 3]).unwrap(), Shape::new(&[2, 3]));
        assert_eq!(b(&[2, 1], &[1, 3]).unwrap(), Shape::new(&[2, 3]));
        assert_eq!(b(&[3], &[2, 3]).unwrap(), Shape::new(&[2, 3]));
        assert_eq!(b(&[], &[2, 3]).unwrap(), Shape::new(&[2, 3]));
        assert_eq!(b(&[4, 1, 3], &[2, 3]).unwrap(), Shape::new(&[4, 2, 3]));
        assert!(b(&[2, 3], &[2, 4]).is_err());
    }

    #[test]
    fn broadcast_reduction_axes() {
        let small = Shape::new(&[1, 3]);
        let big = Shape::new(&[4, 2, 3]);
        assert_eq!(small.broadcast_reduction_axes(&big), vec![0, 1]);
        let same = Shape::new(&[4, 2, 3]);
        assert!(same.broadcast_reduction_axes(&big).is_empty());
        let scalar = Shape::scalar();
        assert_eq!(scalar.broadcast_reduction_axes(&big), vec![0, 1, 2]);
    }

    #[test]
    fn removing_keeping_inserting() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.removing(1), Shape::new(&[2, 4]));
        assert_eq!(s.keeping(1), Shape::new(&[2, 1, 4]));
        assert_eq!(s.inserting(0), Shape::new(&[1, 2, 3, 4]));
        assert_eq!(s.inserting(3), Shape::new(&[2, 3, 4, 1]));
    }

    #[test]
    fn check_axis() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.check_axis(1).unwrap(), 1);
        assert!(s.check_axis(2).is_err());
    }

    #[test]
    fn conversions_and_display() {
        let s: Shape = [2usize, 3].into();
        assert_eq!(s, Shape::from(vec![2, 3]));
        assert_eq!(format!("{s}"), "[2, 3]");
        assert_eq!(format!("{s:?}"), "Shape[2, 3]");
    }
}
