//! Explicit-width f32 lanes and the runtime SIMD dispatch switch.
//!
//! The hot kernels (packed GEMM, matvec, conv2d's im2col strips, the
//! elementwise engines and the full reductions) are written twice:
//!
//! * a **scalar reference path** — the original per-element loops, kept
//!   byte-for-byte so `S4TF_SIMD=0` reproduces the pre-SIMD results
//!   bit-identically, and
//! * an **8-wide lane path** built on [`L8`], a `[f32; 8]` chunk the
//!   autovectorizer reliably lowers to one AVX2 register (or two NEON
//!   registers) when the surrounding function is compiled with the right
//!   target features.
//!
//! Rather than hand-writing `core::arch` intrinsics per operation, lane
//! code is plain Rust run inside [`vectorize`], a generic combinator
//! marked `#[target_feature(enable = "avx2,fma")]` on x86_64. Closures
//! monomorphize *into* the attributed function, so every loop inside
//! inherits the wider instruction set — `f32::mul_add` lowers to
//! `vfmadd` instead of a libm call, and `L8` arithmetic to full-width
//! vector ops. The combinator is only reached after
//! [`simd_supported`] has confirmed the CPU actually has those features,
//! which is what makes the `unsafe` target-feature call sound.
//!
//! ## Determinism contract (see DESIGN.md §6g)
//!
//! * Elementwise kernels (map / zip / assign, the fused XLA interpreter)
//!   apply the same scalar operation per element on both paths; enabling
//!   SIMD changes *codegen*, never arithmetic, so results are
//!   bit-identical between paths (Rust never auto-contracts `a * b + c`
//!   into an FMA, and `f32::mul_add` is single-rounding on both paths).
//! * GEMM / matvec / conv2d lane kernels use `mul_add` accumulation, so
//!   the SIMD path differs from scalar by FMA rounding (observed ≤ a few
//!   ULP relative). Within each path results stay bit-identical for
//!   every thread count: row/strip splits never reorder any element's
//!   k-summation.
//! * f32 `sum` / `dot` lane reductions reassociate into the fixed
//!   lane-striped order documented on [`sum_f32`]; deterministic for a
//!   given input length and thread count, tolerance vs. scalar is
//!   O(ulp·log n). `max` / `min` are associative and commutative, so
//!   lane reduction is bit-identical for NaN-free data.
//! * Integer kernels never take the lane path (it is f32-only), so i32 /
//!   i64 results are exact and path-independent by construction.

use std::any::TypeId;
use std::sync::atomic::{AtomicI8, Ordering};
use std::sync::OnceLock;

/// Lane width of the chunked-f32 kernels (one AVX2 register).
pub const LANES: usize = 8;

/// Runtime override for SIMD dispatch (−1 = unset, 0 = off, 1 = on).
static SIMD_OVERRIDE: AtomicI8 = AtomicI8::new(-1);
/// `S4TF_SIMD` read once; the lane path defaults to on (where supported).
static SIMD_ENV: OnceLock<bool> = OnceLock::new();

/// True when this CPU can run the lane path's target features.
///
/// x86_64 requires AVX2 + FMA (detected at runtime — the crate is built
/// for baseline SSE2); aarch64 has NEON + fused multiply-add in its
/// baseline. Everywhere else the lane path is unavailable and the scalar
/// reference kernels run unconditionally.
pub fn simd_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static SUPPORTED: OnceLock<bool> = OnceLock::new();
        *SUPPORTED.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(target_arch = "aarch64")]
    {
        true
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// Whether kernels dispatch to the 8-wide lane path.
///
/// Controlled by [`set_simd_enabled`], else the `S4TF_SIMD` environment
/// variable (`0`/`false`/`off`/`no` disable), else on — always ANDed
/// with [`simd_supported`], so requesting SIMD on unsupported hardware
/// quietly runs the scalar reference path.
pub fn simd_enabled() -> bool {
    let requested = match SIMD_OVERRIDE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => *SIMD_ENV.get_or_init(|| {
            !std::env::var("S4TF_SIMD")
                .map(|v| {
                    let v = v.trim().to_ascii_lowercase();
                    v == "0" || v == "false" || v == "off" || v == "no"
                })
                .unwrap_or(false)
        }),
    };
    requested && simd_supported()
}

/// Programmatic override of [`simd_enabled`] (takes precedence over the
/// environment). Process-wide, for tests and experiments.
pub fn set_simd_enabled(enabled: bool) {
    SIMD_OVERRIDE.store(enabled as i8, Ordering::Relaxed);
}

/// The lane width the active dispatch path computes with: [`LANES`] on
/// the SIMD path, 1 on the scalar reference path.
pub fn lane_width() -> usize {
    if simd_enabled() {
        LANES
    } else {
        1
    }
}

/// Short label of the active dispatch path (`"simd8"` / `"scalar"`),
/// recorded into profiler op events and bench artifacts so regressions
/// are attributable to path selection vs. kernel quality.
pub fn path_label() -> &'static str {
    if simd_enabled() {
        "simd8"
    } else {
        "scalar"
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn with_avx2_fma<R, F: FnOnce() -> R>(f: F) -> R {
    f()
}

/// Runs `f` compiled with the lane path's target features when SIMD
/// dispatch is on, else as plain (baseline-feature) code.
///
/// This is the single chokepoint every vectorized kernel goes through:
/// the closure body is ordinary safe Rust either way, only its codegen
/// differs.
#[inline]
pub fn vectorize<R>(f: impl FnOnce() -> R) -> R {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_enabled() {
            // SAFETY: `simd_enabled` implies `simd_supported`, which
            // runtime-detected avx2 and fma on this CPU.
            return unsafe { with_avx2_fma(f) };
        }
    }
    f()
}

/// Reinterprets a `&[T]` as `&[f32]` when `T` *is* `f32` — the dispatch
/// test the generic kernels use to reach the lane path without
/// specializing their public signatures.
#[inline]
pub(crate) fn as_f32_slice<T: 'static>(s: &[T]) -> Option<&[f32]> {
    if TypeId::of::<T>() == TypeId::of::<f32>() {
        // SAFETY: T == f32 (same layout, same lifetime, same length).
        Some(unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<f32>(), s.len()) })
    } else {
        None
    }
}

/// Mutable counterpart of [`as_f32_slice`].
#[inline]
pub(crate) fn as_f32_slice_mut<T: 'static>(s: &mut [T]) -> Option<&mut [f32]> {
    if TypeId::of::<T>() == TypeId::of::<f32>() {
        // SAFETY: T == f32 (same layout, same lifetime, same length).
        Some(unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<f32>(), s.len()) })
    } else {
        None
    }
}

/// Writes an `f32` result back through a `&mut T` known to be `f32`.
#[inline]
pub(crate) fn write_f32<T: 'static>(dst: &mut T, v: f32) {
    debug_assert_eq!(TypeId::of::<T>(), TypeId::of::<f32>());
    // SAFETY: caller dispatched on T == f32.
    unsafe { *(dst as *mut T).cast::<f32>() = v };
}

/// One 8-wide f32 lane: a `[f32; 8]` chunk aligned to the AVX2 register
/// width. All arithmetic is plain per-element Rust; inside [`vectorize`]
/// each method compiles to one vector instruction.
///
/// Public so downstream register machines (the XLA fused-kernel codegen
/// in `s4tf-xla`) can run their IR over explicit lanes; the exact-op
/// methods (`add`/`sub`/`mul`/`div`) are single-rounding IEEE arithmetic
/// and therefore bit-identical to the scalar spelling on every path.
#[derive(Clone, Copy, Debug)]
#[repr(C, align(32))]
pub struct L8(pub [f32; LANES]);

// Method-form names (`add`, not `impl Add`) on purpose: these are the
// *exact-rounding* lane ops, and call sites read as kernel IR, not as
// operator-overloaded arithmetic.
#[allow(clippy::should_implement_trait)]
impl L8 {
    #[inline(always)]
    pub fn zero() -> L8 {
        L8([0.0; LANES])
    }

    #[inline(always)]
    pub fn splat(v: f32) -> L8 {
        L8([v; LANES])
    }

    /// Loads the first [`LANES`] elements of `s`.
    #[inline(always)]
    pub fn load(s: &[f32]) -> L8 {
        let mut out = [0.0; LANES];
        out.copy_from_slice(&s[..LANES]);
        L8(out)
    }

    /// Stores into the first [`LANES`] elements of `s`.
    #[inline(always)]
    pub fn store(self, s: &mut [f32]) {
        s[..LANES].copy_from_slice(&self.0);
    }

    #[inline(always)]
    pub fn add(self, rhs: L8) -> L8 {
        let mut out = [0.0; LANES];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(&rhs.0)) {
            *o = a + b;
        }
        L8(out)
    }

    #[inline(always)]
    pub fn sub(self, rhs: L8) -> L8 {
        let mut out = [0.0; LANES];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(&rhs.0)) {
            *o = a - b;
        }
        L8(out)
    }

    #[inline(always)]
    pub fn mul(self, rhs: L8) -> L8 {
        let mut out = [0.0; LANES];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(&rhs.0)) {
            *o = a * b;
        }
        L8(out)
    }

    #[inline(always)]
    pub fn div(self, rhs: L8) -> L8 {
        let mut out = [0.0; LANES];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(&rhs.0)) {
            *o = a / b;
        }
        L8(out)
    }

    /// `self * m + a`, fused per lane (one `vfmadd` inside [`vectorize`]).
    #[inline(always)]
    pub fn mul_add(self, m: L8, a: L8) -> L8 {
        let mut out = [0.0; LANES];
        for (j, o) in out.iter_mut().enumerate() {
            *o = self.0[j].mul_add(m.0[j], a.0[j]);
        }
        L8(out)
    }

    #[inline(always)]
    pub fn max(self, rhs: L8) -> L8 {
        let mut out = [0.0; LANES];
        for (j, o) in out.iter_mut().enumerate() {
            // `Scalar::maximum` semantics (self >= other ? self : other).
            *o = if self.0[j] >= rhs.0[j] {
                self.0[j]
            } else {
                rhs.0[j]
            };
        }
        L8(out)
    }

    #[inline(always)]
    pub fn min(self, rhs: L8) -> L8 {
        let mut out = [0.0; LANES];
        for (j, o) in out.iter_mut().enumerate() {
            *o = if self.0[j] <= rhs.0[j] {
                self.0[j]
            } else {
                rhs.0[j]
            };
        }
        L8(out)
    }

    /// Horizontal sum, left-to-right over the lanes (fixed order: the
    /// deterministic tail of every lane reduction).
    #[inline(always)]
    pub fn hsum(self) -> f32 {
        let mut acc = self.0[0];
        for j in 1..LANES {
            acc += self.0[j];
        }
        acc
    }

    /// Horizontal maximum (`Scalar::maximum` fold, left-to-right).
    /// `!(acc >= x)` is deliberate, not `acc < x`: it also replaces a
    /// NaN accumulator, matching the serial fold's semantics.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[inline(always)]
    pub fn hmax(self) -> f32 {
        let mut acc = self.0[0];
        for j in 1..LANES {
            if !(acc >= self.0[j]) {
                acc = self.0[j];
            }
        }
        acc
    }
}

/// Number of [`L8`] accumulators the strip reductions run in parallel:
/// 4 × 8 = 32 independent partial sums, enough to hide FMA latency.
pub(crate) const ACCS: usize = 4;
/// Elements per unrolled reduction step.
pub(crate) const STRIPE: usize = ACCS * LANES;

/// Lane-parallel sum of `xs`, in the documented deterministic order:
///
/// 1. 32 partial accumulators; accumulator `(a, l)` sums elements with
///    index ≡ `a·8 + l` (mod 32) over the length-aligned prefix,
/// 2. the 4 lane accumulators combine pairwise: `(s0+s1) + (s2+s3)`,
/// 3. lanes reduce left-to-right ([`L8::hsum`]),
/// 4. remainder elements (len mod 32) are added serially, in order.
///
/// The order depends only on `xs.len()`, so results are deterministic;
/// it differs from the serial left-to-right sum (documented f32
/// tolerance — callers combine *chunk* partials in chunk order, so the
/// thread count never changes the result).
///
/// `inline(always)` (here and on the sibling reductions): callers invoke
/// these inside [`vectorize`], and the body must land in that
/// `#[target_feature]` frame to get AVX2/FMA codegen.
#[inline(always)]
pub(crate) fn sum_f32(xs: &[f32]) -> f32 {
    let mut acc = [L8::zero(); ACCS];
    let mut chunks = xs.chunks_exact(STRIPE);
    for chunk in &mut chunks {
        for (a, accl) in acc.iter_mut().enumerate() {
            *accl = accl.add(L8::load(&chunk[a * LANES..]));
        }
    }
    let combined = acc[0].add(acc[1]).add(acc[2].add(acc[3]));
    let mut total = combined.hsum();
    for &x in chunks.remainder() {
        total += x;
    }
    total
}

/// Lane-parallel dot product, same combine order as [`sum_f32`] with
/// fused multiply-add accumulation.
#[inline(always)]
pub(crate) fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [L8::zero(); ACCS];
    let mut ac = a.chunks_exact(STRIPE);
    let mut bc = b.chunks_exact(STRIPE);
    for (xa, xb) in (&mut ac).zip(&mut bc) {
        for (u, accl) in acc.iter_mut().enumerate() {
            *accl = L8::load(&xa[u * LANES..]).mul_add(L8::load(&xb[u * LANES..]), *accl);
        }
    }
    let combined = acc[0].add(acc[1]).add(acc[2].add(acc[3]));
    let mut total = combined.hsum();
    for (&xa, &xb) in ac.remainder().iter().zip(bc.remainder()) {
        total = xa.mul_add(xb, total);
    }
    total
}

/// Lane-parallel maximum (`Scalar::maximum` semantics). Max is
/// associative and commutative, so for NaN-free data this matches the
/// serial fold bit-identically; NaN placement may differ between paths.
///
/// # Panics
/// Panics on an empty slice.
// Negated comparisons are deliberate (see `L8::hmax`).
#[allow(clippy::neg_cmp_op_on_partial_ord)]
#[inline(always)]
pub(crate) fn max_f32(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty(), "max of empty slice");
    if xs.len() < LANES {
        return xs
            .iter()
            .copied()
            .fold(xs[0], |a, b| if a >= b { a } else { b });
    }
    let mut acc = L8::load(xs);
    let mut chunks = xs[LANES..].chunks_exact(LANES);
    for chunk in &mut chunks {
        acc = acc.max(L8::load(chunk));
    }
    let mut best = acc.hmax();
    for &x in chunks.remainder() {
        if !(best >= x) {
            best = x;
        }
    }
    best
}

/// Lane-parallel minimum; see [`max_f32`].
///
/// # Panics
/// Panics on an empty slice.
// Negated comparisons are deliberate (see `L8::hmax`).
#[allow(clippy::neg_cmp_op_on_partial_ord)]
#[inline(always)]
pub(crate) fn min_f32(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty(), "min of empty slice");
    if xs.len() < LANES {
        return xs
            .iter()
            .copied()
            .fold(xs[0], |a, b| if a <= b { a } else { b });
    }
    let mut acc = L8::load(xs);
    let mut chunks = xs[LANES..].chunks_exact(LANES);
    for chunk in &mut chunks {
        acc = acc.min(L8::load(chunk));
    }
    let mut best = acc.0[0];
    for j in 1..LANES {
        if !(best <= acc.0[j]) {
            best = acc.0[j];
        }
    }
    for &x in chunks.remainder() {
        if !(best <= x) {
            best = x;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_label_tracks_override() {
        let before = SIMD_OVERRIDE.load(Ordering::Relaxed);
        set_simd_enabled(false);
        assert_eq!(path_label(), "scalar");
        assert_eq!(lane_width(), 1);
        set_simd_enabled(true);
        if simd_supported() {
            assert_eq!(path_label(), "simd8");
            assert_eq!(lane_width(), LANES);
        } else {
            assert_eq!(path_label(), "scalar");
        }
        SIMD_OVERRIDE.store(before, Ordering::Relaxed);
    }

    #[test]
    fn f32_slice_casts_dispatch_on_type() {
        let f = [1.0f32, 2.0];
        let d = [1.0f64, 2.0];
        let i = [1i32, 2];
        assert_eq!(as_f32_slice(&f), Some(&f[..]));
        assert!(as_f32_slice(&d).is_none());
        assert!(as_f32_slice(&i).is_none());
        let mut fm = [0.0f32; 2];
        as_f32_slice_mut(&mut fm).unwrap()[1] = 7.0;
        assert_eq!(fm[1], 7.0);
    }

    #[test]
    fn lane_reductions_match_reference() {
        // Sizes straddling the lane and stripe widths, including the
        // degenerate ones.
        for n in [0usize, 1, 7, 8, 9, 15, 17, 31, 32, 33, 63, 64, 65, 100] {
            let xs: Vec<f32> = (0..n).map(|i| ((i * 37 % 19) as f32) - 9.0).collect();
            let serial: f32 = xs.iter().sum();
            let lane = sum_f32(&xs);
            assert!(
                (lane - serial).abs() <= 1e-4 * serial.abs().max(1.0),
                "sum n={n}: {lane} vs {serial}"
            );
            let ys: Vec<f32> = (0..n).map(|i| ((i * 11 % 23) as f32) - 11.0).collect();
            let sdot: f32 = xs.iter().zip(&ys).map(|(&a, &b)| a * b).sum();
            let ldot = dot_f32(&xs, &ys);
            assert!(
                (ldot - sdot).abs() <= 1e-3 * sdot.abs().max(1.0),
                "dot n={n}: {ldot} vs {sdot}"
            );
            if n > 0 {
                let smax = xs.iter().copied().fold(xs[0], f32::max);
                let smin = xs.iter().copied().fold(xs[0], f32::min);
                assert_eq!(max_f32(&xs), smax, "max n={n}");
                assert_eq!(min_f32(&xs), smin, "min n={n}");
            }
        }
    }

    #[test]
    fn lane_type_arithmetic() {
        let a = L8([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = L8::splat(2.0);
        assert_eq!(a.add(b).0[3], 6.0);
        assert_eq!(a.sub(b).0[3], 2.0);
        assert_eq!(a.mul(b).0[3], 8.0);
        assert_eq!(a.div(b).0[3], 2.0);
        assert_eq!(a.mul_add(b, L8::splat(1.0)).0[0], 3.0);
        assert_eq!(
            a.max(L8::splat(4.5)).0,
            [4.5, 4.5, 4.5, 4.5, 5.0, 6.0, 7.0, 8.0]
        );
        assert_eq!(a.min(L8::splat(4.5)).0[7], 4.5);
        assert_eq!(a.hsum(), 36.0);
        assert_eq!(a.hmax(), 8.0);
        let mut out = [0.0f32; 8];
        a.store(&mut out);
        assert_eq!(L8::load(&out).0, a.0);
    }

    #[test]
    fn vectorize_runs_closure_on_both_paths() {
        let before = SIMD_OVERRIDE.load(Ordering::Relaxed);
        for on in [false, true] {
            set_simd_enabled(on);
            // mul_add is single-rounding on both paths, so the value is
            // path-independent even though the instruction differs.
            let v = vectorize(|| 1.5f32.mul_add(2.0, 0.25));
            assert_eq!(v, 3.25);
        }
        SIMD_OVERRIDE.store(before, Ordering::Relaxed);
    }
}
