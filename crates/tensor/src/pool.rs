//! Size-bucketed buffer recycling for tensor storage.
//!
//! The paper's lazy backend exists so a compiler can plan resources for a
//! whole program (§3.3); this module is the allocator-side half of that
//! plan. Every buffer dropped by [`crate::Storage`] is offered to a
//! per-element-type free list here instead of going back to the system
//! allocator, and every sufficiently large storage allocation first asks
//! the free list for a buffer of at least the requested capacity. On
//! allocation-bound CPU workloads (small/medium tensors, the common case
//! for this repo's 1-core kernels) this removes the malloc/free pair from
//! the steady-state training loop entirely.
//!
//! Buffers are bucketed by power-of-two *capacity in bytes*: a request
//! for `n` bytes looks only in bucket `ceil(log2 n)`, whose entries are
//! guaranteed to hold at least `n` bytes, so reuse wastes less than 2x
//! the requested size. For that exact-bucket lookup to hit in the steady
//! state, fresh allocations on a pool miss reserve capacity rounded *up*
//! to the bucket's byte size ([`recycle_capacity`]): a training step
//! re-requests the same (usually non-power-of-two) sizes every
//! iteration, and a buffer allocated at exactly that size would park one
//! bucket *below* where the next identical request looks — it would
//! never be found again. Each bucket keeps at most
//! [`MAX_ENTRIES_PER_BUCKET`] buffers and the pool as a whole at most
//! [`MAX_POOLED_BYTES`], so the cache cannot grow without bound.
//!
//! Interaction with the `s4tf-diag` live/peak accounting: a pool *hit*
//! raises live-bytes (`track_recycled_alloc`) without counting an
//! allocator call, and a buffer accepted by the pool lowers live-bytes
//! (`track_recycled_free`) without counting an allocator free — so
//! `MemoryStats::allocs`/`frees` keep meaning *real allocator traffic*,
//! which is exactly what `bench/src/bin/memory.rs` measures. Buffers
//! evicted by [`clear_pools`] are dropped without touching the
//! alloc/free counters (their original allocation was already counted).
//!
//! Knobs: `S4TF_POOL=0` disables recycling entirely (every drop goes to
//! the allocator, every alloc is fresh — byte-for-byte the pre-pool
//! behavior); [`set_pool_enabled`] overrides the environment at runtime.
//! Results are bit-identical either way: the pool only changes *where*
//! bytes come from, never what is written into them.

use crate::dtype::Scalar;
use crate::met;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI8, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Maximum buffers kept per size bucket. Sized so a whole traced step's
/// worth of same-bucket buffers (a LeNet trace holds a few dozen live
/// scalar constants at once) can park between iterations.
pub const MAX_ENTRIES_PER_BUCKET: usize = 64;

/// Maximum bytes the pool will hold across all buckets and element types.
pub const MAX_POOLED_BYTES: u64 = 256 * 1024 * 1024;

/// Buffers larger than this are never pooled (one giant buffer would
/// crowd out the steady-state working set).
pub const MAX_BUFFER_BYTES: usize = 64 * 1024 * 1024;

/// Smallest buffer the pool recycles. Everything non-empty qualifies:
/// tiny buffers are individually cheap to malloc, but scalar constants
/// dominate a traced graph's allocation *count* (tens per LeNet step),
/// and the per-step allocator-call number is exactly what the memory
/// benchmark measures and CI gates on.
pub const MIN_BUFFER_BYTES: usize = 1;

// ------------------------------------------------------------- enable gate

/// Runtime override: -1 = unset (consult `S4TF_POOL`), 0 = off, 1 = on.
static POOL_OVERRIDE: AtomicI8 = AtomicI8::new(-1);
static POOL_ENV: OnceLock<bool> = OnceLock::new();

/// True if buffer recycling is enabled (default: on; `S4TF_POOL=0`
/// disables, [`set_pool_enabled`] overrides either way).
#[inline]
pub fn pool_enabled() -> bool {
    match POOL_OVERRIDE.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => *POOL_ENV.get_or_init(|| match std::env::var("S4TF_POOL") {
            Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no"),
            Err(_) => true,
        }),
    }
}

/// Forces buffer recycling on or off, overriding `S4TF_POOL`.
/// Process-wide; intended for tests and benchmarks.
pub fn set_pool_enabled(enabled: bool) {
    POOL_OVERRIDE.store(if enabled { 1 } else { 0 }, Ordering::Relaxed);
}

// ------------------------------------------------------------------ stats

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RECYCLED_BYTES: AtomicU64 = AtomicU64::new(0);
static POOLED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the pool counters (process-wide, across element types).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocation requests served from the free list.
    pub hits: u64,
    /// Allocation requests the free list could not serve (fresh alloc).
    pub misses: u64,
    /// Total capacity bytes served from the free list so far.
    pub recycled_bytes: u64,
    /// Capacity bytes currently parked in the free lists.
    pub pooled_bytes: u64,
}

/// Current pool counters.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        recycled_bytes: RECYCLED_BYTES.load(Ordering::Relaxed),
        pooled_bytes: POOLED_BYTES.load(Ordering::Relaxed),
    }
}

/// Current pool counters — the public mirror of the provider the
/// profiler polls (`profile::pool_stats`), so callers can watch hit
/// rates without enabling the profiler.
pub fn stats() -> PoolStats {
    pool_stats()
}

// -------------------------------------------------- registry instruments

/// One registry counter per power-of-two size bucket, interned lazily so
/// the hot path never formats a metric name: bucket indices are small
/// (`MAX_BUFFER_BYTES` = 64 MiB caps them at 26) and stable, so a fixed
/// slot table of `OnceLock`s suffices.
const METRIC_BUCKET_SLOTS: usize = 28;

struct BucketCounters {
    name: &'static str,
    help: &'static str,
    slots: [OnceLock<&'static met::Counter>; METRIC_BUCKET_SLOTS],
}

impl BucketCounters {
    const fn new(name: &'static str, help: &'static str) -> Self {
        BucketCounters {
            name,
            help,
            slots: [const { OnceLock::new() }; METRIC_BUCKET_SLOTS],
        }
    }

    fn get(&'static self, bucket: u32) -> &'static met::Counter {
        let idx = (bucket as usize).min(METRIC_BUCKET_SLOTS - 1);
        self.slots[idx].get_or_init(|| {
            met::counter(
                &format!("{}{{bucket=\"{}\"}}", self.name, 1u64 << idx),
                self.help,
            )
        })
    }
}

static HIT_COUNTERS: BucketCounters = BucketCounters::new(
    "s4tf_pool_hits_total",
    "Pool allocation requests served from the free list, by power-of-two byte bucket",
);
static MISS_COUNTERS: BucketCounters = BucketCounters::new(
    "s4tf_pool_misses_total",
    "Pool allocation requests that fell through to the allocator, by power-of-two byte bucket",
);
static RECYCLE_COUNTERS: BucketCounters = BucketCounters::new(
    "s4tf_pool_recycled_total",
    "Dead buffers accepted back into the free list, by power-of-two byte bucket",
);

fn resident_gauge() -> &'static met::Gauge {
    static G: OnceLock<&'static met::Gauge> = OnceLock::new();
    G.get_or_init(|| {
        met::gauge(
            "s4tf_pool_resident_bytes",
            "Capacity bytes currently parked in the buffer-recycling free lists",
        )
    })
}

// -------------------------------------------------------- bucket rounding

/// Bucket a request for `bytes` looks in: the smallest power-of-two
/// exponent `b` with `2^b >= bytes`. Every buffer parked in bucket `b`
/// has capacity `>= 2^b`, so any entry satisfies the request.
pub(crate) fn bucket_for_request(bytes: usize) -> u32 {
    debug_assert!(bytes > 0);
    usize::BITS - bytes.saturating_sub(1).leading_zeros()
}

/// Bucket a buffer of capacity `bytes` is parked in: the largest
/// power-of-two exponent `b` with `2^b <= bytes`.
pub(crate) fn bucket_for_capacity(bytes: usize) -> u32 {
    debug_assert!(bytes > 0);
    usize::BITS - 1 - bytes.leading_zeros()
}

/// Elements a *fresh* allocation should reserve so the buffer, once
/// dead, parks in exactly the bucket future same-size requests search:
/// the request's bucket rounded up to its power-of-two byte size. Without
/// this, any non-power-of-two tensor size would miss the pool on every
/// single step (capacities round *down* into buckets, requests round
/// *up*). Returns `n` unchanged when the pool would not keep the buffer
/// anyway (disabled, or out of the min/max size range). The slack is
/// real memory and is reported to the live/peak tracker as such.
#[inline]
pub(crate) fn recycle_capacity<T>(n: usize) -> usize {
    let size = std::mem::size_of::<T>();
    let Some(need) = n.checked_mul(size) else {
        return n;
    };
    if !(MIN_BUFFER_BYTES..=MAX_BUFFER_BYTES).contains(&need) || !pool_enabled() {
        return n;
    }
    // `MAX_BUFFER_BYTES` is itself a power of two, so the round-up never
    // produces a capacity the pool would refuse to park.
    (1usize << bucket_for_request(need)) / size
}

// -------------------------------------------------------------- the pool

/// A free list of buffers of one element type, bucketed by capacity.
///
/// One static instance exists per [`Scalar`] type, reached through
/// `Scalar::buffer_pool()` (the static lives inside the trait-impl
/// method body — the standard workaround for Rust's lack of generic
/// statics). Const-constructible so the statics need no lazy init.
pub struct TypedPool<T> {
    buckets: Mutex<BTreeMap<u32, Vec<Vec<T>>>>,
}

impl<T> TypedPool<T> {
    /// An empty pool (usable in `static` initializers).
    pub const fn new() -> Self {
        TypedPool {
            buckets: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<u32, Vec<Vec<T>>>> {
        // Keep recycling alive after a panic unwound through a holder
        // (fault injection panics inside kernels on purpose).
        match self.buckets.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Takes a buffer with capacity for at least `n` elements, emptied
    /// (`len == 0`). `None` — a miss — means the caller should allocate.
    pub fn take(&self, n: usize) -> Option<Vec<T>> {
        let need = n.checked_mul(std::mem::size_of::<T>())?;
        if !(MIN_BUFFER_BYTES..=MAX_BUFFER_BYTES).contains(&need) {
            return None;
        }
        let bucket = bucket_for_request(need);
        let taken = self.lock().get_mut(&bucket).and_then(Vec::pop);
        match taken {
            Some(v) => {
                debug_assert!(v.capacity() >= n);
                let cap_bytes = (v.capacity() * std::mem::size_of::<T>()) as u64;
                HITS.fetch_add(1, Ordering::Relaxed);
                RECYCLED_BYTES.fetch_add(cap_bytes, Ordering::Relaxed);
                let pooled = POOLED_BYTES.fetch_sub(cap_bytes, Ordering::Relaxed) - cap_bytes;
                HIT_COUNTERS.get(bucket).inc();
                resident_gauge().set(pooled as i64);
                Some(v)
            }
            None => {
                MISSES.fetch_add(1, Ordering::Relaxed);
                MISS_COUNTERS.get(bucket).inc();
                None
            }
        }
    }

    /// Offers a dead buffer to the free list. Returns `true` if the pool
    /// kept it (the buffer is cleared, its capacity retained); `false`
    /// if it was rejected and dropped to the allocator.
    pub fn give(&self, mut v: Vec<T>) -> bool {
        let cap_bytes = v.capacity() * std::mem::size_of::<T>();
        if !(MIN_BUFFER_BYTES..=MAX_BUFFER_BYTES).contains(&cap_bytes) {
            return false;
        }
        if POOLED_BYTES.load(Ordering::Relaxed) + cap_bytes as u64 > MAX_POOLED_BYTES {
            return false;
        }
        let bucket = bucket_for_capacity(cap_bytes);
        let mut buckets = self.lock();
        let entries = buckets.entry(bucket).or_default();
        if entries.len() >= MAX_ENTRIES_PER_BUCKET {
            return false;
        }
        v.clear();
        entries.push(v);
        let pooled = POOLED_BYTES.fetch_add(cap_bytes as u64, Ordering::Relaxed) + cap_bytes as u64;
        RECYCLE_COUNTERS.get(bucket).inc();
        resident_gauge().set(pooled as i64);
        true
    }

    /// Drops every parked buffer back to the allocator.
    pub fn clear(&self) {
        let buckets = std::mem::take(&mut *self.lock());
        let bytes: usize = buckets
            .values()
            .flatten()
            .map(|v| v.capacity() * std::mem::size_of::<T>())
            .sum();
        let pooled = POOLED_BYTES.fetch_sub(bytes as u64, Ordering::Relaxed) - bytes as u64;
        resident_gauge().set(pooled as i64);
    }

    /// Parked buffers (for tests).
    pub fn len(&self) -> usize {
        self.lock().values().map(Vec::len).sum()
    }

    /// True if no buffers are parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for TypedPool<T> {
    fn default() -> Self {
        TypedPool::new()
    }
}

/// Empties the free lists of all element types, returning parked
/// capacity to the allocator (e.g. between benchmark scenarios).
pub fn clear_pools() {
    // `Scalar` is sealed, so this list is exhaustive.
    f32::buffer_pool().clear();
    f64::buffer_pool().clear();
    i32::buffer_pool().clear();
    i64::buffer_pool().clear();
}

// ------------------------------------------- storage-facing entry points

/// Pool-aware take: `None` when the pool is disabled, the size is out of
/// range, or no parked buffer fits. Public so runtime layers can recycle
/// *scratch* buffers (e.g. the fused-kernel register file) that never
/// become tensor storage; scratch is untracked by the memory stats both
/// ways, so taking and giving it back keeps the accounting consistent.
#[inline]
pub fn take_vec<T: Scalar>(n: usize) -> Option<Vec<T>> {
    if n == 0 || !pool_enabled() {
        return None;
    }
    T::buffer_pool().take(n)
}

/// Pool-aware give: `false` (caller drops to the allocator) when the
/// pool is disabled or rejects the buffer.
#[inline]
pub fn give_vec<T: Scalar>(v: Vec<T>) -> bool {
    if !pool_enabled() {
        return false;
    }
    T::buffer_pool().give(v)
}

/// A `value`-filled output buffer for kernels, recycled when possible.
/// The flag records provenance so `Tensor::from_pooled_vec` can keep the
/// alloc accounting honest.
#[inline]
pub(crate) fn filled_vec<T: Scalar>(n: usize, value: T) -> (Vec<T>, bool) {
    match take_vec::<T>(n) {
        Some(mut v) => {
            v.resize(n, value);
            (v, true)
        }
        None => {
            let mut v = Vec::with_capacity(recycle_capacity::<T>(n));
            v.resize(n, value);
            (v, false)
        }
    }
}

/// A zero-filled output buffer for kernels, recycled when possible.
#[inline]
pub(crate) fn zeroed_vec<T: Scalar>(n: usize) -> (Vec<T>, bool) {
    filled_vec(n, T::zero())
}

/// An empty buffer with capacity for at least `n` elements, recycled
/// when possible (for kernels that build output by pushing).
#[inline]
pub(crate) fn empty_vec<T: Scalar>(n: usize) -> (Vec<T>, bool) {
    match take_vec::<T>(n) {
        Some(v) => (v, true),
        None => (Vec::with_capacity(recycle_capacity::<T>(n)), false),
    }
}

/// Collects exactly `n` items from `iter` into a pool-aware buffer.
#[inline]
pub(crate) fn collect_n<T: Scalar>(n: usize, iter: impl Iterator<Item = T>) -> (Vec<T>, bool) {
    match take_vec::<T>(n) {
        Some(mut v) => {
            v.extend(iter);
            debug_assert_eq!(v.len(), n);
            (v, true)
        }
        None => {
            let mut v = Vec::with_capacity(recycle_capacity::<T>(n));
            v.extend(iter);
            debug_assert_eq!(v.len(), n);
            (v, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_rounding() {
        // Requests round up: bucket 2^b is the smallest holding `bytes`.
        assert_eq!(bucket_for_request(1), 0);
        assert_eq!(bucket_for_request(2), 1);
        assert_eq!(bucket_for_request(3), 2);
        assert_eq!(bucket_for_request(4), 2);
        assert_eq!(bucket_for_request(5), 3);
        assert_eq!(bucket_for_request(1024), 10);
        assert_eq!(bucket_for_request(1025), 11);

        // Capacities round down: a buffer lands in the largest bucket it
        // fully covers.
        assert_eq!(bucket_for_capacity(1), 0);
        assert_eq!(bucket_for_capacity(3), 1);
        assert_eq!(bucket_for_capacity(4), 2);
        assert_eq!(bucket_for_capacity(1023), 9);
        assert_eq!(bucket_for_capacity(1024), 10);

        // The invariant that makes `take` safe with an exact-bucket
        // lookup: anything parked in bucket b satisfies any request
        // that maps to bucket b.
        for cap in [64usize, 65, 100, 127, 128, 4096, 5000] {
            for need in [64usize, 65, 100, 127, 128, 4096, 5000] {
                if bucket_for_capacity(cap) == bucket_for_request(need) {
                    assert!(cap >= need, "cap {cap} must satisfy need {need}");
                }
            }
        }
    }

    #[test]
    fn take_returns_parked_buffer_of_sufficient_capacity() {
        let pool: TypedPool<f32> = TypedPool::new();
        assert!(pool.take(100).is_none(), "empty pool misses");
        let v = Vec::with_capacity(128);
        assert!(pool.give(v));
        assert_eq!(pool.len(), 1);
        // 100 f32 = 400 bytes -> bucket 9; 128 f32 = 512 bytes -> bucket 9.
        let got = pool.take(100).expect("hit");
        assert!(got.capacity() >= 100);
        assert!(got.is_empty());
        assert!(pool.is_empty());
    }

    #[test]
    fn empty_and_giant_buffers_are_rejected() {
        let pool: TypedPool<f32> = TypedPool::new();
        assert!(!pool.give(Vec::new()), "zero capacity is below the floor");
        assert!(
            !pool.give(Vec::with_capacity(MAX_BUFFER_BYTES / 4 + 1)),
            "above MAX_BUFFER_BYTES"
        );
        assert!(pool.is_empty());
    }

    #[test]
    fn recycle_capacity_rounds_fresh_allocations_to_the_lookup_bucket() {
        if !pool_enabled() {
            // With recycling off (S4TF_POOL=0 CI leg) nothing will park,
            // so fresh allocations must stay exact-size.
            assert_eq!(recycle_capacity::<f32>(37), 37);
            return;
        }
        // The steady-state guarantee: allocate n, free it, request n again
        // — the request must find the freed buffer.
        for n in [1usize, 16, 37, 100, 960, 37_632 / 4, 150_528 / 4] {
            let cap = recycle_capacity::<f32>(n);
            assert!(cap >= n);
            assert_eq!(
                bucket_for_capacity(cap * 4),
                bucket_for_request(n * 4),
                "n = {n}: freed capacity must park where requests look"
            );
        }
        // Out-of-range sizes are left alone (the pool won't keep them).
        assert_eq!(recycle_capacity::<f32>(MAX_BUFFER_BYTES), MAX_BUFFER_BYTES);
    }

    #[test]
    fn bucket_entry_cap_is_enforced() {
        let pool: TypedPool<f32> = TypedPool::new();
        for _ in 0..MAX_ENTRIES_PER_BUCKET {
            assert!(pool.give(Vec::with_capacity(64)));
        }
        assert!(!pool.give(Vec::with_capacity(64)), "bucket is full");
        assert_eq!(pool.len(), MAX_ENTRIES_PER_BUCKET);
        pool.clear();
        assert!(pool.is_empty());
    }
}
