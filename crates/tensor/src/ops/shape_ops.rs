//! Shape-manipulating kernels: reshape, transpose, broadcast, slice, concat,
//! pad and their gradient counterparts.

use crate::dtype::Scalar;
use crate::error::{Result, TensorError};
use crate::shape::Shape;
use crate::tensor::Tensor;

impl<T: Scalar> Tensor<T> {
    /// Reinterprets the tensor with a new shape of the same element count.
    /// O(1): the storage is shared with `self`.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor<T> {
        self.try_reshape(dims).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Tensor::reshape`].
    ///
    /// # Errors
    /// Returns [`TensorError::ElementCountMismatch`] if the counts differ.
    pub fn try_reshape(&self, dims: &[usize]) -> Result<Tensor<T>> {
        let shape = Shape::new(dims);
        if shape.num_elements() != self.num_elements() {
            return Err(TensorError::ElementCountMismatch {
                from: self.num_elements(),
                to: shape.num_elements(),
            });
        }
        Ok(Tensor::from_parts(shape, self.storage().clone()))
    }

    /// Flattens to rank 1.
    pub fn flattened(&self) -> Tensor<T> {
        self.reshape(&[self.num_elements()])
    }

    /// Adds a leading/trailing/interior dimension of extent 1.
    ///
    /// # Panics
    /// Panics if `axis > rank`.
    pub fn expand_dims(&self, axis: usize) -> Tensor<T> {
        let shape = self.shape().inserting(axis);
        let dims = shape.dims().to_vec();
        self.reshape(&dims)
    }

    /// Removes a dimension of extent 1.
    ///
    /// # Panics
    /// Panics if `axis >= rank` or the dimension is not 1.
    pub fn squeeze(&self, axis: usize) -> Tensor<T> {
        assert_eq!(
            self.dims()[axis],
            1,
            "cannot squeeze axis {axis} of extent {}",
            self.dims()[axis]
        );
        let shape = self.shape().removing(axis);
        let dims = shape.dims().to_vec();
        self.reshape(&dims)
    }

    /// Materializes the tensor broadcast to `dims`.
    ///
    /// # Panics
    /// Panics if `self` does not broadcast to `dims`.
    pub fn broadcast_to(&self, dims: &[usize]) -> Tensor<T> {
        let target = Shape::new(dims);
        if self.shape() == &target {
            return self.clone();
        }
        let out_shape = Shape::broadcast(self.shape(), &target).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(
            out_shape,
            target,
            "{} does not broadcast to {}",
            self.shape(),
            target
        );
        let src = self.as_slice();
        let src_dims = self.dims();
        let offset = target.rank() - self.rank();
        let src_strides = self.shape().strides();
        let (mut out, out_recycled) = crate::pool::zeroed_vec::<T>(target.num_elements());
        let mut idx = vec![0usize; target.rank()];
        for slot in out.iter_mut() {
            let mut src_flat = 0;
            for (i, &coord) in idx.iter().enumerate().skip(offset) {
                let sdim = src_dims[i - offset];
                let c = if sdim == 1 { 0 } else { coord };
                src_flat += c * src_strides[i - offset];
            }
            *slot = src[src_flat];
            // increment multi-index
            for axis in (0..target.rank()).rev() {
                idx[axis] += 1;
                if idx[axis] < target.dim(axis) {
                    break;
                }
                idx[axis] = 0;
            }
        }
        Tensor::from_pooled_vec((out, out_recycled), dims)
    }

    /// Permutes the dimensions. `perm` must be a permutation of `0..rank`.
    ///
    /// # Panics
    /// Panics if `perm` is not a valid permutation.
    pub fn transpose(&self, perm: &[usize]) -> Tensor<T> {
        assert_eq!(perm.len(), self.rank(), "perm rank mismatch");
        let mut seen = vec![false; self.rank()];
        for &p in perm {
            assert!(p < self.rank() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let out_dims: Vec<usize> = perm.iter().map(|&p| self.dims()[p]).collect();
        let out_shape = Shape::new(&out_dims);
        let src_strides = self.shape().strides();
        let src = self.as_slice();
        let (mut out, out_recycled) = crate::pool::zeroed_vec::<T>(self.num_elements());
        let mut idx = vec![0usize; self.rank()];
        for slot in out.iter_mut() {
            let mut src_flat = 0;
            for (o, &p) in perm.iter().enumerate() {
                src_flat += idx[o] * src_strides[p];
            }
            *slot = src[src_flat];
            for axis in (0..out_shape.rank()).rev() {
                idx[axis] += 1;
                if idx[axis] < out_shape.dim(axis) {
                    break;
                }
                idx[axis] = 0;
            }
        }
        Tensor::from_pooled_vec((out, out_recycled), &out_dims)
    }

    /// Transposes the last two dimensions (matrix transpose for rank 2).
    ///
    /// # Panics
    /// Panics if rank < 2.
    pub fn t(&self) -> Tensor<T> {
        assert!(self.rank() >= 2, "t() requires rank >= 2");
        let mut perm: Vec<usize> = (0..self.rank()).collect();
        perm.swap(self.rank() - 1, self.rank() - 2);
        self.transpose(&perm)
    }

    /// Extracts `[start, start+len)` along `axis`.
    ///
    /// # Panics
    /// Panics if the range exceeds the dimension.
    pub fn slice_axis(&self, axis: usize, start: usize, len: usize) -> Tensor<T> {
        assert!(axis < self.rank(), "axis {axis} out of range");
        assert!(
            start + len <= self.dims()[axis],
            "slice [{start}, {}) exceeds dim {} of extent {}",
            start + len,
            axis,
            self.dims()[axis]
        );
        let outer: usize = self.dims()[..axis].iter().product();
        let inner: usize = self.dims()[axis + 1..].iter().product();
        let d = self.dims()[axis];
        let src = self.as_slice();
        let (mut out, out_recycled) = crate::pool::empty_vec::<T>(outer * len * inner);
        for o in 0..outer {
            let base = o * d * inner + start * inner;
            out.extend_from_slice(&src[base..base + len * inner]);
        }
        let mut dims = self.dims().to_vec();
        dims[axis] = len;
        Tensor::from_pooled_vec((out, out_recycled), &dims)
    }

    /// Writes `src` into `[start, start+src.dim(axis))` along `axis` in
    /// place — the gradient scatter for [`Tensor::slice_axis`], and the
    /// building block of the paper's O(1) `inout` pullbacks (§4.3).
    ///
    /// # Panics
    /// Panics on rank/extent mismatch.
    pub fn assign_slice_axis(&mut self, axis: usize, start: usize, src: &Tensor<T>) {
        assert_eq!(self.rank(), src.rank(), "rank mismatch in assign_slice");
        for a in 0..self.rank() {
            if a != axis {
                assert_eq!(self.dims()[a], src.dims()[a], "dim {a} mismatch");
            }
        }
        let len = src.dims()[axis];
        assert!(start + len <= self.dims()[axis], "slice out of bounds");
        let outer: usize = self.dims()[..axis].iter().product();
        let inner: usize = self.dims()[axis + 1..].iter().product();
        let d = self.dims()[axis];
        let s = src.as_slice();
        let dst = self.as_mut_slice();
        for o in 0..outer {
            let dst_base = o * d * inner + start * inner;
            let src_base = o * len * inner;
            dst[dst_base..dst_base + len * inner]
                .copy_from_slice(&s[src_base..src_base + len * inner]);
        }
    }

    /// Concatenates tensors along `axis`.
    ///
    /// # Panics
    /// Panics if `tensors` is empty or shapes disagree off-axis.
    pub fn concat(tensors: &[&Tensor<T>], axis: usize) -> Tensor<T> {
        assert!(!tensors.is_empty(), "concat of zero tensors");
        let first = tensors[0];
        assert!(axis < first.rank(), "axis out of range");
        let mut axis_total = 0;
        for t in tensors {
            assert_eq!(t.rank(), first.rank(), "rank mismatch in concat");
            for a in 0..first.rank() {
                if a != axis {
                    assert_eq!(t.dims()[a], first.dims()[a], "dim {a} mismatch in concat");
                }
            }
            axis_total += t.dims()[axis];
        }
        let mut dims = first.dims().to_vec();
        dims[axis] = axis_total;
        let mut out = Tensor::zeros(&dims);
        let mut cursor = 0;
        for t in tensors {
            out.assign_slice_axis(axis, cursor, t);
            cursor += t.dims()[axis];
        }
        out
    }

    /// Zero-pads along each dimension by `(before, after)` pairs.
    ///
    /// # Panics
    /// Panics if `pads.len() != rank`.
    pub fn pad(&self, pads: &[(usize, usize)]) -> Tensor<T> {
        assert_eq!(pads.len(), self.rank(), "one pad pair per dimension");
        let dims: Vec<usize> = self
            .dims()
            .iter()
            .zip(pads)
            .map(|(&d, &(b, a))| d + b + a)
            .collect();
        let mut out = Tensor::zeros(&dims);
        // Copy rows of the innermost dimension.
        let src = self.as_slice();
        let in_shape = self.shape().clone();
        let out_strides = out.shape().strides();
        let dst = out.as_mut_slice();
        if self.rank() == 0 {
            dst[0] = src[0];
            return out;
        }
        let inner = in_shape.dim(self.rank() - 1);
        let rows = self.num_elements() / inner.max(1);
        for row in 0..rows {
            let multi = in_shape.multi_index(row * inner);
            let mut dst_flat = 0;
            for (a, &coord) in multi.iter().enumerate() {
                dst_flat += (coord + pads[a].0) * out_strides[a];
            }
            dst[dst_flat..dst_flat + inner].copy_from_slice(&src[row * inner..row * inner + inner]);
        }
        out
    }

    /// Removes padding: the adjoint of [`Tensor::pad`].
    ///
    /// # Panics
    /// Panics if the pads exceed the dimensions.
    pub fn unpad(&self, pads: &[(usize, usize)]) -> Tensor<T> {
        assert_eq!(pads.len(), self.rank(), "one pad pair per dimension");
        let mut t = self.clone();
        for (axis, &(b, a)) in pads.iter().enumerate() {
            let len = t.dims()[axis] - b - a;
            t = t.slice_axis(axis, b, len);
        }
        t
    }

    /// Stacks rank-`r` tensors into a rank-`r+1` tensor along a new leading
    /// axis.
    ///
    /// # Panics
    /// Panics if `tensors` is empty or shapes differ.
    pub fn stack(tensors: &[&Tensor<T>]) -> Tensor<T> {
        assert!(!tensors.is_empty(), "stack of zero tensors");
        let expanded: Vec<Tensor<T>> = tensors.iter().map(|t| t.expand_dims(0)).collect();
        let refs: Vec<&Tensor<T>> = expanded.iter().collect();
        Tensor::concat(&refs, 0)
    }

    /// Scatter-adds rows of `src` into `self` at the given row indices —
    /// the gradient of [`Tensor::gather_rows`], in the mutable-value-
    /// semantics formulation (§4.3: accumulate into a caller-owned buffer;
    /// duplicate indices accumulate).
    ///
    /// # Panics
    /// Panics if shapes disagree beyond axis 0, if `src.dims()[0] !=
    /// indices.len()`, or if any index is out of bounds.
    pub fn scatter_add_rows(&mut self, indices: &[usize], src: &Tensor<T>) {
        assert_eq!(self.rank(), src.rank(), "rank mismatch in scatter_add");
        assert_eq!(src.dims()[0], indices.len(), "one source row per index");
        assert_eq!(&self.dims()[1..], &src.dims()[1..], "row shapes must match");
        let row = self.num_elements() / self.dims()[0].max(1);
        let n_rows = self.dims()[0];
        let s = src.as_slice();
        let dst = self.as_mut_slice();
        for (r, &i) in indices.iter().enumerate() {
            assert!(i < n_rows, "row index {i} out of bounds");
            let d = &mut dst[i * row..(i + 1) * row];
            let v = &s[r * row..(r + 1) * row];
            for (dv, &sv) in d.iter_mut().zip(v) {
                *dv += sv;
            }
        }
    }

    /// Selects rows of a rank-≥1 tensor by index along axis 0 (the gather
    /// used by embeddings and minibatch assembly).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor<T> {
        assert!(self.rank() >= 1, "gather_rows requires rank >= 1");
        let row = self.num_elements() / self.dims()[0].max(1);
        let src = self.as_slice();
        let (mut out, out_recycled) = crate::pool::empty_vec::<T>(indices.len() * row);
        for &i in indices {
            assert!(i < self.dims()[0], "row index {i} out of bounds");
            out.extend_from_slice(&src[i * row..(i + 1) * row]);
        }
        let mut dims = self.dims().to_vec();
        dims[0] = indices.len();
        Tensor::from_pooled_vec((out, out_recycled), &dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(data.to_vec(), dims)
    }

    #[test]
    fn reshape_shares_storage() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = a.reshape(&[3, 2]);
        assert!(a.shares_storage_with(&b), "reshape must be O(1)");
        assert_eq!(b.dims(), &[3, 2]);
        assert!(a.try_reshape(&[4]).is_err());
    }

    #[test]
    fn flatten_expand_squeeze() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.flattened().dims(), &[4]);
        assert_eq!(a.expand_dims(0).dims(), &[1, 2, 2]);
        assert_eq!(a.expand_dims(2).dims(), &[2, 2, 1]);
        assert_eq!(a.expand_dims(0).squeeze(0).dims(), &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot squeeze")]
    fn squeeze_non_unit_panics() {
        t(&[1.0, 2.0], &[2]).squeeze(0);
    }

    #[test]
    fn broadcast_to() {
        let row = t(&[1.0, 2.0], &[2]);
        let b = row.broadcast_to(&[3, 2]);
        assert_eq!(b.as_slice(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        let col = t(&[1.0, 2.0], &[2, 1]);
        let b = col.broadcast_to(&[2, 3]);
        assert_eq!(b.as_slice(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        let s = Tensor::scalar(7.0f32);
        assert_eq!(s.broadcast_to(&[2, 2]).as_slice(), &[7.0; 4]);
    }

    #[test]
    #[should_panic(expected = "broadcast")]
    fn broadcast_to_shrink_panics() {
        t(&[1.0, 2.0, 3.0], &[3]).broadcast_to(&[2]);
    }

    #[test]
    fn transpose_2d() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = a.t();
        assert_eq!(at.dims(), &[3, 2]);
        assert_eq!(at.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(at.t(), a, "double transpose is identity");
    }

    #[test]
    fn transpose_3d_perm() {
        let a = Tensor::<f32>::from_fn(&[2, 3, 4], |i| i as f32);
        let p = a.transpose(&[2, 0, 1]);
        assert_eq!(p.dims(), &[4, 2, 3]);
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert_eq!(p.at(&[k, i, j]), a.at(&[i, j, k]));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid permutation")]
    fn transpose_bad_perm_panics() {
        t(&[1.0, 2.0], &[2, 1]).transpose(&[0, 0]);
    }

    #[test]
    fn slice_and_assign() {
        let a = Tensor::<f32>::from_fn(&[3, 4], |i| i as f32);
        let s = a.slice_axis(0, 1, 2);
        assert_eq!(s.dims(), &[2, 4]);
        assert_eq!(s.as_slice(), &[4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0]);
        let c = a.slice_axis(1, 1, 2);
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 5.0, 6.0, 9.0, 10.0]);

        let mut z = Tensor::<f32>::zeros(&[3, 4]);
        z.assign_slice_axis(0, 1, &s);
        assert_eq!(z.slice_axis(0, 1, 2), s);
        assert_eq!(z.slice_axis(0, 0, 1).as_slice(), &[0.0; 4]);
    }

    #[test]
    fn concat_and_stack() {
        let a = t(&[1.0, 2.0], &[1, 2]);
        let b = t(&[3.0, 4.0], &[1, 2]);
        let c = Tensor::concat(&[&a, &b], 0);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let d = Tensor::concat(&[&a, &b], 1);
        assert_eq!(d.dims(), &[1, 4]);
        assert_eq!(d.as_slice(), &[1.0, 2.0, 3.0, 4.0]);

        let r1 = t(&[1.0, 2.0], &[2]);
        let r2 = t(&[3.0, 4.0], &[2]);
        let s = Tensor::stack(&[&r1, &r2]);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn pad_unpad_round_trip() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let p = a.pad(&[(1, 1), (0, 2)]);
        assert_eq!(p.dims(), &[4, 4]);
        assert_eq!(p.at(&[1, 0]), 1.0);
        assert_eq!(p.at(&[2, 1]), 4.0);
        assert_eq!(p.at(&[0, 0]), 0.0);
        assert_eq!(p.at(&[3, 3]), 0.0);
        assert_eq!(p.unpad(&[(1, 1), (0, 2)]), a);
    }

    #[test]
    fn pad_scalar() {
        let s = Tensor::scalar(5.0f32);
        assert_eq!(s.pad(&[]), s);
    }

    #[test]
    fn gather_rows() {
        let a = Tensor::<f32>::from_fn(&[3, 2], |i| i as f32);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.dims(), &[3, 2]);
        assert_eq!(g.as_slice(), &[4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
    }

    #[test]
    fn scatter_add_is_the_gather_adjoint() {
        // ⟨gather(A, idx), G⟩ == ⟨A, scatter_add(idx, G)⟩ for all A, G.
        let a = Tensor::<f64>::from_fn(&[4, 3], |i| (i as f64) * 0.5 - 2.0);
        let idx = [1usize, 3, 1]; // duplicate index: must accumulate
        let g = Tensor::<f64>::from_fn(&[3, 3], |i| (i as f64) - 4.0);
        let gathered = a.gather_rows(&idx);
        let lhs: f64 = gathered
            .as_slice()
            .iter()
            .zip(g.as_slice())
            .map(|(x, y)| x * y)
            .sum();
        let mut scattered = Tensor::<f64>::zeros(&[4, 3]);
        scattered.scatter_add_rows(&idx, &g);
        let rhs: f64 = a
            .as_slice()
            .iter()
            .zip(scattered.as_slice())
            .map(|(x, y)| x * y)
            .sum();
        assert!((lhs - rhs).abs() < 1e-12);
        // Duplicate row 1 received both contributions.
        assert_eq!(scattered.at(&[1, 0]), g.at(&[0, 0]) + g.at(&[2, 0]));
        // Untouched rows stay zero.
        assert_eq!(scattered.at(&[0, 0]), 0.0);
        assert_eq!(scattered.at(&[2, 2]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn scatter_add_bounds_check() {
        let mut t = Tensor::<f32>::zeros(&[2, 2]);
        t.scatter_add_rows(&[2], &Tensor::ones(&[1, 2]));
    }
}
