//! 2-D convolution kernels (NHWC layout, HWIO filters — TensorFlow's
//! convention, which the paper's `Conv2D` layer uses) and the two gradient
//! kernels the `Conv2D` pullback needs.
//!
//! Large forward convolutions lower to the packed GEMM in [`super::gemm`]:
//! HWIO filters flatten row-major to exactly the `[k_h*k_w*in_c, out_c]`
//! matrix GEMM wants, and an im2col scratch built per `(image, output
//! row)` strip turns each strip into a `[out_w, k] × [k, out_c]` product.
//! Work splits across the thread pool over `batch × out_h` strips
//! (forward) and over images (both backward kernels).

use super::gemm::{self, Layout};
use crate::dtype::Float;
use crate::tensor::Tensor;
use crate::Padding;

/// Below this many multiply-accumulates the direct loops beat the
/// im2col + GEMM lowering (scratch setup dominates).
const DIRECT_MAX_MACS: usize = 1 << 15;

/// Target multiply-accumulates per parallel chunk.
const CHUNK_MACS: usize = 1 << 16;

/// Validated geometry for one conv2d application.
#[derive(Debug, Clone, Copy)]
struct ConvGeom {
    batch: usize,
    in_h: usize,
    in_w: usize,
    in_c: usize,
    k_h: usize,
    k_w: usize,
    out_c: usize,
    out_h: usize,
    out_w: usize,
    pad_top: usize,
    pad_left: usize,
    stride: (usize, usize),
}

impl ConvGeom {
    /// im2col row width: the GEMM reduction dimension.
    fn kdim(&self) -> usize {
        self.k_h * self.k_w * self.in_c
    }
}

fn geometry<T: Float>(
    input: &Tensor<T>,
    filter: &Tensor<T>,
    strides: (usize, usize),
    padding: Padding,
) -> ConvGeom {
    assert_eq!(input.rank(), 4, "conv2d input must be NHWC (rank 4)");
    assert_eq!(filter.rank(), 4, "conv2d filter must be HWIO (rank 4)");
    let (batch, in_h, in_w, in_c) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (k_h, k_w, f_in, out_c) = (
        filter.dims()[0],
        filter.dims()[1],
        filter.dims()[2],
        filter.dims()[3],
    );
    assert_eq!(
        in_c, f_in,
        "conv2d channel mismatch: input has {in_c}, filter expects {f_in}"
    );
    assert!(strides.0 > 0 && strides.1 > 0, "strides must be positive");
    let out_h = padding.output_dim(in_h, k_h, strides.0);
    let out_w = padding.output_dim(in_w, k_w, strides.1);
    let (pad_top, _) = padding.amounts(in_h, k_h, strides.0);
    let (pad_left, _) = padding.amounts(in_w, k_w, strides.1);
    ConvGeom {
        batch,
        in_h,
        in_w,
        in_c,
        k_h,
        k_w,
        out_c,
        out_h,
        out_w,
        pad_top,
        pad_left,
        stride: strides,
    }
}

/// Fills `colt` (`kdim × out_w`, *k-major*) with the transposed patch
/// matrix for output row `oy` of image `n`; padded positions become
/// zeros.
///
/// k-major layout makes each `(ky, kx, ic)` scratch row a strided walk
/// along one input row, so single-channel stride-1 convolutions (the
/// LeNet c1 shape) fill a whole row with one `copy_from_slice` instead
/// of `out_w` single-element copies — the scratch fill was the dominant
/// cost of small-channel strips, not the GEMM. The GEMM reads the
/// scratch through a transposed [`Layout`] (stride swap), which changes
/// neither the values nor any element's summation order.
fn im2col_strip_t<T: Float>(x: &[T], g: &ConvGeom, n: usize, oy: usize, colt: &mut [T]) {
    let (sh, sw) = g.stride;
    let krow = g.in_c * g.out_w;
    for ky in 0..g.k_h {
        let iy = (oy * sh + ky) as isize - g.pad_top as isize;
        let krows = &mut colt[ky * g.k_w * krow..(ky + 1) * g.k_w * krow];
        if iy < 0 || iy as usize >= g.in_h {
            krows.fill(T::zero());
            continue;
        }
        let row_base = (n * g.in_h + iy as usize) * g.in_w * g.in_c;
        for kx in 0..g.k_w {
            // `ix = ox·sw + off` must stay in `[0, in_w)`:
            let off = kx as isize - g.pad_left as isize;
            let ox_lo = if off >= 0 {
                0
            } else {
                ((-off) as usize).div_ceil(sw).min(g.out_w)
            };
            let ox_hi = if (g.in_w as isize) <= off {
                ox_lo
            } else {
                ((g.in_w as isize - off) as usize)
                    .div_ceil(sw)
                    .clamp(ox_lo, g.out_w)
            };
            let rows = &mut krows[kx * krow..(kx + 1) * krow];
            if g.in_c == 1 && sw == 1 {
                rows[..ox_lo].fill(T::zero());
                rows[ox_hi..].fill(T::zero());
                let src0 = (row_base as isize + ox_lo as isize + off) as usize;
                rows[ox_lo..ox_hi].copy_from_slice(&x[src0..src0 + (ox_hi - ox_lo)]);
            } else {
                for ic in 0..g.in_c {
                    let row = &mut rows[ic * g.out_w..(ic + 1) * g.out_w];
                    row[..ox_lo].fill(T::zero());
                    row[ox_hi..].fill(T::zero());
                    for (ox, slot) in row[ox_lo..ox_hi].iter_mut().enumerate() {
                        let ix = ((ox_lo + ox) * sw) as isize + off;
                        *slot = x[row_base + ix as usize * g.in_c + ic];
                    }
                }
            }
        }
    }
}

/// The original direct (no-scratch) forward loops, kept for small
/// problems where im2col setup costs more than it saves.
fn conv2d_direct<T: Float>(x: &[T], w: &[T], out: &mut [T], g: &ConvGeom) {
    for n in 0..g.batch {
        for oy in 0..g.out_h {
            for ox in 0..g.out_w {
                let out_base = ((n * g.out_h + oy) * g.out_w + ox) * g.out_c;
                for ky in 0..g.k_h {
                    let iy = (oy * g.stride.0 + ky) as isize - g.pad_top as isize;
                    if iy < 0 || iy as usize >= g.in_h {
                        continue;
                    }
                    for kx in 0..g.k_w {
                        let ix = (ox * g.stride.1 + kx) as isize - g.pad_left as isize;
                        if ix < 0 || ix as usize >= g.in_w {
                            continue;
                        }
                        let in_base = ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * g.in_c;
                        let w_base = (ky * g.k_w + kx) * g.in_c * g.out_c;
                        for ic in 0..g.in_c {
                            let xv = x[in_base + ic];
                            let wrow = &w[w_base + ic * g.out_c..w_base + (ic + 1) * g.out_c];
                            let orow = &mut out[out_base..out_base + g.out_c];
                            for (ov, &wv) in orow.iter_mut().zip(wrow) {
                                *ov += xv * wv;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Input-gradient loops for one image; `dx_img` is that image's
/// `in_h × in_w × in_c` slice.
fn backward_input_image<T: Float>(dy: &[T], w: &[T], dx_img: &mut [T], g: &ConvGeom, n: usize) {
    for oy in 0..g.out_h {
        for ox in 0..g.out_w {
            let out_base = ((n * g.out_h + oy) * g.out_w + ox) * g.out_c;
            for ky in 0..g.k_h {
                let iy = (oy * g.stride.0 + ky) as isize - g.pad_top as isize;
                if iy < 0 || iy as usize >= g.in_h {
                    continue;
                }
                for kx in 0..g.k_w {
                    let ix = (ox * g.stride.1 + kx) as isize - g.pad_left as isize;
                    if ix < 0 || ix as usize >= g.in_w {
                        continue;
                    }
                    let in_base = ((iy as usize) * g.in_w + ix as usize) * g.in_c;
                    let w_base = (ky * g.k_w + kx) * g.in_c * g.out_c;
                    for ic in 0..g.in_c {
                        let wrow = &w[w_base + ic * g.out_c..w_base + (ic + 1) * g.out_c];
                        let dyrow = &dy[out_base..out_base + g.out_c];
                        let mut acc = T::zero();
                        for (&wv, &dyv) in wrow.iter().zip(dyrow) {
                            acc += wv * dyv;
                        }
                        dx_img[in_base + ic] += acc;
                    }
                }
            }
        }
    }
}

/// Filter-gradient loops for one image, accumulated into `dw`.
fn backward_filter_image<T: Float>(x: &[T], dy: &[T], dw: &mut [T], g: &ConvGeom, n: usize) {
    for oy in 0..g.out_h {
        for ox in 0..g.out_w {
            let out_base = ((n * g.out_h + oy) * g.out_w + ox) * g.out_c;
            for ky in 0..g.k_h {
                let iy = (oy * g.stride.0 + ky) as isize - g.pad_top as isize;
                if iy < 0 || iy as usize >= g.in_h {
                    continue;
                }
                for kx in 0..g.k_w {
                    let ix = (ox * g.stride.1 + kx) as isize - g.pad_left as isize;
                    if ix < 0 || ix as usize >= g.in_w {
                        continue;
                    }
                    let in_base = ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * g.in_c;
                    let w_base = (ky * g.k_w + kx) * g.in_c * g.out_c;
                    for ic in 0..g.in_c {
                        let xv = x[in_base + ic];
                        let dyrow = &dy[out_base..out_base + g.out_c];
                        let dwrow = &mut dw[w_base + ic * g.out_c..w_base + (ic + 1) * g.out_c];
                        for (dwv, &dyv) in dwrow.iter_mut().zip(dyrow) {
                            *dwv += xv * dyv;
                        }
                    }
                }
            }
        }
    }
}

impl<T: Float> Tensor<T> {
    /// 2-D convolution: input `[N,H,W,Cin]` ⊛ filter `[Kh,Kw,Cin,Cout]` →
    /// `[N,H',W',Cout]`.
    ///
    /// Large problems run as im2col + packed GEMM, parallel over
    /// `batch × out_h` strips; results are bit-identical for every
    /// thread count.
    ///
    /// # Panics
    /// Panics on rank or channel mismatches, zero strides, or (for
    /// [`Padding::Valid`]) kernels larger than the input.
    pub fn conv2d(
        &self,
        filter: &Tensor<T>,
        strides: (usize, usize),
        padding: Padding,
    ) -> Tensor<T> {
        let g = geometry(self, filter, strides, padding);
        let x = self.as_slice();
        let w = filter.as_slice();
        let (mut out, out_recycled) =
            crate::pool::zeroed_vec::<T>(g.batch * g.out_h * g.out_w * g.out_c);
        let kdim = g.kdim();
        let macs = out.len() * kdim;
        if macs < DIRECT_MAX_MACS {
            conv2d_direct(x, w, &mut out, &g);
        } else {
            // HWIO row-major is already the [kdim, out_c] GEMM operand.
            let wp = gemm::pack_b(w, Layout::row_major(g.out_c), kdim, g.out_c);
            let strip = g.out_w * g.out_c;
            let strip_macs = (strip * kdim).max(1);
            let grain_strips = (CHUNK_MACS / strip_macs).max(1);
            s4tf_threads::parallel_chunks_mut(
                &mut out,
                strip,
                grain_strips * strip,
                |start, chunk| {
                    // One im2col scratch per chunk, reused across strips.
                    let mut colt = vec![T::zero(); g.out_w * kdim];
                    let strip0 = start / strip;
                    for (u, cslice) in chunk.chunks_mut(strip).enumerate() {
                        let id = strip0 + u;
                        let (n, oy) = (id / g.out_h, id % g.out_h);
                        im2col_strip_t(x, &g, n, oy, &mut colt);
                        gemm::gemm_rows(
                            &colt,
                            Layout::transposed(g.out_w),
                            &wp,
                            cslice,
                            g.out_c,
                            0..g.out_w,
                        );
                    }
                },
            );
        }
        Tensor::from_pooled_vec((out, out_recycled), &[g.batch, g.out_h, g.out_w, g.out_c])
    }

    /// Gradient of [`Tensor::conv2d`] with respect to its *input*,
    /// parallel over images (each image's `dx` slice is disjoint).
    ///
    /// `self` is the input (only its shape matters for geometry); `grad_out`
    /// has the forward output's shape.
    ///
    /// # Panics
    /// Panics on geometry mismatches.
    pub fn conv2d_backward_input(
        &self,
        filter: &Tensor<T>,
        grad_out: &Tensor<T>,
        strides: (usize, usize),
        padding: Padding,
    ) -> Tensor<T> {
        let g = geometry(self, filter, strides, padding);
        assert_eq!(
            grad_out.dims(),
            &[g.batch, g.out_h, g.out_w, g.out_c],
            "grad_out shape mismatch"
        );
        let dy = grad_out.as_slice();
        let w = filter.as_slice();
        let (mut dx, dx_recycled) =
            crate::pool::zeroed_vec::<T>(g.batch * g.in_h * g.in_w * g.in_c);
        let img = g.in_h * g.in_w * g.in_c;
        let img_macs = (g.out_h * g.out_w * g.out_c * g.kdim()).max(1);
        let grain_imgs = (CHUNK_MACS / img_macs).max(1);
        s4tf_threads::parallel_chunks_mut(&mut dx, img, grain_imgs * img, |start, chunk| {
            let n0 = start / img;
            for (u, dx_img) in chunk.chunks_mut(img).enumerate() {
                backward_input_image(dy, w, dx_img, &g, n0 + u);
            }
        });
        Tensor::from_pooled_vec((dx, dx_recycled), &[g.batch, g.in_h, g.in_w, g.in_c])
    }

    /// Gradient of [`Tensor::conv2d`] with respect to its *filter*,
    /// parallel over images: each chunk accumulates a private partial
    /// `dw`, combined in chunk order afterwards (so within every chunk
    /// the summation order is the serial one).
    ///
    /// # Panics
    /// Panics on geometry mismatches.
    pub fn conv2d_backward_filter(
        &self,
        filter_dims: &[usize],
        grad_out: &Tensor<T>,
        strides: (usize, usize),
        padding: Padding,
    ) -> Tensor<T> {
        let filter_shape = Tensor::<T>::zeros(filter_dims);
        let g = geometry(self, &filter_shape, strides, padding);
        assert_eq!(
            grad_out.dims(),
            &[g.batch, g.out_h, g.out_w, g.out_c],
            "grad_out shape mismatch"
        );
        let x = self.as_slice();
        let dy = grad_out.as_slice();
        let dw_len = g.k_h * g.k_w * g.in_c * g.out_c;
        let img_macs = (g.out_h * g.out_w * g.out_c * g.kdim()).max(1);
        let grain_imgs = (CHUNK_MACS / img_macs).max(1);
        let partials = s4tf_threads::parallel_map_chunks(0..g.batch, grain_imgs, |imgs| {
            let mut partial = vec![T::zero(); dw_len];
            for n in imgs {
                backward_filter_image(x, dy, &mut partial, &g, n);
            }
            partial
        });
        let (mut dw, dw_recycled) = crate::pool::zeroed_vec::<T>(dw_len);
        for partial in partials {
            for (acc, p) in dw.iter_mut().zip(partial) {
                *acc += p;
            }
        }
        Tensor::from_pooled_vec((dw, dw_recycled), filter_dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn conv_identity_filter() {
        // 1x1 filter with weight 1 is the identity.
        let x = Tensor::<f32>::from_fn(&[1, 3, 3, 1], |i| i as f32);
        let f = Tensor::<f32>::ones(&[1, 1, 1, 1]);
        assert_eq!(x.conv2d(&f, (1, 1), Padding::Valid), x);
    }

    #[test]
    fn conv_known_values_valid() {
        // 2x2 box filter over a 3x3 image.
        let x = Tensor::from_vec(
            vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 3, 3, 1],
        );
        let f = Tensor::<f32>::ones(&[2, 2, 1, 1]);
        let y = x.conv2d(&f, (1, 1), Padding::Valid);
        assert_eq!(y.dims(), &[1, 2, 2, 1]);
        assert_eq!(y.as_slice(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv_same_padding_shape() {
        let x = Tensor::<f32>::ones(&[2, 5, 5, 3]);
        let f = Tensor::<f32>::ones(&[3, 3, 3, 4]);
        let y = x.conv2d(&f, (1, 1), Padding::Same);
        assert_eq!(y.dims(), &[2, 5, 5, 4]);
        // center output = 3*3*3 = 27; corner = 2*2*3 = 12
        assert_eq!(y.at(&[0, 2, 2, 0]), 27.0);
        assert_eq!(y.at(&[0, 0, 0, 0]), 12.0);
    }

    #[test]
    fn conv_stride() {
        let x = Tensor::<f32>::from_fn(&[1, 4, 4, 1], |i| i as f32);
        let f = Tensor::<f32>::ones(&[2, 2, 1, 1]);
        let y = x.conv2d(&f, (2, 2), Padding::Valid);
        assert_eq!(y.dims(), &[1, 2, 2, 1]);
        assert_eq!(y.as_slice(), &[10.0, 18.0, 42.0, 50.0]);
    }

    #[test]
    fn conv_multi_channel() {
        // Input 2 channels, filter routes channel sums to 1 output channel.
        let x = Tensor::from_vec(vec![1.0f32, 10.0], &[1, 1, 1, 2]);
        let f = Tensor::from_vec(vec![2.0f32, 3.0], &[1, 1, 2, 1]);
        let y = x.conv2d(&f, (1, 1), Padding::Valid);
        assert_eq!(y.as_slice(), &[32.0]);
    }

    /// The im2col + GEMM path (sizes past `DIRECT_MAX_MACS`) must match
    /// a naive reference.
    #[test]
    fn conv_im2col_path_matches_naive() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let x = Tensor::<f32>::randn(&[3, 12, 12, 4], &mut rng);
        let w = Tensor::<f32>::randn(&[3, 3, 4, 8], &mut rng);
        for (padding, strides) in [(Padding::Same, (1, 1)), (Padding::Valid, (2, 1))] {
            let g = geometry(&x, &w, strides, padding);
            assert!(
                g.batch * g.out_h * g.out_w * g.out_c * g.kdim() >= DIRECT_MAX_MACS,
                "test must exercise the GEMM path"
            );
            let y = x.conv2d(&w, strides, padding);
            let mut naive = vec![0.0f32; g.batch * g.out_h * g.out_w * g.out_c];
            conv2d_direct(x.as_slice(), w.as_slice(), &mut naive, &g);
            let naive = Tensor::from_vec(naive, &[g.batch, g.out_h, g.out_w, g.out_c]);
            assert!(y.allclose(&naive, 1e-4), "padding {padding:?}");
        }
    }

    /// Finite-difference check of both gradient kernels.
    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x = Tensor::<f64>::randn(&[2, 5, 5, 2], &mut rng);
        let w = Tensor::<f64>::randn(&[3, 3, 2, 3], &mut rng);
        for padding in [Padding::Same, Padding::Valid] {
            let strides = (2, 1);
            let y = x.conv2d(&w, strides, padding);
            // loss = sum(y); dL/dy = ones
            let dy = Tensor::<f64>::ones(y.dims());
            let dx = x.conv2d_backward_input(&w, &dy, strides, padding);
            let dw = x.conv2d_backward_filter(w.dims(), &dy, strides, padding);
            let eps = 1e-5;
            // Check a sample of input coordinates.
            for flat in [0usize, 7, 23, 49] {
                let mut xp = x.clone();
                xp.as_mut_slice()[flat] += eps;
                let mut xm = x.clone();
                xm.as_mut_slice()[flat] -= eps;
                let num = (xp.conv2d(&w, strides, padding).sum().scalar_value()
                    - xm.conv2d(&w, strides, padding).sum().scalar_value())
                    / (2.0 * eps);
                assert!(
                    (num - dx.as_slice()[flat]).abs() < 1e-5,
                    "dx[{flat}] fd={num} ad={}",
                    dx.as_slice()[flat]
                );
            }
            for flat in [0usize, 5, 17, 53] {
                let mut wp = w.clone();
                wp.as_mut_slice()[flat] += eps;
                let mut wm = w.clone();
                wm.as_mut_slice()[flat] -= eps;
                let num = (x.conv2d(&wp, strides, padding).sum().scalar_value()
                    - x.conv2d(&wm, strides, padding).sum().scalar_value())
                    / (2.0 * eps);
                assert!(
                    (num - dw.as_slice()[flat]).abs() < 1e-5,
                    "dw[{flat}] fd={num} ad={}",
                    dw.as_slice()[flat]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn conv_channel_mismatch_panics() {
        let x = Tensor::<f32>::ones(&[1, 3, 3, 2]);
        let f = Tensor::<f32>::ones(&[2, 2, 3, 1]);
        x.conv2d(&f, (1, 1), Padding::Valid);
    }
}
