//! Matrix multiplication: a packed, multi-threaded GEMM (see
//! [`super::gemm`]) with a cache-blocked serial path for small products,
//! plus the transposed variants needed by the Dense layer's pullback.

use super::gemm::{self, Layout};
use crate::dtype::Scalar;
use crate::tensor::Tensor;

/// Cache block edge (elements) for the serial kernel. 64×64 f32 blocks
/// fit comfortably in L1.
const BLOCK: usize = 64;

/// Products below this many multiply-accumulates (≈32³) run the serial
/// kernels: packing and pool dispatch cost more than they save.
const PACKED_MIN_MACS: usize = 1 << 15;

/// Dot products per matvec chunk (so tiny row counts stay inline).
const MATVEC_CHUNK_MACS: usize = 1 << 14;

fn gemm_serial<T: Scalar>(a: &[T], b: &[T], c: &mut [T], m: usize, k: usize, n: usize) {
    // C[m,n] += A[m,k] * B[k,n], blocked over all three loops with an
    // i-k-j inner order so the innermost loop streams B and C rows.
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j1 = (j0 + BLOCK).min(n);
                for i in i0..i1 {
                    for kk in k0..k1 {
                        let aik = a[i * k + kk];
                        let brow = &b[kk * n + j0..kk * n + j1];
                        let crow = &mut c[i * n + j0..i * n + j1];
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        }
    }
}

impl<T: Scalar> Tensor<T> {
    /// Matrix product of two rank-2 tensors: `[m,k] × [k,n] → [m,n]`.
    ///
    /// Large products run on the thread pool (see DESIGN.md, "CPU
    /// parallelism"); results are bit-identical for every thread count.
    ///
    /// # Panics
    /// Panics unless both operands are rank 2 with matching inner dims.
    pub fn matmul(&self, rhs: &Tensor<T>) -> Tensor<T> {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(rhs.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        assert_eq!(k, k2, "matmul inner dims differ: {}x{k} vs {k2}x{n}", m);
        if n == 1 {
            // A column vector on the right is a matrix–vector product;
            // the dedicated row-dot kernel skips packing entirely.
            return self.matvec(&rhs.reshape(&[k])).reshape(&[m, 1]);
        }
        let (mut out, out_recycled) = crate::pool::zeroed_vec::<T>(m * n);
        if m * k * n < PACKED_MIN_MACS {
            gemm_serial(self.as_slice(), rhs.as_slice(), &mut out, m, k, n);
        } else {
            gemm::gemm_parallel(
                self.as_slice(),
                Layout::row_major(k),
                rhs.as_slice(),
                Layout::row_major(n),
                &mut out,
                k,
                n,
            );
        }
        Tensor::from_pooled_vec((out, out_recycled), &[m, n])
    }

    /// `selfᵀ × rhs`: `[k,m]ᵀ × [k,n] → [m,n]`, without materializing the
    /// transpose (used by the Dense-layer weight gradient).
    ///
    /// # Panics
    /// Panics unless both operands are rank 2 with matching leading dims.
    pub fn matmul_tn(&self, rhs: &Tensor<T>) -> Tensor<T> {
        assert_eq!(self.rank(), 2, "matmul_tn lhs must be rank 2");
        assert_eq!(rhs.rank(), 2, "matmul_tn rhs must be rank 2");
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (rhs.dims()[0], rhs.dims()[1]);
        assert_eq!(k, k2, "matmul_tn leading dims differ");
        let a = self.as_slice();
        let b = rhs.as_slice();
        let (mut out, out_recycled) = crate::pool::zeroed_vec::<T>(m * n);
        if m * k * n < PACKED_MIN_MACS {
            for kk in 0..k {
                for i in 0..m {
                    let av = a[kk * m + i];
                    let brow = &b[kk * n..(kk + 1) * n];
                    let crow = &mut out[i * n..(i + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
        } else {
            // The transpose is only a stride swap on A; the micro-kernel
            // then reads its MR rows as contiguous runs of the stored A.
            gemm::gemm_parallel(
                a,
                Layout::transposed(m),
                b,
                Layout::row_major(n),
                &mut out,
                k,
                n,
            );
        }
        Tensor::from_pooled_vec((out, out_recycled), &[m, n])
    }

    /// `self × rhsᵀ`: `[m,k] × [n,k]ᵀ → [m,n]`, without materializing the
    /// transpose (used by the Dense-layer input gradient).
    ///
    /// # Panics
    /// Panics unless both operands are rank 2 with matching trailing dims.
    pub fn matmul_nt(&self, rhs: &Tensor<T>) -> Tensor<T> {
        assert_eq!(self.rank(), 2, "matmul_nt lhs must be rank 2");
        assert_eq!(rhs.rank(), 2, "matmul_nt rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (rhs.dims()[0], rhs.dims()[1]);
        assert_eq!(k, k2, "matmul_nt trailing dims differ");
        let a = self.as_slice();
        let b = rhs.as_slice();
        let (mut out, out_recycled) = crate::pool::zeroed_vec::<T>(m * n);
        if m * k * n < PACKED_MIN_MACS {
            // Serial path: hoist the A row out of the j loop and walk j
            // in strips of NR accumulators so one pass over the row's k
            // range feeds NR dot products.
            const STRIP: usize = gemm::NR;
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                let crow = &mut out[i * n..(i + 1) * n];
                for j0 in (0..n).step_by(STRIP) {
                    let nr = STRIP.min(n - j0);
                    let mut acc = [T::zero(); STRIP];
                    for (s, slot) in acc.iter_mut().enumerate().take(nr) {
                        let brow = &b[(j0 + s) * k..(j0 + s + 1) * k];
                        let mut sum = T::zero();
                        for (&av, &bv) in arow.iter().zip(brow) {
                            sum += av * bv;
                        }
                        *slot = sum;
                    }
                    crow[j0..j0 + nr].copy_from_slice(&acc[..nr]);
                }
            }
        } else {
            gemm::gemm_parallel(
                a,
                Layout::row_major(k),
                b,
                Layout::transposed(k),
                &mut out,
                k,
                n,
            );
        }
        Tensor::from_pooled_vec((out, out_recycled), &[m, n])
    }

    /// Matrix–vector product: `[m,k] × [k] → [m]`, one dot product per
    /// output row, split across the thread pool for large `m`.
    ///
    /// # Panics
    /// Panics unless `self` is rank 2, `rhs` rank 1 with matching dims.
    pub fn matvec(&self, rhs: &Tensor<T>) -> Tensor<T> {
        assert_eq!(self.rank(), 2, "matvec lhs must be rank 2");
        assert_eq!(rhs.rank(), 1, "matvec rhs must be rank 1");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        assert_eq!(
            k,
            rhs.dims()[0],
            "matvec inner dims differ: {m}x{k} vs {}",
            rhs.dims()[0]
        );
        let a = self.as_slice();
        let v = rhs.as_slice();
        let (mut out, out_recycled) = crate::pool::zeroed_vec::<T>(m);
        let grain = (MATVEC_CHUNK_MACS / k.max(1)).max(1);
        s4tf_threads::parallel_chunks_mut(&mut out, 1, grain, |start, chunk| {
            if crate::simd::simd_enabled() {
                if let (Some(af), Some(vf)) =
                    (crate::simd::as_f32_slice(a), crate::simd::as_f32_slice(v))
                {
                    let cf = crate::simd::as_f32_slice_mut(chunk).expect("T is f32");
                    crate::simd::vectorize(|| {
                        for (r, slot) in cf.iter_mut().enumerate() {
                            *slot =
                                crate::simd::dot_f32(&af[(start + r) * k..(start + r + 1) * k], vf);
                        }
                    });
                    return;
                }
            }
            for (r, slot) in chunk.iter_mut().enumerate() {
                let row = &a[(start + r) * k..(start + r + 1) * k];
                let mut acc = T::zero();
                for (&av, &vv) in row.iter().zip(v) {
                    acc += av * vv;
                }
                *slot = acc;
            }
        });
        Tensor::from_pooled_vec((out, out_recycled), &[m])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn t(data: &[f32], dims: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(data.to_vec(), dims)
    }

    #[test]
    fn small_matmul() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        assert_eq!(a.matmul(&b).as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rectangular() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        assert_eq!(a.matmul(&b).as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn dim_mismatch() {
        t(&[1.0, 2.0], &[1, 2]).matmul(&t(&[1.0], &[1, 1]));
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = Tensor::<f32>::randn(&[7, 5], &mut rng);
        let b = Tensor::<f32>::randn(&[7, 4], &mut rng);
        assert!(a.matmul_tn(&b).allclose(&a.t().matmul(&b), 1e-4));
        let c = Tensor::<f32>::randn(&[6, 5], &mut rng);
        let d = Tensor::<f32>::randn(&[9, 5], &mut rng);
        assert!(c.matmul_nt(&d).allclose(&c.matmul(&d.t()), 1e-4));
    }

    #[test]
    fn transposed_variants_match_above_packed_threshold() {
        // Sizes past PACKED_MIN_MACS so the packed engine (with its
        // stride-swapped layouts) is what actually runs.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let a = Tensor::<f32>::randn(&[90, 40], &mut rng);
        let b = Tensor::<f32>::randn(&[90, 35], &mut rng);
        assert!(a.matmul_tn(&b).allclose(&a.t().matmul(&b), 1e-3));
        let c = Tensor::<f32>::randn(&[40, 90], &mut rng);
        let d = Tensor::<f32>::randn(&[35, 90], &mut rng);
        assert!(c.matmul_nt(&d).allclose(&c.matmul(&d.t()), 1e-3));
    }

    #[test]
    fn blocked_gemm_matches_naive_large() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = Tensor::<f32>::randn(&[70, 130], &mut rng);
        let b = Tensor::<f32>::randn(&[130, 65], &mut rng);
        let fast = a.matmul(&b);
        // naive reference
        let mut naive = vec![0.0f32; 70 * 65];
        for i in 0..70 {
            for j in 0..65 {
                let mut acc = 0.0;
                for k in 0..130 {
                    acc += a.as_slice()[i * 130 + k] * b.as_slice()[k * 65 + j];
                }
                naive[i * 65 + j] = acc;
            }
        }
        let naive = Tensor::from_vec(naive, &[70, 65]);
        assert!(fast.allclose(&naive, 1e-3));
    }

    #[test]
    fn matvec() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let v = t(&[1.0, 1.0], &[2]);
        assert_eq!(a.matvec(&v).as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn matmul_with_column_vector_matches_matvec() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = Tensor::<f32>::randn(&[23, 17], &mut rng);
        let v = Tensor::<f32>::randn(&[17], &mut rng);
        let col = v.reshape(&[17, 1]);
        let via_matmul = a.matmul(&col);
        assert_eq!(via_matmul.dims(), &[23, 1]);
        assert_eq!(via_matmul.as_slice(), a.matvec(&v).as_slice());
    }

    #[test]
    #[should_panic(expected = "matvec inner dims differ")]
    fn matvec_dim_mismatch() {
        t(&[1.0, 2.0], &[1, 2]).matvec(&t(&[1.0], &[1]));
    }

    #[test]
    fn integer_matmul() {
        let a = Tensor::from_vec(vec![1i32, 2, 3, 4], &[2, 2]);
        let b = Tensor::from_vec(vec![1i32, 0, 0, 1], &[2, 2]);
        assert_eq!(a.matmul(&b), a);
    }
}
