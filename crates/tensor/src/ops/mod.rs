//! Tensor kernels: the operation suite the paper's Tensor type exposes (§3).
//!
//! Every differentiable kernel has a corresponding *gradient kernel* in the
//! same module (e.g. [`Tensor::conv2d`](crate::Tensor::conv2d) ↔
//! [`Tensor::conv2d_backward_input`](crate::Tensor::conv2d_backward_input)),
//! so the AD layers in `s4tf-core` / `s4tf-nn` can register pullbacks without
//! re-deriving kernels.

pub mod arith;
pub mod conv;
pub mod elementwise;
pub(crate) mod gemm;
pub mod matmul;
pub mod nn_ops;
pub mod pool;
pub mod reduce;
pub mod shape_ops;
