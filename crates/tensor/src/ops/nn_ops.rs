//! Neural-network-specific kernels: softmax, log-softmax, one-hot, and
//! numerically stable cross-entropy helpers.

use crate::dtype::{Float, Scalar};
use crate::tensor::Tensor;

impl<T: Float> Tensor<T> {
    /// Numerically stable softmax along the last axis.
    ///
    /// # Panics
    /// Panics on rank-0 tensors.
    pub fn softmax(&self) -> Tensor<T> {
        assert!(self.rank() >= 1, "softmax requires rank >= 1");
        let axis = self.rank() - 1;
        let maxes = self.max_axis(axis, true);
        let shifted = self.sub(&maxes);
        let exps = shifted.exp();
        let sums = exps.sum_axis(axis, true);
        exps.div(&sums)
    }

    /// Numerically stable log-softmax along the last axis.
    ///
    /// # Panics
    /// Panics on rank-0 tensors.
    pub fn log_softmax(&self) -> Tensor<T> {
        assert!(self.rank() >= 1, "log_softmax requires rank >= 1");
        let axis = self.rank() - 1;
        let maxes = self.max_axis(axis, true);
        let shifted = self.sub(&maxes);
        let log_sum = shifted.exp().sum_axis(axis, true).ln();
        shifted.sub(&log_sum)
    }
}

impl<T: Scalar> Tensor<T> {
    /// One-hot encodes class labels: `[n] → [n, depth]`.
    ///
    /// # Panics
    /// Panics if any label is `>= depth` or negative.
    pub fn one_hot(labels: &[usize], depth: usize) -> Tensor<T> {
        let (mut data, data_recycled) = crate::pool::zeroed_vec::<T>(labels.len() * depth);
        for (row, &l) in labels.iter().enumerate() {
            assert!(l < depth, "label {l} >= depth {depth}");
            data[row * depth + l] = T::one();
        }
        Tensor::from_pooled_vec((data, data_recycled), &[labels.len(), depth])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(data.to_vec(), dims)
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = t(&[1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = x.softmax();
        for row in 0..2 {
            let sum: f32 = (0..3).map(|c| s.at(&[row, c])).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // monotone in logits
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
    }

    #[test]
    fn softmax_shift_invariant_and_stable() {
        let x = t(&[1000.0, 1001.0, 1002.0], &[3]);
        let s = x.softmax();
        assert!(s.all_finite(), "softmax must not overflow");
        let y = t(&[0.0, 1.0, 2.0], &[3]).softmax();
        assert!(s.allclose(&y, 1e-6));
    }

    #[test]
    fn log_softmax_matches_ln_of_softmax() {
        let x = t(&[0.5, -0.2, 1.3, 0.0], &[2, 2]);
        let a = x.log_softmax();
        let b = x.softmax().ln();
        assert!(a.allclose(&b, 1e-5));
    }

    #[test]
    fn one_hot() {
        let oh: Tensor<f32> = Tensor::one_hot(&[0, 2, 1], 3);
        assert_eq!(oh.dims(), &[3, 3]);
        assert_eq!(
            oh.as_slice(),
            &[1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0]
        );
    }

    #[test]
    #[should_panic(expected = ">= depth")]
    fn one_hot_out_of_range_panics() {
        let _: Tensor<f32> = Tensor::one_hot(&[3], 3);
    }
}
