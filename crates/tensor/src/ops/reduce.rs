//! Reduction kernels: sum / mean / max over all elements or along an axis,
//! plus `argmax` and the gradient helper `unreduce`.

use crate::dtype::{Float, Scalar};
use crate::tensor::Tensor;

impl<T: Scalar> Tensor<T> {
    /// Sum of all elements, as a rank-0 tensor.
    pub fn sum(&self) -> Tensor<T> {
        Tensor::scalar(self.as_slice().iter().copied().sum())
    }

    /// Sum along `axis`. With `keep_dims` the axis is retained with extent 1.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    pub fn sum_axis(&self, axis: usize, keep_dims: bool) -> Tensor<T> {
        self.reduce_axis(axis, keep_dims, T::zero(), |acc, x| acc + x)
    }

    /// Sum along several axes (deduplicated), keeping dims.
    ///
    /// # Panics
    /// Panics if any axis is out of range.
    pub fn sum_axes_keep(&self, axes: &[usize]) -> Tensor<T> {
        let mut sorted: Vec<usize> = axes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut out = self.clone();
        for &axis in &sorted {
            out = out.sum_axis(axis, true);
        }
        out
    }

    /// Reduces a gradient of shape `self.dims()` back to `target_dims` by
    /// summing over broadcast axes — the pullback of broadcasting.
    ///
    /// # Panics
    /// Panics if `target_dims` does not broadcast to `self.dims()`.
    pub fn reduce_to_shape(&self, target_dims: &[usize]) -> Tensor<T> {
        let target = crate::Shape::new(target_dims);
        if self.shape() == &target {
            return self.clone();
        }
        let axes = target.broadcast_reduction_axes(self.shape());
        let summed = self.sum_axes_keep(&axes);
        summed.reshape(target_dims)
    }

    /// Maximum element, as a rank-0 tensor.
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn max(&self) -> Tensor<T> {
        assert!(self.num_elements() > 0, "max of empty tensor");
        let m = self
            .as_slice()
            .iter()
            .copied()
            .fold(self.as_slice()[0], |a, b| a.maximum(b));
        Tensor::scalar(m)
    }

    /// Minimum element, as a rank-0 tensor.
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn min(&self) -> Tensor<T> {
        assert!(self.num_elements() > 0, "min of empty tensor");
        let m = self
            .as_slice()
            .iter()
            .copied()
            .fold(self.as_slice()[0], |a, b| a.minimum(b));
        Tensor::scalar(m)
    }

    /// Maximum along `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= rank` or the axis has extent 0.
    pub fn max_axis(&self, axis: usize, keep_dims: bool) -> Tensor<T> {
        assert!(self.dims()[axis] > 0, "max over empty axis");
        let mut out: Option<Tensor<T>> = None;
        for i in 0..self.dims()[axis] {
            let s = self.slice_axis(axis, i, 1);
            out = Some(match out {
                None => s,
                Some(acc) => acc.max_elements(&s),
            });
        }
        let out = out.unwrap();
        if keep_dims {
            out
        } else {
            out.squeeze(axis)
        }
    }

    /// Index of the maximum element along `axis` (ties favor the first).
    ///
    /// # Panics
    /// Panics if `axis >= rank` or the axis has extent 0.
    pub fn argmax_axis(&self, axis: usize) -> Tensor<i64> {
        assert!(axis < self.rank(), "axis out of range");
        let d = self.dims()[axis];
        assert!(d > 0, "argmax over empty axis");
        let outer: usize = self.dims()[..axis].iter().product();
        let inner: usize = self.dims()[axis + 1..].iter().product();
        let src = self.as_slice();
        let mut out = vec![0i64; outer * inner];
        for o in 0..outer {
            for i in 0..inner {
                let mut best = src[o * d * inner + i];
                let mut best_idx = 0i64;
                for k in 1..d {
                    let v = src[o * d * inner + k * inner + i];
                    if v > best {
                        best = v;
                        best_idx = k as i64;
                    }
                }
                out[o * inner + i] = best_idx;
            }
        }
        let dims = self.shape().removing(axis);
        Tensor::from_vec(out, dims.dims())
    }

    fn reduce_axis(
        &self,
        axis: usize,
        keep_dims: bool,
        init: T,
        f: impl Fn(T, T) -> T,
    ) -> Tensor<T> {
        assert!(axis < self.rank(), "axis {axis} out of range");
        let d = self.dims()[axis];
        let outer: usize = self.dims()[..axis].iter().product();
        let inner: usize = self.dims()[axis + 1..].iter().product();
        let src = self.as_slice();
        let mut out = vec![init; outer * inner];
        for o in 0..outer {
            for k in 0..d {
                let base = o * d * inner + k * inner;
                for i in 0..inner {
                    out[o * inner + i] = f(out[o * inner + i], src[base + i]);
                }
            }
        }
        let shape = if keep_dims {
            self.shape().keeping(axis)
        } else {
            self.shape().removing(axis)
        };
        Tensor::from_vec(out, shape.dims())
    }
}

impl<T: Float> Tensor<T> {
    /// Mean of all elements, as a rank-0 tensor.
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn mean(&self) -> Tensor<T> {
        assert!(self.num_elements() > 0, "mean of empty tensor");
        self.sum().div_scalar(T::from_usize(self.num_elements()))
    }

    /// Mean along `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    pub fn mean_axis(&self, axis: usize, keep_dims: bool) -> Tensor<T> {
        self.sum_axis(axis, keep_dims)
            .div_scalar(T::from_usize(self.dims()[axis]))
    }

    /// Variance along `axis` (population variance).
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    pub fn var_axis(&self, axis: usize, keep_dims: bool) -> Tensor<T> {
        let mean = self.mean_axis(axis, true);
        let centered = self.sub(&mean);
        centered.square().mean_axis(axis, keep_dims)
    }

    /// Euclidean (L2) norm of all elements, as a plain scalar.
    pub fn norm(&self) -> T {
        self.square().sum().scalar_value().sqrt_()
    }

    /// Dot product with another tensor of identical shape.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn dot(&self, other: &Tensor<T>) -> T {
        assert_eq!(self.shape(), other.shape(), "dot requires identical shapes");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| a * b)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(data.to_vec(), dims)
    }

    #[test]
    fn sum_all_and_axis() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.sum().scalar_value(), 21.0);
        assert_eq!(a.sum_axis(0, false).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sum_axis(1, false).as_slice(), &[6.0, 15.0]);
        let k = a.sum_axis(1, true);
        assert_eq!(k.dims(), &[2, 1]);
    }

    #[test]
    fn sum_axes_keep_dedups() {
        let a = Tensor::<f32>::ones(&[2, 3, 4]);
        let s = a.sum_axes_keep(&[0, 2, 0]);
        assert_eq!(s.dims(), &[1, 3, 1]);
        assert_eq!(s.as_slice(), &[8.0, 8.0, 8.0]);
    }

    #[test]
    fn reduce_to_shape_inverts_broadcast() {
        let grad = Tensor::<f32>::ones(&[4, 2, 3]);
        assert_eq!(grad.reduce_to_shape(&[1, 3]).as_slice(), &[8.0, 8.0, 8.0]);
        assert_eq!(grad.reduce_to_shape(&[3]).as_slice(), &[8.0, 8.0, 8.0]);
        let s = grad.reduce_to_shape(&[]);
        assert_eq!(s.scalar_value(), 24.0);
        assert_eq!(grad.reduce_to_shape(&[4, 2, 3]), grad);
    }

    #[test]
    fn min_max() {
        let a = t(&[3.0, -1.0, 2.0], &[3]);
        assert_eq!(a.max().scalar_value(), 3.0);
        assert_eq!(a.min().scalar_value(), -1.0);
        let m = t(&[1.0, 5.0, 3.0, 2.0], &[2, 2]);
        assert_eq!(m.max_axis(0, false).as_slice(), &[3.0, 5.0]);
        assert_eq!(m.max_axis(1, false).as_slice(), &[5.0, 3.0]);
        assert_eq!(m.max_axis(1, true).dims(), &[2, 1]);
    }

    #[test]
    fn argmax() {
        let m = t(&[1.0, 5.0, 3.0, 2.0, 9.0, 0.0], &[2, 3]);
        assert_eq!(m.argmax_axis(1).as_slice(), &[1, 1]);
        assert_eq!(m.argmax_axis(0).as_slice(), &[1, 1, 0]);
        // ties favor first
        let ties = t(&[2.0, 2.0], &[1, 2]);
        assert_eq!(ties.argmax_axis(1).as_slice(), &[0]);
    }

    #[test]
    fn mean_var_norm_dot() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.mean().scalar_value(), 2.5);
        assert_eq!(a.mean_axis(0, false).as_slice(), &[2.0, 3.0]);
        let v = a.var_axis(0, false);
        assert_eq!(v.as_slice(), &[1.0, 1.0]);
        assert_eq!(t(&[3.0, 4.0], &[2]).norm(), 5.0);
        assert_eq!(t(&[1.0, 2.0], &[2]).dot(&t(&[3.0, 4.0], &[2])), 11.0);
    }
}
