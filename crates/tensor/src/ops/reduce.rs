//! Reduction kernels: sum / mean / max over all elements or along an axis,
//! plus `argmax` and the gradient helper `unreduce`.

use crate::dtype::{Float, Scalar};
use crate::simd;
use crate::tensor::Tensor;

/// Serial-order sum of one slice, dispatched to the lane-parallel
/// [`simd::sum_f32`] for f32 when SIMD is on. The lane path reassociates
/// within the slice (documented on `sum_f32`); callers hand whole chunks
/// here and combine partials in chunk order, so the thread count never
/// changes the result on either path.
fn sum_slice<T: Scalar>(xs: &[T]) -> T {
    if simd::simd_enabled() {
        if let Some(f) = simd::as_f32_slice(xs) {
            let mut out = T::zero();
            simd::write_f32(&mut out, simd::vectorize(|| simd::sum_f32(f)));
            return out;
        }
    }
    xs.iter().copied().sum()
}

/// `Scalar::maximum` fold of a non-empty slice (lane path for f32).
fn max_slice<T: Scalar>(xs: &[T]) -> T {
    if simd::simd_enabled() {
        if let Some(f) = simd::as_f32_slice(xs) {
            let mut out = T::zero();
            simd::write_f32(&mut out, simd::vectorize(|| simd::max_f32(f)));
            return out;
        }
    }
    xs.iter().copied().fold(xs[0], |a, b| a.maximum(b))
}

/// `Scalar::minimum` fold of a non-empty slice (lane path for f32).
fn min_slice<T: Scalar>(xs: &[T]) -> T {
    if simd::simd_enabled() {
        if let Some(f) = simd::as_f32_slice(xs) {
            let mut out = T::zero();
            simd::write_f32(&mut out, simd::vectorize(|| simd::min_f32(f)));
            return out;
        }
    }
    xs.iter().copied().fold(xs[0], |a, b| a.minimum(b))
}

impl<T: Scalar> Tensor<T> {
    /// Sum of all elements, as a rank-0 tensor.
    ///
    /// Large tensors sum per-chunk partials on the thread pool, combined
    /// in chunk-index order: exact for integers; for floats the order
    /// within each chunk is the serial one (or the fixed lane-striped
    /// order of [`simd::sum_f32`] on the SIMD path), so results are
    /// deterministic for a fixed thread count (DESIGN.md, "CPU
    /// parallelism").
    pub fn sum(&self) -> Tensor<T> {
        let src = self.as_slice();
        if src.len() < crate::par::REDUCE_GRAIN {
            return Tensor::scalar(sum_slice(src));
        }
        let parts =
            s4tf_threads::parallel_map_chunks(0..src.len(), crate::par::REDUCE_GRAIN, |r| {
                sum_slice(&src[r])
            });
        Tensor::scalar(parts.into_iter().sum())
    }

    /// Sum along `axis`. With `keep_dims` the axis is retained with extent 1.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    pub fn sum_axis(&self, axis: usize, keep_dims: bool) -> Tensor<T> {
        self.reduce_axis(axis, keep_dims, T::zero(), |acc, x| acc + x)
    }

    /// Sum along several axes (deduplicated), keeping dims.
    ///
    /// # Panics
    /// Panics if any axis is out of range.
    pub fn sum_axes_keep(&self, axes: &[usize]) -> Tensor<T> {
        let mut sorted: Vec<usize> = axes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut out = self.clone();
        for &axis in &sorted {
            out = out.sum_axis(axis, true);
        }
        out
    }

    /// Reduces a gradient of shape `self.dims()` back to `target_dims` by
    /// summing over broadcast axes — the pullback of broadcasting.
    ///
    /// # Panics
    /// Panics if `target_dims` does not broadcast to `self.dims()`.
    pub fn reduce_to_shape(&self, target_dims: &[usize]) -> Tensor<T> {
        let target = crate::Shape::new(target_dims);
        if self.shape() == &target {
            return self.clone();
        }
        let axes = target.broadcast_reduction_axes(self.shape());
        let summed = self.sum_axes_keep(&axes);
        summed.reshape(target_dims)
    }

    /// Maximum element, as a rank-0 tensor.
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn max(&self) -> Tensor<T> {
        assert!(self.num_elements() > 0, "max of empty tensor");
        let src = self.as_slice();
        if src.len() < crate::par::REDUCE_GRAIN {
            return Tensor::scalar(max_slice(src));
        }
        // max is associative and commutative, so the chunk combine (and
        // the lane reduction) is exact for floats too.
        let parts =
            s4tf_threads::parallel_map_chunks(0..src.len(), crate::par::REDUCE_GRAIN, |r| {
                max_slice(&src[r])
            });
        Tensor::scalar(parts.into_iter().fold(src[0], |a, b| a.maximum(b)))
    }

    /// Minimum element, as a rank-0 tensor.
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn min(&self) -> Tensor<T> {
        assert!(self.num_elements() > 0, "min of empty tensor");
        let src = self.as_slice();
        if src.len() < crate::par::REDUCE_GRAIN {
            return Tensor::scalar(min_slice(src));
        }
        let parts =
            s4tf_threads::parallel_map_chunks(0..src.len(), crate::par::REDUCE_GRAIN, |r| {
                min_slice(&src[r])
            });
        Tensor::scalar(parts.into_iter().fold(src[0], |a, b| a.minimum(b)))
    }

    /// Maximum along `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= rank` or the axis has extent 0.
    pub fn max_axis(&self, axis: usize, keep_dims: bool) -> Tensor<T> {
        assert!(self.dims()[axis] > 0, "max over empty axis");
        let mut out: Option<Tensor<T>> = None;
        for i in 0..self.dims()[axis] {
            let s = self.slice_axis(axis, i, 1);
            out = Some(match out {
                None => s,
                Some(acc) => acc.max_elements(&s),
            });
        }
        let out = out.unwrap();
        if keep_dims {
            out
        } else {
            out.squeeze(axis)
        }
    }

    /// Index of the maximum element along `axis` (ties favor the first).
    ///
    /// # Panics
    /// Panics if `axis >= rank` or the axis has extent 0.
    pub fn argmax_axis(&self, axis: usize) -> Tensor<i64> {
        assert!(axis < self.rank(), "axis out of range");
        let d = self.dims()[axis];
        assert!(d > 0, "argmax over empty axis");
        let outer: usize = self.dims()[..axis].iter().product();
        let inner: usize = self.dims()[axis + 1..].iter().product();
        let src = self.as_slice();
        let (mut out, out_recycled) = crate::pool::zeroed_vec::<i64>(outer * inner);
        if !out.is_empty() {
            let grain = (crate::par::REDUCE_GRAIN / d.max(1)).max(1);
            s4tf_threads::parallel_chunks_mut(&mut out, inner, grain, |start, chunk| {
                let o0 = start / inner;
                for (u, orow) in chunk.chunks_mut(inner).enumerate() {
                    let o = o0 + u;
                    for (i, slot) in orow.iter_mut().enumerate() {
                        let mut best = src[o * d * inner + i];
                        let mut best_idx = 0i64;
                        for k in 1..d {
                            let v = src[o * d * inner + k * inner + i];
                            if v > best {
                                best = v;
                                best_idx = k as i64;
                            }
                        }
                        *slot = best_idx;
                    }
                }
            });
        }
        let dims = self.shape().removing(axis);
        Tensor::from_pooled_vec((out, out_recycled), dims.dims())
    }

    fn reduce_axis(
        &self,
        axis: usize,
        keep_dims: bool,
        init: T,
        f: impl Fn(T, T) -> T + Sync,
    ) -> Tensor<T> {
        assert!(axis < self.rank(), "axis {axis} out of range");
        let d = self.dims()[axis];
        let outer: usize = self.dims()[..axis].iter().product();
        let inner: usize = self.dims()[axis + 1..].iter().product();
        let src = self.as_slice();
        let (mut out, out_recycled) = crate::pool::filled_vec(outer * inner, init);
        if !out.is_empty() {
            // Chunks split on whole output rows (quantum = inner), so
            // every output element is reduced by one task in the serial
            // k-order — bit-identical for every thread count.
            let grain = (crate::par::REDUCE_GRAIN / d.max(1)).max(1);
            s4tf_threads::parallel_chunks_mut(&mut out, inner, grain, |start, chunk| {
                let o0 = start / inner;
                // Codegen-only vectorization of the inner-stride loop:
                // the k-order per output element is unchanged, so both
                // dispatch paths are bit-identical.
                simd::vectorize(|| {
                    for (u, orow) in chunk.chunks_mut(inner).enumerate() {
                        let o = o0 + u;
                        for k in 0..d {
                            let base = o * d * inner + k * inner;
                            for (i, ov) in orow.iter_mut().enumerate() {
                                *ov = f(*ov, src[base + i]);
                            }
                        }
                    }
                });
            });
        }
        let shape = if keep_dims {
            self.shape().keeping(axis)
        } else {
            self.shape().removing(axis)
        };
        Tensor::from_pooled_vec((out, out_recycled), shape.dims())
    }
}

impl<T: Float> Tensor<T> {
    /// Mean of all elements, as a rank-0 tensor.
    ///
    /// # Panics
    /// Panics on an empty tensor.
    pub fn mean(&self) -> Tensor<T> {
        assert!(self.num_elements() > 0, "mean of empty tensor");
        self.sum().div_scalar(T::from_usize(self.num_elements()))
    }

    /// Mean along `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    pub fn mean_axis(&self, axis: usize, keep_dims: bool) -> Tensor<T> {
        self.sum_axis(axis, keep_dims)
            .div_scalar(T::from_usize(self.dims()[axis]))
    }

    /// Variance along `axis` (population variance).
    ///
    /// # Panics
    /// Panics if `axis >= rank`.
    pub fn var_axis(&self, axis: usize, keep_dims: bool) -> Tensor<T> {
        let mean = self.mean_axis(axis, true);
        let centered = self.sub(&mean);
        centered.square().mean_axis(axis, keep_dims)
    }

    /// Euclidean (L2) norm of all elements, as a plain scalar.
    pub fn norm(&self) -> T {
        self.square().sum().scalar_value().sqrt_()
    }

    /// Dot product with another tensor of identical shape.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn dot(&self, other: &Tensor<T>) -> T {
        assert_eq!(self.shape(), other.shape(), "dot requires identical shapes");
        let a = self.as_slice();
        let b = other.as_slice();
        fn dot_slices<T: Float>(a: &[T], b: &[T]) -> T {
            if simd::simd_enabled() {
                if let (Some(af), Some(bf)) = (simd::as_f32_slice(a), simd::as_f32_slice(b)) {
                    let mut out = T::zero();
                    simd::write_f32(&mut out, simd::vectorize(|| simd::dot_f32(af, bf)));
                    return out;
                }
            }
            a.iter().zip(b).map(|(&x, &y)| x * y).sum()
        }
        if a.len() < crate::par::REDUCE_GRAIN {
            return dot_slices(a, b);
        }
        let parts = s4tf_threads::parallel_map_chunks(0..a.len(), crate::par::REDUCE_GRAIN, |r| {
            dot_slices(&a[r.clone()], &b[r])
        });
        parts.into_iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(data.to_vec(), dims)
    }

    #[test]
    fn sum_all_and_axis() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.sum().scalar_value(), 21.0);
        assert_eq!(a.sum_axis(0, false).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sum_axis(1, false).as_slice(), &[6.0, 15.0]);
        let k = a.sum_axis(1, true);
        assert_eq!(k.dims(), &[2, 1]);
    }

    #[test]
    fn sum_axes_keep_dedups() {
        let a = Tensor::<f32>::ones(&[2, 3, 4]);
        let s = a.sum_axes_keep(&[0, 2, 0]);
        assert_eq!(s.dims(), &[1, 3, 1]);
        assert_eq!(s.as_slice(), &[8.0, 8.0, 8.0]);
    }

    #[test]
    fn reduce_to_shape_inverts_broadcast() {
        let grad = Tensor::<f32>::ones(&[4, 2, 3]);
        assert_eq!(grad.reduce_to_shape(&[1, 3]).as_slice(), &[8.0, 8.0, 8.0]);
        assert_eq!(grad.reduce_to_shape(&[3]).as_slice(), &[8.0, 8.0, 8.0]);
        let s = grad.reduce_to_shape(&[]);
        assert_eq!(s.scalar_value(), 24.0);
        assert_eq!(grad.reduce_to_shape(&[4, 2, 3]), grad);
    }

    #[test]
    fn min_max() {
        let a = t(&[3.0, -1.0, 2.0], &[3]);
        assert_eq!(a.max().scalar_value(), 3.0);
        assert_eq!(a.min().scalar_value(), -1.0);
        let m = t(&[1.0, 5.0, 3.0, 2.0], &[2, 2]);
        assert_eq!(m.max_axis(0, false).as_slice(), &[3.0, 5.0]);
        assert_eq!(m.max_axis(1, false).as_slice(), &[5.0, 3.0]);
        assert_eq!(m.max_axis(1, true).dims(), &[2, 1]);
    }

    #[test]
    fn argmax() {
        let m = t(&[1.0, 5.0, 3.0, 2.0, 9.0, 0.0], &[2, 3]);
        assert_eq!(m.argmax_axis(1).as_slice(), &[1, 1]);
        assert_eq!(m.argmax_axis(0).as_slice(), &[1, 1, 0]);
        // ties favor first
        let ties = t(&[2.0, 2.0], &[1, 2]);
        assert_eq!(ties.argmax_axis(1).as_slice(), &[0]);
    }

    #[test]
    fn mean_var_norm_dot() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.mean().scalar_value(), 2.5);
        assert_eq!(a.mean_axis(0, false).as_slice(), &[2.0, 3.0]);
        let v = a.var_axis(0, false);
        assert_eq!(v.as_slice(), &[1.0, 1.0]);
        assert_eq!(t(&[3.0, 4.0], &[2]).norm(), 5.0);
        assert_eq!(t(&[1.0, 2.0], &[2]).dot(&t(&[3.0, 4.0], &[2])), 11.0);
    }
}
