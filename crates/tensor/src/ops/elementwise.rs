//! Element-wise unary and (broadcasting) binary kernels, plus their in-place
//! `*_assign` variants used by the mutable-value-semantics optimizer path
//! (paper §4.2).

use crate::dtype::{Float, Scalar};
use crate::error::Result;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Applies a binary op over two broadcast-compatible tensors.
fn broadcast_binary<T: Scalar>(
    lhs: &Tensor<T>,
    rhs: &Tensor<T>,
    op: &'static str,
    f: impl Fn(T, T) -> T + Sync,
) -> Tensor<T> {
    try_broadcast_binary(lhs, rhs, op, f).unwrap_or_else(|e| panic!("{e}"))
}

fn try_broadcast_binary<T: Scalar>(
    lhs: &Tensor<T>,
    rhs: &Tensor<T>,
    op: &'static str,
    f: impl Fn(T, T) -> T + Sync,
) -> Result<Tensor<T>> {
    if lhs.shape() == rhs.shape() {
        // Fast path: identical shapes, single fused loop.
        return Ok(lhs.zip_map(rhs, f));
    }
    let out_shape = Shape::broadcast(lhs.shape(), rhs.shape()).map_err(|_| {
        crate::TensorError::ShapeMismatch {
            lhs: lhs.dims().to_vec(),
            rhs: rhs.dims().to_vec(),
            op,
        }
    })?;
    let l = lhs.broadcast_to(out_shape.dims());
    let r = rhs.broadcast_to(out_shape.dims());
    Ok(l.zip_map(&r, f))
}

/// `f(dst[i], src[i])` over two equal-length slices, thread-pooled
/// above the element-wise grain — the shared engine of the `*_assign`
/// kernels (each destination element is written by exactly one chunk,
/// so results never depend on the thread count).
fn zip_assign<T: Scalar>(dst: &mut [T], src: &[T], f: impl Fn(&mut T, T) + Sync) {
    debug_assert_eq!(dst.len(), src.len());
    s4tf_threads::parallel_chunks_mut(dst, 1, crate::par::ELEMWISE_GRAIN, |start, chunk| {
        let src = &src[start..start + chunk.len()];
        // Codegen-only vectorization: per-element arithmetic is the same
        // on both dispatch paths (bit-identical; see `crate::simd`).
        crate::simd::vectorize(|| {
            for (d, &s) in chunk.iter_mut().zip(src) {
                f(d, s);
            }
        });
    });
}

impl<T: Scalar> Tensor<T> {
    // -------------------------------------------------------------- binary

    /// Element-wise sum with broadcasting.
    ///
    /// # Panics
    /// Panics if the shapes are not broadcast-compatible.
    pub fn add(&self, rhs: &Tensor<T>) -> Tensor<T> {
        broadcast_binary(self, rhs, "add", |a, b| a + b)
    }

    /// Element-wise sum with broadcasting.
    ///
    /// # Errors
    /// Returns an error if the shapes are not broadcast-compatible.
    pub fn try_add(&self, rhs: &Tensor<T>) -> Result<Tensor<T>> {
        try_broadcast_binary(self, rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference with broadcasting.
    ///
    /// # Panics
    /// Panics if the shapes are not broadcast-compatible.
    pub fn sub(&self, rhs: &Tensor<T>) -> Tensor<T> {
        broadcast_binary(self, rhs, "sub", |a, b| a - b)
    }

    /// Element-wise product with broadcasting.
    ///
    /// # Panics
    /// Panics if the shapes are not broadcast-compatible.
    pub fn mul(&self, rhs: &Tensor<T>) -> Tensor<T> {
        broadcast_binary(self, rhs, "mul", |a, b| a * b)
    }

    /// Element-wise quotient with broadcasting.
    ///
    /// # Panics
    /// Panics if the shapes are not broadcast-compatible.
    pub fn div(&self, rhs: &Tensor<T>) -> Tensor<T> {
        broadcast_binary(self, rhs, "div", |a, b| a / b)
    }

    /// Element-wise maximum with broadcasting.
    ///
    /// # Panics
    /// Panics if the shapes are not broadcast-compatible.
    pub fn max_elements(&self, rhs: &Tensor<T>) -> Tensor<T> {
        broadcast_binary(self, rhs, "max", |a, b| a.maximum(b))
    }

    /// Element-wise minimum with broadcasting.
    ///
    /// # Panics
    /// Panics if the shapes are not broadcast-compatible.
    pub fn min_elements(&self, rhs: &Tensor<T>) -> Tensor<T> {
        broadcast_binary(self, rhs, "min", |a, b| a.minimum(b))
    }

    /// Element-wise `1.0 where self > rhs else 0.0` mask (broadcasting).
    ///
    /// # Panics
    /// Panics if the shapes are not broadcast-compatible.
    pub fn greater_mask(&self, rhs: &Tensor<T>) -> Tensor<T> {
        broadcast_binary(self, rhs, "greater", |a, b| {
            if a > b {
                T::one()
            } else {
                T::zero()
            }
        })
    }

    // --------------------------------------------------------------- unary

    /// Element-wise negation.
    pub fn neg(&self) -> Tensor<T> {
        self.map(|x| -x)
    }

    /// Element-wise absolute value.
    pub fn abs(&self) -> Tensor<T> {
        self.map(|x| x.abs_val())
    }

    /// Element-wise sign (±1, 0).
    pub fn signum(&self) -> Tensor<T> {
        self.map(|x| {
            if x > T::zero() {
                T::one()
            } else if x < T::zero() {
                -T::one()
            } else {
                T::zero()
            }
        })
    }

    /// Rectified linear unit: `max(x, 0)`.
    pub fn relu(&self) -> Tensor<T> {
        self.map(|x| x.maximum(T::zero()))
    }

    /// Element-wise square.
    pub fn square(&self) -> Tensor<T> {
        self.map(|x| x * x)
    }

    // -------------------------------------------------------------- scalar

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: T) -> Tensor<T> {
        self.map(|x| x + s)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: T) -> Tensor<T> {
        self.map(|x| x * s)
    }

    /// Divides every element by a scalar.
    pub fn div_scalar(&self, s: T) -> Tensor<T> {
        self.map(|x| x / s)
    }

    // ----------------------------------------------------------- in-place

    /// In-place element-wise sum. Unlike [`Tensor::add`] this never
    /// broadcasts `self` and mutates it via unique borrow (`inout`, §4.2);
    /// `rhs` may still broadcast up to `self`'s shape.
    ///
    /// # Panics
    /// Panics if `rhs` does not broadcast to `self`'s shape.
    pub fn add_assign_tensor(&mut self, rhs: &Tensor<T>) {
        if self.shape() == rhs.shape() {
            zip_assign(self.as_mut_slice(), rhs.as_slice(), |d, s| *d += s);
        } else {
            let r = rhs.broadcast_to(self.dims());
            self.add_assign_tensor(&r);
        }
    }

    /// In-place element-wise difference (see [`Tensor::add_assign_tensor`]).
    ///
    /// # Panics
    /// Panics if `rhs` does not broadcast to `self`'s shape.
    pub fn sub_assign_tensor(&mut self, rhs: &Tensor<T>) {
        if self.shape() == rhs.shape() {
            zip_assign(self.as_mut_slice(), rhs.as_slice(), |d, s| *d -= s);
        } else {
            let r = rhs.broadcast_to(self.dims());
            self.sub_assign_tensor(&r);
        }
    }

    /// In-place element-wise product (see [`Tensor::add_assign_tensor`]).
    ///
    /// # Panics
    /// Panics if `rhs` does not broadcast to `self`'s shape.
    pub fn mul_assign_tensor(&mut self, rhs: &Tensor<T>) {
        if self.shape() == rhs.shape() {
            zip_assign(self.as_mut_slice(), rhs.as_slice(), |d, s| *d *= s);
        } else {
            let r = rhs.broadcast_to(self.dims());
            self.mul_assign_tensor(&r);
        }
    }

    /// Adds a scalar to every element in place.
    pub fn add_scalar_assign(&mut self, s: T) {
        self.map_assign(|x| x + s);
    }

    /// Scales every element in place.
    pub fn mul_scalar_assign(&mut self, s: T) {
        self.map_assign(|x| x * s);
    }

    /// `self += alpha * rhs` in place — the fused "axpy" update used by
    /// optimizers and by `TangentVector` accumulation.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn scaled_add_assign(&mut self, alpha: T, rhs: &Tensor<T>) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "scaled_add_assign requires identical shapes"
        );
        zip_assign(self.as_mut_slice(), rhs.as_slice(), |d, s| *d += alpha * s);
    }

    /// `self[i] = f(self[i], rhs[i])` in place — the in-place spelling of
    /// [`Tensor::zip_map`] with `self` as the *left* operand. Runs the
    /// same per-element function over the same chunking, so the result is
    /// bit-identical to `self.zip_map(rhs, f)`; the memory planner uses
    /// it to overwrite a dying operand instead of allocating.
    ///
    /// # Panics
    /// Panics if the shapes differ (no broadcasting, like `zip_map`).
    pub fn zip_apply_assign(&mut self, rhs: &Tensor<T>, f: impl Fn(T, T) -> T + Sync) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "zip_apply_assign requires identical shapes ({} vs {})",
            self.shape(),
            rhs.shape()
        );
        zip_assign(self.as_mut_slice(), rhs.as_slice(), |d, s| *d = f(*d, s));
    }

    /// `self[i] = f(lhs[i], self[i])` in place — like
    /// [`Tensor::zip_apply_assign`] but with `self` as the *right*
    /// operand, preserving the argument order of `lhs.zip_map(self, f)`
    /// so non-commutative ops stay bit-identical.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn zip_apply_assign_rev(&mut self, lhs: &Tensor<T>, f: impl Fn(T, T) -> T + Sync) {
        assert_eq!(
            self.shape(),
            lhs.shape(),
            "zip_apply_assign_rev requires identical shapes ({} vs {})",
            self.shape(),
            lhs.shape()
        );
        zip_assign(self.as_mut_slice(), lhs.as_slice(), |d, s| *d = f(s, *d));
    }
}

impl<T: Float> Tensor<T> {
    /// Element-wise `e^x`.
    pub fn exp(&self) -> Tensor<T> {
        self.map(|x| x.exp_())
    }

    /// Element-wise natural logarithm.
    pub fn ln(&self) -> Tensor<T> {
        self.map(|x| x.ln_())
    }

    /// Element-wise square root.
    pub fn sqrt(&self) -> Tensor<T> {
        self.map(|x| x.sqrt_())
    }

    /// Element-wise power.
    pub fn powf(&self, p: T) -> Tensor<T> {
        self.map(|x| x.powf_(p))
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor<T> {
        self.map(|x| x.tanh_())
    }

    /// Element-wise sine.
    pub fn sin(&self) -> Tensor<T> {
        self.map(|x| x.sin_())
    }

    /// Element-wise cosine.
    pub fn cos(&self) -> Tensor<T> {
        self.map(|x| x.cos_())
    }

    /// Element-wise logistic sigmoid, `1 / (1 + e^-x)`.
    pub fn sigmoid(&self) -> Tensor<T> {
        self.map(|x| T::one() / (T::one() + (-x).exp_()))
    }

    /// Element-wise reciprocal.
    pub fn recip(&self) -> Tensor<T> {
        self.map(|x| T::one() / x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(data.to_vec(), dims)
    }

    #[test]
    fn binary_same_shape() {
        let a = t(&[1.0, 2.0, 3.0], &[3]);
        let b = t(&[10.0, 20.0, 30.0], &[3]);
        assert_eq!(a.add(&b).as_slice(), &[11.0, 22.0, 33.0]);
        assert_eq!(b.sub(&a).as_slice(), &[9.0, 18.0, 27.0]);
        assert_eq!(a.mul(&b).as_slice(), &[10.0, 40.0, 90.0]);
        assert_eq!(b.div(&a).as_slice(), &[10.0, 10.0, 10.0]);
        assert_eq!(a.max_elements(&b).as_slice(), &[10.0, 20.0, 30.0]);
        assert_eq!(a.min_elements(&b).as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn binary_broadcast() {
        let m = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let row = t(&[10.0, 20.0], &[2]);
        assert_eq!(m.add(&row).as_slice(), &[11.0, 22.0, 13.0, 24.0]);
        let col = t(&[10.0, 20.0], &[2, 1]);
        assert_eq!(m.add(&col).as_slice(), &[11.0, 12.0, 23.0, 24.0]);
        let s = Tensor::scalar(1.0f32);
        assert_eq!(m.add(&s).as_slice(), &[2.0, 3.0, 4.0, 5.0]);
        // broadcast in both directions
        let a = t(&[1.0, 2.0], &[2, 1]);
        let b = t(&[10.0, 20.0, 30.0], &[1, 3]);
        assert_eq!(a.add(&b).as_slice(), &[11.0, 21.0, 31.0, 12.0, 22.0, 32.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn binary_incompatible_panics() {
        t(&[1.0, 2.0], &[2]).add(&t(&[1.0, 2.0, 3.0], &[3]));
    }

    #[test]
    fn try_add_error() {
        assert!(t(&[1.0, 2.0], &[2])
            .try_add(&t(&[1.0, 2.0, 3.0], &[3]))
            .is_err());
        assert!(t(&[1.0], &[1]).try_add(&t(&[1.0, 2.0], &[2])).is_ok());
    }

    #[test]
    fn unary() {
        let a = t(&[-1.0, 0.0, 2.0], &[3]);
        assert_eq!(a.neg().as_slice(), &[1.0, 0.0, -2.0]);
        assert_eq!(a.abs().as_slice(), &[1.0, 0.0, 2.0]);
        assert_eq!(a.signum().as_slice(), &[-1.0, 0.0, 1.0]);
        assert_eq!(a.relu().as_slice(), &[0.0, 0.0, 2.0]);
        assert_eq!(a.square().as_slice(), &[1.0, 0.0, 4.0]);
    }

    #[test]
    fn scalar_ops() {
        let a = t(&[1.0, 2.0], &[2]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2.0, 3.0]);
        assert_eq!(a.mul_scalar(3.0).as_slice(), &[3.0, 6.0]);
        assert_eq!(a.div_scalar(2.0).as_slice(), &[0.5, 1.0]);
    }

    #[test]
    fn float_unary() {
        let a = t(&[0.0, 1.0], &[2]);
        assert!((a.exp().as_slice()[1] - std::f32::consts::E).abs() < 1e-6);
        assert_eq!(t(&[1.0, 4.0], &[2]).sqrt().as_slice(), &[1.0, 2.0]);
        assert!((t(&[std::f32::consts::E], &[1]).ln().as_slice()[0] - 1.0).abs() < 1e-6);
        assert_eq!(t(&[2.0], &[1]).powf(3.0).as_slice(), &[8.0]);
        assert!((t(&[0.0], &[1]).sigmoid().as_slice()[0] - 0.5).abs() < 1e-7);
        assert_eq!(t(&[0.0], &[1]).tanh().as_slice(), &[0.0]);
        assert_eq!(t(&[0.0], &[1]).sin().as_slice(), &[0.0]);
        assert_eq!(t(&[0.0], &[1]).cos().as_slice(), &[1.0]);
        assert_eq!(t(&[4.0], &[1]).recip().as_slice(), &[0.25]);
    }

    #[test]
    fn in_place_ops() {
        let mut a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        a.add_assign_tensor(&t(&[10.0, 20.0], &[2]));
        assert_eq!(a.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
        a.sub_assign_tensor(&t(&[1.0, 1.0, 1.0, 1.0], &[2, 2]));
        assert_eq!(a.as_slice(), &[10.0, 21.0, 12.0, 23.0]);
        a.mul_assign_tensor(&Tensor::scalar(2.0));
        assert_eq!(a.as_slice(), &[20.0, 42.0, 24.0, 46.0]);
        a.add_scalar_assign(1.0);
        a.mul_scalar_assign(0.5);
        assert_eq!(a.as_slice(), &[10.5, 21.5, 12.5, 23.5]);
    }

    #[test]
    fn scaled_add_assign() {
        let mut a = t(&[1.0, 2.0], &[2]);
        a.scaled_add_assign(-0.5, &t(&[2.0, 4.0], &[2]));
        assert_eq!(a.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn in_place_does_not_affect_old_copies() {
        let a = t(&[1.0, 2.0], &[2]);
        let mut b = a.clone();
        b.add_scalar_assign(100.0);
        assert_eq!(a.as_slice(), &[1.0, 2.0], "spooky action at a distance!");
    }

    #[test]
    fn greater_mask() {
        let a = t(&[1.0, 5.0, 3.0], &[3]);
        let b = t(&[2.0, 2.0, 3.0], &[3]);
        assert_eq!(a.greater_mask(&b).as_slice(), &[0.0, 1.0, 0.0]);
    }
}
