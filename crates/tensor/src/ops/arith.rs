//! Operator-trait sugar (`+`, `-`, `*`, `/`, unary `-`, `+=`, `-=`, `*=`)
//! over tensors and scalars.
//!
//! All binary operators broadcast (see
//! [`Shape::broadcast`](crate::Shape::broadcast)) and panic on incompatible
//! shapes, matching the behavior of the named methods they forward to.

use crate::dtype::Scalar;
use crate::tensor::Tensor;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

macro_rules! impl_binary_op {
    ($trait:ident, $method:ident, $kernel:ident) => {
        impl<T: Scalar> $trait<&Tensor<T>> for &Tensor<T> {
            type Output = Tensor<T>;
            fn $method(self, rhs: &Tensor<T>) -> Tensor<T> {
                Tensor::<T>::$kernel(self, rhs)
            }
        }

        impl<T: Scalar> $trait<Tensor<T>> for Tensor<T> {
            type Output = Tensor<T>;
            fn $method(self, rhs: Tensor<T>) -> Tensor<T> {
                Tensor::<T>::$kernel(&self, &rhs)
            }
        }

        impl<T: Scalar> $trait<&Tensor<T>> for Tensor<T> {
            type Output = Tensor<T>;
            fn $method(self, rhs: &Tensor<T>) -> Tensor<T> {
                Tensor::<T>::$kernel(&self, rhs)
            }
        }

        impl<T: Scalar> $trait<Tensor<T>> for &Tensor<T> {
            type Output = Tensor<T>;
            fn $method(self, rhs: Tensor<T>) -> Tensor<T> {
                Tensor::<T>::$kernel(self, &rhs)
            }
        }

        impl<T: Scalar> $trait<T> for &Tensor<T> {
            type Output = Tensor<T>;
            fn $method(self, rhs: T) -> Tensor<T> {
                Tensor::<T>::$kernel(self, &Tensor::scalar(rhs))
            }
        }

        impl<T: Scalar> $trait<T> for Tensor<T> {
            type Output = Tensor<T>;
            fn $method(self, rhs: T) -> Tensor<T> {
                Tensor::<T>::$kernel(&self, &Tensor::scalar(rhs))
            }
        }
    };
}

impl_binary_op!(Add, add, add);
impl_binary_op!(Sub, sub, sub);
impl_binary_op!(Mul, mul, mul);
impl_binary_op!(Div, div, div);

impl<T: Scalar> Neg for &Tensor<T> {
    type Output = Tensor<T>;
    fn neg(self) -> Tensor<T> {
        Tensor::neg(self)
    }
}

impl<T: Scalar> Neg for Tensor<T> {
    type Output = Tensor<T>;
    fn neg(self) -> Tensor<T> {
        Tensor::neg(&self)
    }
}

impl<T: Scalar> AddAssign<&Tensor<T>> for Tensor<T> {
    fn add_assign(&mut self, rhs: &Tensor<T>) {
        self.add_assign_tensor(rhs);
    }
}

impl<T: Scalar> AddAssign<Tensor<T>> for Tensor<T> {
    fn add_assign(&mut self, rhs: Tensor<T>) {
        self.add_assign_tensor(&rhs);
    }
}

impl<T: Scalar> SubAssign<&Tensor<T>> for Tensor<T> {
    fn sub_assign(&mut self, rhs: &Tensor<T>) {
        self.sub_assign_tensor(rhs);
    }
}

impl<T: Scalar> SubAssign<Tensor<T>> for Tensor<T> {
    fn sub_assign(&mut self, rhs: Tensor<T>) {
        self.sub_assign_tensor(&rhs);
    }
}

impl<T: Scalar> MulAssign<T> for Tensor<T> {
    fn mul_assign(&mut self, rhs: T) {
        self.mul_scalar_assign(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32]) -> Tensor<f32> {
        let n = data.len();
        Tensor::from_vec(data.to_vec(), &[n])
    }

    #[test]
    fn operators_all_reference_combinations() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[10.0, 20.0]);
        assert_eq!((&a + &b).as_slice(), &[11.0, 22.0]);
        assert_eq!((a.clone() + b.clone()).as_slice(), &[11.0, 22.0]);
        assert_eq!((a.clone() + &b).as_slice(), &[11.0, 22.0]);
        assert_eq!((&a + b.clone()).as_slice(), &[11.0, 22.0]);
    }

    #[test]
    fn scalar_rhs() {
        let a = t(&[1.0, 2.0]);
        assert_eq!((&a + 1.0).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
        assert_eq!((a / 2.0).as_slice(), &[0.5, 1.0]);
    }

    #[test]
    fn sub_mul_div_neg() {
        let a = t(&[4.0, 9.0]);
        let b = t(&[2.0, 3.0]);
        assert_eq!((&a - &b).as_slice(), &[2.0, 6.0]);
        assert_eq!((&a * &b).as_slice(), &[8.0, 27.0]);
        assert_eq!((&a / &b).as_slice(), &[2.0, 3.0]);
        assert_eq!((-&a).as_slice(), &[-4.0, -9.0]);
        assert_eq!((-a).as_slice(), &[-4.0, -9.0]);
    }

    #[test]
    fn assign_operators() {
        let mut a = t(&[1.0, 2.0]);
        a += &t(&[1.0, 1.0]);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
        a -= t(&[0.5, 0.5]);
        assert_eq!(a.as_slice(), &[1.5, 2.5]);
        a *= 2.0;
        assert_eq!(a.as_slice(), &[3.0, 5.0]);
    }
}
