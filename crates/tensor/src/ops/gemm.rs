//! Shared packed-GEMM engine behind `matmul` / `matmul_tn` / `matmul_nt`
//! and the im2col convolution path.
//!
//! The design is the classic GotoBLAS decomposition, sized for the small
//! matrices this workload sees (Dense layers, LeNet-scale convs):
//!
//! * **Pack B once** into panels of [`NR`] columns, so the micro-kernel
//!   streams B contiguously regardless of the operand's original layout
//!   (normal or transposed — see [`Layout`]). Edge panels are
//!   zero-padded, which lets the inner loop always run `NR` wide.
//! * **Register-tile micro-kernel**: an [`MR`]`×`[`NR`] accumulator array
//!   with fixed loop bounds, which the compiler fully unrolls (and, for
//!   f32/f64, vectorizes) on the full-tile path.
//! * **Parallelize over row-blocks of C**: each chunk of C rows is
//!   written by exactly one task, with A and packed-B shared read-only.
//!
//! Determinism: splitting over *rows* never reorders the k-summation of
//! any output element, so results are bit-identical for every thread
//! count (the property `tests/parallel_consistency.rs` checks).

use std::ops::Range;

use crate::dtype::Scalar;

/// Micro-kernel tile height (rows of C per register tile).
pub(crate) const MR: usize = 4;
/// Micro-kernel tile width (columns of C per register tile; also the
/// packed-panel width).
pub(crate) const NR: usize = 8;

/// Multiply-accumulate count per parallel chunk: tuned so a chunk is
/// worth a queue round-trip (documented in DESIGN.md).
const GEMM_CHUNK_MACS: usize = 1 << 16;

/// Addressing scheme for an operand: element `(row, col)` of the
/// *logical* matrix lives at `data[row * rs + col * cs]`. Transposed
/// variants are handled by swapping the strides instead of
/// materializing the transpose.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Layout {
    pub rs: usize,
    pub cs: usize,
}

impl Layout {
    /// Row-major `[rows, cols]` storage.
    pub(crate) fn row_major(cols: usize) -> Layout {
        Layout { rs: cols, cs: 1 }
    }

    /// The logical transpose of row-major `[cols, rows]` storage.
    pub(crate) fn transposed(rows: usize) -> Layout {
        Layout { rs: 1, cs: rows }
    }
}

/// B packed into `ceil(n / NR)` panels; panel `p` holds columns
/// `p*NR .. p*NR+NR` as `k` contiguous NR-wide rows (zero-padded past
/// column `n`).
pub(crate) struct PackedB<T> {
    data: Vec<T>,
    panels: usize,
    k: usize,
}

pub(crate) fn pack_b<T: Scalar>(b: &[T], layout: Layout, k: usize, n: usize) -> PackedB<T> {
    let panels = n.div_ceil(NR);
    let mut data = vec![T::zero(); panels * k * NR];
    for p in 0..panels {
        let j0 = p * NR;
        let width = NR.min(n - j0);
        let dst = &mut data[p * k * NR..(p + 1) * k * NR];
        for kk in 0..k {
            let row = &mut dst[kk * NR..kk * NR + width];
            for (c, slot) in row.iter_mut().enumerate() {
                *slot = b[kk * layout.rs + (j0 + c) * layout.cs];
            }
        }
    }
    PackedB { data, panels, k }
}

/// `C[rows, :n] += A[rows, :k] × B` for one row range.
///
/// `a` is indexed with the *global* row numbers in `rows`; `c` is the
/// destination sub-slice covering exactly those rows (`rows.len() * n`
/// elements). Works on any row split: tiles shorter than [`MR`] at a
/// chunk boundary take the edge path, which computes the same sums in
/// the same k-order.
pub(crate) fn gemm_rows<T: Scalar>(
    a: &[T],
    la: Layout,
    bp: &PackedB<T>,
    c: &mut [T],
    n: usize,
    rows: Range<usize>,
) {
    debug_assert_eq!(c.len(), rows.len() * n);
    let k = bp.k;
    let mut i = rows.start;
    while i < rows.end {
        let mr = MR.min(rows.end - i);
        let c_base = (i - rows.start) * n;
        for p in 0..bp.panels {
            let j0 = p * NR;
            let nr = NR.min(n - j0);
            let panel = &bp.data[p * k * NR..(p + 1) * k * NR];
            let mut acc = [[T::zero(); NR]; MR];
            if mr == MR {
                // Full tile: fixed bounds so the 4×8 update unrolls.
                for kk in 0..k {
                    let brow = &panel[kk * NR..kk * NR + NR];
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = a[(i + r) * la.rs + kk * la.cs];
                        for (slot, &bv) in accr.iter_mut().zip(brow) {
                            *slot += av * bv;
                        }
                    }
                }
            } else {
                for kk in 0..k {
                    let brow = &panel[kk * NR..kk * NR + NR];
                    for (r, accr) in acc.iter_mut().enumerate().take(mr) {
                        let av = a[(i + r) * la.rs + kk * la.cs];
                        for (slot, &bv) in accr.iter_mut().zip(brow) {
                            *slot += av * bv;
                        }
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate().take(mr) {
                let crow = &mut c[c_base + r * n + j0..c_base + r * n + j0 + nr];
                for (cv, &av) in crow.iter_mut().zip(accr) {
                    *cv += av;
                }
            }
        }
        i += mr;
    }
}

/// `C += A × B` with C pre-zeroed by the caller: packs B, then splits
/// the rows of C across the thread pool (inline when the pool is
/// single-threaded or the matrix is below the chunk grain).
pub(crate) fn gemm_parallel<T: Scalar>(
    a: &[T],
    la: Layout,
    b: &[T],
    lb: Layout,
    c: &mut [T],
    k: usize,
    n: usize,
) {
    if c.is_empty() || n == 0 {
        return;
    }
    debug_assert!(c.len().is_multiple_of(n));
    let bp = pack_b(b, lb, k, n);
    let grain_rows = (GEMM_CHUNK_MACS / (k * n).max(1)).max(1);
    s4tf_threads::parallel_chunks_mut(c, n, grain_rows * n, |start, chunk| {
        let row0 = start / n;
        gemm_rows(a, la, &bp, chunk, n, row0..row0 + chunk.len() / n);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_panels_are_zero_padded() {
        // 2x3 B in row-major: one panel, columns 3..8 padded with zeros.
        let b = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let bp = pack_b(&b, Layout::row_major(3), 2, 3);
        assert_eq!(bp.panels, 1);
        assert_eq!(&bp.data[..NR], &[1.0, 2.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(&bp.data[NR..12], &[4.0, 5.0, 6.0, 0.0]);
    }

    #[test]
    fn transposed_layout_packs_columns() {
        // B stored [n=2, k=2]; logical [k, n] via swapped strides.
        let b = [1.0f32, 2.0, 3.0, 4.0]; // rows: [1,2], [3,4]
        let bp = pack_b(&b, Layout::transposed(2), 2, 2);
        // logical B' = [[1,3],[2,4]]
        assert_eq!(&bp.data[..2], &[1.0, 3.0]);
        assert_eq!(&bp.data[NR..NR + 2], &[2.0, 4.0]);
    }

    #[test]
    fn tile_edges_match_naive() {
        // Odd sizes exercise both the partial-row and partial-panel paths.
        let (m, k, n) = (7, 5, 11);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 - 3.0).collect();
        let mut c = vec![0.0f32; m * n];
        let bp = pack_b(&b, Layout::row_major(n), k, n);
        gemm_rows(&a, Layout::row_major(k), &bp, &mut c, n, 0..m);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                assert_eq!(c[i * n + j], acc, "C[{i},{j}]");
            }
        }
    }
}
