//! Shared packed-GEMM engine behind `matmul` / `matmul_tn` / `matmul_nt`
//! and the im2col convolution path.
//!
//! The design is the classic GotoBLAS decomposition, sized for the small
//! matrices this workload sees (Dense layers, LeNet-scale convs):
//!
//! * **Pack B once** into panels of [`NR`] columns, so the micro-kernel
//!   streams B contiguously regardless of the operand's original layout
//!   (normal or transposed — see [`Layout`]). Edge panels are
//!   zero-padded, which lets the inner loop always run full width.
//! * **Register-tile micro-kernels**: the f32 lane kernel computes a
//!   6-row × 16-column tile as 12 [`L8`] accumulators (two 8-wide lanes
//!   per row) with fused multiply-add, dropping to one lane per row on
//!   panels narrower than 8 useful columns so LeNet-scale `out_c = 6`
//!   convolutions don't burn half the vector width on padding. The
//!   generic scalar kernel keeps the original 4×8 accumulator tile (the
//!   reference path; see `crate::simd` for the determinism contract).
//! * **Parallelize over row-blocks of C**: each chunk of C rows is
//!   written by exactly one task, with A and packed-B shared read-only.
//!
//! Determinism: splitting over *rows* never reorders the k-summation of
//! any output element, so results are bit-identical for every thread
//! count on both dispatch paths (the property
//! `tests/parallel_consistency.rs` checks). The lane kernel's FMA
//! accumulation differs from the scalar path by rounding only
//! (`tests/simd_consistency.rs` bounds it).

use std::ops::Range;

use crate::dtype::Scalar;
use crate::simd::{self, L8, LANES};

/// Scalar micro-kernel tile height (rows of C per register tile).
pub(crate) const MR: usize = 4;
/// Packed-panel width (columns of C per panel; the lane kernel's full
/// tile width, two [`LANES`]-wide chunks).
pub(crate) const NR: usize = 16;
/// Lane micro-kernel tile height: 6 rows × 2 lanes = 12 live vector
/// accumulators, plus 2 B lanes and 1 broadcast — 15 of 16 AVX2
/// registers, the sweet spot measured on the CI host.
const MR_SIMD: usize = 6;
/// Scalar kernel accumulator strip width: the pre-SIMD panel width, kept
/// so the reference path's register tile (and its results) are unchanged.
const SR: usize = 8;

/// Multiply-accumulate count per parallel chunk: tuned so a chunk is
/// worth a queue round-trip (documented in DESIGN.md).
const GEMM_CHUNK_MACS: usize = 1 << 16;

/// Addressing scheme for an operand: element `(row, col)` of the
/// *logical* matrix lives at `data[row * rs + col * cs]`. Transposed
/// variants are handled by swapping the strides instead of
/// materializing the transpose.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Layout {
    pub rs: usize,
    pub cs: usize,
}

impl Layout {
    /// Row-major `[rows, cols]` storage.
    pub(crate) fn row_major(cols: usize) -> Layout {
        Layout { rs: cols, cs: 1 }
    }

    /// The logical transpose of row-major `[cols, rows]` storage.
    pub(crate) fn transposed(rows: usize) -> Layout {
        Layout { rs: 1, cs: rows }
    }
}

/// B packed into `ceil(n / NR)` panels; panel `p` holds columns
/// `p*NR .. p*NR+NR` as `k` contiguous NR-wide rows (zero-padded past
/// column `n`).
pub(crate) struct PackedB<T> {
    data: Vec<T>,
    panels: usize,
    k: usize,
}

pub(crate) fn pack_b<T: Scalar>(b: &[T], layout: Layout, k: usize, n: usize) -> PackedB<T> {
    let panels = n.div_ceil(NR);
    let mut data = vec![T::zero(); panels * k * NR];
    for p in 0..panels {
        let j0 = p * NR;
        let width = NR.min(n - j0);
        let dst = &mut data[p * k * NR..(p + 1) * k * NR];
        for kk in 0..k {
            let row = &mut dst[kk * NR..kk * NR + width];
            for (c, slot) in row.iter_mut().enumerate() {
                *slot = b[kk * layout.rs + (j0 + c) * layout.cs];
            }
        }
    }
    PackedB { data, panels, k }
}

/// `C[rows, :n] += A[rows, :k] × B` for one row range.
///
/// `a` is indexed with the *global* row numbers in `rows`; `c` is the
/// destination sub-slice covering exactly those rows (`rows.len() * n`
/// elements). Works on any row split: tiles shorter than the kernel
/// height at a chunk boundary take the edge path, which computes the
/// same sums in the same k-order. f32 dispatches to the lane kernel
/// when [`crate::simd::simd_enabled`] says so.
pub(crate) fn gemm_rows<T: Scalar>(
    a: &[T],
    la: Layout,
    bp: &PackedB<T>,
    c: &mut [T],
    n: usize,
    rows: Range<usize>,
) {
    debug_assert_eq!(c.len(), rows.len() * n);
    if simd::simd_enabled() {
        if let (Some(af), Some(bf)) = (simd::as_f32_slice(a), simd::as_f32_slice(&bp.data)) {
            let cf = simd::as_f32_slice_mut(c).expect("T is f32");
            simd::vectorize(|| gemm_rows_lanes(af, la, bf, bp.panels, bp.k, cf, n, rows));
            return;
        }
    }
    gemm_rows_scalar(a, la, bp, c, n, rows);
}

/// The generic scalar reference kernel: 4-row tiles over 8-wide
/// accumulator strips. Per-element arithmetic (and therefore results)
/// are exactly the pre-SIMD engine's: each `C[i,j]` is a pure k-order
/// sum regardless of the tile or strip the element lands in.
fn gemm_rows_scalar<T: Scalar>(
    a: &[T],
    la: Layout,
    bp: &PackedB<T>,
    c: &mut [T],
    n: usize,
    rows: Range<usize>,
) {
    let k = bp.k;
    let mut i = rows.start;
    while i < rows.end {
        let mr = MR.min(rows.end - i);
        let c_base = (i - rows.start) * n;
        for p in 0..bp.panels {
            let panel = &bp.data[p * k * NR..(p + 1) * k * NR];
            for s in 0..NR / SR {
                let j0 = p * NR + s * SR;
                if j0 >= n {
                    break;
                }
                let nr = SR.min(n - j0);
                let mut acc = [[T::zero(); SR]; MR];
                if mr == MR {
                    // Full tile: fixed bounds so the 4×8 update unrolls.
                    for kk in 0..k {
                        let brow = &panel[kk * NR + s * SR..kk * NR + s * SR + SR];
                        for (r, accr) in acc.iter_mut().enumerate() {
                            let av = a[(i + r) * la.rs + kk * la.cs];
                            for (slot, &bv) in accr.iter_mut().zip(brow) {
                                *slot += av * bv;
                            }
                        }
                    }
                } else {
                    for kk in 0..k {
                        let brow = &panel[kk * NR + s * SR..kk * NR + s * SR + SR];
                        for (r, accr) in acc.iter_mut().enumerate().take(mr) {
                            let av = a[(i + r) * la.rs + kk * la.cs];
                            for (slot, &bv) in accr.iter_mut().zip(brow) {
                                *slot += av * bv;
                            }
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate().take(mr) {
                    let crow = &mut c[c_base + r * n + j0..c_base + r * n + j0 + nr];
                    for (cv, &av) in crow.iter_mut().zip(accr) {
                        *cv += av;
                    }
                }
            }
        }
        i += mr;
    }
}

/// The f32 lane micro-kernel, always called inside [`simd::vectorize`]:
/// 6×16 tiles of [`L8`] accumulators with `mul_add`, or 6×8 on panels
/// with at most [`LANES`] useful columns. Accumulation order per output
/// element is the plain k-order on every path through this function, so
/// lane results are bit-identical across thread counts and row splits.
///
/// `inline(always)` is load-bearing: the body must land inside
/// [`simd::vectorize`]'s `#[target_feature]` frame to compile as AVX2 +
/// FMA — as a standalone (baseline-feature) function every `mul_add`
/// would be a libm call.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn gemm_rows_lanes(
    a: &[f32],
    la: Layout,
    bdata: &[f32],
    panels: usize,
    k: usize,
    c: &mut [f32],
    n: usize,
    rows: Range<usize>,
) {
    let mut i = rows.start;
    while i < rows.end {
        let mr = MR_SIMD.min(rows.end - i);
        let c_base = (i - rows.start) * n;
        for p in 0..panels {
            let j0 = p * NR;
            let nr = NR.min(n - j0);
            let panel = &bdata[p * k * NR..(p + 1) * k * NR];
            if nr > LANES {
                let mut acc = [[L8::zero(); 2]; MR_SIMD];
                if mr == MR_SIMD {
                    for kk in 0..k {
                        let brow = &panel[kk * NR..kk * NR + NR];
                        let b0 = L8::load(brow);
                        let b1 = L8::load(&brow[LANES..]);
                        for (r, accr) in acc.iter_mut().enumerate() {
                            let av = L8::splat(a[(i + r) * la.rs + kk * la.cs]);
                            accr[0] = av.mul_add(b0, accr[0]);
                            accr[1] = av.mul_add(b1, accr[1]);
                        }
                    }
                } else {
                    for kk in 0..k {
                        let brow = &panel[kk * NR..kk * NR + NR];
                        let b0 = L8::load(brow);
                        let b1 = L8::load(&brow[LANES..]);
                        for (r, accr) in acc.iter_mut().enumerate().take(mr) {
                            let av = L8::splat(a[(i + r) * la.rs + kk * la.cs]);
                            accr[0] = av.mul_add(b0, accr[0]);
                            accr[1] = av.mul_add(b1, accr[1]);
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate().take(mr) {
                    let mut lane = [0.0f32; NR];
                    accr[0].store(&mut lane);
                    accr[1].store(&mut lane[LANES..]);
                    let crow = &mut c[c_base + r * n + j0..c_base + r * n + j0 + nr];
                    for (cv, &av) in crow.iter_mut().zip(&lane) {
                        *cv += av;
                    }
                }
            } else {
                // Narrow panel (n ≤ 8 useful columns): one lane per row.
                let mut acc = [L8::zero(); MR_SIMD];
                if mr == MR_SIMD {
                    for kk in 0..k {
                        let b0 = L8::load(&panel[kk * NR..kk * NR + LANES]);
                        for (r, accr) in acc.iter_mut().enumerate() {
                            let av = L8::splat(a[(i + r) * la.rs + kk * la.cs]);
                            *accr = av.mul_add(b0, *accr);
                        }
                    }
                } else {
                    for kk in 0..k {
                        let b0 = L8::load(&panel[kk * NR..kk * NR + LANES]);
                        for (r, accr) in acc.iter_mut().enumerate().take(mr) {
                            let av = L8::splat(a[(i + r) * la.rs + kk * la.cs]);
                            *accr = av.mul_add(b0, *accr);
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate().take(mr) {
                    let crow = &mut c[c_base + r * n + j0..c_base + r * n + j0 + nr];
                    for (cv, &av) in crow.iter_mut().zip(&accr.0) {
                        *cv += av;
                    }
                }
            }
        }
        i += mr;
    }
}

/// `C += A × B` with C pre-zeroed by the caller: packs B, then splits
/// the rows of C across the thread pool (inline when the pool is
/// single-threaded or the matrix is below the chunk grain).
pub(crate) fn gemm_parallel<T: Scalar>(
    a: &[T],
    la: Layout,
    b: &[T],
    lb: Layout,
    c: &mut [T],
    k: usize,
    n: usize,
) {
    if c.is_empty() || n == 0 {
        return;
    }
    debug_assert!(c.len().is_multiple_of(n));
    let bp = pack_b(b, lb, k, n);
    let grain_rows = (GEMM_CHUNK_MACS / (k * n).max(1)).max(1);
    s4tf_threads::parallel_chunks_mut(c, n, grain_rows * n, |start, chunk| {
        let row0 = start / n;
        gemm_rows(a, la, &bp, chunk, n, row0..row0 + chunk.len() / n);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_panels_are_zero_padded() {
        // 2x3 B in row-major: one panel, columns 3..16 padded with zeros.
        let b = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let bp = pack_b(&b, Layout::row_major(3), 2, 3);
        assert_eq!(bp.panels, 1);
        let mut row0 = [0.0f32; NR];
        row0[..3].copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(&bp.data[..NR], &row0);
        assert_eq!(&bp.data[NR..NR + 4], &[4.0, 5.0, 6.0, 0.0]);
    }

    #[test]
    fn transposed_layout_packs_columns() {
        // B stored [n=2, k=2]; logical [k, n] via swapped strides.
        let b = [1.0f32, 2.0, 3.0, 4.0]; // rows: [1,2], [3,4]
        let bp = pack_b(&b, Layout::transposed(2), 2, 2);
        // logical B' = [[1,3],[2,4]]
        assert_eq!(&bp.data[..2], &[1.0, 3.0]);
        assert_eq!(&bp.data[NR..NR + 2], &[2.0, 4.0]);
    }

    #[test]
    fn tile_edges_match_naive() {
        // Odd sizes exercise the partial-row and partial-panel paths on
        // both dispatch paths (narrow panel at n=11: the trailing panel
        // has 11 − 0 = 11 > 8 columns; n=5 exercises the ≤8 kernel).
        for (m, k, n) in [
            (7usize, 5usize, 11usize),
            (13, 9, 5),
            (6, 4, 17),
            (9, 3, 16),
        ] {
            let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 - 6.0).collect();
            let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 - 3.0).collect();
            let bp = pack_b(&b, Layout::row_major(n), k, n);
            for simd_on in [false, true] {
                crate::simd::set_simd_enabled(simd_on);
                let mut c = vec![0.0f32; m * n];
                gemm_rows(&a, Layout::row_major(k), &bp, &mut c, n, 0..m);
                for i in 0..m {
                    for j in 0..n {
                        let mut acc = 0.0;
                        for kk in 0..k {
                            acc += a[i * k + kk] * b[kk * n + j];
                        }
                        let got = c[i * n + j];
                        assert!(
                            (got - acc).abs() <= 1e-4 * acc.abs().max(1.0),
                            "C[{i},{j}] = {got} want {acc} (simd={simd_on}, {m}x{k}x{n})"
                        );
                    }
                }
            }
            crate::simd::set_simd_enabled(crate::simd::simd_supported());
        }
    }
}
