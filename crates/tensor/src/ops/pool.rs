//! 2-D pooling kernels (NHWC): average and max pooling with their gradient
//! kernels, as used by the paper's `AvgPool2D` in the LeNet-5 model
//! (Figure 6).

use crate::dtype::Float;
use crate::tensor::Tensor;
use crate::Padding;

#[derive(Debug, Clone, Copy)]
struct PoolGeom {
    batch: usize,
    in_h: usize,
    in_w: usize,
    ch: usize,
    k_h: usize,
    k_w: usize,
    out_h: usize,
    out_w: usize,
    pad_top: usize,
    pad_left: usize,
    stride: (usize, usize),
}

fn geometry<T: Float>(
    input: &Tensor<T>,
    pool: (usize, usize),
    strides: (usize, usize),
    padding: Padding,
) -> PoolGeom {
    assert_eq!(input.rank(), 4, "pooling input must be NHWC (rank 4)");
    assert!(pool.0 > 0 && pool.1 > 0, "pool size must be positive");
    assert!(strides.0 > 0 && strides.1 > 0, "strides must be positive");
    let (batch, in_h, in_w, ch) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let out_h = padding.output_dim(in_h, pool.0, strides.0);
    let out_w = padding.output_dim(in_w, pool.1, strides.1);
    let (pad_top, _) = padding.amounts(in_h, pool.0, strides.0);
    let (pad_left, _) = padding.amounts(in_w, pool.1, strides.1);
    PoolGeom {
        batch,
        in_h,
        in_w,
        ch,
        k_h: pool.0,
        k_w: pool.1,
        out_h,
        out_w,
        pad_top,
        pad_left,
        stride: strides,
    }
}

impl<T: Float> Tensor<T> {
    /// Average pooling over `[N,H,W,C]`. Padded cells are excluded from the
    /// mean (count-include-pad = false), so `Same` padding never biases edge
    /// averages toward zero.
    ///
    /// # Panics
    /// Panics on rank mismatch, zero pool/stride, or (for
    /// [`Padding::Valid`]) pools larger than the input.
    pub fn avg_pool2d(
        &self,
        pool: (usize, usize),
        strides: (usize, usize),
        padding: Padding,
    ) -> Tensor<T> {
        let g = geometry(self, pool, strides, padding);
        let x = self.as_slice();
        let (mut out, out_recycled) =
            crate::pool::zeroed_vec::<T>(g.batch * g.out_h * g.out_w * g.ch);
        for n in 0..g.batch {
            for oy in 0..g.out_h {
                for ox in 0..g.out_w {
                    let out_base = ((n * g.out_h + oy) * g.out_w + ox) * g.ch;
                    let mut count = 0usize;
                    for ky in 0..g.k_h {
                        let iy = (oy * g.stride.0 + ky) as isize - g.pad_top as isize;
                        if iy < 0 || iy as usize >= g.in_h {
                            continue;
                        }
                        for kx in 0..g.k_w {
                            let ix = (ox * g.stride.1 + kx) as isize - g.pad_left as isize;
                            if ix < 0 || ix as usize >= g.in_w {
                                continue;
                            }
                            count += 1;
                            let in_base =
                                ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * g.ch;
                            for c in 0..g.ch {
                                out[out_base + c] += x[in_base + c];
                            }
                        }
                    }
                    let inv = T::one() / T::from_usize(count.max(1));
                    for c in 0..g.ch {
                        out[out_base + c] *= inv;
                    }
                }
            }
        }
        Tensor::from_pooled_vec((out, out_recycled), &[g.batch, g.out_h, g.out_w, g.ch])
    }

    /// Gradient of [`Tensor::avg_pool2d`] with respect to its input.
    ///
    /// # Panics
    /// Panics on geometry mismatches.
    pub fn avg_pool2d_backward(
        &self,
        grad_out: &Tensor<T>,
        pool: (usize, usize),
        strides: (usize, usize),
        padding: Padding,
    ) -> Tensor<T> {
        let g = geometry(self, pool, strides, padding);
        assert_eq!(
            grad_out.dims(),
            &[g.batch, g.out_h, g.out_w, g.ch],
            "grad_out shape mismatch"
        );
        let dy = grad_out.as_slice();
        let (mut dx, dx_recycled) = crate::pool::zeroed_vec::<T>(self.num_elements());
        for n in 0..g.batch {
            for oy in 0..g.out_h {
                for ox in 0..g.out_w {
                    let out_base = ((n * g.out_h + oy) * g.out_w + ox) * g.ch;
                    // First pass: count valid cells (matches forward).
                    let mut count = 0usize;
                    for ky in 0..g.k_h {
                        let iy = (oy * g.stride.0 + ky) as isize - g.pad_top as isize;
                        if iy < 0 || iy as usize >= g.in_h {
                            continue;
                        }
                        for kx in 0..g.k_w {
                            let ix = (ox * g.stride.1 + kx) as isize - g.pad_left as isize;
                            if ix >= 0 && (ix as usize) < g.in_w {
                                count += 1;
                            }
                        }
                    }
                    let inv = T::one() / T::from_usize(count.max(1));
                    for ky in 0..g.k_h {
                        let iy = (oy * g.stride.0 + ky) as isize - g.pad_top as isize;
                        if iy < 0 || iy as usize >= g.in_h {
                            continue;
                        }
                        for kx in 0..g.k_w {
                            let ix = (ox * g.stride.1 + kx) as isize - g.pad_left as isize;
                            if ix < 0 || ix as usize >= g.in_w {
                                continue;
                            }
                            let in_base =
                                ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * g.ch;
                            for c in 0..g.ch {
                                dx[in_base + c] += dy[out_base + c] * inv;
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_pooled_vec((dx, dx_recycled), self.dims())
    }

    /// Max pooling over `[N,H,W,C]`.
    ///
    /// # Panics
    /// See [`Tensor::avg_pool2d`].
    pub fn max_pool2d(
        &self,
        pool: (usize, usize),
        strides: (usize, usize),
        padding: Padding,
    ) -> Tensor<T> {
        let g = geometry(self, pool, strides, padding);
        let x = self.as_slice();
        let (mut out, out_recycled) =
            crate::pool::filled_vec::<T>(g.batch * g.out_h * g.out_w * g.ch, T::neg_infinity());
        for n in 0..g.batch {
            for oy in 0..g.out_h {
                for ox in 0..g.out_w {
                    let out_base = ((n * g.out_h + oy) * g.out_w + ox) * g.ch;
                    for ky in 0..g.k_h {
                        let iy = (oy * g.stride.0 + ky) as isize - g.pad_top as isize;
                        if iy < 0 || iy as usize >= g.in_h {
                            continue;
                        }
                        for kx in 0..g.k_w {
                            let ix = (ox * g.stride.1 + kx) as isize - g.pad_left as isize;
                            if ix < 0 || ix as usize >= g.in_w {
                                continue;
                            }
                            let in_base =
                                ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * g.ch;
                            for c in 0..g.ch {
                                out[out_base + c] = out[out_base + c].maximum(x[in_base + c]);
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_pooled_vec((out, out_recycled), &[g.batch, g.out_h, g.out_w, g.ch])
    }

    /// Gradient of [`Tensor::max_pool2d`]: routes each output gradient to
    /// the (first) argmax cell of its window.
    ///
    /// # Panics
    /// Panics on geometry mismatches.
    pub fn max_pool2d_backward(
        &self,
        grad_out: &Tensor<T>,
        pool: (usize, usize),
        strides: (usize, usize),
        padding: Padding,
    ) -> Tensor<T> {
        let g = geometry(self, pool, strides, padding);
        assert_eq!(
            grad_out.dims(),
            &[g.batch, g.out_h, g.out_w, g.ch],
            "grad_out shape mismatch"
        );
        let x = self.as_slice();
        let dy = grad_out.as_slice();
        let (mut dx, dx_recycled) = crate::pool::zeroed_vec::<T>(self.num_elements());
        for n in 0..g.batch {
            for oy in 0..g.out_h {
                for ox in 0..g.out_w {
                    let out_base = ((n * g.out_h + oy) * g.out_w + ox) * g.ch;
                    for c in 0..g.ch {
                        let mut best = T::neg_infinity();
                        let mut best_flat = None;
                        for ky in 0..g.k_h {
                            let iy = (oy * g.stride.0 + ky) as isize - g.pad_top as isize;
                            if iy < 0 || iy as usize >= g.in_h {
                                continue;
                            }
                            for kx in 0..g.k_w {
                                let ix = (ox * g.stride.1 + kx) as isize - g.pad_left as isize;
                                if ix < 0 || ix as usize >= g.in_w {
                                    continue;
                                }
                                let flat =
                                    ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * g.ch + c;
                                if x[flat] > best {
                                    best = x[flat];
                                    best_flat = Some(flat);
                                }
                            }
                        }
                        if let Some(flat) = best_flat {
                            dx[flat] += dy[out_base + c];
                        }
                    }
                }
            }
        }
        Tensor::from_pooled_vec((dx, dx_recycled), self.dims())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn avg_pool_known() {
        let x = Tensor::from_vec(
            vec![
                1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 4, 4, 1],
        );
        let y = x.avg_pool2d((2, 2), (2, 2), Padding::Valid);
        assert_eq!(y.dims(), &[1, 2, 2, 1]);
        assert_eq!(y.as_slice(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn max_pool_known() {
        let x = Tensor::from_vec(
            vec![
                1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 4, 4, 1],
        );
        let y = x.max_pool2d((2, 2), (2, 2), Padding::Valid);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn avg_pool_same_excludes_padding() {
        let x = Tensor::<f32>::ones(&[1, 3, 3, 1]);
        let y = x.avg_pool2d((2, 2), (1, 1), Padding::Same);
        assert_eq!(y.dims(), &[1, 3, 3, 1]);
        // Every average over ones must be exactly 1 when pad cells are
        // excluded from the count.
        assert!(y.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn avg_pool_gradient_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let x = Tensor::<f64>::randn(&[1, 4, 4, 2], &mut rng);
        let y = x.avg_pool2d((2, 2), (2, 2), Padding::Valid);
        let dy = Tensor::<f64>::ones(y.dims());
        let dx = x.avg_pool2d_backward(&dy, (2, 2), (2, 2), Padding::Valid);
        let eps = 1e-6;
        for flat in 0..x.num_elements() {
            let mut xp = x.clone();
            xp.as_mut_slice()[flat] += eps;
            let num = (xp
                .avg_pool2d((2, 2), (2, 2), Padding::Valid)
                .sum()
                .scalar_value()
                - y.sum().scalar_value())
                / eps;
            assert!((num - dx.as_slice()[flat]).abs() < 1e-4);
        }
    }

    #[test]
    fn max_pool_gradient_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0f32, 9.0, 2.0, 3.0], &[1, 2, 2, 1]);
        let y = x.max_pool2d((2, 2), (2, 2), Padding::Valid);
        assert_eq!(y.scalar_value(), 9.0);
        let dy = Tensor::<f32>::ones(&[1, 1, 1, 1]);
        let dx = x.max_pool2d_backward(&dy, (2, 2), (2, 2), Padding::Valid);
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn pool_stride_one() {
        let x = Tensor::<f32>::from_fn(&[1, 3, 3, 1], |i| i as f32);
        let y = x.max_pool2d((2, 2), (1, 1), Padding::Valid);
        assert_eq!(y.dims(), &[1, 2, 2, 1]);
        assert_eq!(y.as_slice(), &[4.0, 5.0, 7.0, 8.0]);
    }
}
