//! # s4tf-tensor
//!
//! A from-scratch multi-dimensional array ("Tensor") library with *mutable
//! value semantics*, reproducing the Tensor substrate of *Swift for
//! TensorFlow: A portable, flexible platform for deep learning* (MLSys 2021),
//! Section 3 ("Tensors & Lazy Tensors") and Section 4 ("Mutable value
//! semantics").
//!
//! Two properties of Swift's `Tensor` are load-bearing in the paper and are
//! reproduced exactly here:
//!
//! 1. **Value semantics**: distinct variables access logically disjoint data.
//!    Cloning a [`Tensor`] is O(1); the underlying buffer is shared and only
//!    copied *lazily, upon mutation, and only when shared* — Swift's
//!    copy-on-write behavior, implemented with [`std::sync::Arc::make_mut`].
//!    See [`storage`].
//! 2. **In-place part-wise mutation**: `Tensor` exposes `*_assign` operations
//!    and mutable indexing so optimizers can borrow a model uniquely (Rust
//!    `&mut` ≡ Swift `inout`) and update parameters without materializing a
//!    second copy (paper §4.2).
//!
//! The kernel suite (matmul, conv2d, pooling, reductions, elementwise, …)
//! is a single-threaded CPU implementation corresponding to the paper's
//! "naïve Tensor" (§3.1); the eager and lazy accelerated backends in
//! `s4tf-runtime` dispatch to these same kernels through different execution
//! strategies.
//!
//! ## Example
//!
//! ```
//! use s4tf_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//!
//! // Value semantics: `d` is logically disjoint from `a`.
//! let mut d = a.clone();
//! d.add_scalar_assign(1.0);
//! assert_eq!(a.as_slice()[0], 1.0);
//! assert_eq!(d.as_slice()[0], 2.0);
//! ```

pub mod cost;
mod diag;
pub mod dtype;
pub mod error;
mod met;
pub mod ops;
mod par;
pub mod pool;
pub mod shape;
pub mod simd;
pub mod storage;
pub mod tensor;

pub use cost::OpCost;
pub use dtype::{Float, Scalar};
pub use error::{panic_message, FaultKind, Result, RuntimeError, TensorError};
pub use pool::{clear_pools, pool_enabled, pool_stats, set_pool_enabled, PoolStats};
pub use shape::Shape;
pub use simd::{lane_width, path_label, set_simd_enabled, simd_enabled, simd_supported};
pub use storage::Storage;
pub use tensor::{NonFinite, Tensor};

/// Convolution / pooling padding strategies (paper Figure 6 uses `.same`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Padding {
    /// No padding: output spatial dims shrink by `kernel - 1` (before stride).
    Valid,
    /// Zero padding chosen so `stride == 1` preserves the spatial dims.
    Same,
}

impl Padding {
    /// Amount of padding (before, after) for one spatial dimension.
    pub fn amounts(self, input: usize, kernel: usize, stride: usize) -> (usize, usize) {
        match self {
            Padding::Valid => (0, 0),
            Padding::Same => {
                let out = input.div_ceil(stride);
                let needed = ((out - 1) * stride + kernel).saturating_sub(input);
                (needed / 2, needed - needed / 2)
            }
        }
    }

    /// Output length of one spatial dimension.
    ///
    /// # Panics
    /// Panics for [`Padding::Valid`] if `kernel > input`.
    pub fn output_dim(self, input: usize, kernel: usize, stride: usize) -> usize {
        match self {
            Padding::Valid => {
                assert!(
                    kernel <= input,
                    "valid padding requires kernel ({kernel}) <= input ({input})"
                );
                (input - kernel) / stride + 1
            }
            Padding::Same => input.div_ceil(stride),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Padding;

    #[test]
    fn same_padding_preserves_dims_at_stride_one() {
        for input in 1..32 {
            for kernel in 1..8 {
                assert_eq!(Padding::Same.output_dim(input, kernel, 1), input);
                let (before, after) = Padding::Same.amounts(input, kernel, 1);
                assert_eq!(input + before + after, input + kernel - 1);
            }
        }
    }

    #[test]
    fn valid_padding_output_dims() {
        assert_eq!(Padding::Valid.output_dim(28, 5, 1), 24);
        assert_eq!(Padding::Valid.output_dim(28, 2, 2), 14);
        assert_eq!(Padding::Valid.amounts(28, 5, 1), (0, 0));
    }

    #[test]
    fn same_padding_with_stride() {
        assert_eq!(Padding::Same.output_dim(28, 2, 2), 14);
        assert_eq!(Padding::Same.output_dim(7, 3, 2), 4);
    }

    #[test]
    #[should_panic(expected = "valid padding")]
    fn valid_padding_kernel_too_large() {
        Padding::Valid.output_dim(3, 5, 1);
    }
}
