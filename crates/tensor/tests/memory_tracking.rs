//! Memory-tracking balance: tensor storage allocations and frees must
//! pair up exactly, so live bytes return to baseline once every tensor is
//! dropped. Only meaningful with the `diag` feature (the default
//! workspace build); without it the whole file compiles away.
//!
//! Runs with the recycling pool pinned *off*: with the pool on, a drop
//! parks the buffer instead of freeing it (by design, `allocs`/`frees`
//! count real allocator traffic only), so strict pairing is exactly the
//! `S4TF_POOL=0` contract. `pool_respects_the_same_live_accounting`
//! checks the pool-on half: live bytes still return to baseline even
//! when the allocator counters diverge.
#![cfg(feature = "diag")]

use s4tf_diag::memory_stats;
use s4tf_tensor::{clear_pools, pool_enabled, set_pool_enabled, Tensor};
use std::sync::Mutex;

// The counters are process-global; concurrent tests would tear each
// other's baselines.
static SERIAL: Mutex<()> = Mutex::new(());

/// Pins the pool off (or on) for one test, restoring the previous
/// effective setting on drop.
struct PoolGuard(bool);

impl PoolGuard {
    fn pin(enabled: bool) -> Self {
        let was = pool_enabled();
        set_pool_enabled(enabled);
        clear_pools();
        PoolGuard(was)
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        set_pool_enabled(self.0);
    }
}

#[test]
fn live_bytes_return_to_baseline_after_drop() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let _pool = PoolGuard::pin(false);
    let baseline = memory_stats();
    {
        let a = Tensor::<f32>::ones(&[64, 64]);
        let b = a.add(&a);
        let c = b.mul(&b);
        let grew = memory_stats();
        assert!(
            grew.live_bytes >= baseline.live_bytes + 3 * 64 * 64 * 4,
            "three 64x64 f32 tensors must be live: {} -> {}",
            baseline.live_bytes,
            grew.live_bytes
        );
        assert!(grew.allocs > baseline.allocs);
        drop((a, b, c));
    }
    let after = memory_stats();
    assert_eq!(
        after.live_bytes, baseline.live_bytes,
        "alloc/free accounting must balance"
    );
    assert_eq!(
        after.allocs - baseline.allocs,
        after.frees - baseline.frees,
        "every allocation in the block above was freed"
    );
}

#[test]
fn cow_copy_is_tracked_as_a_new_allocation() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let _pool = PoolGuard::pin(false);
    let baseline = memory_stats();
    let a = Tensor::<f32>::ones(&[32]);
    let mut b = a.clone(); // shares storage: no new bytes yet
    let shared = memory_stats();
    // Writing through the clone triggers the copy-on-write duplication,
    // which must show up in the counters like any other allocation.
    b.as_mut_slice()[0] = 2.0;
    let after_cow = memory_stats();
    assert!(
        after_cow.live_bytes >= shared.live_bytes + 32 * 4,
        "CoW duplication must be tracked"
    );
    assert!(after_cow.allocs > shared.allocs);
    drop((a, b));
    assert_eq!(memory_stats().live_bytes, baseline.live_bytes);
}

#[test]
fn pool_respects_the_same_live_accounting() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let _pool = PoolGuard::pin(true);
    let baseline = memory_stats();
    for _ in 0..4 {
        // Second iteration onward recycles: live bytes cycle up and back
        // down whether the capacity came from the allocator or the pool.
        let t = Tensor::<f32>::ones(&[64, 64]);
        let u = t.add(&t);
        assert!(memory_stats().live_bytes >= baseline.live_bytes + 2 * 64 * 64 * 4);
        drop((t, u));
        assert_eq!(memory_stats().live_bytes, baseline.live_bytes);
    }
    // Parked capacity is not live, but it is also not allocator-freed:
    // the alloc/free counters are allowed to diverge here — that
    // divergence *is* the pool's saving.
    clear_pools();
}
