//! Memory-tracking balance: tensor storage allocations and frees must
//! pair up exactly, so live bytes return to baseline once every tensor is
//! dropped. Only meaningful with the `diag` feature (the default
//! workspace build); without it the whole file compiles away.
#![cfg(feature = "diag")]

use s4tf_diag::memory_stats;
use s4tf_tensor::Tensor;
use std::sync::Mutex;

// The counters are process-global; concurrent tests would tear each
// other's baselines.
static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn live_bytes_return_to_baseline_after_drop() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let baseline = memory_stats();
    {
        let a = Tensor::<f32>::ones(&[64, 64]);
        let b = a.add(&a);
        let c = b.mul(&b);
        let grew = memory_stats();
        assert!(
            grew.live_bytes >= baseline.live_bytes + 3 * 64 * 64 * 4,
            "three 64x64 f32 tensors must be live: {} -> {}",
            baseline.live_bytes,
            grew.live_bytes
        );
        assert!(grew.allocs > baseline.allocs);
        drop((a, b, c));
    }
    let after = memory_stats();
    assert_eq!(
        after.live_bytes, baseline.live_bytes,
        "alloc/free accounting must balance"
    );
    assert_eq!(
        after.allocs - baseline.allocs,
        after.frees - baseline.frees,
        "every allocation in the block above was freed"
    );
}

#[test]
fn cow_copy_is_tracked_as_a_new_allocation() {
    let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let baseline = memory_stats();
    let a = Tensor::<f32>::ones(&[32]);
    let mut b = a.clone(); // shares storage: no new bytes yet
    let shared = memory_stats();
    // Writing through the clone triggers the copy-on-write duplication,
    // which must show up in the counters like any other allocation.
    b.as_mut_slice()[0] = 2.0;
    let after_cow = memory_stats();
    assert!(
        after_cow.live_bytes >= shared.live_bytes + 32 * 4,
        "CoW duplication must be tracked"
    );
    assert!(after_cow.allocs > shared.allocs);
    drop((a, b));
    assert_eq!(memory_stats().live_bytes, baseline.live_bytes);
}
