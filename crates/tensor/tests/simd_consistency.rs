//! Scalar-vs-SIMD consistency for every kernel the lane engine rewrote.
//!
//! The dispatch contract (`s4tf_tensor::simd` module docs, DESIGN.md
//! §6g):
//!
//! - Elementwise maps/zips/assigns, fused-loop bodies, axis reductions
//!   and `max`/`min` are **bit-identical** across dispatch paths — the
//!   lane path only changes codegen (`vectorize` is a target-feature
//!   wrapper), never the arithmetic order.
//! - GEMM (all matmul variants), `matvec` and `conv2d` use fused
//!   multiply-add accumulators on the lane path, so f32 results may
//!   differ from the scalar reference by FMA rounding (bounded here
//!   relative to operand magnitude) — but each path is individually
//!   deterministic and thread-count invariant.
//! - `sum`/`dot` use a fixed lane-striped combine order on the SIMD path
//!   (different from the scalar left-to-right order), so they carry the
//!   same rounding tolerance.
//! - Integer and f64 tensors never take the lane path: results are the
//!   same code path, hence exactly equal.
//!
//! Sizes deliberately straddle the kernel geometry: the 8-wide lane
//! (n = 7, 8, 9), the 16-wide GEMM panel (n = 15, 16, 17), and the
//! 6-row micro-tile (m = 5, 6, 7), plus every comparison runs under a
//! 1-thread and a 4-thread pool. The dispatch switch and the pool are
//! process-global, so each comparison holds a mutex.

use proptest::prelude::*;
use s4tf_tensor::{set_simd_enabled, simd_supported, Padding, Tensor};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes every dispatch-path / thread-count flip in this binary.
fn dispatch_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Runs `f` on the scalar path and on the SIMD path (when the CPU has
/// it), at the given pool width; restores SIMD-on and 1 thread.
fn scalar_vs_simd<R>(threads: usize, f: impl Fn() -> R) -> (R, R) {
    let _guard = dispatch_lock();
    s4tf_threads::set_num_threads(threads);
    set_simd_enabled(false);
    let scalar = f();
    set_simd_enabled(true); // no-op on CPUs without the features
    let simd = f();
    s4tf_threads::set_num_threads(1);
    (scalar, simd)
}

fn randn_f32(dims: &[usize], seed: u64) -> Tensor<f32> {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    Tensor::randn(dims, &mut rng)
}

fn randi(dims: &[usize], seed: u64) -> Tensor<i32> {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let n: usize = dims.iter().product();
    let data: Vec<i32> = Tensor::<f32>::randn(&[n.max(1)], &mut rng)
        .as_slice()
        .iter()
        .map(|&v| (v * 100.0) as i32)
        .collect();
    Tensor::from_vec(data, dims)
}

/// Relative FMA-rounding bound: `k` products of randn values per output.
fn fma_tol(k: usize) -> f64 {
    1e-5 * (k as f64).sqrt().max(1.0)
}

fn assert_close(scalar: &Tensor<f32>, simd: &Tensor<f32>, k: usize, what: &str) {
    let scale = scalar.as_slice().iter().fold(1.0f32, |m, v| m.max(v.abs()));
    assert!(
        scalar.allclose(simd, fma_tol(k) * f64::from(scale)),
        "{what}: scalar and simd paths diverged beyond FMA tolerance"
    );
}

/// Remainder sweep: every matmul variant at sizes straddling the lane
/// width (8), the packed-panel width (16) and both micro-tile heights
/// (scalar 4, simd 6), under 1 and 4 threads.
#[test]
fn gemm_remainders_match_scalar_reference() {
    for &threads in &[1usize, 4] {
        for &m in &[1usize, 5, 6, 7, 13] {
            for &k in &[1usize, 7, 9, 33] {
                for &n in &[1usize, 7, 8, 9, 15, 16, 17, 31, 33] {
                    let a = randn_f32(&[m, k], (m * 31 + k * 7 + n) as u64);
                    let b = randn_f32(&[k, n], (m + k + n * 13) as u64);
                    let at = randn_f32(&[k, m], (m * 3 + n) as u64);
                    let bt = randn_f32(&[n, k], (k * 5 + m) as u64);
                    let (s, v) = scalar_vs_simd(threads, || {
                        (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt))
                    });
                    let what = format!("matmul {m}x{k}x{n} @{threads}T");
                    assert_close(&s.0, &v.0, k, &what);
                    assert_close(&s.1, &v.1, k, &format!("tn {what}"));
                    assert_close(&s.2, &v.2, k, &format!("nt {what}"));
                }
            }
        }
    }
}

/// Elementwise kernels at sizes straddling the lane width and the
/// parallel grain: bit-identical across paths by contract.
#[test]
fn elementwise_remainders_bit_identical() {
    for &threads in &[1usize, 4] {
        for &n in &[1usize, 7, 8, 9, 15, 17, 4095, 4097, 8193] {
            let a = randn_f32(&[n], n as u64);
            let b = randn_f32(&[n], (n ^ 1) as u64);
            let (s, v) = scalar_vs_simd(threads, || {
                let mapped = a.map(|x| x.mul_add(0.25, -1.5));
                let zipped = a.mul(&b);
                let mut assigned = a.clone();
                assigned.scaled_add_assign(0.5, &b);
                (mapped, zipped, assigned)
            });
            assert_eq!(s.0.as_slice(), v.0.as_slice(), "map n={n} @{threads}T");
            assert_eq!(s.1.as_slice(), v.1.as_slice(), "zip n={n} @{threads}T");
            assert_eq!(s.2.as_slice(), v.2.as_slice(), "assign n={n} @{threads}T");
        }
    }
}

/// Reductions at lane-remainder and stripe-remainder sizes (the SIMD
/// `sum` walks 32-element stripes with 4 accumulators): `sum`/`dot`
/// within rounding tolerance, `max`/`min`/argmax and axis reductions
/// bit-identical.
#[test]
fn reduction_remainders_follow_contract() {
    for &threads in &[1usize, 4] {
        for &n in &[1usize, 7, 8, 9, 31, 32, 33, 63, 65, 4097] {
            let a = randn_f32(&[n], n as u64 + 100);
            let b = randn_f32(&[n], n as u64 + 200);
            let (s, v) = scalar_vs_simd(threads, || {
                (
                    a.sum().scalar_value(),
                    a.dot(&b),
                    a.max().scalar_value(),
                    a.min().scalar_value(),
                )
            });
            let scale: f32 = a.as_slice().iter().map(|x| x.abs()).sum::<f32>() + 1.0;
            assert!(
                (s.0 - v.0).abs() <= 1e-5 * scale,
                "sum n={n} @{threads}T diverged"
            );
            assert!(
                (s.1 - v.1).abs() <= 4e-5 * scale,
                "dot n={n} @{threads}T diverged"
            );
            assert_eq!(s.2, v.2, "max n={n} @{threads}T");
            assert_eq!(s.3, v.3, "min n={n} @{threads}T");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Spans the serial/packed-parallel GEMM threshold (2^15 MACs).
    #[test]
    fn matmul_paths_agree(m in 1usize..=48, k in 1usize..=64,
                          n in 1usize..=48, threads in 1usize..=4,
                          seed in any::<u64>()) {
        let a = randn_f32(&[m, k], seed);
        let b = randn_f32(&[k, n], seed ^ 1);
        let (s, v) = scalar_vs_simd(threads, || a.matmul(&b));
        let scale = s.as_slice().iter().fold(1.0f32, |acc, x| acc.max(x.abs()));
        prop_assert!(s.allclose(&v, fma_tol(k) * f64::from(scale)),
                     "matmul paths diverged beyond FMA tolerance");
    }

    #[test]
    fn matmul_i32_paths_exact(m in 1usize..=24, k in 1usize..=32,
                              n in 1usize..=24, seed in any::<u64>()) {
        let a = randi(&[m, k], seed);
        let b = randi(&[k, n], seed ^ 1);
        let (s, v) = scalar_vs_simd(1, || a.matmul(&b));
        prop_assert_eq!(s.as_slice(), v.as_slice());
    }

    #[test]
    fn matvec_paths_agree(m in 1usize..=80, k in 1usize..=128,
                          threads in 1usize..=4, seed in any::<u64>()) {
        let a = randn_f32(&[m, k], seed);
        let x = randn_f32(&[k], seed ^ 1);
        let (s, v) = scalar_vs_simd(threads, || a.matvec(&x));
        let scale = s.as_slice().iter().fold(1.0f32, |acc, y| acc.max(y.abs()));
        prop_assert!(s.allclose(&v, fma_tol(k) * f64::from(scale)),
                     "matvec paths diverged beyond FMA tolerance");
    }

    // Spans the direct/im2col threshold; out_c straddles both the lane
    // width and the narrow-panel kernel (lenet-c1's out_c = 6).
    #[test]
    fn conv2d_paths_agree(batch in 1usize..=2, hw in 5usize..=12,
                          in_c in 1usize..=4, out_c in 1usize..=9,
                          threads in 1usize..=4, seed in any::<u64>()) {
        let x = randn_f32(&[batch, hw, hw, in_c], seed);
        let w = randn_f32(&[3, 3, in_c, out_c], seed ^ 1);
        let (s, v) = scalar_vs_simd(threads, || {
            x.conv2d(&w, (1, 1), Padding::Same)
        });
        let k = 9 * in_c;
        let scale = s.as_slice().iter().fold(1.0f32, |acc, y| acc.max(y.abs()));
        prop_assert!(s.allclose(&v, fma_tol(k) * f64::from(scale)),
                     "conv2d paths diverged beyond FMA tolerance");
    }

    // Axis reductions keep their k-order on both paths: bit-identical.
    #[test]
    fn axis_reductions_paths_bit_identical(rows in 1usize..=40, cols in 1usize..=100,
                                           seed in any::<u64>()) {
        let t = randn_f32(&[rows, cols], seed);
        let (s, v) = scalar_vs_simd(1, || {
            (t.sum_axis(0, false), t.sum_axis(1, false), t.argmax_axis(1))
        });
        prop_assert_eq!(s.0.as_slice(), v.0.as_slice());
        prop_assert_eq!(s.1.as_slice(), v.1.as_slice());
        prop_assert_eq!(s.2.as_slice(), v.2.as_slice());
    }

    // f64 never takes the lane path: exactly equal by construction.
    #[test]
    fn f64_paths_exact(n in 1usize..=5000, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let a = Tensor::<f64>::randn(&[n], &mut rng);
        let (s, v) = scalar_vs_simd(1, || {
            (a.map(|x| x * 1.5 + 0.5), a.sum().scalar_value())
        });
        prop_assert_eq!(s.0.as_slice(), v.0.as_slice());
        prop_assert_eq!(s.1, v.1);
    }
}

/// `simd_supported()` and the dispatch switch agree: forcing the path on
/// only reports SIMD when the CPU actually has the features.
#[test]
fn dispatch_respects_cpu_support() {
    let _guard = dispatch_lock();
    set_simd_enabled(true);
    assert_eq!(s4tf_tensor::simd_enabled(), simd_supported());
    assert_eq!(
        s4tf_tensor::path_label(),
        if simd_supported() { "simd8" } else { "scalar" }
    );
    assert_eq!(
        s4tf_tensor::lane_width(),
        if simd_supported() { 8 } else { 1 }
    );
    set_simd_enabled(false);
    assert_eq!(s4tf_tensor::path_label(), "scalar");
    assert_eq!(s4tf_tensor::lane_width(), 1);
    set_simd_enabled(true);
}
