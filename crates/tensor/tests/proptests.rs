//! Property-based tests for the tensor substrate: broadcast algebra,
//! copy-on-write invariants, shape round-trips and kernel identities.

use proptest::prelude::*;
use s4tf_tensor::{Shape, Tensor};

/// Strategy: a small shape (rank ≤ 4, dims ≤ 5, non-empty).
fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=5, 0..=4)
}

/// Strategy: a tensor with the given dims and values in [-10, 10].
fn tensor_with(dims: Vec<usize>) -> impl Strategy<Value = Tensor<f64>> {
    let n: usize = dims.iter().product::<usize>().max(1);
    prop::collection::vec(-10.0f64..10.0, n..=n).prop_map(move |data| Tensor::from_vec(data, &dims))
}

fn arb_tensor() -> impl Strategy<Value = Tensor<f64>> {
    small_shape().prop_flat_map(tensor_with)
}

proptest! {
    // ------------------------------------------------------ broadcast algebra

    #[test]
    fn broadcast_is_commutative(a in small_shape(), b in small_shape()) {
        let sa = Shape::new(&a);
        let sb = Shape::new(&b);
        let ab = Shape::broadcast(&sa, &sb);
        let ba = Shape::broadcast(&sb, &sa);
        prop_assert_eq!(ab.is_ok(), ba.is_ok());
        if let (Ok(x), Ok(y)) = (ab, ba) {
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn broadcast_with_self_is_identity(a in small_shape()) {
        let s = Shape::new(&a);
        prop_assert_eq!(Shape::broadcast(&s, &s).unwrap(), s);
    }

    #[test]
    fn broadcast_with_scalar_is_identity(a in small_shape()) {
        let s = Shape::new(&a);
        prop_assert_eq!(Shape::broadcast(&s, &Shape::scalar()).unwrap(), s);
    }

    #[test]
    fn flat_multi_index_round_trip(a in small_shape(), flat_seed in any::<usize>()) {
        let s = Shape::new(&a);
        let flat = flat_seed % s.num_elements().max(1);
        prop_assert_eq!(s.flat_index(&s.multi_index(flat)), flat);
    }

    // --------------------------------------------------------- value semantics

    #[test]
    fn mutation_never_observed_through_clone(t in arb_tensor(), delta in -5.0f64..5.0) {
        let before = t.clone();
        let mut mutated = t.clone();
        mutated.add_scalar_assign(delta);
        prop_assert_eq!(&t, &before, "mutation leaked through a copy");
        if delta != 0.0 && t.num_elements() > 0 {
            prop_assert!(!mutated.shares_storage_with(&t));
        }
    }

    #[test]
    fn reshape_preserves_data_and_shares_storage(t in arb_tensor()) {
        let n = t.num_elements();
        let flat = t.reshape(&[n]);
        prop_assert_eq!(flat.as_slice(), t.as_slice());
        prop_assert!(flat.shares_storage_with(&t));
    }

    // ------------------------------------------------------- kernel identities

    #[test]
    fn add_commutes(dims in small_shape(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let a = Tensor::<f64>::randn(&dims, &mut rng);
        let b = Tensor::<f64>::randn(&dims, &mut rng);
        prop_assert!(a.add(&b).allclose(&b.add(&a), 1e-12));
    }

    #[test]
    fn sub_then_add_round_trips(t in arb_tensor(), delta in -5.0f64..5.0) {
        let d = Tensor::full(delta, t.dims());
        let round = t.sub(&d).add(&d);
        prop_assert!(round.allclose(&t, 1e-9));
    }

    #[test]
    fn relu_is_idempotent(t in arb_tensor()) {
        let r = t.relu();
        prop_assert_eq!(r.relu(), r);
    }

    #[test]
    fn softmax_rows_are_distributions(dims in prop::collection::vec(1usize..=5, 1..=3),
                                      seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let t = Tensor::<f64>::randn(&dims, &mut rng);
        let s = t.softmax();
        prop_assert!(s.as_slice().iter().all(|&x| (0.0..=1.0).contains(&x)));
        let sums = s.sum_axis(dims.len() - 1, false);
        for &x in sums.as_slice() {
            prop_assert!((x - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sum_axis_totals_match_full_sum(t in arb_tensor()) {
        if t.rank() == 0 { return Ok(()); }
        for axis in 0..t.rank() {
            let partial = t.sum_axis(axis, false).sum().scalar_value();
            prop_assert!((partial - t.sum().scalar_value()).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_is_involutive(dims in prop::collection::vec(1usize..=5, 2..=4),
                               seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let t = Tensor::<f64>::randn(&dims, &mut rng);
        prop_assert_eq!(t.t().t(), t);
    }

    #[test]
    fn matmul_identity_both_sides(n in 1usize..8, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let a = Tensor::<f64>::randn(&[n, n], &mut rng);
        let i = Tensor::<f64>::eye(n);
        prop_assert!(a.matmul(&i).allclose(&a, 1e-12));
        prop_assert!(i.matmul(&a).allclose(&a, 1e-12));
    }

    #[test]
    fn matmul_distributes_over_add(m in 1usize..5, k in 1usize..5, n in 1usize..5,
                                   seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let a = Tensor::<f64>::randn(&[m, k], &mut rng);
        let b = Tensor::<f64>::randn(&[k, n], &mut rng);
        let c = Tensor::<f64>::randn(&[k, n], &mut rng);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.allclose(&rhs, 1e-9));
    }

    #[test]
    fn pad_unpad_round_trip(t in arb_tensor(),
                            pads_seed in prop::collection::vec((0usize..3, 0usize..3), 0..=4)) {
        let pads: Vec<(usize, usize)> =
            (0..t.rank()).map(|i| *pads_seed.get(i).unwrap_or(&(0, 0))).collect();
        let p = t.pad(&pads);
        prop_assert_eq!(p.unpad(&pads), t);
    }

    #[test]
    fn concat_slice_round_trip(dims in prop::collection::vec(1usize..=4, 1..=3),
                               seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let a = Tensor::<f64>::randn(&dims, &mut rng);
        let b = Tensor::<f64>::randn(&dims, &mut rng);
        for (axis, &d) in dims.iter().enumerate() {
            let c = Tensor::concat(&[&a, &b], axis);
            prop_assert_eq!(c.slice_axis(axis, 0, d), a.clone());
            prop_assert_eq!(c.slice_axis(axis, d, d), b.clone());
        }
    }

    #[test]
    fn broadcast_to_then_reduce_is_scaling(dims in prop::collection::vec(1usize..=4, 1..=3),
                                           lead in 1usize..4, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let t = Tensor::<f64>::randn(&dims, &mut rng);
        let mut target = vec![lead];
        target.extend_from_slice(&dims);
        let b = t.broadcast_to(&target);
        let reduced = b.reduce_to_shape(&dims);
        prop_assert!(reduced.allclose(&t.mul_scalar(lead as f64), 1e-9));
    }
}
