//! Checkpoint serialization: tensors are plain values (shape + contents),
//! so serializing them is trivial — one of the practical payoffs of value
//! semantics (no graph state, no variable objects, nothing to detach).

use s4tf_tensor::Tensor;

#[test]
fn json_round_trip_preserves_shape_and_data() {
    let t = Tensor::from_vec(vec![1.5f32, -2.0, 0.0, 3.25, 7.0, -0.5], &[2, 3]);
    let json = serde_json::to_string(&t).unwrap();
    let back: Tensor<f32> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, t);
    assert_eq!(back.dims(), &[2, 3]);
}

#[test]
fn scalar_and_empty_shapes_round_trip() {
    let s = Tensor::scalar(42.0f64);
    let back: Tensor<f64> = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
    assert_eq!(back, s);
    assert_eq!(back.rank(), 0);

    let z = Tensor::<f32>::zeros(&[0, 4]);
    let back: Tensor<f32> = serde_json::from_str(&serde_json::to_string(&z).unwrap()).unwrap();
    assert_eq!(back.dims(), &[0, 4]);
}

#[test]
fn integer_tensors_round_trip() {
    let t = Tensor::from_vec(vec![1i64, -2, 3], &[3]);
    let back: Tensor<i64> = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
    assert_eq!(back, t);
}

#[test]
fn corrupt_checkpoints_are_rejected() {
    // Mismatched element count must fail cleanly, not panic.
    let bad = r#"{"dims":[2,2],"data":[1.0,2.0,3.0]}"#;
    let res: Result<Tensor<f32>, _> = serde_json::from_str(bad);
    assert!(res.is_err());
    let msg = res.unwrap_err().to_string();
    assert!(msg.contains("reshape") || msg.contains("elements"), "{msg}");
}

#[test]
fn deserialized_tensor_is_an_independent_value() {
    let t = Tensor::from_vec(vec![1.0f32, 2.0], &[2]);
    let mut back: Tensor<f32> = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
    back.add_scalar_assign(10.0);
    assert_eq!(t.as_slice(), &[1.0, 2.0]);
    assert_eq!(back.as_slice(), &[11.0, 12.0]);
}
