//! Thread-count consistency for every parallelized kernel: each property
//! computes the same op with the pool pinned to 1 thread and to 4 threads
//! and compares.
//!
//! The determinism contract (DESIGN.md §"CPU parallelism"):
//!
//! - GEMM (all matmul variants), conv2d forward, conv2d_backward_input,
//!   elementwise maps and axis reductions are **bit-identical** across
//!   thread counts — the parallel split never reorders any per-element
//!   summation.
//! - Full reductions (`sum`, `dot`) and `conv2d_backward_filter` combine
//!   per-chunk partials, so f32 results may differ by rounding (bounded
//!   here by a tolerance scaled to the magnitude of the operands) while
//!   integer results stay exact (integer addition is associative).
//!
//! The pool's thread count is process-global, so every comparison holds
//! one mutex for its 1-vs-4 pair.

use proptest::prelude::*;
use s4tf_tensor::{Padding, Tensor};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes every `set_num_threads` flip in this test binary.
fn pool_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Runs `f` single-threaded, then with a 4-thread pool; restores 1.
fn one_vs_four<R>(f: impl Fn() -> R) -> (R, R) {
    let _guard = pool_lock();
    s4tf_threads::set_num_threads(1);
    let serial = f();
    s4tf_threads::set_num_threads(4);
    let parallel = f();
    s4tf_threads::set_num_threads(1);
    (serial, parallel)
}

fn randn_f32(dims: &[usize], seed: u64) -> Tensor<f32> {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    Tensor::randn(dims, &mut rng)
}

fn randi(dims: &[usize], seed: u64) -> Tensor<i32> {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let n: usize = dims.iter().product();
    let data: Vec<i32> = Tensor::<f32>::randn(&[n.max(1)], &mut rng)
        .as_slice()
        .iter()
        .map(|&v| (v * 100.0) as i32)
        .collect();
    Tensor::from_vec(data, dims)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Spans the serial/packed-parallel threshold (PACKED_MIN_MACS = 2^15
    // multiply-accumulates: 32^3 is the boundary), so both code paths get
    // compared.
    #[test]
    fn matmul_variants_bit_identical(m in 16usize..=48, k in 16usize..=64,
                                     n in 16usize..=48, seed in any::<u64>()) {
        let a = randn_f32(&[m, k], seed);
        let b = randn_f32(&[k, n], seed ^ 1);
        let at = randn_f32(&[k, m], seed ^ 2);
        let bt = randn_f32(&[n, k], seed ^ 3);
        let (s, p) = one_vs_four(|| {
            (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt))
        });
        prop_assert_eq!(s.0.as_slice(), p.0.as_slice());
        prop_assert_eq!(s.1.as_slice(), p.1.as_slice());
        prop_assert_eq!(s.2.as_slice(), p.2.as_slice());
    }

    #[test]
    fn matmul_i32_bit_identical(m in 16usize..=48, k in 16usize..=64,
                                n in 16usize..=48, seed in any::<u64>()) {
        let a = randi(&[m, k], seed);
        let b = randi(&[k, n], seed ^ 1);
        let (s, p) = one_vs_four(|| a.matmul(&b));
        prop_assert_eq!(s.as_slice(), p.as_slice());
    }

    #[test]
    fn matvec_bit_identical(m in 64usize..=300, k in 16usize..=128,
                            seed in any::<u64>()) {
        let a = randn_f32(&[m, k], seed);
        let v = randn_f32(&[k], seed ^ 1);
        let (s, p) = one_vs_four(|| a.matvec(&v));
        prop_assert_eq!(s.as_slice(), p.as_slice());
    }

    // Spans the direct/im2col threshold (DIRECT_MAX_MACS = 2^15).
    #[test]
    fn conv2d_and_gradients_consistent(batch in 1usize..=3, hw in 8usize..=14,
                                       in_c in 1usize..=4, out_c in 4usize..=8,
                                       seed in any::<u64>()) {
        let x = randn_f32(&[batch, hw, hw, in_c], seed);
        let w = randn_f32(&[3, 3, in_c, out_c], seed ^ 1);
        let (s, p) = one_vs_four(|| {
            let y = x.conv2d(&w, (1, 1), Padding::Same);
            let dx = x.conv2d_backward_input(&w, &y, (1, 1), Padding::Same);
            let dw = x.conv2d_backward_filter(w.dims(), &y, (1, 1), Padding::Same);
            (y, dx, dw)
        });
        // Forward and input gradient never reorder a summation.
        prop_assert_eq!(s.0.as_slice(), p.0.as_slice());
        prop_assert_eq!(s.1.as_slice(), p.1.as_slice());
        // Filter gradient combines per-chunk partials: relative tolerance
        // (allclose is absolute; dw entries accumulate batch*out_h*out_w
        // products, so scale 1e-5 by the gradient's own magnitude).
        let scale = s.2.as_slice().iter().fold(1.0f32, |m, v| m.max(v.abs()));
        prop_assert!(
            s.2.allclose(&p.2, 1e-5 * f64::from(scale)),
            "dw diverged beyond relative 1e-5"
        );
    }

    // Spans ELEMWISE_GRAIN = 4096.
    #[test]
    fn elementwise_bit_identical(n in 1usize..=12_000, seed in any::<u64>()) {
        let a = randn_f32(&[n], seed);
        let b = randn_f32(&[n], seed ^ 1);
        let (s, p) = one_vs_four(|| {
            let mapped = a.map(|v| v.mul_add(0.25, -1.5));
            let zipped = a.mul(&b);
            let mut assigned = a.clone();
            assigned.scaled_add_assign(0.5, &b);
            (mapped, zipped, assigned)
        });
        prop_assert_eq!(s.0.as_slice(), p.0.as_slice());
        prop_assert_eq!(s.1.as_slice(), p.1.as_slice());
        prop_assert_eq!(s.2.as_slice(), p.2.as_slice());
    }

    // Spans REDUCE_GRAIN = 4096.
    #[test]
    fn axis_reductions_bit_identical(rows in 2usize..=40, cols in 2usize..=200,
                                     seed in any::<u64>()) {
        let t = randn_f32(&[rows, cols], seed);
        let (s, p) = one_vs_four(|| {
            (t.sum_axis(0, false), t.sum_axis(1, false), t.argmax_axis(1))
        });
        prop_assert_eq!(s.0.as_slice(), p.0.as_slice());
        prop_assert_eq!(s.1.as_slice(), p.1.as_slice());
        prop_assert_eq!(s.2.as_slice(), p.2.as_slice());
    }

    #[test]
    fn full_reductions_within_tolerance(n in 1usize..=20_000, seed in any::<u64>()) {
        let a = randn_f32(&[n], seed);
        let b = randn_f32(&[n], seed ^ 1);
        let (s, p) = one_vs_four(|| {
            (a.sum().scalar_value(), a.dot(&b), a.max().scalar_value())
        });
        // Chunk-order rounding, bounded relative to operand magnitude.
        let scale: f32 = a.as_slice().iter().map(|v| v.abs()).sum::<f32>() + 1.0;
        prop_assert!((s.0 - p.0).abs() <= 1e-5 * scale, "sum diverged");
        prop_assert!((s.1 - p.1).abs() <= 1e-5 * scale * 4.0, "dot diverged");
        // max is exact: combining maxima is associative.
        prop_assert_eq!(s.2, p.2);
    }

    #[test]
    fn integer_full_sum_exact(n in 1usize..=20_000, seed in any::<u64>()) {
        let a = randi(&[n], seed);
        let (s, p) = one_vs_four(|| a.sum().scalar_value());
        prop_assert_eq!(s, p);
    }
}

/// The 4-thread halves above must actually split work: pin the pool to 4
/// threads and check the chunking decision for a post-grain size.
#[test]
fn four_thread_runs_exercise_the_pool() {
    let _guard = pool_lock();
    s4tf_threads::set_num_threads(4);
    assert!(s4tf_threads::effective_chunks(20_000, 4096) > 1);
    assert_eq!(s4tf_threads::effective_chunks(64, 4096), 1);
    s4tf_threads::set_num_threads(1);
}
