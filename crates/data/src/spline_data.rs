//! Synthetic personalization data for the spline experiments (Table 4).
//!
//! The paper fine-tunes "a proprietary personalization model using splines"
//! on-device: a *global* model is trained on anonymized aggregated data,
//! then *fine-tuned on a user's device using only local data*. We generate
//! the equivalent: a smooth global response curve with observation noise,
//! and per-device local data whose response is a warped/shifted version of
//! the global curve — so fine-tuning has real signal to chase.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parameters of the synthetic personalization task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplineDataSpec {
    /// Global (server-side) sample count.
    pub global_samples: usize,
    /// Local (on-device) sample count.
    pub local_samples: usize,
    /// Observation noise standard deviation.
    pub noise: f32,
    /// Magnitude of the per-device distribution shift.
    pub personalization_shift: f32,
}

impl Default for SplineDataSpec {
    fn default() -> Self {
        SplineDataSpec {
            global_samples: 2048,
            local_samples: 256,
            noise: 0.02,
            personalization_shift: 0.3,
        }
    }
}

/// `(x, y)` observation pairs, `x ∈ [0, 1]`.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    /// Inputs.
    pub x: Vec<f32>,
    /// Responses.
    pub y: Vec<f32>,
}

impl Samples {
    /// Number of observations.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// The global curve every device starts from.
fn global_curve(x: f32) -> f32 {
    0.4 * (2.0 * std::f32::consts::PI * x).sin() + 0.3 * x + 0.2
}

/// A device's personalized curve: the global curve warped and shifted.
fn local_curve(x: f32, shift: f32, device_seed: u64) -> f32 {
    let phase = (device_seed % 7) as f32 * 0.17;
    global_curve((x + phase * 0.1).clamp(0.0, 1.0)) + shift * (1.5 * x - 0.4)
}

/// Global + per-device data for the personalization experiment.
#[derive(Debug, Clone)]
pub struct PersonalizationData {
    /// Server-side aggregated training data.
    pub global: Samples,
    /// On-device local data (distribution-shifted).
    pub local: Samples,
    /// Held-out local data for convergence measurement.
    pub local_holdout: Samples,
}

impl PersonalizationData {
    /// Generates data for one simulated device.
    pub fn generate(spec: SplineDataSpec, device_seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(device_seed);
        let noise = |rng: &mut ChaCha8Rng| -> f32 {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        };
        let sample = |n: usize, f: &dyn Fn(f32) -> f32, rng: &mut ChaCha8Rng| -> Samples {
            let mut s = Samples::default();
            for _ in 0..n {
                let x: f32 = rng.gen_range(0.0..1.0);
                let e = noise(rng);
                s.x.push(x);
                s.y.push(f(x) + spec.noise * e);
            }
            s
        };
        let shift = spec.personalization_shift;
        let global = sample(spec.global_samples, &global_curve, &mut rng);
        let local_f = move |x: f32| local_curve(x, shift, device_seed);
        let local = sample(spec.local_samples, &local_f, &mut rng);
        let local_holdout = sample(spec.local_samples / 4, &local_f, &mut rng);
        PersonalizationData {
            global,
            local,
            local_holdout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let spec = SplineDataSpec::default();
        let a = PersonalizationData::generate(spec, 1);
        let b = PersonalizationData::generate(spec, 1);
        assert_eq!(a.global.x, b.global.x);
        assert_eq!(a.local.y, b.local.y);
        assert_eq!(a.global.len(), 2048);
        assert_eq!(a.local.len(), 256);
        assert_eq!(a.local_holdout.len(), 64);
        assert!(!a.global.is_empty());
    }

    #[test]
    fn inputs_are_in_unit_interval() {
        let d = PersonalizationData::generate(SplineDataSpec::default(), 2);
        assert!(d.global.x.iter().all(|&x| (0.0..1.0).contains(&x)));
        assert!(d.local.x.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn local_distribution_differs_from_global() {
        // The device's curve must genuinely differ from the global one,
        // otherwise fine-tuning would be a no-op.
        let d = PersonalizationData::generate(SplineDataSpec::default(), 3);
        let global_mean: f32 = d.global.y.iter().sum::<f32>() / d.global.len() as f32;
        let local_mean: f32 = d.local.y.iter().sum::<f32>() / d.local.len() as f32;
        assert!((global_mean - local_mean).abs() > 0.01);
    }

    #[test]
    fn devices_differ_from_each_other() {
        let spec = SplineDataSpec::default();
        let a = PersonalizationData::generate(spec, 10);
        let b = PersonalizationData::generate(spec, 11);
        assert_ne!(a.local.y, b.local.y);
    }

    #[test]
    fn noise_is_small_relative_to_signal() {
        let d = PersonalizationData::generate(SplineDataSpec::default(), 4);
        // y range should span the curve's range (~[−0.3, 1.0]), not be
        // noise-dominated.
        let min = d.global.y.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = d.global.y.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(max - min > 0.5);
        assert!(max - min < 2.0);
    }
}
