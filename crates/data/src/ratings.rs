//! Synthetic user–item ratings for the recommender experiments
//! (swift-models, which this repository's §5 mirrors, includes
//! recommendation systems among its example domains).
//!
//! Ratings follow a latent-factor model: each user and item has a hidden
//! factor vector; an observed rating is their inner product plus user/item
//! biases and noise — so matrix factorization can genuinely recover
//! structure, and a train/test split measures generalization.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of the synthetic ratings dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatingsSpec {
    /// Number of users.
    pub users: usize,
    /// Number of items.
    pub items: usize,
    /// Hidden factor dimensionality of the generator.
    pub latent_dim: usize,
    /// Observed (user, item) pairs.
    pub observations: usize,
    /// Rating noise standard deviation.
    pub noise: f32,
}

impl Default for RatingsSpec {
    fn default() -> Self {
        RatingsSpec {
            users: 64,
            items: 48,
            latent_dim: 4,
            observations: 2048,
            noise: 0.05,
        }
    }
}

/// Observed ratings: parallel `(user, item, rating)` columns.
#[derive(Debug, Clone, Default)]
pub struct Ratings {
    /// User ids.
    pub users: Vec<usize>,
    /// Item ids.
    pub items: Vec<usize>,
    /// Observed ratings.
    pub ratings: Vec<f32>,
}

impl Ratings {
    /// Number of observations.
    pub fn len(&self) -> usize {
        self.ratings.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.ratings.is_empty()
    }
}

/// A train/test split of synthetic ratings.
#[derive(Debug, Clone)]
pub struct RatingsDataset {
    /// Training observations.
    pub train: Ratings,
    /// Held-out observations.
    pub test: Ratings,
    /// The generating spec.
    pub spec: RatingsSpec,
}

impl RatingsDataset {
    /// Generates a dataset (deterministic per seed); ~1/8 of observations
    /// are held out for testing.
    pub fn generate(spec: RatingsSpec, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let gauss = |rng: &mut ChaCha8Rng| -> f32 {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        };
        let factors = |n: usize, rng: &mut ChaCha8Rng| -> Vec<Vec<f32>> {
            (0..n)
                .map(|_| (0..spec.latent_dim).map(|_| gauss(rng) * 0.6).collect())
                .collect()
        };
        let u_factors = factors(spec.users, &mut rng);
        let i_factors = factors(spec.items, &mut rng);
        let u_bias: Vec<f32> = (0..spec.users).map(|_| gauss(&mut rng) * 0.2).collect();
        let i_bias: Vec<f32> = (0..spec.items).map(|_| gauss(&mut rng) * 0.2).collect();

        let mut train = Ratings::default();
        let mut test = Ratings::default();
        for k in 0..spec.observations {
            let u = rng.gen_range(0..spec.users);
            let i = rng.gen_range(0..spec.items);
            let dot: f32 = u_factors[u]
                .iter()
                .zip(&i_factors[i])
                .map(|(a, b)| a * b)
                .sum();
            let r = dot + u_bias[u] + i_bias[i] + spec.noise * gauss(&mut rng);
            let split = if k % 8 == 7 { &mut test } else { &mut train };
            split.users.push(u);
            split.items.push(i);
            split.ratings.push(r);
        }
        RatingsDataset { train, test, spec }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation_and_split() {
        let a = RatingsDataset::generate(RatingsSpec::default(), 5);
        let b = RatingsDataset::generate(RatingsSpec::default(), 5);
        assert_eq!(a.train.ratings, b.train.ratings);
        assert_eq!(a.test.users, b.test.users);
        assert_eq!(a.train.len() + a.test.len(), 2048);
        assert_eq!(a.test.len(), 2048 / 8);
        assert!(!a.train.is_empty());
    }

    #[test]
    fn ids_are_in_range_and_ratings_bounded() {
        let d = RatingsDataset::generate(RatingsSpec::default(), 6);
        assert!(d.train.users.iter().all(|&u| u < 64));
        assert!(d.train.items.iter().all(|&i| i < 48));
        // Latent dot products of 4 small factors stay in a sane range.
        assert!(d.train.ratings.iter().all(|r| r.abs() < 6.0));
    }

    #[test]
    fn ratings_have_latent_structure() {
        // The same (user, item) pair rated twice (different noise draws)
        // must correlate far better than two random ratings do — i.e. the
        // signal is not noise-dominated.
        let spec = RatingsSpec {
            noise: 0.05,
            ..RatingsSpec::default()
        };
        let d = RatingsDataset::generate(spec, 7);
        use std::collections::HashMap;
        let mut by_pair: HashMap<(usize, usize), Vec<f32>> = HashMap::new();
        for k in 0..d.train.len() {
            by_pair
                .entry((d.train.users[k], d.train.items[k]))
                .or_default()
                .push(d.train.ratings[k]);
        }
        let mut diffs = Vec::new();
        for v in by_pair.values() {
            if v.len() >= 2 {
                diffs.push((v[0] - v[1]).abs());
            }
        }
        assert!(!diffs.is_empty(), "dense enough to have repeat pairs");
        let mean_diff: f32 = diffs.iter().sum::<f32>() / diffs.len() as f32;
        assert!(mean_diff < 0.2, "repeat ratings differ only by noise");
    }
}
