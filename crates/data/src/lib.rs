//! # s4tf-data
//!
//! Deterministic synthetic datasets standing in for the paper's evaluation
//! data (§5.1): ImageNet 2012, CIFAR-10, MNIST-style digits, and the
//! proprietary on-device personalization data of Table 4. See DESIGN.md's
//! substitution table: the generators produce class-conditional structure a
//! model must genuinely *learn* (training dynamics exist), with shapes and
//! cardinalities matching the originals (scaled to laptop budgets).
//!
//! All generation is seeded and reproducible.

pub mod images;
pub mod ratings;
pub mod spline_data;

pub use images::{Dataset, ImageSpec};
pub use ratings::{RatingsDataset, RatingsSpec};
pub use spline_data::{PersonalizationData, SplineDataSpec};
