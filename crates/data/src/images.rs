//! Synthetic labeled image datasets.
//!
//! Each class `c` has a deterministic spatial prototype — a superposition
//! of class-dependent sinusoidal gratings plus a class-positioned blob —
//! and samples are prototypes corrupted by Gaussian pixel noise and a
//! small random translation. The resulting problems are linearly
//! non-trivial but comfortably learnable by small convolutional networks,
//! giving real accuracy dynamics for the experiments that report them.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf_tensor::Tensor;

/// Geometry and difficulty of a synthetic image dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageSpec {
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Channels.
    pub channels: usize,
    /// Number of classes.
    pub classes: usize,
    /// Pixel noise standard deviation (higher = harder).
    pub noise: f32,
}

impl ImageSpec {
    /// MNIST-like: 28×28×1, 10 classes.
    pub fn mnist_like() -> Self {
        ImageSpec {
            height: 28,
            width: 28,
            channels: 1,
            classes: 10,
            noise: 0.25,
        }
    }

    /// CIFAR-10-like: 32×32×3, 10 classes.
    pub fn cifar_like() -> Self {
        ImageSpec {
            height: 32,
            width: 32,
            channels: 3,
            classes: 10,
            noise: 0.35,
        }
    }

    /// ImageNet-like geometry (224×224×3, 1000 classes). Used only for
    /// cost-model tracing; generate small sample counts.
    pub fn imagenet_like() -> Self {
        ImageSpec {
            height: 224,
            width: 224,
            channels: 3,
            classes: 1000,
            noise: 0.35,
        }
    }

    fn prototype_pixel(&self, class: usize, y: usize, x: usize, c: usize) -> f32 {
        let fy = (class % 5 + 1) as f32;
        let fx = (class % 3 + 1) as f32;
        let phase = class as f32 * 0.7 + c as f32 * 1.3;
        let v = (fy * y as f32 * std::f32::consts::PI / self.height as f32 + phase).sin()
            * (fx * x as f32 * std::f32::consts::PI / self.width as f32).cos();
        // A class-positioned blob to break grating symmetry.
        let by = (class * self.height) / self.classes.max(1);
        let bx = ((class * 7) % self.width.max(1)) as f32;
        let dy = y as f32 - by as f32;
        let dx = x as f32 - bx;
        let blob = (-(dy * dy + dx * dx) / 18.0).exp();
        v * 0.6 + blob
    }
}

/// A labeled image dataset with deterministic batch iteration.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Images, `[n, h, w, c]`.
    pub images: Tensor<f32>,
    /// Integer class labels, length `n`.
    pub labels: Vec<usize>,
    /// The generating spec.
    pub spec: ImageSpec,
}

impl Dataset {
    /// Generates `n` samples (labels cycle through the classes).
    pub fn generate(spec: ImageSpec, n: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * spec.height * spec.width * spec.channels);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % spec.classes;
            labels.push(class);
            let shift_y = rng.gen_range(-2i32..=2);
            let shift_x = rng.gen_range(-2i32..=2);
            for y in 0..spec.height {
                for x in 0..spec.width {
                    for c in 0..spec.channels {
                        let sy = (y as i32 + shift_y).rem_euclid(spec.height as i32) as usize;
                        let sx = (x as i32 + shift_x).rem_euclid(spec.width as i32) as usize;
                        let clean = spec.prototype_pixel(class, sy, sx, c);
                        let noise: f32 = {
                            // Box–Muller
                            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                            let u2: f32 = rng.gen_range(0.0..1.0);
                            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
                        };
                        data.push(clean + spec.noise * noise);
                    }
                }
            }
        }
        Dataset {
            images: Tensor::from_vec(data, &[n, spec.height, spec.width, spec.channels]),
            labels,
            spec,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The `i`-th minibatch under a seeded shuffle: `(images, labels)`.
    ///
    /// # Panics
    /// Panics if `batch_size` is 0 or exceeds the dataset size.
    pub fn batch(&self, batch_size: usize, index: usize, shuffle_seed: u64) -> Batch {
        assert!(batch_size > 0, "batch_size must be positive");
        assert!(batch_size <= self.len(), "batch larger than dataset");
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(shuffle_seed);
        // Fisher–Yates
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let n_batches = self.len() / batch_size;
        let b = index % n_batches;
        let rows: Vec<usize> = order[b * batch_size..(b + 1) * batch_size].to_vec();
        Batch {
            images: self.images.gather_rows(&rows),
            labels: rows.iter().map(|&r| self.labels[r]).collect(),
        }
    }

    /// Number of whole batches of the given size.
    pub fn batches_per_epoch(&self, batch_size: usize) -> usize {
        self.len() / batch_size
    }
}

/// One minibatch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Images, `[b, h, w, c]`.
    pub images: Tensor<f32>,
    /// Integer labels, length `b`.
    pub labels: Vec<usize>,
}

impl Batch {
    /// One-hot float labels, `[b, classes]`.
    pub fn one_hot(&self, classes: usize) -> Tensor<f32> {
        Tensor::one_hot(&self.labels, classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(ImageSpec::mnist_like(), 20, 42);
        let b = Dataset::generate(ImageSpec::mnist_like(), 20, 42);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
        let c = Dataset::generate(ImageSpec::mnist_like(), 20, 43);
        assert_ne!(a.images, c.images);
    }

    #[test]
    fn shapes_and_labels() {
        let d = Dataset::generate(ImageSpec::cifar_like(), 25, 1);
        assert_eq!(d.images.dims(), &[25, 32, 32, 3]);
        assert_eq!(d.len(), 25);
        assert!(!d.is_empty());
        assert!(d.labels.iter().all(|&l| l < 10));
        // Labels cycle: balanced classes.
        assert_eq!(d.labels[0], 0);
        assert_eq!(d.labels[11], 1);
    }

    #[test]
    fn classes_are_separable_by_prototype_distance() {
        // Same-class samples must be closer to their prototype than to
        // other prototypes on average — the dataset is learnable.
        let spec = ImageSpec::mnist_like();
        let d = Dataset::generate(spec, 40, 7);
        let proto = |class: usize| -> Vec<f32> {
            let mut p = Vec::new();
            for y in 0..spec.height {
                for x in 0..spec.width {
                    p.push(spec.prototype_pixel(class, y, x, 0));
                }
            }
            p
        };
        let protos: Vec<Vec<f32>> = (0..10).map(proto).collect();
        let mut correct = 0;
        for i in 0..d.len() {
            let img = &d.images.as_slice()[i * 784..(i + 1) * 784];
            let mut best = (f32::INFINITY, 0);
            for (c, p) in protos.iter().enumerate() {
                let dist: f32 = img.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum();
                if dist < best.0 {
                    best = (dist, c);
                }
            }
            if best.1 == d.labels[i] {
                correct += 1;
            }
        }
        assert!(correct >= 36, "nearest-prototype got {correct}/40");
    }

    #[test]
    fn batching_covers_and_shuffles() {
        let d = Dataset::generate(ImageSpec::mnist_like(), 30, 3);
        let b0 = d.batch(10, 0, 5);
        assert_eq!(b0.images.dims(), &[10, 28, 28, 1]);
        assert_eq!(b0.labels.len(), 10);
        assert_eq!(d.batches_per_epoch(10), 3);
        // Distinct shuffle seeds give distinct batches.
        let b1 = d.batch(10, 0, 6);
        assert_ne!(b0.labels, b1.labels);
        // Same seed, same batch (reproducible).
        let b0_again = d.batch(10, 0, 5);
        assert_eq!(b0.labels, b0_again.labels);
        // All three batch indices together cover all 30 samples.
        let mut seen: Vec<usize> = (0..3).flat_map(|i| d.batch(10, i, 5).labels).collect();
        seen.sort_unstable();
        let mut expected = d.labels.clone();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn one_hot_labels() {
        let d = Dataset::generate(ImageSpec::mnist_like(), 10, 9);
        let b = d.batch(4, 0, 1);
        let oh = b.one_hot(10);
        assert_eq!(oh.dims(), &[4, 10]);
        for (row, &l) in b.labels.iter().enumerate() {
            assert_eq!(oh.at(&[row, l]), 1.0);
        }
    }
}
