//! Criterion bench for experiment E9 (§2.3): AOT-synthesized derivatives
//! vs. define-by-run runtime taping.
//!
//! The compile-time transformation synthesizes the derivative *once*; each
//! evaluation then runs augmented-primal + pullback with no per-op
//! recording machinery. The tape rebuilds its graph on every call — the
//! per-call overhead the paper's AOT approach avoids (and why it targets
//! edge devices "where the cost of tracing and JIT compilation are
//! infeasible").

use criterion::{criterion_group, criterion_main, Criterion};
use s4tf_core::tape::Tape;
use s4tf_sil::ad::vjp::differentiate;
use s4tf_sil::parser::parse_module_unwrap;

/// f(x, y) = sigmoid(sin(x)·y + x²/y), with a 16-iteration refinement loop.
const PROGRAM: &str = r#"
func @f(%x: f64, %y: f64) -> f64 {
bb0(%x: f64, %y: f64):
  %zero = const 0.0
  %s0 = sin %x
  %b = mul %s0, %y
  br bb1(%b, %zero)
bb1(%acc: f64, %k: f64):
  %n = const 16.0
  %c = cmp lt %k, %n
  condbr %c, bb2(), bb3()
bb2():
  %t = tanh %acc
  %q = mul %t, %x
  %acc2 = add %acc, %q
  %half = const 0.5
  %acc3 = mul %acc2, %half
  %one = const 1.0
  %kn = add %k, %one
  br bb1(%acc3, %kn)
bb3():
  %r = sigmoid %acc
  ret %r
}
"#;

fn tape_equivalent(x: f64, y: f64) -> (f64, f64) {
    let tape = Tape::new();
    let xv = tape.var(x);
    let yv = tape.var(y);
    let mut acc = xv.sin() * yv;
    for _ in 0..16 {
        acc = (acc + acc.tanh() * xv) * 0.5;
    }
    let out = ((-acc).exp() + 1.0).powf(-1.0);
    let g = tape.gradients(out);
    (g.wrt(xv), g.wrt(yv))
}

fn ad_styles(c: &mut Criterion) {
    let module = parse_module_unwrap(PROGRAM);
    let f = module.func_id("f").unwrap();

    // Synthesis happens once, outside the measured loop — "compile time".
    let synthesized = differentiate(&module, f).unwrap();

    let mut group = c.benchmark_group("ad_styles");
    group.bench_function("sil_aot_reverse", |b| {
        b.iter(|| {
            let (v, g) = synthesized
                .value_with_gradient(std::hint::black_box(&[0.7, 1.3]), 1.0)
                .unwrap();
            std::hint::black_box((v, g));
        })
    });
    group.bench_function("runtime_tape", |b| {
        b.iter(|| std::hint::black_box(tape_equivalent(0.7, 1.3)))
    });
    group.bench_function("sil_synthesis_itself", |b| {
        // What re-deriving per call would cost (what JIT systems amortize).
        b.iter(|| std::hint::black_box(differentiate(&module, f).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep `cargo bench --workspace` under a few minutes
    // while staying well above timer noise for these kernels.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = ad_styles
}
criterion_main!(benches);
