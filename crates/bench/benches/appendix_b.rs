//! Criterion bench for Appendix B: functional vs. `inout` subscript
//! pullbacks across array sizes (the O(n) → O(1) claim, §4.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use s4tf_core::subscript::{my_op_with_functional_pullback, my_op_with_mutable_pullback};

fn subscript_pullbacks(c: &mut Criterion) {
    let mut group = c.benchmark_group("subscript_pullback");
    for &n in &[100usize, 10_000, 1_000_000] {
        let values: Vec<f32> = (0..n).map(|i| i as f32).collect();
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("functional", n), &values, |b, v| {
            let (_, pb) = my_op_with_functional_pullback(v, 1, v.len() - 2);
            b.iter(|| std::hint::black_box(pb(1.0)[1]));
        });
        group.bench_with_input(BenchmarkId::new("inout", n), &values, |b, v| {
            let (_, pb) = my_op_with_mutable_pullback(v, 1, v.len() - 2);
            let mut grad = vec![0.0f32; v.len()];
            b.iter(|| {
                pb(1.0, &mut grad);
                std::hint::black_box(grad[1]);
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep `cargo bench --workspace` under a few minutes
    // while staying well above timer noise for these kernels.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = subscript_pullbacks
}
criterion_main!(benches);
