//! Criterion bench: the XLA-like compiler's fusion payoff (§3.3) —
//! executing an elementwise chain as one fused kernel vs. op-by-op, and
//! the program-cache lookup cost (§3.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use s4tf_tensor::Tensor;
use s4tf_xla::{compile, compile_unoptimized, ElemBinary, ElemUnary, HloGraph, ProgramCache};

/// swish-like chain: x · sigmoid(2x + 1), 6 elementwise ops.
fn chain(dim: usize) -> HloGraph {
    let mut g = HloGraph::new();
    let x = g.parameter(0, &[dim]);
    let two = g.constant(Tensor::scalar(2.0));
    let one = g.constant(Tensor::scalar(1.0));
    let a = g.binary(ElemBinary::Mul, x, two);
    let b = g.binary(ElemBinary::Add, a, one);
    let s = g.unary(ElemUnary::Sigmoid, b);
    let y = g.binary(ElemBinary::Mul, x, s);
    g.mark_output(y);
    g
}

fn fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("elementwise_fusion");
    for &dim in &[1 << 12, 1 << 16, 1 << 20] {
        let g = chain(dim);
        let fused = compile(&g);
        let unfused = compile_unoptimized(&g);
        let input = Tensor::<f32>::from_fn(&[dim], |i| (i as f32 % 7.0) - 3.0);
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(BenchmarkId::new("fused", dim), &input, |b, x| {
            b.iter(|| std::hint::black_box(fused.run(&[x])))
        });
        group.bench_with_input(BenchmarkId::new("op_by_op", dim), &input, |b, x| {
            b.iter(|| std::hint::black_box(unfused.run(&[x])))
        });
    }
    group.finish();

    // Cache lookup (per-step cost of the §3.4 program cache) vs. a cold
    // compile (what the cache avoids).
    let mut group = c.benchmark_group("program_cache");
    let g = chain(1 << 10);
    let cache = ProgramCache::new();
    cache.get_or_compile(&g);
    group.bench_function("hit", |b| {
        b.iter(|| std::hint::black_box(cache.get_or_compile(&g)))
    });
    group.bench_function("cold_compile", |b| {
        b.iter(|| std::hint::black_box(compile(&g)))
    });
    group.bench_function("fingerprint_only", |b| {
        b.iter(|| std::hint::black_box(g.fingerprint()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep `cargo bench --workspace` under a few minutes
    // while staying well above timer noise for these kernels.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = fusion
}
criterion_main!(benches);
