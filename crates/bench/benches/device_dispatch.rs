//! Criterion bench: per-op cost of the three execution strategies (§3) on
//! a small tensor, where dispatch architecture — not kernel math —
//! dominates. This isolates the overhead Table 3 attributes to eager
//! op-by-op dispatch and lazy re-tracing.

use criterion::{criterion_group, criterion_main, Criterion};
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::Tensor;

/// A 20-op elementwise program on a tiny tensor.
fn program(x: &DTensor) -> DTensor {
    let mut h = x.clone();
    for _ in 0..10 {
        h = h.relu().mul_scalar(0.99);
    }
    h
}

fn device_dispatch(c: &mut Criterion) {
    let input = Tensor::<f32>::from_fn(&[64], |i| (i as f32) - 32.0);
    let mut group = c.benchmark_group("per_op_dispatch");

    let naive = Device::naive();
    let xn = DTensor::from_tensor(input.clone(), &naive);
    group.bench_function("naive_direct", |b| {
        b.iter(|| std::hint::black_box(program(&xn).to_tensor()))
    });

    let eager = Device::eager();
    let xe = DTensor::from_tensor(input.clone(), &eager);
    group.bench_function("eager_async_dispatch", |b| {
        b.iter(|| std::hint::black_box(program(&xe).to_tensor()))
    });

    let lazy = Device::lazy();
    let xl = DTensor::from_tensor(input.clone(), &lazy);
    // Warm the cache so the steady-state cost is retrace + lookup + run.
    let _ = program(&xl).to_tensor();
    group.bench_function("lazy_retrace_cached", |b| {
        b.iter(|| std::hint::black_box(program(&xl).to_tensor()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep `cargo bench --workspace` under a few minutes
    // while staying well above timer noise for these kernels.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(30);
    targets = device_dispatch
}
criterion_main!(benches);
