//! Statistically rigorous micro-benchmark measurement: warmup runs,
//! repeated trials, median + IQR-based outlier rejection, and a machine
//! fingerprint for the recorded artifacts.
//!
//! Best-of-N (the previous harness) under-reports variance and is at the
//! mercy of one lucky run; mean-of-N is at the mercy of one unlucky one
//! (a GC pause, a scheduler preemption). The standard remedy — median of
//! many trials with Tukey-fence outlier rejection — is robust to both,
//! and the reported IQR makes regression gating principled: a change
//! inside the interquartile range is noise, not a regression.

use serde::Value;
use std::time::Instant;

/// Robust statistics over one benchmark case's trials (milliseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct TrialStats {
    /// Median wall time of the retained trials.
    pub median_ms: f64,
    /// Interquartile range of the retained trials (the noise scale).
    pub iqr_ms: f64,
    /// Mean of the retained trials.
    pub mean_ms: f64,
    /// Fastest retained trial.
    pub min_ms: f64,
    /// Trials that were run.
    pub trials: usize,
    /// Trials rejected as outliers (outside the 1.5×IQR Tukey fences).
    pub rejected: usize,
}

impl TrialStats {
    /// Achieved GFLOP/s at the median trial time.
    pub fn gflops(&self, flops: u64) -> f64 {
        if self.median_ms <= 0.0 {
            0.0
        } else {
            flops as f64 / 1e6 / self.median_ms
        }
    }

    /// Achieved GB/s at the median trial time.
    pub fn gbps(&self, bytes: u64) -> f64 {
        if self.median_ms <= 0.0 {
            0.0
        } else {
            bytes as f64 / 1e6 / self.median_ms
        }
    }

    /// The stats as JSON fields (merged into a result object).
    pub fn fields(&self) -> Vec<(&'static str, Value)> {
        vec![
            ("median_ms", Value::Float(self.median_ms)),
            ("iqr_ms", Value::Float(self.iqr_ms)),
            ("mean_ms", Value::Float(self.mean_ms)),
            ("min_ms", Value::Float(self.min_ms)),
            ("trials", Value::UInt(self.trials as u64)),
            ("rejected", Value::UInt(self.rejected as u64)),
        ]
    }
}

/// Times `f` over `trials` runs after `warmup` unmeasured runs, rejecting
/// outliers outside the Tukey fences (`[q1 − 1.5·IQR, q3 + 1.5·IQR]`).
pub fn measure(warmup: usize, trials: usize, mut f: impl FnMut()) -> TrialStats {
    assert!(trials > 0, "at least one trial");
    for _ in 0..warmup {
        f();
    }
    let mut times_ms: Vec<f64> = (0..trials)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times_ms.sort_by(|a, b| a.total_cmp(b));
    stats_of_sorted(&times_ms)
}

/// The robust statistics of an already-sorted sample.
pub fn stats_of_sorted(sorted_ms: &[f64]) -> TrialStats {
    let q1 = quantile(sorted_ms, 0.25);
    let q3 = quantile(sorted_ms, 0.75);
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let kept: Vec<f64> = sorted_ms
        .iter()
        .copied()
        .filter(|&t| t >= lo && t <= hi)
        .collect();
    let kept = if kept.is_empty() {
        sorted_ms.to_vec() // degenerate fences (all-equal samples) keep all
    } else {
        kept
    };
    TrialStats {
        median_ms: quantile(&kept, 0.5),
        iqr_ms: quantile(&kept, 0.75) - quantile(&kept, 0.25),
        mean_ms: kept.iter().sum::<f64>() / kept.len() as f64,
        min_ms: kept[0],
        trials: sorted_ms.len(),
        rejected: sorted_ms.len() - kept.len(),
    }
}

/// Linear-interpolated quantile of a sorted sample.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// The benchmarking host described as a JSON object: fingerprint, probed
/// peak FLOP rate and bandwidth. Recorded into every artifact so the CI
/// regression gate can refuse to compare numbers from unlike machines.
///
/// `peak_gflops`/`peak_gbps` are the ceilings of the *active* dispatch
/// path (what the kernels in this process actually run); the per-path
/// `peak_gflops_scalar`/`peak_gflops_simd` ceilings are recorded
/// alongside so a `S4TF_SIMD=0` artifact still documents the headroom
/// the machine offers.
pub fn machine_value() -> Value {
    let simd = s4tf_tensor::simd_enabled();
    let probe = s4tf_profile::machine_probe_path(simd);
    let scalar = s4tf_profile::machine_probe_path(false);
    let mut fields = vec![
        (
            "fingerprint".to_string(),
            Value::Str(s4tf_profile::machine_fingerprint()),
        ),
        (
            "cores".to_string(),
            Value::UInt(std::thread::available_parallelism().map_or(1, |n| n.get()) as u64),
        ),
        (
            "path".to_string(),
            Value::Str(s4tf_tensor::path_label().to_string()),
        ),
        (
            "lane_width".to_string(),
            Value::UInt(s4tf_tensor::lane_width() as u64),
        ),
        ("peak_gflops".to_string(), Value::Float(probe.peak_gflops)),
        ("peak_gbps".to_string(), Value::Float(probe.peak_gbps)),
        (
            "peak_gflops_scalar".to_string(),
            Value::Float(scalar.peak_gflops),
        ),
    ];
    if s4tf_profile::simd_probe_supported() {
        fields.push((
            "peak_gflops_simd".to_string(),
            Value::Float(s4tf_profile::machine_probe_path(true).peak_gflops),
        ));
    }
    Value::Object(fields.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_interpolate() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&s, 0.0), 1.0);
        assert_eq!(quantile(&s, 1.0), 4.0);
        assert_eq!(quantile(&s, 0.5), 2.5);
        assert_eq!(quantile(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn outliers_are_rejected() {
        // 9 tight samples and one 100x straggler: the straggler must not
        // drag the median or mean.
        let mut s: Vec<f64> = vec![1.0, 1.01, 1.02, 0.99, 1.0, 1.03, 0.98, 1.01, 1.0, 100.0];
        s.sort_by(|a, b| a.total_cmp(b));
        let stats = stats_of_sorted(&s);
        assert_eq!(stats.rejected, 1);
        assert!(stats.median_ms < 1.05);
        assert!(stats.mean_ms < 1.05);
    }

    #[test]
    fn identical_samples_keep_everything() {
        let s = [2.0; 5];
        let stats = stats_of_sorted(&s);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.median_ms, 2.0);
        assert_eq!(stats.iqr_ms, 0.0);
    }

    #[test]
    fn throughput_conversions() {
        let stats = TrialStats {
            median_ms: 2.0,
            iqr_ms: 0.0,
            mean_ms: 2.0,
            min_ms: 2.0,
            trials: 3,
            rejected: 0,
        };
        // 2e9 FLOPs in 2 ms = 1000 GFLOP/s.
        assert!((stats.gflops(2_000_000_000) - 1000.0).abs() < 1e-9);
        assert!((stats.gbps(2_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn measure_runs_and_reports() {
        let mut calls = 0u32;
        let stats = measure(2, 5, || calls += 1);
        assert_eq!(calls, 7);
        assert_eq!(stats.trials, 5);
        assert!(stats.median_ms >= 0.0);
    }
}
