//! Plain-text table rendering for the experiment binaries, matching the
//! row/column layout of the paper's tables so paper-vs-measured comparison
//! is line-by-line.

/// One table row: a label plus formatted cell values.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (first column).
    pub label: String,
    /// Remaining cells, already formatted.
    pub cells: Vec<String>,
}

impl Row {
    /// Builds a row.
    pub fn new(label: impl Into<String>, cells: Vec<String>) -> Self {
        Row {
            label: label.into(),
            cells,
        }
    }
}

/// Prints a boxed table with a title, headers and rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Row]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        widths[0] = widths[0].max(row.label.len());
        for (i, c) in row.cells.iter().enumerate() {
            widths[i + 1] = widths[i + 1].max(c.len());
        }
    }
    let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
    println!("\n{title}");
    println!("{}", "=".repeat(total.min(100)));
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        line.push_str(&format!("| {h:<w$} "));
    }
    line.push('|');
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
    for row in rows {
        let mut line = format!("| {:<w$} ", row.label, w = widths[0]);
        for (c, w) in row.cells.iter().zip(&widths[1..]) {
            line.push_str(&format!("| {c:>w$} "));
        }
        line.push('|');
        println!("{line}");
    }
    println!();
}

/// Formats a duration in the most readable unit.
pub fn fmt_duration(seconds: f64) -> String {
    if seconds >= 60.0 {
        format!("{:.1} min", seconds / 60.0)
    } else if seconds >= 1.0 {
        format!("{seconds:.2} s")
    } else if seconds >= 1e-3 {
        format!("{:.1} ms", seconds * 1e3)
    } else {
        format!("{:.1} µs", seconds * 1e6)
    }
}

/// Formats a byte count.
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1} MB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1} KB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_units() {
        assert_eq!(fmt_duration(120.0), "2.0 min");
        assert_eq!(fmt_duration(2.5), "2.50 s");
        assert_eq!(fmt_duration(0.005), "5.0 ms");
        assert_eq!(fmt_duration(1e-5), "10.0 µs");
        assert_eq!(fmt_bytes(5), "5 B");
        assert_eq!(fmt_bytes(2048), "2.0 KB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MB");
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            "Test",
            &["Platform", "Time"],
            &[
                Row::new("a", vec!["1".into()]),
                Row::new("a much longer label", vec!["2222".into()]),
            ],
        );
    }
}
