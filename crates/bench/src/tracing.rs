//! Shared tracing helpers: record a full training step of a model on the
//! lazy device and snapshot the trace for compilation/simulation, without
//! executing it — this is how the datacenter-scale experiments feed *real*
//! traces of *real* (ImageNet-geometry) models through the real compiler
//! while only the kernel clock is simulated.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf_models::{ResNet, ResNetConfig};
use s4tf_nn::loss::softmax_cross_entropy;
use s4tf_nn::optimizer::{Optimizer, Sgd};
use s4tf_nn::Layer;
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::Tensor;
use s4tf_xla::graph::HloGraph;

/// A recorded (un-executed) training-step trace.
#[derive(Debug)]
pub struct TracedStep {
    /// The step's operation graph, outputs marked.
    pub graph: HloGraph,
    /// Wall-clock seconds spent *recording* the trace (the §3.4 per-step
    /// retracing overhead of the lazy backend, measured on this machine).
    pub trace_seconds: f64,
    /// Number of model parameters (for gradient all-reduce sizing).
    pub param_count: usize,
}

/// Records one full training step (forward → softmax CE → backward →
/// SGD update) of the configured ResNet at the given input geometry,
/// returning the trace without executing it.
pub fn trace_resnet_training_step(
    config: ResNetConfig,
    batch: usize,
    height: usize,
    width: usize,
) -> TracedStep {
    let device = Device::lazy();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let classes = config.classes;
    let channels = config.input_channels;
    let mut model = ResNet::new(config, &device, &mut rng);
    let param_count = resnet_param_count(&model);

    let images = DTensor::from_tensor(Tensor::zeros(&[batch, height, width, channels]), &device);
    let label_ids: Vec<usize> = (0..batch).map(|i| i % classes).collect();
    let labels = DTensor::from_tensor(Tensor::one_hot(&label_ids, classes), &device);

    let Device::Lazy(ctx) = &device else {
        unreachable!()
    };
    let mut span = s4tf_profile::span("bench.trace_resnet_step");
    let trace_before = ctx.trace_time();
    let wall = std::time::Instant::now();
    // The exact body of `train_classifier_step`, minus the barrier.
    let (logits, pullback) = model.forward_with_pullback(&images);
    let (loss, loss_pullback) = softmax_cross_entropy(&logits, &labels);
    let dlogits = loss_pullback(&loss.scalar_like(1.0));
    let (gradients, _) = pullback(&dlogits);
    let mut opt = Sgd::<ResNet>::new(0.1);
    opt.update(&mut model, &gradients);
    let wall_elapsed = wall.elapsed().as_secs_f64();
    let recorded = (ctx.trace_time() - trace_before).as_secs_f64();

    let graph = ctx.snapshot_trace();
    ctx.abandon_trace();
    if span.is_recording() {
        span.annotate_f64("nodes", graph.len() as f64);
        span.annotate_f64("params", param_count as f64);
    }
    TracedStep {
        graph,
        // Recording time includes both the lock-protected graph appends
        // (`recorded`) and the host-side closure plumbing around them; the
        // wall measurement is the honest per-step retrace cost.
        trace_seconds: wall_elapsed.max(recorded),
        param_count,
    }
}

/// Counts a ResNet's trainable parameters.
pub fn resnet_param_count(model: &ResNet) -> usize {
    let mut count = model.stem.filter.num_elements()
        + model.stem.bias.num_elements()
        + model.stem_bn.scale.num_elements()
        + model.stem_bn.offset.num_elements()
        + model.head.weight.num_elements()
        + model.head.bias.num_elements();
    for b in &model.blocks {
        count += b.conv1.filter.num_elements()
            + b.conv1.bias.num_elements()
            + b.conv2.filter.num_elements()
            + b.conv2.bias.num_elements()
            + b.bn1.scale.num_elements()
            + b.bn1.offset.num_elements()
            + b.bn2.scale.num_elements()
            + b.bn2.offset.num_elements();
        for p in &b.shortcut {
            count += p.filter.num_elements() + p.bias.num_elements();
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_a_small_step_without_executing() {
        let step = trace_resnet_training_step(ResNetConfig::resnet8_cifar(), 4, 16, 16);
        assert!(
            step.graph.len() > 100,
            "full step trace: {}",
            step.graph.len()
        );
        assert!(!step.graph.outputs.is_empty());
        assert!(step.trace_seconds > 0.0);
        // ResNet-8 CIFAR: stem (448+16+32) + 3 blocks + head (650).
        assert!(
            step.param_count > 70_000 && step.param_count < 90_000,
            "{}",
            step.param_count
        );
        // The graph compiles (passes run) even though we never execute it.
        let exe = s4tf_xla::compile(&step.graph);
        assert!(exe.kernel_count() > 0);
    }
}
