//! # s4tf-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (§5), plus ablation binaries and Criterion micro-benchmarks.
//! See DESIGN.md's per-experiment index and EXPERIMENTS.md for
//! paper-vs-measured results.
//!
//! Binaries (run with `cargo run -p s4tf-bench --release --bin <name>`):
//!
//! * `table1` — ResNet/ImageNet throughput scaling on simulated TPUv3
//!   clusters (16/32/128 cores).
//! * `table2` — framework-pipeline comparison on a simulated TPUv3-32.
//! * `table3` — ResNet-56/CIFAR-10 backend comparison (simulated GTX 1080
//!   + real CPU wall clock).
//! * `table4` — on-device spline personalization across the four
//!   implementation strategies (time, peak memory, binary size).
//! * `figure4` — the LeNet-5 forward-pass trace as DOT + summary.
//! * `appendix_b` — functional vs. `inout` subscript pullbacks over `n`.
//! * `ablation_retrace` — trace-cache hit/miss/shape-change costs (§3.4).
//! * `ablation_allreduce` — per-core throughput retention vs. interconnect.

pub mod alloc_track;
pub mod harness;
pub mod report;
pub mod tracing;

pub use harness::{measure, TrialStats};
pub use report::{print_table, Row};
