//! Backend op benchmark: the core op families (GEMM, conv2d, elementwise,
//! reduction) timed through the full runtime dispatch path on all three
//! backends, writing achieved GFLOP/s per (op, case, backend) to
//! `BENCH_ops.json`.
//!
//! ```sh
//! cargo run -p s4tf-bench --release --bin ops            # full sizes
//! cargo run -p s4tf-bench --release --bin ops -- --smoke # CI smoke
//! ```
//!
//! `--out PATH` overrides the output path. Where `kernels` times the raw
//! tensor kernels, this bench goes through `DTensor` — so eager pays its
//! queue hop and lazy pays trace + (amortized) compile per observation.
//! Each result divides the cost model's analytic FLOPs by the median wall
//! time, which is exactly the per-op number the profiler's roofline
//! reports; the CI regression gate diffs these GFLOP/s values against the
//! checked-in baseline.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf_bench::harness::{machine_value, measure};
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::{cost, OpCost, Padding, Tensor};
use serde::Value;
use std::hint::black_box;

const BACKENDS: [&str; 3] = ["naive", "eager", "lazy"];

/// One timed invocation of the op under measurement.
type RunFn = Box<dyn FnMut()>;

struct Case {
    op: &'static str,
    name: String,
    cost: OpCost,
    /// Backends this case runs on (whole-model cases only make sense
    /// where their execution strategy applies).
    backends: &'static [&'static str],
    /// Dispatch-path label override for the emitted rows; `None` uses
    /// the machine-wide `s4tf_tensor::path_label()`.
    path: Option<&'static str>,
    /// Builds the run closure for one backend; inputs live on its device.
    make: Box<dyn Fn(&Device) -> RunFn>,
}

fn device_for(backend: &str) -> Device {
    match backend {
        "naive" => Device::naive(),
        "eager" => Device::eager(),
        "lazy" => Device::lazy(),
        _ => unreachable!(),
    }
}

fn gemm_case(m: usize, k: usize, n: usize) -> Case {
    Case {
        op: "gemm",
        name: format!("{m}x{k}x{n}"),
        cost: cost::matmul(m, k, n),
        backends: &BACKENDS,
        path: None,
        make: Box::new(move |device| {
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            let a = DTensor::from_tensor(Tensor::<f32>::randn(&[m, k], &mut rng), device);
            let b = DTensor::from_tensor(Tensor::<f32>::randn(&[k, n], &mut rng), device);
            Box::new(move || {
                black_box(a.matmul(&b).to_tensor());
            })
        }),
    }
}

fn conv_case(label: &str, x_dims: [usize; 4], w_dims: [usize; 4], padding: Padding) -> Case {
    let (n, ih, iw, c_in) = (x_dims[0], x_dims[1], x_dims[2], x_dims[3]);
    let (kh, kw, c_out) = (w_dims[0], w_dims[1], w_dims[3]);
    let (oh, ow) = match padding {
        Padding::Same => (ih, iw),
        Padding::Valid => (ih - kh + 1, iw - kw + 1),
    };
    Case {
        op: "conv2d",
        name: label.to_string(),
        cost: cost::conv2d(n, c_in, kh, kw, c_out, oh, ow, n * ih * iw * c_in),
        backends: &BACKENDS,
        path: None,
        make: Box::new(move |device| {
            let mut rng = ChaCha8Rng::seed_from_u64(13);
            let x = DTensor::from_tensor(Tensor::<f32>::randn(&x_dims, &mut rng), device);
            let w = DTensor::from_tensor(Tensor::<f32>::randn(&w_dims, &mut rng), device);
            Box::new(move || {
                black_box(x.conv2d(&w, (1, 1), padding).to_tensor());
            })
        }),
    }
}

fn elementwise_case(n: usize) -> Case {
    Case {
        op: "elementwise",
        name: format!("add n={n}"),
        // Binary add: one FLOP per output, reads both operands.
        cost: cost::elementwise(n, 2 * n, 1),
        backends: &BACKENDS,
        path: None,
        make: Box::new(move |device| {
            let mut rng = ChaCha8Rng::seed_from_u64(17);
            let a = DTensor::from_tensor(Tensor::<f32>::randn(&[n], &mut rng), device);
            let b = DTensor::from_tensor(Tensor::<f32>::randn(&[n], &mut rng), device);
            Box::new(move || {
                black_box(a.add(&b).to_tensor());
            })
        }),
    }
}

fn reduce_case(n: usize) -> Case {
    Case {
        op: "reduction",
        name: format!("sum n={n}"),
        cost: cost::reduce(n, 1, false),
        backends: &BACKENDS,
        path: None,
        make: Box::new(move |device| {
            let mut rng = ChaCha8Rng::seed_from_u64(19);
            let x = DTensor::from_tensor(Tensor::<f32>::randn(&[n], &mut rng), device);
            Box::new(move || {
                black_box(x.sum().to_tensor());
            })
        }),
    }
}

/// One full LeNet training step (forward, softmax cross-entropy,
/// pullback, momentum SGD update, barrier) on the lazy backend — the
/// end-to-end number the fused-kernel compiler has to move. Emitted as
/// two rows: the chunked fused interpreter and the compiled path
/// (`path: codegen`).
fn train_step_cases(batch: usize) -> Vec<Case> {
    use s4tf_models::LeNet;
    use s4tf_nn::optimizer::Sgd;
    use s4tf_nn::train::train_classifier_step;

    // Analytic step cost: forward = conv1 + conv2 + the three dense
    // matmuls (pools, bias adds and activations are noise next to
    // these); backward revisits each at roughly 2x (one pass per matmul
    // operand). Total ~= 3x forward, the standard training-step count.
    let fwd = [
        cost::conv2d(batch, 1, 5, 5, 6, 28, 28, batch * 28 * 28),
        cost::conv2d(batch, 6, 5, 5, 16, 10, 10, batch * 14 * 14 * 6),
        cost::matmul(batch, 400, 120),
        cost::matmul(batch, 120, 84),
        cost::matmul(batch, 84, 10),
    ];
    let step_cost = OpCost {
        flops: 3 * fwd.iter().map(|c| c.flops).sum::<u64>(),
        bytes: 3 * fwd.iter().map(|c| c.bytes).sum::<u64>(),
    };

    [("interp", false), ("codegen", true)]
        .into_iter()
        .map(|(label, codegen)| Case {
            op: "train-step",
            name: format!("lenet b={batch} [{label}]"),
            cost: step_cost,
            backends: &["lazy"],
            path: if codegen { Some("codegen") } else { None },
            make: Box::new(move |device| {
                let mut rng = ChaCha8Rng::seed_from_u64(23);
                let mut model = LeNet::new(device, &mut rng);
                let mut opt = Sgd::<LeNet>::with_momentum(0.05, 0.9);
                let x = DTensor::from_tensor(
                    Tensor::<f32>::randn(&[batch, 28, 28, 1], &mut rng),
                    device,
                );
                let labels = DTensor::from_tensor(Tensor::zeros(&[batch, 10]), device);
                Box::new(move || {
                    s4tf_runtime::set_codegen_enabled(codegen);
                    black_box(train_classifier_step(&mut model, &mut opt, &x, &labels));
                })
            }),
        })
        .collect()
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_ops.json".to_string());
    let (warmup, trials) = if smoke { (2, 9) } else { (3, 11) };

    let mut cases: Vec<Case> = if smoke {
        vec![
            gemm_case(64, 64, 64),
            conv_case(
                "lenet-c1 4x28x28x1*5x5x1x6",
                [4, 28, 28, 1],
                [5, 5, 1, 6],
                Padding::Same,
            ),
            elementwise_case(4096),
            reduce_case(4096),
        ]
    } else {
        vec![
            gemm_case(128, 128, 128),
            gemm_case(256, 256, 256),
            conv_case(
                "lenet-c1 16x28x28x1*5x5x1x6",
                [16, 28, 28, 1],
                [5, 5, 1, 6],
                Padding::Same,
            ),
            conv_case(
                "lenet-c2 16x14x14x6*5x5x6x16",
                [16, 14, 14, 6],
                [5, 5, 6, 16],
                Padding::Valid,
            ),
            elementwise_case(4096),
            elementwise_case(1 << 18),
            reduce_case(1 << 18),
        ]
    };
    // Last so their codegen toggling cannot perturb the rows above.
    cases.extend(train_step_cases(if smoke { 4 } else { 16 }));

    println!(
        "op bench: {} cases x {} backends, median of {trials} (+{warmup} warmup){}",
        cases.len(),
        BACKENDS.len(),
        if smoke { ", smoke" } else { "" }
    );

    let machine = machine_value();
    // All backends share the tensor kernels, so one dispatch-path label
    // (S4TF_SIMD + CPU detection) covers the whole artifact.
    let path = s4tf_tensor::path_label();
    let mut results = Vec::new();
    for case in &cases {
        for &backend in case.backends {
            let device = device_for(backend);
            let mut run = (case.make)(&device);
            let stats = measure(warmup, trials, &mut run);
            let gflops = stats.gflops(case.cost.flops);
            let row_path = case.path.unwrap_or(path);
            println!(
                "  {:<11} {:<28} {backend:<6} {:>9.3} ms (iqr {:>7.3})  {gflops:>8.3} GF/s",
                case.op, case.name, stats.median_ms, stats.iqr_ms
            );
            let mut fields = vec![
                ("op", Value::Str(case.op.to_string())),
                ("case", Value::Str(case.name.clone())),
                ("backend", Value::Str(backend.to_string())),
                ("path", Value::Str(row_path.to_string())),
            ];
            fields.extend(stats.fields());
            fields.extend([
                ("flops", Value::UInt(case.cost.flops)),
                ("bytes", Value::UInt(case.cost.bytes)),
                ("gflops", Value::Float(gflops)),
                ("gbs", Value::Float(stats.gbps(case.cost.bytes))),
            ]);
            results.push(obj(fields));
        }
    }

    let report = obj(vec![
        ("bench", Value::Str("ops".to_string())),
        ("smoke", Value::Bool(smoke)),
        ("warmup", Value::UInt(warmup as u64)),
        ("trials", Value::UInt(trials as u64)),
        ("machine", machine),
        (
            "note",
            Value::Str(
                "times go through DTensor dispatch: eager includes the queue \
                 hop, lazy includes trace + amortized compile per observation"
                    .to_string(),
            ),
        ),
        ("results", Value::Array(results)),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json.as_bytes()).expect("write benchmark JSON");
    println!("wrote {out_path} ({} bytes)", json.len());
}
