//! Ablation for Table 1's scaling column: how per-core throughput
//! retention depends on the interconnect. Sweeps link bandwidth and
//! latency in the ring all-reduce model and reports retention from 16 to
//! 128 cores.
//!
//! Run: `cargo run -p s4tf-bench --release --bin ablation_allreduce`

use s4tf_bench::report::{print_table, Row};
use s4tf_bench::tracing::trace_resnet_training_step;
use s4tf_models::ResNetConfig;
use s4tf_runtime::sim::{AcceleratorModel, ClusterModel};
use s4tf_xla::compile;

const PER_CORE_BATCH: usize = 16;

fn main() {
    println!("All-reduce sensitivity ablation (Table 1's per-core column)");
    eprintln!("tracing the ImageNet-geometry step once…");
    let step =
        trace_resnet_training_step(ResNetConfig::resnet_imagenet(), PER_CORE_BATCH, 224, 224);
    let exe = compile(&step.graph);
    let compute = AcceleratorModel::tpu_v3_core().program_time(exe.graph()) + step.trace_seconds;
    let grad_bytes = step.param_count as f64 * 4.0;

    let retention = |bandwidth: f64, latency: f64| -> f64 {
        let at = |cores: usize| {
            ClusterModel {
                core: AcceleratorModel::tpu_v3_core(),
                num_cores: cores,
                link_bandwidth: bandwidth,
                link_latency: latency,
            }
            .per_core_throughput(PER_CORE_BATCH, compute, grad_bytes)
        };
        at(128) / at(16)
    };

    let mut rows = Vec::new();
    for &bw_gbps in &[10.0f64, 35.0, 70.0, 140.0] {
        let cells: Vec<String> = [0.5e-6, 2.0e-6, 8.0e-6, 32.0e-6]
            .iter()
            .map(|&lat| format!("{:.1}%", retention(bw_gbps * 1e9, lat) * 100.0))
            .collect();
        rows.push(Row::new(format!("{bw_gbps:.0} GB/s"), cells));
    }
    print_table(
        "Per-core throughput retention, 16 → 128 cores",
        &[
            "Link bandwidth \\ latency",
            "0.5 µs",
            "2 µs",
            "8 µs",
            "32 µs",
        ],
        &rows,
    );
    println!(
        "paper Table 1 retains {:.1}% (635.25 → 607.23 ex/s/core); the TPUv3-like\n\
         interconnect column (70 GB/s, 2 µs) is the configuration used by table1.",
        100.0 * 607.23 / 635.25
    );
}
