//! Appendix B / §4.3 — the array-subscript derivative: the functional
//! pullback formulation is O(n) per call (it materializes a zero array);
//! the mutable-value-semantics (`inout`) formulation is O(1).
//!
//! Sweeps the array size and times both formulations; the functional cost
//! grows linearly while the `inout` cost stays flat — "reducing derivative
//! complexity from O(n) to O(1)".
//!
//! Run: `cargo run -p s4tf-bench --release --bin appendix_b`

use s4tf_bench::report::{fmt_duration, print_table, Row};
use s4tf_core::subscript::{my_op_with_functional_pullback, my_op_with_mutable_pullback};
use std::time::Instant;

fn time_functional(values: &[f32], reps: usize) -> f64 {
    let (_, pb) = my_op_with_functional_pullback(values, 1, values.len() - 2);
    let start = Instant::now();
    let mut sink = 0.0f32;
    for _ in 0..reps {
        let grad = pb(1.0);
        sink += grad[1];
    }
    std::hint::black_box(sink);
    start.elapsed().as_secs_f64() / reps as f64
}

fn time_inout(values: &[f32], reps: usize) -> f64 {
    let (_, pb) = my_op_with_mutable_pullback(values, 1, values.len() - 2);
    // The caller owns one gradient buffer; each pullback call is O(1).
    let mut grad = vec![0.0f32; values.len()];
    let start = Instant::now();
    for _ in 0..reps {
        pb(1.0, &mut grad);
    }
    std::hint::black_box(&grad);
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    println!("Appendix B reproduction: subscript pullback, functional vs. inout");
    let sizes = [100usize, 1_000, 10_000, 100_000, 1_000_000];
    let mut rows = Vec::new();
    let mut functional = Vec::new();
    let mut inout = Vec::new();
    for &n in &sizes {
        let values: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let reps = (20_000_000 / n).clamp(100, 200_000);
        let tf = time_functional(&values, reps);
        let ti = time_inout(&values, reps.max(100_000));
        functional.push(tf);
        inout.push(ti);
        rows.push(Row::new(
            format!("n = {n}"),
            vec![
                fmt_duration(tf),
                fmt_duration(ti),
                format!("{:.0}×", tf / ti),
            ],
        ));
    }
    print_table(
        "Per-pullback-call cost (my_op: values[a] + values[b])",
        &["Array size", "Functional (O(n))", "inout (O(1))", "Speedup"],
        &rows,
    );

    // Shape checks: functional grows ~linearly; inout stays flat.
    let functional_growth = functional.last().unwrap() / functional.first().unwrap();
    let inout_growth = inout.last().unwrap() / inout.first().unwrap();
    println!(
        "cost growth across a 10,000× size sweep: functional {functional_growth:.0}×, \
         inout {inout_growth:.1}×"
    );
    assert!(
        functional_growth > 100.0,
        "functional pullback must scale with n"
    );
    assert!(inout_growth < 10.0, "inout pullback must not scale with n");
    println!("matches the paper's O(n) → O(1) claim.");
}
