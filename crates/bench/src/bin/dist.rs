//! Distributed-runtime benchmark: LeNet data-parallel training at 1, 2,
//! and 4 worker processes, writing measured step-time quantiles and ring
//! all-reduce throughput to `BENCH_dist.json` — the *measured* column
//! next to `runtime::sim::cluster`'s analytic prediction (EXPERIMENTS.md
//! table1).
//!
//! ```sh
//! cargo run -p s4tf-bench --release --bin dist            # full steps
//! cargo run -p s4tf-bench --release --bin dist -- --smoke # CI smoke
//! ```
//!
//! `--out PATH` overrides the output path. The first step of each run is
//! excluded from the quantiles as warm-up (worker spawn + first ring
//! establishment are setup cost, not steady state).

use s4tf_bench::harness::machine_value;
use s4tf_dist::{lenet, ClusterConfig};
use s4tf_runtime::sim::cluster::ClusterModel;
use serde::Value;

const WORLDS: [u32; 3] = [1, 2, 4];

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

struct WorldResult {
    workers: u32,
    steps: u64,
    step_ms_p50: f64,
    step_ms_p99: f64,
    allreduce_ms_p50: f64,
    ring_gbps: f64,
    tx_bytes_per_step: f64,
    final_loss: f64,
}

fn run_world(world: u32, steps: u64) -> WorldResult {
    let ckpt_dir =
        std::env::temp_dir().join(format!("s4tf-dist-bench-{world}w-{}", std::process::id()));
    let cfg = ClusterConfig::new(world, steps, ckpt_dir.clone());
    let report = match s4tf_dist::run(&cfg) {
        Ok(report) => report,
        Err(e) => {
            let _ = std::fs::remove_dir_all(&ckpt_dir);
            eprintln!("dist bench: {world}-worker run failed: {e}");
            std::process::exit(1);
        }
    };
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    // Steady state only: the first step carries worker spawn + first ring
    // establishment.
    let steady: Vec<_> = report.steps.iter().skip(1).collect();
    let mut step_ms: Vec<f64> = steady.iter().map(|r| r.step_us as f64 / 1e3).collect();
    step_ms.sort_by(|a, b| a.total_cmp(b));
    let mut allreduce_ms: Vec<f64> = steady.iter().map(|r| r.allreduce_us as f64 / 1e3).collect();
    allreduce_ms.sort_by(|a, b| a.total_cmp(b));
    let tx_per_step =
        steady.iter().map(|r| r.tx_bytes as f64).sum::<f64>() / steady.len().max(1) as f64;
    let allreduce_s_mean = steady
        .iter()
        .map(|r| r.allreduce_us as f64 / 1e6)
        .sum::<f64>()
        / steady.len().max(1) as f64;
    // Aggregate ring throughput: every link's bytes per step over the
    // slowest member's collective time.
    let ring_gbps = if allreduce_s_mean > 0.0 {
        tx_per_step / allreduce_s_mean / 1e9
    } else {
        0.0
    };

    WorldResult {
        workers: world,
        steps: report.steps_completed,
        step_ms_p50: percentile(&step_ms, 0.5),
        step_ms_p99: percentile(&step_ms, 0.99),
        allreduce_ms_p50: percentile(&allreduce_ms, 0.5),
        ring_gbps,
        tx_bytes_per_step: tx_per_step,
        final_loss: report.final_loss,
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    // This binary is also the worker executable: the launcher re-execs it
    // with S4TF_DIST_ROLE=worker.
    lenet::worker_main_if_spawned();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_dist.json".to_string());
    let steps = if smoke { 4 } else { 16 };

    println!(
        "dist bench: LeNet data-parallel, worker counts {WORLDS:?}, {steps} steps each{}",
        if smoke { ", smoke" } else { "" }
    );

    let runs: Vec<WorldResult> = WORLDS.iter().map(|&w| run_world(w, steps)).collect();

    // Analytic prediction (EXPERIMENTS.md table1): per-core compute from
    // the 1-worker measurement; gradient bytes recovered from the ring's
    // own accounting (a k-ring moves 2·(k−1)·grad_bytes per step).
    let compute_s = runs[0].step_ms_p50 / 1e3;
    let grad_bytes = runs
        .iter()
        .find(|r| r.workers > 1)
        .map(|r| r.tx_bytes_per_step / (2.0 * (r.workers - 1) as f64))
        .unwrap_or(0.0);

    let mut results = Vec::new();
    for r in &runs {
        let model = ClusterModel::loopback_tcp(r.workers as usize);
        let gap = model.predicted_vs_measured(compute_s, grad_bytes, r.step_ms_p50 / 1e3);
        println!(
            "  {} worker(s): step p50 {:>8.2} ms  p99 {:>8.2} ms  allreduce p50 {:>7.2} ms  \
             ring {:>6.3} GB/s  predicted {:>8.2} ms ({:.2}x)",
            r.workers,
            r.step_ms_p50,
            r.step_ms_p99,
            r.allreduce_ms_p50,
            r.ring_gbps,
            gap.predicted * 1e3,
            gap.ratio,
        );
        results.push(obj(vec![
            ("case", Value::Str(format!("lenet_{}w", r.workers))),
            ("workers", Value::UInt(u64::from(r.workers))),
            ("steps", Value::UInt(r.steps)),
            ("step_ms_p50", Value::Float(r.step_ms_p50)),
            ("step_ms_p99", Value::Float(r.step_ms_p99)),
            ("allreduce_ms_p50", Value::Float(r.allreduce_ms_p50)),
            ("ring_gbps", Value::Float(r.ring_gbps)),
            ("tx_bytes_per_step", Value::Float(r.tx_bytes_per_step)),
            ("final_loss", Value::Float(r.final_loss)),
            ("predicted_step_ms", Value::Float(gap.predicted * 1e3)),
            ("measured_over_predicted", Value::Float(gap.ratio)),
        ]));
    }

    let report = obj(vec![
        ("bench", Value::Str("dist".to_string())),
        ("smoke", Value::Bool(smoke)),
        ("model", Value::Str("lenet".to_string())),
        ("steps", Value::UInt(steps)),
        ("grad_bytes_estimate", Value::Float(grad_bytes)),
        ("machine", machine_value()),
        ("results", Value::Array(results)),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    if let Err(e) = std::fs::write(&out_path, json.as_bytes()) {
        eprintln!("dist bench: writing {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path} ({} bytes)", json.len());
}
