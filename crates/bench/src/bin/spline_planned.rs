//! Dedicated binary for the Table-4 binary-size column: contains only the
//! PlannedInterpreter spline-training strategy (see `table4`).

use s4tf_data::{PersonalizationData, SplineDataSpec};
use s4tf_models::spline::strategies::{PlannedInterpreter, SplineStrategy};
use s4tf_models::spline::ConvergenceCriteria;

fn main() {
    let data = PersonalizationData::generate(SplineDataSpec::default(), 7);
    let out = PlannedInterpreter.train(
        &data.local.x,
        &data.local.y,
        24,
        ConvergenceCriteria::default(),
    );
    println!(
        "{}: converged to loss {:.6} in {} iterations",
        PlannedInterpreter.name(),
        out.final_loss,
        out.iterations
    );
}
