//! Figure 4 — "LazyTensor trace of the LeNet-5 model's forward pass".
//!
//! Traces LeNet-5's forward pass on the lazy device without executing it,
//! prints the trace DAG as Graphviz DOT on stdout, and a summary (op
//! histogram, node/edge counts, post-fusion kernel count) on stderr.
//!
//! Run: `cargo run -p s4tf-bench --release --bin figure4 > lenet_trace.dot`
//! Render: `dot -Tpng lenet_trace.dot -o figure4.png`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf_models::LeNet;
use s4tf_nn::Layer;
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::Tensor;
use s4tf_xla::compile;

fn main() {
    let device = Device::lazy();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let model = LeNet::new(&device, &mut rng);
    let x = DTensor::from_tensor(Tensor::zeros(&[1, 28, 28, 1]), &device);

    // The forward pass only records; nothing executes.
    let _logits = model.forward(&x);

    let Device::Lazy(ctx) = &device else {
        unreachable!()
    };
    let graph = ctx.snapshot_trace();

    eprintln!("Figure 4: LazyTensor trace of the LeNet-5 forward pass");
    eprintln!("  nodes: {}", graph.len());
    let edges: usize = graph.nodes.iter().map(|n| n.inputs.len()).sum();
    eprintln!("  edges: {}", edges);
    eprintln!("  outputs: {}", graph.outputs.len());
    eprintln!("  op histogram:");
    for (op, count) in graph.op_histogram() {
        eprintln!("    {op:<24} ×{count}");
    }
    let exe = compile(&graph);
    eprintln!(
        "  after whole-program optimization: {} kernels (fusion collapsed {} nodes)",
        exe.kernel_count(),
        graph.len() - exe.graph().len()
    );

    // The figure itself.
    println!("{}", graph.to_dot("LeNet-5 forward trace (Figure 4)"));
    ctx.abandon_trace();
}
