//! Ablation (paper §3.4) — the LazyTensor limitations, measured:
//!
//! 1. **Retracing overhead**: the host re-records the trace every step even
//!    when the compiled program is cached.
//! 2. **JIT amortization**: the first step pays compilation; the cache
//!    makes later identical steps cheap.
//! 3. **Shape-change recompilation**: "minor changes in program execution
//!    such as changes in the dimensions of the input tensors can trigger
//!    recompilation".
//! 4. **Barrier frequency**: unrolled traces grow without the barrier; the
//!    training-loop library's automatic barrier bounds them.
//!
//! Run: `cargo run -p s4tf-bench --release --bin ablation_retrace`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf_bench::report::{fmt_duration, print_table, Row};
use s4tf_models::LeNet;
use s4tf_nn::Layer;
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::Tensor;
use std::time::Instant;

fn main() {
    println!("§3.4 ablation: retracing, caching, shape changes, barriers");
    let device = Device::lazy();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let model = LeNet::new(&device, &mut rng);
    let Device::Lazy(ctx) = &device else {
        unreachable!()
    };

    let run_step = |batch: usize, rng: &mut ChaCha8Rng| -> f64 {
        let x = DTensor::from_tensor(Tensor::<f32>::randn(&[batch, 28, 28, 1], rng), &device);
        let start = Instant::now();
        let y = model.forward(&x);
        let _ = y.to_tensor(); // observation = cut + (maybe compile) + run
        start.elapsed().as_secs_f64()
    };

    // 1–2. First step (compile) vs. steady-state (cache hit, retrace only).
    let first = run_step(8, &mut rng);
    let mut steady = Vec::new();
    for _ in 0..10 {
        steady.push(run_step(8, &mut rng));
    }
    let steady_mean = steady.iter().sum::<f64>() / steady.len() as f64;
    let trace_before = ctx.trace_time();
    let _ = run_step(8, &mut rng);
    let retrace = (ctx.trace_time() - trace_before).as_secs_f64();

    // 3. Shape change: recompilation cost returns.
    let misses_before = ctx.cache().stats().misses;
    let shape_change = run_step(16, &mut rng);
    let recompiled = ctx.cache().stats().misses > misses_before;

    let rows = vec![
        Row::new(
            "first step (trace + JIT compile + run)",
            vec![fmt_duration(first)],
        ),
        Row::new(
            "steady state (trace + cache hit + run)",
            vec![fmt_duration(steady_mean)],
        ),
        Row::new(
            "  of which: re-tracing (measured)",
            vec![fmt_duration(retrace)],
        ),
        Row::new(
            format!("batch-size change (recompiled: {recompiled})"),
            vec![fmt_duration(shape_change)],
        ),
    ];
    print_table(
        "LeNet-5 forward under the lazy backend",
        &["Step", "Time"],
        &rows,
    );
    assert!(recompiled, "a shape change must force a recompile");
    assert!(first > steady_mean, "the cache must amortize the JIT");

    // 4. Barrier frequency: trace length with and without the automatic
    // barrier (the accidentally-unrolled training loop of §3.4).
    let mut rows = Vec::new();
    for &barrier_every in &[1usize, 4, 16] {
        ctx.barrier();
        let mut max_trace = 0;
        let mut rng2 = ChaCha8Rng::seed_from_u64(1);
        let mut outputs = Vec::new(); // keep tensors live, as a loop would
        for i in 0..16 {
            let x = DTensor::from_tensor(Tensor::<f32>::randn(&[4, 28, 28, 1], &mut rng2), &device);
            outputs.push(model.forward(&x));
            max_trace = max_trace.max(ctx.trace_len());
            if (i + 1) % barrier_every == 0 {
                device.barrier();
            }
        }
        device.barrier();
        rows.push(Row::new(
            format!("barrier every {barrier_every} iteration(s)"),
            vec![format!("{max_trace} nodes")],
        ));
    }
    print_table(
        "Peak trace length vs. barrier frequency (loop unrolling, §3.4)",
        &["Policy", "Peak trace"],
        &rows,
    );
    println!(
        "cache state at exit: {:?} — identical per-step traces compiled once,\n\
         per-shape; everything else re-traced and reused.",
        ctx.cache()
    );
}
