//! CPU kernel microbenchmarks: GEMM, conv2d and elementwise ops timed
//! with the thread pool pinned to 1 thread and to N threads in the same
//! process, writing the comparison to `BENCH_kernels.json`.
//!
//! ```sh
//! cargo run -p s4tf-bench --release --bin kernels            # full sizes
//! cargo run -p s4tf-bench --release --bin kernels -- --smoke # CI smoke
//! ```
//!
//! `--out PATH` overrides the output path (default `BENCH_kernels.json`
//! in the current directory). The JSON records the host's
//! `available_parallelism` verbatim: on a single-core runner the N-thread
//! column measures pool overhead, not speedup, and the file says so.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf_tensor::{Padding, Tensor};
use serde::Value;
use std::hint::black_box;
use std::time::Instant;

/// Thread count for the parallel column: `S4TF_NUM_THREADS` when it names
/// more than one thread, else 4 (the acceptance point of comparison).
fn parallel_threads() -> usize {
    std::env::var("S4TF_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 1)
        .unwrap_or(4)
}

/// Best-of-`reps` wall time of `f`, in milliseconds, after one warmup run.
fn time_best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

struct Case {
    kernel: &'static str,
    name: String,
    run: Box<dyn FnMut()>,
}

fn gemm_case(m: usize, k: usize, n: usize, rng: &mut ChaCha8Rng) -> Case {
    let a = Tensor::<f32>::randn(&[m, k], rng);
    let b = Tensor::<f32>::randn(&[k, n], rng);
    Case {
        kernel: "gemm",
        name: format!("{m}x{k}x{n}"),
        run: Box::new(move || {
            black_box(a.matmul(&b));
        }),
    }
}

fn matvec_case(m: usize, k: usize, rng: &mut ChaCha8Rng) -> Case {
    let a = Tensor::<f32>::randn(&[m, k], rng);
    let v = Tensor::<f32>::randn(&[k], rng);
    Case {
        kernel: "matvec",
        name: format!("{m}x{k}"),
        run: Box::new(move || {
            black_box(a.matvec(&v));
        }),
    }
}

fn conv_case(
    label: &str,
    x_dims: &[usize],
    w_dims: &[usize],
    padding: Padding,
    rng: &mut ChaCha8Rng,
) -> Case {
    let x = Tensor::<f32>::randn(x_dims, rng);
    let w = Tensor::<f32>::randn(w_dims, rng);
    Case {
        kernel: "conv2d",
        name: label.to_string(),
        run: Box::new(move || {
            black_box(x.conv2d(&w, (1, 1), padding));
        }),
    }
}

fn elementwise_case(n: usize, rng: &mut ChaCha8Rng) -> Case {
    let x = Tensor::<f32>::randn(&[n], rng);
    Case {
        kernel: "elementwise",
        name: format!("map n={n}"),
        run: Box::new(move || {
            black_box(x.map(|v| v.mul_add(1.0001, 0.5)));
        }),
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads_n = parallel_threads();
    let reps = if smoke { 2 } else { 5 };
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    let mut cases: Vec<Case> = Vec::new();
    if smoke {
        cases.push(gemm_case(64, 64, 64, &mut rng));
        cases.push(matvec_case(256, 256, &mut rng));
        cases.push(conv_case(
            "lenet-c1 8x28x28x1*5x5x1x6",
            &[8, 28, 28, 1],
            &[5, 5, 1, 6],
            Padding::Same,
            &mut rng,
        ));
        for n in [64usize, 4096, 65_536] {
            cases.push(elementwise_case(n, &mut rng));
        }
    } else {
        for s in [128usize, 256, 512] {
            cases.push(gemm_case(s, s, s, &mut rng));
        }
        cases.push(matvec_case(1024, 1024, &mut rng));
        cases.push(conv_case(
            "lenet-c1 32x28x28x1*5x5x1x6",
            &[32, 28, 28, 1],
            &[5, 5, 1, 6],
            Padding::Same,
            &mut rng,
        ));
        cases.push(conv_case(
            "lenet-c2 32x14x14x6*5x5x6x16",
            &[32, 14, 14, 6],
            &[5, 5, 6, 16],
            Padding::Valid,
            &mut rng,
        ));
        for n in [64usize, 4096, 1 << 20] {
            cases.push(elementwise_case(n, &mut rng));
        }
    }

    println!(
        "kernel bench: {} cases, best of {reps}, 1 vs {threads_n} threads \
         (host parallelism {host}){}",
        cases.len(),
        if smoke { ", smoke" } else { "" }
    );

    let mut results = Vec::new();
    for case in &mut cases {
        s4tf_threads::set_num_threads(1);
        let t1 = time_best_ms(reps, &mut case.run);
        s4tf_threads::set_num_threads(threads_n);
        let tn = time_best_ms(reps, &mut case.run);
        let speedup = t1 / tn;
        println!(
            "  {:<11} {:<28} 1T {t1:>9.3} ms   {threads_n}T {tn:>9.3} ms   {speedup:>5.2}x",
            case.kernel, case.name
        );
        results.push(obj(vec![
            ("kernel", Value::Str(case.kernel.to_string())),
            ("case", Value::Str(case.name.clone())),
            ("threads_1_ms", Value::Float(t1)),
            ("threads_n_ms", Value::Float(tn)),
            ("speedup", Value::Float(speedup)),
        ]));
    }
    s4tf_threads::set_num_threads(1);

    let note = if host >= threads_n {
        "speedup = threads_1_ms / threads_n_ms on this host".to_string()
    } else {
        format!(
            "host has parallelism {host} < {threads_n} benchmark threads: the \
             N-thread column measures pool overhead under oversubscription, \
             not speedup; rerun on a >= {threads_n}-core host for the scaling \
             comparison"
        )
    };
    let report = obj(vec![
        ("bench", Value::Str("kernels".to_string())),
        ("smoke", Value::Bool(smoke)),
        ("host_parallelism", Value::UInt(host as u64)),
        (
            "threads_compared",
            Value::Array(vec![Value::UInt(1), Value::UInt(threads_n as u64)]),
        ),
        ("reps_best_of", Value::UInt(reps as u64)),
        ("note", Value::Str(note)),
        ("results", Value::Array(results)),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json.as_bytes()).expect("write benchmark JSON");
    println!("wrote {out_path} ({} bytes)", json.len());
}
