//! CPU kernel microbenchmarks: GEMM, conv2d and elementwise ops timed
//! with the thread pool pinned to 1 thread and to N threads in the same
//! process, writing the comparison to `BENCH_kernels.json`.
//!
//! ```sh
//! cargo run -p s4tf-bench --release --bin kernels            # full sizes
//! cargo run -p s4tf-bench --release --bin kernels -- --smoke # CI smoke
//! ```
//!
//! `--out PATH` overrides the output path (default `BENCH_kernels.json`
//! in the current directory). Each case carries its analytic FLOP count
//! from the cost model, so the artifact records achieved GFLOP/s per
//! thread configuration alongside the raw times — that is what the CI
//! regression gate compares against the checked-in baseline. The JSON
//! records the host's `available_parallelism` verbatim: on a single-core
//! runner the N-thread column measures pool overhead, not speedup, and
//! the file says so.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf_bench::harness::{machine_value, measure};
use s4tf_tensor::{cost, OpCost, Padding, Shape, Tensor};
use s4tf_xla::op::FusedInst;
use s4tf_xla::{ElemBinary, ElemUnary, HloOp};
use serde::Value;
use std::hint::black_box;

/// Thread count for the parallel column: `S4TF_NUM_THREADS` when it names
/// more than one thread, else 4 (the acceptance point of comparison).
fn parallel_threads() -> usize {
    std::env::var("S4TF_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 1)
        .unwrap_or(4)
}

struct Case {
    kernel: &'static str,
    name: String,
    cost: OpCost,
    /// Dispatch-path label override: fused cases pin their row to
    /// `codegen` or the interpreter's active path so the two execution
    /// strategies hold separate baselines; `None` follows the process's
    /// SIMD dispatch label.
    path: Option<&'static str>,
    run: Box<dyn FnMut()>,
}

fn gemm_case(m: usize, k: usize, n: usize, rng: &mut ChaCha8Rng) -> Case {
    let a = Tensor::<f32>::randn(&[m, k], rng);
    let b = Tensor::<f32>::randn(&[k, n], rng);
    Case {
        kernel: "gemm",
        name: format!("{m}x{k}x{n}"),
        cost: cost::matmul(m, k, n),
        path: None,
        run: Box::new(move || {
            black_box(a.matmul(&b));
        }),
    }
}

fn matvec_case(m: usize, k: usize, rng: &mut ChaCha8Rng) -> Case {
    let a = Tensor::<f32>::randn(&[m, k], rng);
    let v = Tensor::<f32>::randn(&[k], rng);
    Case {
        kernel: "matvec",
        name: format!("{m}x{k}"),
        cost: cost::matvec(m, k),
        path: None,
        run: Box::new(move || {
            black_box(a.matvec(&v));
        }),
    }
}

fn conv_case(
    label: &str,
    x_dims: &[usize],
    w_dims: &[usize],
    padding: Padding,
    rng: &mut ChaCha8Rng,
) -> Case {
    let x = Tensor::<f32>::randn(x_dims, rng);
    let w = Tensor::<f32>::randn(w_dims, rng);
    let (n, ih, iw, c_in) = (x_dims[0], x_dims[1], x_dims[2], x_dims[3]);
    let (kh, kw, c_out) = (w_dims[0], w_dims[1], w_dims[3]);
    let (oh, ow) = match padding {
        Padding::Same => (ih, iw),
        Padding::Valid => (ih - kh + 1, iw - kw + 1),
    };
    let in_elems = n * ih * iw * c_in;
    Case {
        kernel: "conv2d",
        name: label.to_string(),
        cost: cost::conv2d(n, c_in, kh, kw, c_out, oh, ow, in_elems),
        path: None,
        run: Box::new(move || {
            black_box(x.conv2d(&w, (1, 1), padding));
        }),
    }
}

fn elementwise_case(n: usize, rng: &mut ChaCha8Rng) -> Case {
    let x = Tensor::<f32>::randn(&[n], rng);
    Case {
        kernel: "elementwise",
        name: format!("map n={n}"),
        cost: cost::elementwise(n, n, 1),
        path: None,
        run: Box::new(move || {
            black_box(x.map(|v| v.mul_add(1.0001, 0.5)));
        }),
    }
}

/// One fused `FusedInst` program timed through both execution
/// strategies: the chunked interpreter (`[interp]`, row keyed to the
/// active SIMD path) and the compiled kernel (`[codegen]`, its own
/// `path: codegen` row so each strategy holds its own CI baseline). The
/// FLOP/byte denominators come from the fused cost model (the compiled
/// IR's count), identical for both rows, so the GFLOP/s columns compare
/// the strategies directly.
fn fused_cases(label: &str, insts: Vec<FusedInst>, inputs: Vec<Tensor<f32>>) -> Vec<Case> {
    let op = HloOp::Fused {
        insts,
        n_inputs: inputs.len(),
    };
    let in_shapes: Vec<&Shape> = inputs.iter().map(|t| t.shape()).collect();
    let out_shape = inputs
        .iter()
        .map(|t| t.shape())
        .max_by_key(|s| s.num_elements())
        .expect("fused case has inputs")
        .clone();
    let cost = s4tf_xla::op_cost(&op, &in_shapes, &out_shape);
    [("interp", false), ("codegen", true)]
        .into_iter()
        .map(|(tag, codegen)| {
            let op = op.clone();
            let inputs = inputs.clone();
            Case {
                kernel: "fused",
                name: format!("{label} [{tag}]"),
                cost,
                path: codegen.then_some("codegen"),
                run: Box::new(move || {
                    s4tf_xla::set_codegen_enabled(codegen);
                    let refs: Vec<&Tensor<f32>> = inputs.iter().collect();
                    black_box(s4tf_xla::eval_op(&op, &refs));
                }),
            }
        })
        .collect()
}

/// The three fused chains the tracer actually emits hot: an affine+relu
/// map, the SGD parameter update, and a broadcast bias+relu epilogue.
fn all_fused_cases(n: usize, channels: usize, rng: &mut ChaCha8Rng) -> Vec<Case> {
    let mut cases = Vec::new();
    // relu(x·1.0001 + 0.5) — mul+add collapse into one MulBin, relu rides
    // as the epilogue: the `mulbin_act` specialization.
    cases.extend(fused_cases(
        &format!("map n={n}"),
        vec![
            FusedInst::Input(0),
            FusedInst::Imm(1.0001),
            FusedInst::Binary(ElemBinary::Mul, 0, 1),
            FusedInst::Imm(0.5),
            FusedInst::Binary(ElemBinary::Add, 2, 3),
            FusedInst::Unary(ElemUnary::Relu, 4),
        ],
        vec![Tensor::<f32>::randn(&[n], rng)],
    ));
    // p ← p + g·(−lr) — the optimizer update: one MulBin traversal.
    cases.extend(fused_cases(
        &format!("sgd-update n={n}"),
        vec![
            FusedInst::Input(0),
            FusedInst::Imm(-0.01),
            FusedInst::Binary(ElemBinary::Mul, 0, 1),
            FusedInst::Input(1),
            FusedInst::Binary(ElemBinary::Add, 3, 2),
        ],
        vec![
            Tensor::<f32>::randn(&[n], rng),
            Tensor::<f32>::randn(&[n], rng),
        ],
    ));
    // relu(x + bias) with a trailing-broadcast bias row — the layer
    // epilogue: the `bin_act` specialization over a cycled operand.
    let rows = n / channels;
    cases.extend(fused_cases(
        &format!("bias+relu {rows}x{channels}"),
        vec![
            FusedInst::Input(0),
            FusedInst::Input(1),
            FusedInst::Binary(ElemBinary::Add, 0, 1),
            FusedInst::Unary(ElemUnary::Relu, 2),
        ],
        vec![
            Tensor::<f32>::randn(&[rows, channels], rng),
            Tensor::<f32>::randn(&[channels], rng),
        ],
    ));
    cases
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads_n = parallel_threads();
    let (warmup, trials) = if smoke { (2, 9) } else { (2, 11) };
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    let mut cases: Vec<Case> = Vec::new();
    if smoke {
        cases.push(gemm_case(64, 64, 64, &mut rng));
        cases.push(matvec_case(256, 256, &mut rng));
        cases.push(conv_case(
            "lenet-c1 8x28x28x1*5x5x1x6",
            &[8, 28, 28, 1],
            &[5, 5, 1, 6],
            Padding::Same,
            &mut rng,
        ));
        for n in [64usize, 4096, 65_536] {
            cases.push(elementwise_case(n, &mut rng));
        }
        cases.extend(all_fused_cases(65_536, 64, &mut rng));
    } else {
        for s in [128usize, 256, 512] {
            cases.push(gemm_case(s, s, s, &mut rng));
        }
        cases.push(matvec_case(1024, 1024, &mut rng));
        cases.push(conv_case(
            "lenet-c1 32x28x28x1*5x5x1x6",
            &[32, 28, 28, 1],
            &[5, 5, 1, 6],
            Padding::Same,
            &mut rng,
        ));
        cases.push(conv_case(
            "lenet-c2 32x14x14x6*5x5x6x16",
            &[32, 14, 14, 6],
            &[5, 5, 6, 16],
            Padding::Valid,
            &mut rng,
        ));
        for n in [64usize, 4096, 1 << 20] {
            cases.push(elementwise_case(n, &mut rng));
        }
        cases.extend(all_fused_cases(1 << 20, 128, &mut rng));
    }

    println!(
        "kernel bench: {} cases, median of {trials} (+{warmup} warmup), 1 vs {threads_n} threads \
         (host parallelism {host}){}",
        cases.len(),
        if smoke { ", smoke" } else { "" }
    );

    let machine = machine_value();
    // The active dispatch path (follows S4TF_SIMD + CPU detection); every
    // case is additionally timed on the scalar reference path at one
    // thread so the artifact carries both per-path GFLOP/s columns and
    // the CI gate can hold each path to its own baseline.
    let active_simd = s4tf_tensor::simd_enabled();
    let path = s4tf_tensor::path_label();
    let mut results = Vec::new();
    for case in &mut cases {
        s4tf_threads::set_num_threads(1);
        let s1 = measure(warmup, trials, &mut case.run);
        let scalar1 = if active_simd {
            s4tf_tensor::set_simd_enabled(false);
            let s = measure(warmup, trials, &mut case.run);
            s4tf_tensor::set_simd_enabled(true);
            s
        } else {
            s1.clone()
        };
        s4tf_threads::set_num_threads(threads_n);
        let sn = measure(warmup, trials, &mut case.run);
        let (t1, tn) = (s1.median_ms, sn.median_ms);
        let speedup = t1 / tn;
        let (g1, gn) = (s1.gflops(case.cost.flops), sn.gflops(case.cost.flops));
        let gs1 = scalar1.gflops(case.cost.flops);
        let row_path = case.path.unwrap_or(path);
        println!(
            "  {:<11} {:<28} 1T {t1:>9.3} ms ({g1:>7.3} GF/s)   \
             {threads_n}T {tn:>9.3} ms ({gn:>7.3} GF/s)   {speedup:>5.2}x   \
             [{row_path}; scalar 1T {gs1:>7.3} GF/s]",
            case.kernel, case.name
        );
        results.push(obj(vec![
            ("kernel", Value::Str(case.kernel.to_string())),
            ("case", Value::Str(case.name.clone())),
            ("path", Value::Str(row_path.to_string())),
            ("threads_1_ms", Value::Float(t1)),
            ("threads_n_ms", Value::Float(tn)),
            ("threads_scalar_1_ms", Value::Float(scalar1.median_ms)),
            ("speedup", Value::Float(speedup)),
            ("threads_1_iqr_ms", Value::Float(s1.iqr_ms)),
            ("threads_n_iqr_ms", Value::Float(sn.iqr_ms)),
            ("flops", Value::UInt(case.cost.flops)),
            ("bytes", Value::UInt(case.cost.bytes)),
            ("gflops_1", Value::Float(g1)),
            ("gflops_n", Value::Float(gn)),
            ("gflops_scalar_1", Value::Float(gs1)),
            ("gbs_1", Value::Float(s1.gbps(case.cost.bytes))),
        ]));
    }
    s4tf_threads::set_num_threads(1);

    let note = if host >= threads_n {
        "speedup = threads_1_ms / threads_n_ms on this host".to_string()
    } else {
        format!(
            "host has parallelism {host} < {threads_n} benchmark threads: the \
             N-thread column measures pool overhead under oversubscription, \
             not speedup; rerun on a >= {threads_n}-core host for the scaling \
             comparison"
        )
    };
    let report = obj(vec![
        ("bench", Value::Str("kernels".to_string())),
        ("smoke", Value::Bool(smoke)),
        ("host_parallelism", Value::UInt(host as u64)),
        (
            "threads_compared",
            Value::Array(vec![Value::UInt(1), Value::UInt(threads_n as u64)]),
        ),
        ("warmup", Value::UInt(warmup as u64)),
        ("trials", Value::UInt(trials as u64)),
        ("machine", machine),
        ("note", Value::Str(note)),
        ("results", Value::Array(results)),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json.as_bytes()).expect("write benchmark JSON");
    println!("wrote {out_path} ({} bytes)", json.len());
}
