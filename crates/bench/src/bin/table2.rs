//! Table 2 — framework comparison for ResNet/ImageNet on a (simulated)
//! TPUv3-32: JAX+Flax vs. TensorFlow vs. Swift for TensorFlow.
//!
//! The paper's point: "although each system can notionally produce
//! identical XLA HLO and thus achieve equivalent performance, some
//! codebases have been better optimized". We reproduce that mechanism: all
//! three pipelines run the *same compiled program* on the same simulated
//! cluster and differ only in their host pipeline:
//!
//! * **JAX-style whole-program JIT**: the program is staged once (`@jit`);
//!   per-step host cost ≈ 0, but the input pipeline is the unoptimized
//!   reference one (the paper notes the TF codebase was the
//!   benchmark-tuned one).
//! * **TF-style pre-built graph**: no per-step staging, plus the
//!   benchmark-grade input-pipeline/infeed overlap (modeled as overlap of
//!   host time with device time).
//! * **S4TF LazyTensor**: per-step *retracing* (measured on this machine)
//!   plus a cache lookup.
//!
//! Run: `cargo run -p s4tf-bench --release --bin table2`

use s4tf_bench::report::{fmt_duration, print_table, Row};
use s4tf_bench::tracing::trace_resnet_training_step;
use s4tf_models::ResNetConfig;
use s4tf_runtime::sim::{AcceleratorModel, ClusterModel};
use s4tf_xla::compile;
use std::time::Instant;

const PER_CORE_BATCH: usize = 16;
const CORES: usize = 32;
const IMAGENET_TRAIN_IMAGES: f64 = 1_281_167.0;
const EPOCHS: f64 = 90.0;

/// Paper Table 2: (framework, accuracy %, minutes, examples/s).
const PAPER: &[(&str, f64, f64, f64)] = &[
    ("JAX + Flax", 76.8, 90.0, 21_258.0),
    ("TensorFlow", 77.9, 59.0, 33_118.0),
    ("Swift for TensorFlow", 77.7, 96.0, 20_015.0),
];

fn main() {
    println!("Table 2 reproduction: framework pipelines on a simulated TPUv3-32");

    eprintln!("tracing the training step…");
    let step =
        trace_resnet_training_step(ResNetConfig::resnet_imagenet(), PER_CORE_BATCH, 224, 224);
    let exe = compile(&step.graph);
    let core = AcceleratorModel::tpu_v3_core();
    let device_time = core.program_time(exe.graph());
    let grad_bytes = step.param_count as f64 * 4.0;
    let cluster = ClusterModel::tpu_v3(CORES);

    // Measure the real cache-lookup cost (hashing the trace).
    let lookup_start = Instant::now();
    let mut fp = 0u64;
    for _ in 0..10 {
        fp ^= step.graph.fingerprint();
    }
    let cache_lookup = lookup_start.elapsed().as_secs_f64() / 10.0;
    std::hint::black_box(fp);

    // Host-side per-step cost and device-efficiency factor per pipeline.
    // The efficiency factors encode the paper's "better optimized
    // codebases" observation and are documented in EXPERIMENTS.md:
    // the TF submission overlaps its input pipeline with device compute
    // (infeed double-buffering) and uses layout-tuned kernels; the JAX and
    // S4TF codebases run the reference pipeline.
    struct Pipeline {
        name: &'static str,
        host_per_step: f64,
        device_efficiency: f64,
    }
    let pipelines = [
        Pipeline {
            name: "JAX + Flax (whole-program @jit)",
            host_per_step: 0.0,
            device_efficiency: 1.0,
        },
        Pipeline {
            name: "TensorFlow (pre-built graph, tuned)",
            host_per_step: 0.0,
            device_efficiency: 1.55, // benchmark-tuned codebase (paper note)
        },
        Pipeline {
            name: "Swift for TensorFlow (lazy retrace)",
            host_per_step: step.trace_seconds + cache_lookup,
            device_efficiency: 1.0,
        },
    ];

    let mut rows = Vec::new();
    for (p, &(pname, pacc, pmin, ptput)) in pipelines.iter().zip(PAPER) {
        let per_core = device_time / p.device_efficiency + p.host_per_step;
        let step_time = cluster.step_time(per_core, grad_bytes);
        let throughput = (PER_CORE_BATCH * CORES) as f64 / step_time;
        let train_seconds = EPOCHS * IMAGENET_TRAIN_IMAGES / throughput;
        rows.push(Row::new(
            p.name,
            vec![
                fmt_duration(train_seconds),
                format!("{throughput:.0}"),
                format!("paper ({pname}): {pacc}%, {pmin:.0} min, {ptput:.0} ex/s"),
            ],
        ));
    }
    print_table(
        "Framework comparison on simulated TPUv3-32",
        &[
            "Pipeline",
            "Training time",
            "Throughput (ex/s)",
            "Paper row",
        ],
        &rows,
    );

    println!(
        "host overheads measured on this machine: retrace {} / step, cache lookup {} / step",
        fmt_duration(step.trace_seconds),
        fmt_duration(cache_lookup)
    );
    println!(
        "shape check: S4TF ≈ JAX (same HLO, same reference pipeline); TF faster due to\n\
         benchmark-tuned codebase — matching the paper's reading of its own table."
    );
}
