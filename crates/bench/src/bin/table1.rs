//! Table 1 — Swift for TensorFlow training performance for ResNet-50 on
//! ImageNet on TPUv3 clusters (16 / 32 / 128 cores).
//!
//! Substitutions (DESIGN.md): the ImageNet-geometry ResNet (basic blocks,
//! \[3,4,6,3\]; FLOP budget ≈ ResNet-50's) is *really* traced at the paper's
//! per-core batch through the real lazy backend and compiled by the real
//! XLA-like compiler with fusion; only the kernel clock is the analytic
//! TPUv3 roofline, and scaling uses a ring all-reduce model. The accuracy
//! column cannot be simulated; we instead train a small ResNet on synthetic
//! CIFAR for real and report that accuracy separately.
//!
//! Run: `cargo run -p s4tf-bench --release --bin table1`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf_bench::report::{fmt_duration, print_table, Row};
use s4tf_bench::tracing::trace_resnet_training_step;
use s4tf_models::{ResNet, ResNetConfig};
use s4tf_nn::metrics::accuracy;
use s4tf_nn::optimizer::Sgd;
use s4tf_nn::train::train_classifier_step;
use s4tf_nn::Layer;
use s4tf_runtime::sim::{AcceleratorModel, ClusterModel};
use s4tf_runtime::{DTensor, Device};
use s4tf_xla::compile;

/// Paper Table 1 (for side-by-side comparison).
const PAPER: &[(usize, f64, f64, f64)] = &[
    (16, 189.0, 10_164.0, 635.25),
    (32, 96.0, 20_015.0, 625.47),
    (128, 25.0, 77_726.0, 607.23),
];

const PER_CORE_BATCH: usize = 16;
const IMAGENET_TRAIN_IMAGES: f64 = 1_281_167.0;
const EPOCHS: f64 = 90.0;

fn main() {
    println!("Table 1 reproduction: ResNet/ImageNet on simulated TPUv3 clusters");
    println!("(real trace + real compiler; analytic TPU clock — see DESIGN.md)");

    // 1. Trace one real training step at ImageNet geometry.
    eprintln!("tracing the ImageNet-geometry training step (this builds the full graph)…");
    let step =
        trace_resnet_training_step(ResNetConfig::resnet_imagenet(), PER_CORE_BATCH, 224, 224);
    eprintln!(
        "  trace: {} nodes, {} params, recorded in {}",
        step.graph.len(),
        step.param_count,
        fmt_duration(step.trace_seconds)
    );

    // 2. Compile it (fusion etc.) — once, as the cache would.
    let exe = compile(&step.graph);
    eprintln!(
        "  compiled: {} kernels after fusion (from {} nodes)",
        exe.kernel_count(),
        step.graph.len()
    );

    // 3. Per-core compute time on the TPUv3 roofline.
    let core = AcceleratorModel::tpu_v3_core();
    let per_core_compute = core.program_time(exe.graph());
    // Per-step host cost of the lazy backend: retracing (measured here).
    let host_overhead = step.trace_seconds;
    let grad_bytes = step.param_count as f64 * 4.0;
    eprintln!(
        "  simulated per-core step compute: {} (+ {} measured host retrace)",
        fmt_duration(per_core_compute),
        fmt_duration(host_overhead)
    );

    // 4. Cluster scaling.
    let mut rows = Vec::new();
    for &(cores, paper_minutes, paper_tput, paper_per_core) in PAPER {
        let cluster = ClusterModel::tpu_v3(cores);
        let step_time = cluster.step_time(per_core_compute + host_overhead, grad_bytes);
        let throughput = (PER_CORE_BATCH * cores) as f64 / step_time;
        let per_core = throughput / cores as f64;
        let train_seconds = EPOCHS * IMAGENET_TRAIN_IMAGES / throughput;
        rows.push(Row::new(
            format!("{cores}"),
            vec![
                fmt_duration(train_seconds),
                format!("{throughput:.0}"),
                format!("{per_core:.2}"),
                format!(
                    "paper: {} / {paper_tput:.0} / {paper_per_core:.2}",
                    fmt_duration(paper_minutes * 60.0)
                ),
            ],
        ));
    }
    print_table(
        "ResNet training on simulated TPUv3 (90 'epochs' of ImageNet cardinality)",
        &[
            "# Cores",
            "Training time",
            "Throughput (ex/s)",
            "Per-core (ex/s)",
            "Paper (time/tput/per-core)",
        ],
        &rows,
    );

    // Scaling-retention check (the table's point): per-core throughput is
    // largely maintained from 16 → 128 cores.
    let retention = {
        let t16 = ClusterModel::tpu_v3(16).per_core_throughput(
            PER_CORE_BATCH,
            per_core_compute + host_overhead,
            grad_bytes,
        );
        let t128 = ClusterModel::tpu_v3(128).per_core_throughput(
            PER_CORE_BATCH,
            per_core_compute + host_overhead,
            grad_bytes,
        );
        t128 / t16
    };
    println!(
        "per-core throughput retention 16→128 cores: {:.1}% (paper: {:.1}%)",
        retention * 100.0,
        100.0 * PAPER[2].3 / PAPER[0].3
    );

    // 5. The accuracy column, on real (small-scale, synthetic) training.
    eprintln!("\ntraining a real (scaled-down) ResNet for the accuracy column…");
    let device = Device::naive();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let train = s4tf_data::Dataset::generate(s4tf_data::ImageSpec::cifar_like(), 256, 1);
    let test = s4tf_data::Dataset::generate(s4tf_data::ImageSpec::cifar_like(), 100, 2);
    let mut model = ResNet::new(ResNetConfig::resnet8_cifar(), &device, &mut rng);
    let mut opt = Sgd::with_momentum(0.03, 0.9);
    for step_i in 0..32 {
        let batch = train.batch(16, step_i, (step_i / 16) as u64);
        let x = DTensor::from_tensor(batch.images.clone(), &device);
        let y = DTensor::from_tensor(batch.one_hot(10), &device);
        train_classifier_step(&mut model, &mut opt, &x, &y);
    }
    let logits = model
        .forward(&DTensor::from_tensor(test.images.clone(), &device))
        .to_tensor();
    let acc = accuracy(&logits, &test.labels);
    println!(
        "real validation accuracy (ResNet-8, synthetic CIFAR, 2 epochs): {:.1}%",
        acc * 100.0
    );
    println!("(paper's 77–78% top-1 is ImageNet-specific and not comparable; see EXPERIMENTS.md)");
}
