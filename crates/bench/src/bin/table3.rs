//! Table 3 — ResNet-56 / CIFAR-10 training throughput on a GTX 1080:
//! PyTorch vs. TensorFlow vs. S4TF eager vs. S4TF LazyTensor.
//!
//! Two measurements:
//!
//! 1. **Simulated GTX 1080** (primary, matching the paper's device): the
//!    real ResNet-56 training-step trace at the paper's batch size runs
//!    through the real compiler; each strategy's kernel plan and per-op
//!    overheads differ exactly as the execution architectures differ
//!    (fused vs. unfused, dispatch overhead, per-step retrace — the
//!    retrace and host-dispatch costs are *measured on this machine*).
//! 2. **Real CPU wall clock** (secondary): the same four strategies
//!    actually train a scaled-down ResNet on this machine's naive, eager
//!    and lazy backends.
//!
//! Run: `cargo run -p s4tf-bench --release --bin table3`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf_bench::report::{fmt_duration, print_table, Row};
use s4tf_bench::tracing::trace_resnet_training_step;
use s4tf_models::{ResNet, ResNetConfig};
use s4tf_nn::optimizer::Sgd;
use s4tf_nn::train::train_classifier_step_no_metrics;
use s4tf_runtime::eager::{EagerQueue, EagerTensor};
use s4tf_runtime::sim::cost::{node_cost, AcceleratorModel};
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::Tensor;
use s4tf_xla::{compile, compile_unoptimized, HloOp};
use std::time::Instant;

/// Paper Table 3: examples/second.
const PAPER: &[(&str, f64)] = &[
    ("PyTorch", 2462.0),
    ("TensorFlow", 2390.0),
    ("Swift for TensorFlow (Eager Mode)", 730.0),
    ("Swift for TensorFlow (LazyTensor)", 1827.0),
];

const BATCH: usize = 128;

/// Simulated program time with a per-kernel launch overhead override.
fn program_time(graph: &s4tf_xla::HloGraph, model: &AcceleratorModel, launch: f64) -> f64 {
    let m = AcceleratorModel {
        launch_overhead: launch,
        ..*model
    };
    let mut total = 0.0;
    for node in &graph.nodes {
        if matches!(
            node.op,
            HloOp::Parameter(_) | HloOp::Constant(_) | HloOp::Reshape(_)
        ) {
            continue;
        }
        total += m.kernel_time(node_cost(graph, node));
    }
    total
}

/// Measures this machine's real per-op eager-dispatch cost (boxing +
/// channel send + slot bookkeeping), in seconds/op.
fn measure_eager_dispatch_overhead() -> f64 {
    let q = EagerQueue::new();
    let x = EagerTensor::from_host(&q, Tensor::<f32>::zeros(&[1]));
    // Warm up.
    let mut t = x.clone();
    for _ in 0..100 {
        t = EagerTensor::dispatch_op(&q, HloOp::Unary(s4tf_xla::ElemUnary::Neg), &[&t]);
    }
    q.sync();
    let n = 20_000;
    let start = Instant::now();
    let mut t = x.clone();
    for _ in 0..n {
        t = EagerTensor::dispatch_op(&q, HloOp::Unary(s4tf_xla::ElemUnary::Neg), &[&t]);
    }
    let dispatch = start.elapsed().as_secs_f64() / n as f64;
    q.sync();
    std::hint::black_box(t.to_host());
    dispatch
}

fn simulated_table() {
    eprintln!("tracing ResNet-56 training step at batch {BATCH}…");
    let step = trace_resnet_training_step(ResNetConfig::resnet56_cifar(), BATCH, 32, 32);
    let fused = compile(&step.graph);
    let unfused = compile_unoptimized(&step.graph);
    let gpu = AcceleratorModel::gtx_1080();
    let host_dispatch = measure_eager_dispatch_overhead();
    eprintln!(
        "  trace: {} nodes → {} fused kernels ({} unfused); retrace {}; host dispatch {}/op",
        step.graph.len(),
        fused.kernel_count(),
        unfused.kernel_count(),
        fmt_duration(step.trace_seconds),
        fmt_duration(host_dispatch)
    );

    // Calibrated architecture constants (rationale in EXPERIMENTS.md):
    // * `cudnn_efficiency`: PyTorch/TF (and TF-eager, which S4TF's eager
    //   mode dispatches to) run hand-tuned cuDNN kernels; XLA:GPU codegen
    //   of this era reached ~3/4 of their arithmetic throughput.
    // * `tuned_launch`: graph-scheduled kernel submission ≈ 5 µs/kernel.
    // * `eager_launch`: define-by-run op-by-op dispatch pays the full
    //   per-op runtime path (op construction, type dispatch, stream
    //   submission) — tens of µs per op, the §3.2 overhead.
    let cudnn_efficiency = gpu.efficiency * 1.35;
    let cudnn = AcceleratorModel {
        efficiency: cudnn_efficiency,
        ..gpu
    };
    let tuned_launch = 5.0e-6;
    let eager_launch = 50.0e-6;

    let pytorch = program_time(unfused.graph(), &cudnn, tuned_launch);
    let tensorflow = pytorch * 1.03;
    let eager_device = program_time(unfused.graph(), &cudnn, eager_launch);
    // Eager pipelining: host dispatch overlaps device compute; throughput
    // is bounded by the slower of the two.
    let n_ops = unfused.kernel_count() as f64;
    let eager = eager_device.max(n_ops * host_dispatch);
    // LazyTensor: XLA-generated fused kernels + the measured per-step
    // retrace cost of *this* implementation.
    let lazy = program_time(fused.graph(), &gpu, tuned_launch) + step.trace_seconds;

    let mut rows = Vec::new();
    for ((name, paper_tput), time) in PAPER.iter().zip([pytorch, tensorflow, eager, lazy]) {
        let tput = BATCH as f64 / time;
        rows.push(Row::new(
            *name,
            vec![
                format!("{tput:.0}"),
                fmt_duration(time),
                format!("paper: {paper_tput:.0} ex/s"),
            ],
        ));
    }
    print_table(
        "Simulated GTX 1080 (real trace/compiler; analytic kernel clock)",
        &["Framework", "Throughput (ex/s)", "Step time", "Paper"],
        &rows,
    );
    let speedup = (BATCH as f64 / lazy) / (BATCH as f64 / eager);
    println!(
        "shape check: LazyTensor / Eager speedup = {:.2}× (paper: {:.2}×); \
         baselines > lazy: {}",
        speedup,
        1827.0 / 730.0,
        BATCH as f64 / pytorch > BATCH as f64 / lazy
    );
}

fn real_cpu_table() {
    eprintln!("\nreal CPU measurement (scaled: ResNet-8, 16×16, batch 8)…");
    let config = ResNetConfig::resnet8_cifar;
    let (h, w, b) = (16usize, 16usize, 8usize);
    let steps = 4;

    // Profile the timed region: the per-backend spans (enqueue/barrier/
    // compile/execute) explain *where* the throughput gaps come from.
    let profile_was_on = s4tf_profile::enabled();
    s4tf_profile::set_enabled(true);
    let mut lazy_report = None;
    let mut rows = Vec::new();
    for device in [Device::naive(), Device::eager(), Device::lazy()] {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut model = ResNet::new(config(), &device, &mut rng);
        let mut opt = Sgd::new(0.01);
        let images = DTensor::from_tensor(Tensor::<f32>::randn(&[b, h, w, 3], &mut rng), &device);
        let label_ids: Vec<usize> = (0..b).map(|i| i % 10).collect();
        let labels = DTensor::from_tensor(Tensor::one_hot(&label_ids, 10), &device);
        // Warm-up step (JIT compile on the lazy device).
        train_classifier_step_no_metrics(&mut model, &mut opt, &images, &labels);
        s4tf_profile::reset();
        let start = Instant::now();
        for _ in 0..steps {
            train_classifier_step_no_metrics(&mut model, &mut opt, &images, &labels);
        }
        let per_step = start.elapsed().as_secs_f64() / steps as f64;
        let mut cells = vec![
            format!("{:.1}", b as f64 / per_step),
            fmt_duration(per_step),
        ];
        if let Some(stats) = device.cache_stats() {
            let compile = match &device {
                Device::Lazy(ctx) => ctx.cache().compile_time().as_secs_f64(),
                _ => 0.0,
            };
            cells.push(format!(
                "cache {}h/{}m; compile {}",
                stats.hits,
                stats.misses,
                fmt_duration(compile)
            ));
        } else {
            cells.push(String::new());
        }
        rows.push(Row::new(format!("s4tf ({})", device.kind()), cells));
        if matches!(device, Device::Lazy(_)) {
            lazy_report = Some(s4tf_profile::report());
        }
    }
    s4tf_profile::set_enabled(profile_was_on);
    s4tf_profile::reset();
    print_table(
        "Real CPU wall clock (post-warmup, scaled model)",
        &["Backend", "Throughput (ex/s)", "Step time", "Notes"],
        &rows,
    );
    if let Some(report) = lazy_report {
        println!("\nlazy-backend profile over the {steps} timed steps:");
        println!("{report}");
    }
    println!(
        "note: on a CPU the kernels dwarf dispatch costs, so real-clock gaps are\n\
         smaller than the paper's GPU gaps; the simulated table above isolates the\n\
         architectural effects at the paper's scale. See EXPERIMENTS.md."
    );
}

fn main() {
    println!("Table 3 reproduction: ResNet-56 / CIFAR-10 backend comparison");
    simulated_table();
    real_cpu_table();
}
