//! Table 4 — on-device training of the spline personalization model
//! across four implementation strategies: training time to convergence,
//! peak memory, and binary size.
//!
//! All three columns are *real measurements* on this machine: wall-clock
//! time, a byte-tracking global allocator, and the on-disk size of four
//! dedicated release binaries (one per strategy, built by Cargo alongside
//! this one).
//!
//! Run: `cargo run -p s4tf-bench --release --bin table4`

use s4tf_bench::alloc_track::{measure_peak, TrackingAllocator};
use s4tf_bench::report::{fmt_bytes, fmt_duration, print_table, Row};
use s4tf_data::{PersonalizationData, SplineDataSpec};
use s4tf_models::spline::strategies::{
    FusedKernel, GraphInterpreter, NativeAot, PlannedInterpreter, SplineStrategy,
};
use s4tf_models::spline::ConvergenceCriteria;
use std::time::Instant;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

/// Paper Table 4: (platform, train ms, memory MB, binary MB).
const PAPER: &[(&str, f64, f64, f64)] = &[
    ("TensorFlow Mobile", 5926.0, 80.0, 6.2),
    ("TensorFlow Lite (standard operations)", 266.0, 12.3, 1.8),
    ("TensorFlow Lite (manually fused custom op)", 63.0, 6.2, 1.8),
    ("Swift for TensorFlow", 128.0, 4.2, 3.6),
];

const KNOTS: usize = 24;

fn strategy_binary(name: &str) -> Option<u64> {
    let exe = std::env::current_exe().ok()?;
    let path = exe.parent()?.join(name);
    std::fs::metadata(path).ok().map(|m| m.len())
}

fn main() {
    println!("Table 4 reproduction: on-device spline personalization");
    // A device-sized problem big enough to produce measurable times
    // (the paper's on-device dataset size is unknown; scale is documented
    // in EXPERIMENTS.md).
    let spec = SplineDataSpec {
        local_samples: 8192,
        ..SplineDataSpec::default()
    };
    let data = PersonalizationData::generate(spec, 7);
    let criteria = ConvergenceCriteria::default();

    let strategies: Vec<(Box<dyn SplineStrategy>, &str)> = vec![
        (Box::new(GraphInterpreter), "spline_graph"),
        (Box::new(PlannedInterpreter), "spline_planned"),
        (Box::new(FusedKernel), "spline_fused"),
        (Box::new(NativeAot), "spline_native"),
    ];

    let mut rows = Vec::new();
    let mut reference_points: Option<Vec<f32>> = None;
    for ((strategy, bin_name), &(pname, pms, pmem, pbin)) in strategies.iter().zip(PAPER) {
        // Warm-up (page in code paths), then measure.
        let _ = strategy.train(&data.local.x, &data.local.y, KNOTS, criteria);
        let start = Instant::now();
        let (outcome, peak) =
            measure_peak(|| strategy.train(&data.local.x, &data.local.y, KNOTS, criteria));
        let elapsed = start.elapsed().as_secs_f64();

        // Verify all strategies converge to the same control points
        // (paper: "within 1.5%").
        match &reference_points {
            None => reference_points = Some(outcome.control_points.clone()),
            Some(reference) => {
                for (a, b) in outcome.control_points.iter().zip(reference) {
                    let denom = b.abs().max(0.05);
                    assert!(
                        ((a - b) / denom).abs() < 0.015,
                        "{} control points diverged",
                        strategy.name()
                    );
                }
            }
        }

        let binary = strategy_binary(bin_name)
            .map(|b| fmt_bytes(b as usize))
            .unwrap_or_else(|| format!("(build --bin {bin_name})"));
        rows.push(Row::new(
            strategy.name(),
            vec![
                fmt_duration(elapsed),
                fmt_bytes(peak),
                binary,
                format!("{} iters", outcome.iterations),
                format!("paper ({pname}): {pms:.0} ms / {pmem} MB / {pbin} MB"),
            ],
        ));
    }
    print_table(
        "On-device spline training (real measurements)",
        &[
            "Platform analog",
            "Training time",
            "Peak memory",
            "Binary size",
            "Convergence",
            "Paper row",
        ],
        &rows,
    );
    println!(
        "all four strategies converged to control points matching within 1.5%\n\
         (the paper's cross-platform verification). Binary sizes come from the\n\
         four dedicated strategy binaries; run `cargo build -p s4tf-bench --release\n\
         --bins` first if a size shows as missing."
    );
}
