//! Memory-planner benchmark: LeNet-5 training steps on all three backends
//! with the buffer pool + memory planner on vs. off, writing allocator
//! calls per step, peak live bytes, and steps/sec to `BENCH_memory.json`.
//!
//! ```sh
//! cargo run -p s4tf-bench --release --bin memory            # full steps
//! cargo run -p s4tf-bench --release --bin memory -- --smoke # CI smoke
//! ```
//!
//! `--out PATH` overrides the output path. The run asserts bit-identical
//! per-step losses between the on and off configurations on every backend
//! — the planner is a pure memory optimization, never a numerics change —
//! and records the allocator-call reduction the pool + planner achieve.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf_models::LeNet;
use s4tf_nn::train::train_classifier_step;
use s4tf_nn::Sgd;
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::Tensor;
use serde::Value;
use std::time::Instant;

const BATCH: usize = 8;

struct RunResult {
    backend: &'static str,
    planner: bool,
    allocs_per_step: f64,
    frees_per_step: f64,
    peak_bytes: u64,
    steps_per_sec: f64,
    losses: Vec<f64>,
}

/// Synthetic MNIST-shaped minibatch (deterministic, shared across runs).
fn minibatch(device: &Device, rng: &mut ChaCha8Rng) -> (DTensor, DTensor) {
    let images = Tensor::<f32>::randn(&[BATCH, 28, 28, 1], rng);
    // One-hot labels, class i % 10 for example i.
    let mut onehot = vec![0.0f32; BATCH * 10];
    for i in 0..BATCH {
        onehot[i * 10 + i % 10] = 1.0;
    }
    let labels = Tensor::from_vec(onehot, &[BATCH, 10]);
    (
        DTensor::from_tensor(images, device),
        DTensor::from_tensor(labels, device),
    )
}

/// Trains `steps` LeNet steps on `backend` and measures allocator traffic.
fn run(backend: &'static str, planner: bool, steps: usize) -> RunResult {
    s4tf_tensor::set_pool_enabled(planner);
    s4tf_xla::set_plan_enabled(planner);
    s4tf_tensor::clear_pools();

    let device = match backend {
        "naive" => Device::naive(),
        "eager" => Device::eager(),
        "lazy" => Device::lazy(),
        _ => unreachable!(),
    };
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut model = LeNet::new(&device, &mut rng);
    let mut opt = Sgd::<LeNet>::with_momentum(0.05, 0.9);
    let (images, labels) = minibatch(&device, &mut rng);

    // Warm-up step: first-touch allocations (velocity, program cache,
    // pool population) are setup cost, not steady-state traffic.
    train_classifier_step(&mut model, &mut opt, &images, &labels);

    s4tf_diag::reset_peak_bytes();
    let before = s4tf_diag::memory_stats();
    let start = Instant::now();
    let mut losses = Vec::with_capacity(steps);
    for _ in 0..steps {
        losses.push(train_classifier_step(
            &mut model, &mut opt, &images, &labels,
        ));
    }
    let secs = start.elapsed().as_secs_f64();
    let after = s4tf_diag::memory_stats();

    RunResult {
        backend,
        planner,
        allocs_per_step: (after.allocs - before.allocs) as f64 / steps as f64,
        frees_per_step: (after.frees - before.frees) as f64 / steps as f64,
        peak_bytes: after.peak_bytes,
        steps_per_sec: steps as f64 / secs,
        losses,
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_memory.json".to_string());
    let steps = if smoke { 3 } else { 10 };

    println!(
        "memory bench: LeNet batch {BATCH}, {steps} steps, planner off vs on{}",
        if smoke { ", smoke" } else { "" }
    );

    let mut results = Vec::new();
    let mut records = Vec::new();
    for backend in ["naive", "eager", "lazy"] {
        // Off first, then on, so the "on" run cannot warm the pool for
        // the "off" run; `clear_pools` in `run` isolates them anyway.
        let off = run(backend, false, steps);
        let on = run(backend, true, steps);
        assert_eq!(
            off.losses, on.losses,
            "{backend}: planner must be bit-transparent to the losses"
        );
        let alloc_reduction = if on.allocs_per_step > 0.0 {
            off.allocs_per_step / on.allocs_per_step
        } else {
            f64::INFINITY
        };
        println!(
            "  {backend:<6} allocs/step {:>8.1} -> {:>8.1}  ({alloc_reduction:>5.2}x)   \
             peak {:>10} -> {:>10} B   {:>6.2} steps/s",
            off.allocs_per_step,
            on.allocs_per_step,
            off.peak_bytes,
            on.peak_bytes,
            on.steps_per_sec,
        );
        for r in [&off, &on] {
            results.push(obj(vec![
                ("backend", Value::Str(r.backend.to_string())),
                (
                    "planner",
                    Value::Str(if r.planner { "on" } else { "off" }.to_string()),
                ),
                ("allocs_per_step", Value::Float(r.allocs_per_step)),
                ("frees_per_step", Value::Float(r.frees_per_step)),
                ("peak_bytes", Value::UInt(r.peak_bytes)),
                ("steps_per_sec", Value::Float(r.steps_per_sec)),
                (
                    "final_loss",
                    Value::Float(r.losses.last().copied().unwrap_or(f64::NAN)),
                ),
            ]));
        }
        records.push((backend, off, on, alloc_reduction));
    }

    let lazy = records
        .iter()
        .find(|(b, ..)| *b == "lazy")
        .expect("lazy backend ran");
    let report = obj(vec![
        ("bench", Value::Str("memory".to_string())),
        ("smoke", Value::Bool(smoke)),
        ("model", Value::Str("lenet".to_string())),
        ("batch", Value::UInt(BATCH as u64)),
        ("steps", Value::UInt(steps as u64)),
        ("bit_identical_losses", Value::Bool(true)),
        ("alloc_reduction_lazy", Value::Float(lazy.3)),
        (
            "peak_reduction_lazy",
            Value::Float(lazy.1.peak_bytes as f64 / lazy.2.peak_bytes.max(1) as f64),
        ),
        ("results", Value::Array(results)),
    ]);
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json.as_bytes()).expect("write benchmark JSON");
    println!("wrote {out_path} ({} bytes)", json.len());
}
