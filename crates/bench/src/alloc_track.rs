//! A byte-counting global allocator, for the Table-4 memory-usage column:
//! "the differences in peak process memory size before and after training"
//! become, here, the peak live-byte watermark during each strategy's run.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A [`System`]-backed allocator that tracks live and peak bytes.
///
/// Install it in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: s4tf_bench::alloc_track::TrackingAllocator =
///     s4tf_bench::alloc_track::TrackingAllocator;
/// ```
pub struct TrackingAllocator;

// SAFETY: delegates directly to `System`; the bookkeeping uses only
// atomics and never allocates.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

/// Currently live bytes.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Peak live bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak watermark to the current live count.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Runs `f` and returns `(result, peak_extra_bytes)`: the high-water mark
/// of bytes allocated above the baseline during the call.
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    reset_peak();
    let baseline = live_bytes();
    let out = f();
    let peak = peak_bytes().saturating_sub(baseline);
    (out, peak)
}
