//! The spline personalization model (paper §5.1.3, Table 4).
//!
//! "Learning parameters through iterated optimization has applications
//! beyond deep learning, such as learning knots in a polynomial spline.
//! [...] Optimization algorithms such as backtracking line search use
//! derivatives to determine the step direction."
//!
//! [`SplineModel`] is a degree-1 polynomial spline (piecewise-linear) over
//! uniformly spaced knots on `[0, 1]` whose control points are learned by
//! gradient descent with Armijo backtracking line search. Its gradient is
//! the paper's §4.3 poster child: each sample reads *two* control points
//! (a "big-to-small" indexing operation), so the functional pullback is
//! O(k) per sample while the mutable-value-semantics (`inout`) pullback —
//! used here — accumulates into a caller-owned gradient buffer in O(1).
//!
//! [`strategies`] holds the four implementation strategies compared in
//! Table 4.

pub mod strategies;

/// A piecewise-linear spline with learnable control points over uniform
/// knots on `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SplineModel {
    /// Control-point values at the knots.
    pub control_points: Vec<f32>,
}

impl SplineModel {
    /// A flat spline with `knots` control points.
    ///
    /// # Panics
    /// Panics if `knots < 2`.
    pub fn new(knots: usize) -> Self {
        assert!(knots >= 2, "a spline needs at least two knots");
        SplineModel {
            control_points: vec![0.0; knots],
        }
    }

    /// Number of knots.
    pub fn knots(&self) -> usize {
        self.control_points.len()
    }

    /// The segment index and interpolation weight for an input.
    #[inline]
    pub fn locate(&self, x: f32) -> (usize, f32) {
        let k = self.control_points.len();
        let pos = x.clamp(0.0, 1.0) * (k - 1) as f32;
        let i = (pos as usize).min(k - 2);
        (i, pos - i as f32)
    }

    /// Evaluates the spline at `x`.
    #[inline]
    pub fn predict(&self, x: f32) -> f32 {
        let (i, t) = self.locate(x);
        (1.0 - t) * self.control_points[i] + t * self.control_points[i + 1]
    }

    /// Mean-squared error over a dataset.
    pub fn loss(&self, xs: &[f32], ys: &[f32]) -> f64 {
        debug_assert_eq!(xs.len(), ys.len());
        let mut acc = 0.0f64;
        for (&x, &y) in xs.iter().zip(ys) {
            let r = (self.predict(x) - y) as f64;
            acc += r * r;
        }
        acc / xs.len().max(1) as f64
    }

    /// Accumulates `∂loss/∂control_points` into `grad` using the
    /// mutable-value-semantics pullback (paper Appendix B): O(1) per
    /// sample, no zero-array materialization.
    ///
    /// # Panics
    /// Panics if `grad.len() != knots()`.
    pub fn accumulate_gradient(&self, xs: &[f32], ys: &[f32], grad: &mut [f32]) {
        assert_eq!(grad.len(), self.knots(), "gradient buffer size mismatch");
        let n = xs.len().max(1) as f32;
        for (&x, &y) in xs.iter().zip(ys) {
            let (i, t) = self.locate(x);
            let pred = (1.0 - t) * self.control_points[i] + t * self.control_points[i + 1];
            let dpred = 2.0 * (pred - y) / n;
            // inout formulation: dValues[index] += dx — constant time.
            grad[i] += dpred * (1.0 - t);
            grad[i + 1] += dpred * t;
        }
    }
}

/// Armijo backtracking line search over a gradient direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BacktrackingLineSearch {
    /// Initial trial step.
    pub initial_step: f64,
    /// Sufficient-decrease constant (Armijo c₁).
    pub sufficient_decrease: f64,
    /// Step shrink factor per backtrack.
    pub shrink: f64,
    /// Maximum backtracks per iteration.
    pub max_backtracks: usize,
}

impl Default for BacktrackingLineSearch {
    fn default() -> Self {
        BacktrackingLineSearch {
            initial_step: 1.0,
            sufficient_decrease: 1e-4,
            shrink: 0.5,
            max_backtracks: 30,
        }
    }
}

impl BacktrackingLineSearch {
    /// Finds a step size satisfying the Armijo condition for descent
    /// direction `-grad`, evaluating `loss_at(candidate_points)`.
    ///
    /// Returns `(step, evaluations)`.
    pub fn search(
        &self,
        points: &[f32],
        grad: &[f32],
        current_loss: f64,
        mut loss_at: impl FnMut(&[f32]) -> f64,
    ) -> (f64, usize) {
        let grad_sq: f64 = grad.iter().map(|&g| (g as f64) * (g as f64)).sum();
        let mut step = self.initial_step;
        let mut evals = 0;
        let mut candidate = points.to_vec();
        for _ in 0..self.max_backtracks {
            for ((c, &p), &g) in candidate.iter_mut().zip(points).zip(grad) {
                *c = p - step as f32 * g;
            }
            evals += 1;
            let trial = loss_at(&candidate);
            if trial <= current_loss - self.sufficient_decrease * step * grad_sq {
                return (step, evals);
            }
            step *= self.shrink;
        }
        (step, evals)
    }
}

/// Outcome of training a spline to convergence.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainOutcome {
    /// The fitted control points.
    pub control_points: Vec<f32>,
    /// Final training loss.
    pub final_loss: f64,
    /// Gradient-descent iterations used.
    pub iterations: usize,
    /// Total loss evaluations (line-search probes included).
    pub loss_evaluations: usize,
}

/// Convergence criteria shared by all Table-4 strategies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceCriteria {
    /// Stop when the relative loss improvement drops below this.
    pub relative_tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for ConvergenceCriteria {
    fn default() -> Self {
        ConvergenceCriteria {
            relative_tolerance: 1e-6,
            max_iterations: 500,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_interpolates_linearly() {
        let mut m = SplineModel::new(3); // knots at 0, 0.5, 1
        m.control_points = vec![0.0, 1.0, 0.0];
        assert_eq!(m.predict(0.0), 0.0);
        assert_eq!(m.predict(0.5), 1.0);
        assert_eq!(m.predict(1.0), 0.0);
        assert!((m.predict(0.25) - 0.5).abs() < 1e-6);
        assert!((m.predict(0.75) - 0.5).abs() < 1e-6);
        // Out-of-range inputs clamp.
        assert_eq!(m.predict(-1.0), 0.0);
        assert_eq!(m.predict(2.0), 0.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut m = SplineModel::new(5);
        m.control_points = vec![0.1, -0.2, 0.4, 0.0, 0.3];
        let xs: Vec<f32> = (0..40).map(|i| i as f32 / 39.0).collect();
        let ys: Vec<f32> = xs.iter().map(|&x| (x * 3.0).sin()).collect();
        let mut grad = vec![0.0; 5];
        m.accumulate_gradient(&xs, &ys, &mut grad);
        let eps = 1e-3;
        for (i, &g) in grad.iter().enumerate() {
            let mut mp = m.clone();
            mp.control_points[i] += eps;
            let mut mm = m.clone();
            mm.control_points[i] -= eps;
            let fd = (mp.loss(&xs, &ys) - mm.loss(&xs, &ys)) / (2.0 * eps as f64);
            assert!((fd - g as f64).abs() < 1e-4, "knot {i}: fd={fd} ad={g}");
        }
    }

    #[test]
    fn line_search_satisfies_armijo() {
        let mut m = SplineModel::new(4);
        m.control_points = vec![1.0, 1.0, 1.0, 1.0];
        let xs: Vec<f32> = (0..20).map(|i| i as f32 / 19.0).collect();
        let ys = vec![0.0; 20];
        let loss0 = m.loss(&xs, &ys);
        let mut grad = vec![0.0; 4];
        m.accumulate_gradient(&xs, &ys, &mut grad);
        let ls = BacktrackingLineSearch::default();
        let (step, evals) = ls.search(&m.control_points, &grad, loss0, |c| {
            let mut probe = m.clone();
            probe.control_points = c.to_vec();
            probe.loss(&xs, &ys)
        });
        assert!(step > 0.0);
        assert!(evals >= 1);
        let mut stepped = m.clone();
        for (c, &g) in stepped.control_points.iter_mut().zip(&grad) {
            *c -= step as f32 * g;
        }
        assert!(stepped.loss(&xs, &ys) < loss0);
    }

    #[test]
    #[should_panic(expected = "at least two knots")]
    fn degenerate_spline_panics() {
        SplineModel::new(1);
    }

    #[test]
    fn gradient_buffer_reuse_is_exact() {
        // The inout pullback composes by accumulation: two half-batches
        // accumulated into one buffer equal one full batch.
        let mut m = SplineModel::new(6);
        m.control_points = vec![0.5; 6];
        let xs: Vec<f32> = (0..30).map(|i| i as f32 / 29.0).collect();
        let ys: Vec<f32> = xs.iter().map(|&x| x * x).collect();
        let mut full = vec![0.0; 6];
        m.accumulate_gradient(&xs, &ys, &mut full);
        let mut halves = [0.0; 6];
        // Mean normalization differs per call; compensate by scaling.
        let mut a = vec![0.0; 6];
        m.accumulate_gradient(&xs[..15], &ys[..15], &mut a);
        let mut b = vec![0.0; 6];
        m.accumulate_gradient(&xs[15..], &ys[15..], &mut b);
        for i in 0..6 {
            halves[i] = 0.5 * (a[i] + b[i]);
        }
        for i in 0..6 {
            assert!((full[i] - halves[i]).abs() < 1e-6);
        }
    }
}
