//! The four implementation strategies of Table 4.
//!
//! The paper compares on-device fine-tuning of the spline model across
//! TensorFlow Mobile, TensorFlow Lite (standard ops), TensorFlow Lite with
//! a manually fused custom op, and Swift for TensorFlow. We rebuild each
//! *execution architecture* over the same math:
//!
//! | paper platform          | strategy            | architecture |
//! |-------------------------|---------------------|--------------|
//! | TensorFlow Mobile       | [`GraphInterpreter`]| dynamic op graph rebuilt per evaluation, string-keyed tensors, per-op buffer copies |
//! | TensorFlow Lite         | [`PlannedInterpreter`] | static op plan built once, preallocated buffer arena, virtual dispatch per op |
//! | TFLite fused custom op  | [`FusedKernel`]     | one hand-fused loop computing loss and gradient together |
//! | Swift for TensorFlow    | [`NativeAot`]       | AOT-compiled AD formulation: per-sample pullback closures accumulating into an `inout` gradient buffer (paper Appendix B) |
//!
//! All four must agree on the fitted control points (the paper verified
//! agreement "within 1.5%"); the integration tests check far tighter.

use super::{BacktrackingLineSearch, ConvergenceCriteria, SplineModel, TrainOutcome};
use std::collections::HashMap;

/// One execution strategy for spline training.
pub trait SplineStrategy {
    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// Trains a spline with `knots` control points to convergence on
    /// `(xs, ys)` with backtracking line search.
    fn train(
        &self,
        xs: &[f32],
        ys: &[f32],
        knots: usize,
        criteria: ConvergenceCriteria,
    ) -> TrainOutcome;
}

/// The strategy-agnostic training driver: gradient descent with Armijo
/// backtracking, identical across strategies so measured differences are
/// pure execution architecture.
fn descend(exec: &mut dyn Executor, knots: usize, criteria: ConvergenceCriteria) -> TrainOutcome {
    let mut points = vec![0.0f32; knots];
    let mut grad = vec![0.0f32; knots];
    let line_search = BacktrackingLineSearch::default();
    let mut loss = exec.loss(&points);
    let mut evaluations = 1usize;
    let mut iterations = 0usize;
    while iterations < criteria.max_iterations {
        iterations += 1;
        grad.iter_mut().for_each(|g| *g = 0.0);
        exec.gradient(&points, &mut grad);
        let (step, evals) =
            line_search.search(&points, &grad, loss, |candidate| exec.loss(candidate));
        evaluations += evals;
        for (p, &g) in points.iter_mut().zip(&grad) {
            *p -= step as f32 * g;
        }
        let new_loss = exec.loss(&points);
        evaluations += 1;
        let improvement = (loss - new_loss) / loss.abs().max(1e-12);
        loss = new_loss;
        if improvement.abs() < criteria.relative_tolerance {
            break;
        }
    }
    TrainOutcome {
        control_points: points,
        final_loss: loss,
        iterations,
        loss_evaluations: evaluations,
    }
}

/// The per-strategy execution backend.
trait Executor {
    fn loss(&mut self, points: &[f32]) -> f64;
    fn gradient(&mut self, points: &[f32], grad: &mut [f32]);
}

// ===========================================================================
// Strategy 1: Swift for TensorFlow — AOT-compiled AD formulation.
// ===========================================================================

/// The S4TF analog: ahead-of-time-compiled native code whose gradient is
/// the mutable-value-semantics AD formulation (per-sample pullbacks
/// accumulating into one caller-owned buffer, paper Appendix B / §4.3).
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeAot;

struct NativeExecutor<'a> {
    xs: &'a [f32],
    ys: &'a [f32],
    model: SplineModel,
}

impl Executor for NativeExecutor<'_> {
    fn loss(&mut self, points: &[f32]) -> f64 {
        self.model.control_points.copy_from_slice(points);
        self.model.loss(self.xs, self.ys)
    }

    fn gradient(&mut self, points: &[f32], grad: &mut [f32]) {
        self.model.control_points.copy_from_slice(points);
        let n = self.xs.len().max(1) as f32;
        for (&x, &y) in self.xs.iter().zip(self.ys) {
            // The AD formulation: a subscript read returning a value and an
            // inout pullback (paper Figure 9, value-semantic column).
            let (i, t) = self.model.locate(x);
            let (a, pb_a) = subscript_with_mutable_pullback(&self.model.control_points, i);
            let (b, pb_b) = subscript_with_mutable_pullback(&self.model.control_points, i + 1);
            let pred = (1.0 - t) * a + t * b;
            let dpred = 2.0 * (pred - y) / n;
            pb_a(dpred * (1.0 - t), grad); // O(1)
            pb_b(dpred * t, grad); // O(1)
        }
    }
}

/// Paper Figure 9's `subscriptWithMutablePullback`, over slices.
fn subscript_with_mutable_pullback(
    values: &[f32],
    index: usize,
) -> (f32, impl Fn(f32, &mut [f32])) {
    (values[index], move |dx: f32, d_values: &mut [f32]| {
        d_values[index] += dx;
    })
}

impl SplineStrategy for NativeAot {
    fn name(&self) -> &'static str {
        "Swift for TensorFlow (native AOT)"
    }

    fn train(
        &self,
        xs: &[f32],
        ys: &[f32],
        knots: usize,
        criteria: ConvergenceCriteria,
    ) -> TrainOutcome {
        let mut exec = NativeExecutor {
            xs,
            ys,
            model: SplineModel::new(knots),
        };
        descend(&mut exec, knots, criteria)
    }
}

// ===========================================================================
// Strategy 2: TFLite with a manually fused custom operation.
// ===========================================================================

/// The TFLite-custom-op analog: a single hand-fused kernel computing loss
/// and gradient in one pass with no intermediate structures at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct FusedKernel;

struct FusedExecutor<'a> {
    xs: &'a [f32],
    ys: &'a [f32],
}

impl FusedExecutor<'_> {
    #[inline]
    fn locate(points: &[f32], x: f32) -> (usize, f32) {
        let k = points.len();
        let pos = x.clamp(0.0, 1.0) * (k - 1) as f32;
        let i = (pos as usize).min(k - 2);
        (i, pos - i as f32)
    }
}

impl Executor for FusedExecutor<'_> {
    fn loss(&mut self, points: &[f32]) -> f64 {
        let mut acc = 0.0f64;
        for (&x, &y) in self.xs.iter().zip(self.ys) {
            let (i, t) = Self::locate(points, x);
            let r = ((1.0 - t) * points[i] + t * points[i + 1] - y) as f64;
            acc += r * r;
        }
        acc / self.xs.len().max(1) as f64
    }

    fn gradient(&mut self, points: &[f32], grad: &mut [f32]) {
        let n = self.xs.len().max(1) as f32;
        for (&x, &y) in self.xs.iter().zip(self.ys) {
            let (i, t) = Self::locate(points, x);
            let dpred = 2.0 * ((1.0 - t) * points[i] + t * points[i + 1] - y) / n;
            grad[i] += dpred * (1.0 - t);
            grad[i + 1] += dpred * t;
        }
    }
}

impl SplineStrategy for FusedKernel {
    fn name(&self) -> &'static str {
        "TFLite (manually fused custom op)"
    }

    fn train(
        &self,
        xs: &[f32],
        ys: &[f32],
        knots: usize,
        criteria: ConvergenceCriteria,
    ) -> TrainOutcome {
        let mut exec = FusedExecutor { xs, ys };
        descend(&mut exec, knots, criteria)
    }
}

// ===========================================================================
// Strategy 3: TFLite standard ops — planned static interpreter.
// ===========================================================================

/// The TFLite-standard analog: an operation plan constructed once, with a
/// preallocated tensor arena; evaluation walks the plan with one virtual
/// dispatch per whole-vector operation.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlannedInterpreter;

trait PlannedOp {
    fn run(&self, arena: &mut Arena);
}

struct Arena {
    xs: Vec<f32>,
    ys: Vec<f32>,
    points: Vec<f32>,
    idx: Vec<usize>,
    frac: Vec<f32>,
    lerp: Vec<f32>,
    residual: Vec<f32>,
    grad: Vec<f32>,
    scalar: f64,
}

struct LocateOp;
impl PlannedOp for LocateOp {
    fn run(&self, a: &mut Arena) {
        let k = a.points.len();
        for (s, &x) in a.xs.iter().enumerate() {
            let pos = x.clamp(0.0, 1.0) * (k - 1) as f32;
            let i = (pos as usize).min(k - 2);
            a.idx[s] = i;
            a.frac[s] = pos - i as f32;
        }
    }
}

struct GatherLerpOp;
impl PlannedOp for GatherLerpOp {
    fn run(&self, a: &mut Arena) {
        for s in 0..a.xs.len() {
            let (i, t) = (a.idx[s], a.frac[s]);
            a.lerp[s] = (1.0 - t) * a.points[i] + t * a.points[i + 1];
        }
    }
}

struct ResidualOp;
impl PlannedOp for ResidualOp {
    fn run(&self, a: &mut Arena) {
        for s in 0..a.xs.len() {
            a.residual[s] = a.lerp[s] - a.ys[s];
        }
    }
}

struct MeanSquareOp;
impl PlannedOp for MeanSquareOp {
    fn run(&self, a: &mut Arena) {
        let mut acc = 0.0f64;
        for &r in &a.residual {
            acc += (r as f64) * (r as f64);
        }
        a.scalar = acc / a.xs.len().max(1) as f64;
    }
}

struct ScatterGradOp;
impl PlannedOp for ScatterGradOp {
    fn run(&self, a: &mut Arena) {
        let n = a.xs.len().max(1) as f32;
        for s in 0..a.xs.len() {
            let (i, t) = (a.idx[s], a.frac[s]);
            let d = 2.0 * a.residual[s] / n;
            a.grad[i] += d * (1.0 - t);
            a.grad[i + 1] += d * t;
        }
    }
}

struct PlannedExecutor {
    arena: Arena,
    forward_plan: Vec<Box<dyn PlannedOp>>,
    backward_plan: Vec<Box<dyn PlannedOp>>,
}

impl PlannedExecutor {
    fn new(xs: &[f32], ys: &[f32], knots: usize) -> Self {
        let n = xs.len();
        PlannedExecutor {
            arena: Arena {
                xs: xs.to_vec(),
                ys: ys.to_vec(),
                points: vec![0.0; knots],
                idx: vec![0; n],
                frac: vec![0.0; n],
                lerp: vec![0.0; n],
                residual: vec![0.0; n],
                grad: vec![0.0; knots],
                scalar: 0.0,
            },
            forward_plan: vec![
                Box::new(LocateOp),
                Box::new(GatherLerpOp),
                Box::new(ResidualOp),
                Box::new(MeanSquareOp),
            ],
            backward_plan: vec![
                Box::new(LocateOp),
                Box::new(GatherLerpOp),
                Box::new(ResidualOp),
                Box::new(ScatterGradOp),
            ],
        }
    }
}

impl Executor for PlannedExecutor {
    fn loss(&mut self, points: &[f32]) -> f64 {
        self.arena.points.copy_from_slice(points);
        for op in &self.forward_plan {
            op.run(&mut self.arena);
        }
        self.arena.scalar
    }

    fn gradient(&mut self, points: &[f32], grad: &mut [f32]) {
        self.arena.points.copy_from_slice(points);
        self.arena.grad.iter_mut().for_each(|g| *g = 0.0);
        for op in &self.backward_plan {
            op.run(&mut self.arena);
        }
        grad.copy_from_slice(&self.arena.grad);
    }
}

impl SplineStrategy for PlannedInterpreter {
    fn name(&self) -> &'static str {
        "TFLite (standard operations)"
    }

    fn train(
        &self,
        xs: &[f32],
        ys: &[f32],
        knots: usize,
        criteria: ConvergenceCriteria,
    ) -> TrainOutcome {
        let mut exec = PlannedExecutor::new(xs, ys, knots);
        descend(&mut exec, knots, criteria)
    }
}

// ===========================================================================
// Strategy 4: TensorFlow Mobile — dynamic graph interpreter.
// ===========================================================================

/// The TF-Mobile analog: each evaluation *rebuilds* the op graph, resolves
/// tensors by string name through a hash map, and every op copies its
/// inputs into fresh buffers (no arena, no buffer reuse) — the full
/// dynamic-graph machinery on a phone.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphInterpreter;

#[derive(Debug, Clone)]
struct GraphNode {
    op: String,
    inputs: Vec<String>,
    output: String,
}

struct GraphExecutor {
    xs: Vec<f32>,
    ys: Vec<f32>,
    knots: usize,
}

impl GraphExecutor {
    fn build_forward_graph() -> Vec<GraphNode> {
        let node = |op: &str, inputs: &[&str], output: &str| GraphNode {
            op: op.to_string(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            output: output.to_string(),
        };
        vec![
            node("locate", &["x", "points"], "segments"),
            node("gather_lerp", &["segments", "points"], "pred"),
            node("sub", &["pred", "y"], "residual"),
            node("mean_square", &["residual"], "loss"),
        ]
    }

    fn build_backward_graph() -> Vec<GraphNode> {
        let node = |op: &str, inputs: &[&str], output: &str| GraphNode {
            op: op.to_string(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            output: output.to_string(),
        };
        let mut g = Self::build_forward_graph();
        g.pop(); // no loss reduction in the gradient graph
        g.push(node("scatter_grad", &["segments", "residual"], "grad"));
        g
    }

    /// Interprets a graph: validates it, then runs node by node, copying
    /// every input out of the string-keyed environment.
    fn interpret(&self, graph: &[GraphNode], points: &[f32]) -> HashMap<String, Vec<f32>> {
        // "Session" validation sweep, every single run.
        for node in graph {
            assert!(!node.op.is_empty() && !node.output.is_empty());
            for i in &node.inputs {
                assert!(!i.is_empty());
            }
        }
        let mut env: HashMap<String, Vec<f32>> = HashMap::new();
        env.insert("x".into(), self.xs.clone());
        env.insert("y".into(), self.ys.clone());
        env.insert("points".into(), points.to_vec());
        for node in graph {
            // Per-op defensive copies: reference semantics forces them.
            let inputs: Vec<Vec<f32>> = node
                .inputs
                .iter()
                .map(|name| env.get(name).expect("validated graph").clone())
                .collect();
            let out = self.run_op(&node.op, &inputs);
            env.insert(node.output.clone(), out);
        }
        env
    }

    fn run_op(&self, op: &str, inputs: &[Vec<f32>]) -> Vec<f32> {
        let k = self.knots;
        match op {
            "locate" => {
                // Encodes (i, t) pairs interleaved.
                let xs = &inputs[0];
                let mut out = Vec::with_capacity(xs.len() * 2);
                for &x in xs {
                    let pos = x.clamp(0.0, 1.0) * (k - 1) as f32;
                    let i = (pos as usize).min(k - 2);
                    out.push(i as f32);
                    out.push(pos - i as f32);
                }
                out
            }
            "gather_lerp" => {
                let (segments, points) = (&inputs[0], &inputs[1]);
                let mut out = Vec::with_capacity(segments.len() / 2);
                for pair in segments.chunks_exact(2) {
                    let (i, t) = (pair[0] as usize, pair[1]);
                    out.push((1.0 - t) * points[i] + t * points[i + 1]);
                }
                out
            }
            "sub" => inputs[0]
                .iter()
                .zip(&inputs[1])
                .map(|(a, b)| a - b)
                .collect(),
            "mean_square" => {
                let acc: f64 = inputs[0].iter().map(|&r| (r as f64) * (r as f64)).sum();
                vec![(acc / inputs[0].len().max(1) as f64) as f32]
            }
            "scatter_grad" => {
                let (segments, residual) = (&inputs[0], &inputs[1]);
                let n = residual.len().max(1) as f32;
                let mut grad = vec![0.0f32; k];
                for (pair, &r) in segments.chunks_exact(2).zip(residual) {
                    let (i, t) = (pair[0] as usize, pair[1]);
                    let d = 2.0 * r / n;
                    grad[i] += d * (1.0 - t);
                    grad[i + 1] += d * t;
                }
                grad
            }
            other => panic!("unknown graph op '{other}'"),
        }
    }
}

impl Executor for GraphExecutor {
    fn loss(&mut self, points: &[f32]) -> f64 {
        // Rebuild the graph on every evaluation — the dynamic-graph tax.
        let graph = Self::build_forward_graph();
        let env = self.interpret(&graph, points);
        env["loss"][0] as f64
    }

    fn gradient(&mut self, points: &[f32], grad: &mut [f32]) {
        let graph = Self::build_backward_graph();
        let env = self.interpret(&graph, points);
        grad.copy_from_slice(&env["grad"]);
    }
}

impl SplineStrategy for GraphInterpreter {
    fn name(&self) -> &'static str {
        "TensorFlow Mobile (dynamic graph interpreter)"
    }

    fn train(
        &self,
        xs: &[f32],
        ys: &[f32],
        knots: usize,
        criteria: ConvergenceCriteria,
    ) -> TrainOutcome {
        let mut exec = GraphExecutor {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            knots,
        };
        descend(&mut exec, knots, criteria)
    }
}

/// All four strategies, in the paper's Table 4 row order.
pub fn all_strategies() -> Vec<Box<dyn SplineStrategy>> {
    vec![
        Box::new(GraphInterpreter),
        Box::new(PlannedInterpreter),
        Box::new(FusedKernel),
        Box::new(NativeAot),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_problem() -> (Vec<f32>, Vec<f32>) {
        let xs: Vec<f32> = (0..200).map(|i| i as f32 / 199.0).collect();
        let ys: Vec<f32> = xs
            .iter()
            .map(|&x| 0.4 * (2.0 * std::f32::consts::PI * x).sin() + 0.3 * x)
            .collect();
        (xs, ys)
    }

    #[test]
    fn every_strategy_converges() {
        let (xs, ys) = toy_problem();
        for s in all_strategies() {
            let out = s.train(&xs, &ys, 12, ConvergenceCriteria::default());
            assert!(
                out.final_loss < 5e-3,
                "{}: loss {}",
                s.name(),
                out.final_loss
            );
            assert!(out.iterations > 1);
            assert!(out.loss_evaluations >= out.iterations);
        }
    }

    #[test]
    fn strategies_agree_on_control_points() {
        // The paper verified agreement within 1.5%; identical math and an
        // identical driver make ours agree almost exactly.
        let (xs, ys) = toy_problem();
        let reference = NativeAot.train(&xs, &ys, 10, ConvergenceCriteria::default());
        for s in all_strategies() {
            let out = s.train(&xs, &ys, 10, ConvergenceCriteria::default());
            for (a, b) in out.control_points.iter().zip(&reference.control_points) {
                let denom = b.abs().max(0.05);
                assert!(
                    ((a - b) / denom).abs() < 0.015,
                    "{} disagrees: {a} vs {b}",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn fitted_spline_tracks_the_curve() {
        let (xs, ys) = toy_problem();
        let out = FusedKernel.train(&xs, &ys, 16, ConvergenceCriteria::default());
        let mut model = SplineModel::new(16);
        model.control_points = out.control_points;
        for (&x, &y) in xs.iter().zip(&ys).step_by(17) {
            assert!((model.predict(x) - y).abs() < 0.1, "at {x}");
        }
    }

    #[test]
    fn graph_interpreter_matches_fused_gradient() {
        let (xs, ys) = toy_problem();
        let points: Vec<f32> = (0..8).map(|i| (i as f32) * 0.1 - 0.3).collect();
        let mut g1 = vec![0.0; 8];
        GraphExecutor {
            xs: xs.clone(),
            ys: ys.clone(),
            knots: 8,
        }
        .gradient(&points, &mut g1);
        let mut g2 = vec![0.0; 8];
        FusedExecutor { xs: &xs, ys: &ys }.gradient(&points, &mut g2);
        for (a, b) in g1.iter().zip(&g2) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn planned_interpreter_matches_fused_loss() {
        let (xs, ys) = toy_problem();
        let points = vec![0.1f32; 9];
        let l1 = PlannedExecutor::new(&xs, &ys, 9).loss(&points);
        let l2 = FusedExecutor { xs: &xs, ys: &ys }.loss(&points);
        assert!((l1 - l2).abs() < 1e-9);
    }
}
