//! A matrix-factorization recommender — the "recommendation systems"
//! corner of the paper's swift-models catalog (§5).
//!
//! `rating(u, i) = user_vec(u) · item_vec(i) + user_bias(u) + item_bias(i)`
//! with all four tables trainable [`Embedding`]s. The gradient of every
//! lookup is a scatter-add (paper §4.3's big-to-small pattern), so a
//! minibatch update touches only the rows it observed.

use rand::Rng;
use s4tf_core::differentiable_struct;
use s4tf_nn::layers::Embedding;
use s4tf_nn::Layer;
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::Tensor;

differentiable_struct! {
    /// Matrix factorization with biases.
    pub struct MatrixFactorizer tangent MatrixFactorizerTangent {
        params {
            /// User factor table, `[users, dim]`.
            pub user_factors: Embedding,
            /// Item factor table, `[items, dim]`.
            pub item_factors: Embedding,
            /// Per-user bias, `[users, 1]`.
            pub user_bias: Embedding,
            /// Per-item bias, `[items, 1]`.
            pub item_bias: Embedding,
        }
        nodiff {}
    }
}

/// The pullback of [`MatrixFactorizer::predict_with_pullback`].
pub type RecommenderPullback = Box<dyn Fn(&DTensor) -> MatrixFactorizerTangent + Send>;

impl MatrixFactorizer {
    /// A fresh factorizer on `device`.
    pub fn new<R: Rng + ?Sized>(
        users: usize,
        items: usize,
        dim: usize,
        device: &Device,
        rng: &mut R,
    ) -> Self {
        MatrixFactorizer {
            user_factors: Embedding::new(users, dim, device, rng),
            item_factors: Embedding::new(items, dim, device, rng),
            user_bias: Embedding::new(users, 1, device, rng),
            item_bias: Embedding::new(items, 1, device, rng),
        }
    }

    /// Encodes id lists as the float index tensors the embeddings take.
    pub fn encode_ids(ids: &[usize], device: &Device) -> DTensor {
        DTensor::from_tensor(
            Tensor::from_vec(ids.iter().map(|&i| i as f32).collect(), &[ids.len()]),
            device,
        )
    }

    /// Predicted ratings for `(users, items)` pairs: `[batch]`.
    pub fn predict(&self, users: &DTensor, items: &DTensor) -> DTensor {
        let batch = users.dims()[0];
        let u = self.user_factors.forward(users);
        let v = self.item_factors.forward(items);
        let dot = u.mul(&v).sum_axis(1);
        let ub = self.user_bias.forward(users).reshape(&[batch]);
        let ib = self.item_bias.forward(items).reshape(&[batch]);
        dot.add(&ub).add(&ib)
    }

    /// Predictions with the pullback onto all four tables.
    pub fn predict_with_pullback(
        &self,
        users: &DTensor,
        items: &DTensor,
    ) -> (DTensor, RecommenderPullback) {
        let batch = users.dims()[0];
        let dim = self.user_factors.dim();
        let (u, pb_u) = self.user_factors.forward_with_pullback(users);
        let (v, pb_v) = self.item_factors.forward_with_pullback(items);
        let (ub, pb_ub) = self.user_bias.forward_with_pullback(users);
        let (ib, pb_ib) = self.item_bias.forward_with_pullback(items);
        let dot = u.mul(&v).sum_axis(1);
        let pred = dot.add(&ub.reshape(&[batch])).add(&ib.reshape(&[batch]));
        (
            pred,
            Box::new(move |dy: &DTensor| {
                // d(u·v)/du = dy ⊗ v (broadcast dy over the factor dim).
                let dy_col = dy.reshape(&[batch, 1]).broadcast_to(&[batch, dim]);
                let (g_user, _) = pb_u(&dy_col.mul(&v));
                let (g_item, _) = pb_v(&dy_col.mul(&u));
                let dy_bias = dy.reshape(&[batch, 1]);
                let (g_ubias, _) = pb_ub(&dy_bias);
                let (g_ibias, _) = pb_ib(&dy_bias);
                MatrixFactorizerTangent {
                    user_factors: g_user,
                    item_factors: g_item,
                    user_bias: g_ubias,
                    item_bias: g_ibias,
                }
            }),
        )
    }

    /// Mean-squared error over observed ratings.
    pub fn mse(&self, users: &DTensor, items: &DTensor, targets: &Tensor<f32>) -> f64 {
        let pred = self.predict(users, items).to_tensor();
        pred.as_slice()
            .iter()
            .zip(targets.as_slice())
            .map(|(p, t)| ((p - t) as f64).powi(2))
            .sum::<f64>()
            / targets.num_elements().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use s4tf_core::{Differentiable, VectorSpace};
    use s4tf_data::ratings::{RatingsDataset, RatingsSpec};

    #[test]
    fn prediction_shape_and_pullback_shapes() {
        let d = Device::naive();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = MatrixFactorizer::new(10, 8, 4, &d, &mut rng);
        let users = MatrixFactorizer::encode_ids(&[0, 3, 9], &d);
        let items = MatrixFactorizer::encode_ids(&[7, 7, 1], &d);
        let (pred, pb) = m.predict_with_pullback(&users, &items);
        assert_eq!(pred.dims(), vec![3]);
        let g = pb(&pred.ones_like());
        assert_eq!(g.user_factors.table.dims(), vec![10, 4]);
        assert_eq!(g.item_factors.table.dims(), vec![8, 4]);
        assert_eq!(g.user_bias.table.dims(), vec![10, 1]);
        // Item 7 appears twice: its gradient row accumulates both.
        let gi = g.item_bias.table.to_tensor();
        assert_eq!(gi.at(&[7, 0]), 2.0);
        assert_eq!(gi.at(&[1, 0]), 1.0);
        assert_eq!(gi.at(&[0, 0]), 0.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let d = Device::naive();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let m = MatrixFactorizer::new(5, 5, 3, &d, &mut rng);
        let users = MatrixFactorizer::encode_ids(&[1, 4], &d);
        let items = MatrixFactorizer::encode_ids(&[2, 2], &d);
        let loss = |m: &MatrixFactorizer| {
            m.predict(&users, &items).sum().to_tensor().scalar_value() as f64
        };
        let (pred, pb) = m.predict_with_pullback(&users, &items);
        let g = pb(&pred.ones_like());
        let eps = 1e-3f32;
        // user factor (1, 0)
        {
            let mut mp = m.clone();
            let mut t = mp.user_factors.table.to_tensor();
            *t.at_mut(&[1, 0]) += eps;
            mp.user_factors.table = DTensor::from_tensor(t, &d);
            let fd = (loss(&mp) - loss(&m)) / eps as f64;
            let ad = g.user_factors.table.to_tensor().at(&[1, 0]) as f64;
            assert!((fd - ad).abs() < 1e-2, "fd={fd} ad={ad}");
        }
        // item factor (2, 1) — touched twice
        {
            let mut mp = m.clone();
            let mut t = mp.item_factors.table.to_tensor();
            *t.at_mut(&[2, 1]) += eps;
            mp.item_factors.table = DTensor::from_tensor(t, &d);
            let fd = (loss(&mp) - loss(&m)) / eps as f64;
            let ad = g.item_factors.table.to_tensor().at(&[2, 1]) as f64;
            assert!((fd - ad).abs() < 1e-2, "fd={fd} ad={ad}");
        }
    }

    #[test]
    fn factorization_learns_held_out_ratings() {
        let d = Device::naive();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let data = RatingsDataset::generate(RatingsSpec::default(), 11);
        let mut model = MatrixFactorizer::new(64, 48, 6, &d, &mut rng);
        let users = MatrixFactorizer::encode_ids(&data.train.users, &d);
        let items = MatrixFactorizer::encode_ids(&data.train.items, &d);
        let targets = DTensor::from_tensor(
            Tensor::from_vec(data.train.ratings.clone(), &[data.train.len()]),
            &d,
        );
        let test_users = MatrixFactorizer::encode_ids(&data.test.users, &d);
        let test_items = MatrixFactorizer::encode_ids(&data.test.items, &d);
        let test_targets = Tensor::from_vec(data.test.ratings.clone(), &[data.test.len()]);

        let before = model.mse(&test_users, &test_items, &test_targets);
        let n = data.train.len() as f32;
        for _ in 0..120 {
            let (pred, pb) = model.predict_with_pullback(&users, &items);
            let dy = pred.sub(&targets).mul_scalar(2.0 / n);
            let g = pb(&dy);
            model.move_along(&g.scaled_by(-6.0));
        }
        let after = model.mse(&test_users, &test_items, &test_targets);
        assert!(
            after < before * 0.3,
            "held-out MSE must drop substantially: {before} → {after}"
        );
    }
}
