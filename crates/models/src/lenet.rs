//! LeNet-5, transcribed from the paper's Figure 6.
//!
//! ```swift
//! public struct LeNet: Layer {
//!   public var conv1 = Conv2D<Float>(filterShape: (5, 5, 1, 6), padding: .same, activation: relu)
//!   public var pool1 = AvgPool2D<Float>(poolSize: (2, 2), strides: (2, 2))
//!   public var conv2 = Conv2D<Float>(filterShape: (5, 5, 6, 16), activation: relu)
//!   public var pool2 = AvgPool2D<Float>(poolSize: (2, 2), strides: (2, 2))
//!   public var flatten = Flatten<Float>()
//!   public var fc1 = Dense<Float>(inputSize: 400, outputSize: 120, activation: relu)
//!   public var fc2 = Dense<Float>(inputSize: 120, outputSize: 84, activation: relu)
//!   public var fc3 = Dense<Float>(inputSize: 84, outputSize: 10)
//! }
//! ```

use rand::Rng;
use s4tf_core::differentiable_struct;
use s4tf_nn::prelude::*;
use s4tf_runtime::{DTensor, Device};

differentiable_struct! {
    /// The LeNet-5 variant of paper Figure 6 (28×28×1 inputs, 10 classes).
    pub struct LeNet tangent LeNetTangent {
        params {
            /// 5×5, 1→6, same padding, relu.
            pub conv1: Conv2D,
            /// 5×5, 6→16, valid padding, relu.
            pub conv2: Conv2D,
            /// 400→120, relu.
            pub fc1: Dense,
            /// 120→84, relu.
            pub fc2: Dense,
            /// 84→10 (logits).
            pub fc3: Dense,
        }
        nodiff {
            /// 2×2/2 average pool.
            pub pool1: AvgPool2D,
            /// 2×2/2 average pool.
            pub pool2: AvgPool2D,
            /// Flatten to `[batch, 400]`.
            pub flatten: Flatten,
        }
    }
}

impl LeNet {
    /// A freshly initialized LeNet on `device`.
    pub fn new<R: Rng + ?Sized>(device: &Device, rng: &mut R) -> Self {
        LeNet {
            conv1: Conv2D::new(
                (5, 5, 1, 6),
                (1, 1),
                Padding::Same,
                Activation::Relu,
                device,
                rng,
            ),
            conv2: Conv2D::new(
                (5, 5, 6, 16),
                (1, 1),
                Padding::Valid,
                Activation::Relu,
                device,
                rng,
            ),
            fc1: Dense::new(400, 120, Activation::Relu, device, rng),
            fc2: Dense::new(120, 84, Activation::Relu, device, rng),
            fc3: Dense::new(84, 10, Activation::Identity, device, rng),
            pool1: AvgPool2D::new((2, 2), (2, 2)),
            pool2: AvgPool2D::new((2, 2), (2, 2)),
            flatten: Flatten::new(),
        }
    }
}

impl Checkpointable for LeNet {
    fn for_each_param(&self, prefix: &str, f: &mut dyn FnMut(&str, &DTensor)) {
        use s4tf_nn::checkpoint::join_name;
        self.conv1.for_each_param(&join_name(prefix, "conv1"), f);
        self.conv2.for_each_param(&join_name(prefix, "conv2"), f);
        self.fc1.for_each_param(&join_name(prefix, "fc1"), f);
        self.fc2.for_each_param(&join_name(prefix, "fc2"), f);
        self.fc3.for_each_param(&join_name(prefix, "fc3"), f);
    }

    fn for_each_param_mut(&mut self, prefix: &str, f: &mut dyn FnMut(&str, &mut DTensor)) {
        use s4tf_nn::checkpoint::join_name;
        self.conv1
            .for_each_param_mut(&join_name(prefix, "conv1"), f);
        self.conv2
            .for_each_param_mut(&join_name(prefix, "conv2"), f);
        self.fc1.for_each_param_mut(&join_name(prefix, "fc1"), f);
        self.fc2.for_each_param_mut(&join_name(prefix, "fc2"), f);
        self.fc3.for_each_param_mut(&join_name(prefix, "fc3"), f);
    }
}

impl Layer for LeNet {
    /// Figure 6's `callAsFunction`: `input.sequenced(through: conv1, pool1,
    /// conv2, pool2)` then `(flatten, fc1, fc2, fc3)`.
    fn forward(&self, input: &DTensor) -> DTensor {
        let convolved = self.pool2.forward(
            &self
                .conv2
                .forward(&self.pool1.forward(&self.conv1.forward(input))),
        );
        self.fc3.forward(
            &self
                .fc2
                .forward(&self.fc1.forward(&self.flatten.forward(&convolved))),
        )
    }

    fn forward_with_pullback(&self, input: &DTensor) -> (DTensor, PullbackFn<Self>) {
        let (h1, pb_conv1) = self.conv1.forward_with_pullback(input);
        let (h2, pb_pool1) = self.pool1.forward_with_pullback(&h1);
        let (h3, pb_conv2) = self.conv2.forward_with_pullback(&h2);
        let (h4, pb_pool2) = self.pool2.forward_with_pullback(&h3);
        let (h5, pb_flat) = self.flatten.forward_with_pullback(&h4);
        let (h6, pb_fc1) = self.fc1.forward_with_pullback(&h5);
        let (h7, pb_fc2) = self.fc2.forward_with_pullback(&h6);
        let (logits, pb_fc3) = self.fc3.forward_with_pullback(&h7);
        (
            logits,
            Box::new(move |dy: &DTensor| {
                let (g_fc3, d7) = pb_fc3(dy);
                let (g_fc2, d6) = pb_fc2(&d7);
                let (g_fc1, d5) = pb_fc1(&d6);
                let ((), d4) = pb_flat(&d5);
                let ((), d3) = pb_pool2(&d4);
                let (g_conv2, d2) = pb_conv2(&d3);
                let ((), d1) = pb_pool1(&d2);
                let (g_conv1, dx) = pb_conv1(&d1);
                (
                    LeNetTangent {
                        conv1: g_conv1,
                        conv2: g_conv2,
                        fc1: g_fc1,
                        fc2: g_fc2,
                        fc3: g_fc3,
                    },
                    dx,
                )
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use s4tf_tensor::Tensor;

    #[test]
    fn forward_shapes_match_figure_6() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d = Device::naive();
        let model = LeNet::new(&d, &mut rng);
        let x = DTensor::from_tensor(Tensor::zeros(&[2, 28, 28, 1]), &d);
        // conv1(same): 28×28×6 → pool: 14×14×6 → conv2(valid): 10×10×16
        // → pool: 5×5×16 → flatten: 400 → 120 → 84 → 10.
        let y = model.forward(&x);
        assert_eq!(y.dims(), vec![2, 10]);
    }

    #[test]
    fn pullback_produces_full_tangent() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let d = Device::naive();
        let model = LeNet::new(&d, &mut rng);
        let x = DTensor::from_tensor(Tensor::<f32>::randn(&[2, 28, 28, 1], &mut rng), &d);
        let (y, pb) = model.forward_with_pullback(&x);
        let (g, dx) = pb(&y.ones_like());
        assert_eq!(g.conv1.filter.dims(), vec![5, 5, 1, 6]);
        assert_eq!(g.conv2.filter.dims(), vec![5, 5, 6, 16]);
        assert_eq!(g.fc1.weight.dims(), vec![400, 120]);
        assert_eq!(g.fc3.bias.dims(), vec![10]);
        assert_eq!(dx.dims(), vec![2, 28, 28, 1]);
    }

    #[test]
    fn selected_gradients_match_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let d = Device::naive();
        let model = LeNet::new(&d, &mut rng);
        let x = DTensor::from_tensor(Tensor::<f32>::randn(&[1, 28, 28, 1], &mut rng), &d);
        let (y, pb) = model.forward_with_pullback(&x);
        let (g, _) = pb(&y.ones_like());
        let loss = |m: &LeNet| m.forward(&x).sum().to_tensor().scalar_value() as f64;
        let eps = 1e-2f64;
        // One weight from each trainable layer.
        let checks: Vec<(f64, f64)> = vec![
            {
                let mut m = model.clone();
                let mut f = m.conv1.filter.to_tensor();
                let i = 3;
                let ad = g.conv1.filter.to_tensor().as_slice()[i] as f64;
                f.as_mut_slice()[i] += eps as f32;
                m.conv1.filter = DTensor::from_tensor(f, &d);
                ((loss(&m) - loss(&model)) / eps, ad)
            },
            {
                let mut m = model.clone();
                let mut f = m.fc2.weight.to_tensor();
                let i = 100;
                let ad = g.fc2.weight.to_tensor().as_slice()[i] as f64;
                f.as_mut_slice()[i] += eps as f32;
                m.fc2.weight = DTensor::from_tensor(f, &d);
                ((loss(&m) - loss(&model)) / eps, ad)
            },
            {
                let mut m = model.clone();
                let mut b = m.fc3.bias.to_tensor();
                let i = 5;
                let ad = g.fc3.bias.to_tensor().as_slice()[i] as f64;
                b.as_mut_slice()[i] += eps as f32;
                m.fc3.bias = DTensor::from_tensor(b, &d);
                ((loss(&m) - loss(&model)) / eps, ad)
            },
        ];
        for (i, (fd, ad)) in checks.iter().enumerate() {
            assert!(
                (fd - ad).abs() < 0.05 * (1.0 + ad.abs()),
                "check {i}: fd={fd} ad={ad}"
            );
        }
    }

    #[test]
    fn lazy_training_specializes_fused_kernels() {
        // The fused-kernel compiler must close over LeNet's hot training
        // patterns with *specialized* loop nests (not the fallback
        // register machine): bias+relu epilogues, loss-gradient
        // scalings, the momentum/SGD parameter updates. Three distinct
        // specialized kernels is the acceptance floor.
        use s4tf_nn::optimizer::Sgd;
        use s4tf_nn::train::train_classifier_step;

        s4tf_runtime::set_codegen_enabled(true);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let d = Device::lazy();
        let mut model = LeNet::new(&d, &mut rng);
        let mut opt = Sgd::<LeNet>::with_momentum(0.05, 0.9);
        let x = DTensor::from_tensor(Tensor::<f32>::randn(&[4, 28, 28, 1], &mut rng), &d);
        let labels = DTensor::from_tensor(Tensor::zeros(&[4, 10]), &d);
        for _ in 0..2 {
            let loss = train_classifier_step(&mut model, &mut opt, &x, &labels);
            assert!(loss.is_finite(), "training diverged");
        }
        let stats = s4tf_runtime::codegen::stats();
        assert!(
            stats.distinct_specialized >= 3,
            "expected >=3 distinct specialized fused kernels in a LeNet \
             training step, got {} (stats: {:?})",
            stats.distinct_specialized,
            stats
        );
        assert!(stats.specialized > 0, "no specialized launches recorded");
    }

    #[test]
    fn identical_on_all_devices() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let naive = Device::naive();
        let reference_model = LeNet::new(&naive, &mut rng);
        let xs = Tensor::<f32>::randn(&[2, 28, 28, 1], &mut rng);
        let reference = reference_model
            .forward(&DTensor::from_tensor(xs.clone(), &naive))
            .to_tensor();
        for d in [Device::eager(), Device::lazy()] {
            // Port the same weights to the device.
            let mut m = reference_model.clone();
            m.conv1.filter = DTensor::from_tensor(reference_model.conv1.filter.to_tensor(), &d);
            m.conv1.bias = DTensor::from_tensor(reference_model.conv1.bias.to_tensor(), &d);
            m.conv2.filter = DTensor::from_tensor(reference_model.conv2.filter.to_tensor(), &d);
            m.conv2.bias = DTensor::from_tensor(reference_model.conv2.bias.to_tensor(), &d);
            m.fc1.weight = DTensor::from_tensor(reference_model.fc1.weight.to_tensor(), &d);
            m.fc1.bias = DTensor::from_tensor(reference_model.fc1.bias.to_tensor(), &d);
            m.fc2.weight = DTensor::from_tensor(reference_model.fc2.weight.to_tensor(), &d);
            m.fc2.bias = DTensor::from_tensor(reference_model.fc2.bias.to_tensor(), &d);
            m.fc3.weight = DTensor::from_tensor(reference_model.fc3.weight.to_tensor(), &d);
            m.fc3.bias = DTensor::from_tensor(reference_model.fc3.bias.to_tensor(), &d);
            let y = m.forward(&DTensor::from_tensor(xs.clone(), &d)).to_tensor();
            assert!(y.allclose(&reference, 1e-4), "{} diverged", d.kind());
        }
    }
}
