//! The ResNet family, dynamically configured.
//!
//! §3.5 of the paper argues for lazy tracing precisely because "one may
//! implement a complete ResNet family of models by assembling key building
//! blocks in a configuration determined by a dynamic model variant" — the
//! composition is not known ahead of time, so fully static compilation
//! can't fuse across blocks, while lazy tracing sees the whole assembled
//! program. [`ResNetConfig`] is that dynamic variant: the same code builds
//! ResNet-8 through ResNet-56 (CIFAR geometry, Table 3) and the
//! ImageNet-geometry network used by the Table 1/2 simulations.

use rand::Rng;
use s4tf_core::differentiable_struct;
use s4tf_nn::prelude::*;
use s4tf_runtime::{DTensor, Device};

differentiable_struct! {
    /// A pre-activation-free basic residual block:
    /// `relu(bn2(conv2(relu(bn1(conv1(x))))) + shortcut(x))`.
    ///
    /// `shortcut` is empty for identity skips and holds one 1×1 strided
    /// projection when the block changes resolution or width.
    pub struct BasicBlock tangent BasicBlockTangent {
        params {
            /// First 3×3 convolution (possibly strided).
            pub conv1: Conv2D,
            /// Batch norm after `conv1`.
            pub bn1: BatchNorm,
            /// Second 3×3 convolution.
            pub conv2: Conv2D,
            /// Batch norm after `conv2`.
            pub bn2: BatchNorm,
            /// Projection shortcut (`[]` = identity, `[conv1x1]` = projection).
            pub shortcut: Vec<Conv2D>,
        }
        nodiff {}
    }
}

impl BasicBlock {
    /// A block mapping `in_filters` to `out_filters` at the given stride.
    pub fn new<R: Rng + ?Sized>(
        in_filters: usize,
        out_filters: usize,
        stride: usize,
        device: &Device,
        rng: &mut R,
    ) -> Self {
        let shortcut = if stride != 1 || in_filters != out_filters {
            vec![Conv2D::new(
                (1, 1, in_filters, out_filters),
                (stride, stride),
                Padding::Same,
                Activation::Identity,
                device,
                rng,
            )]
        } else {
            Vec::new()
        };
        BasicBlock {
            conv1: Conv2D::new(
                (3, 3, in_filters, out_filters),
                (stride, stride),
                Padding::Same,
                Activation::Identity,
                device,
                rng,
            ),
            bn1: BatchNorm::new(out_filters, device),
            conv2: Conv2D::new(
                (3, 3, out_filters, out_filters),
                (1, 1),
                Padding::Same,
                Activation::Identity,
                device,
                rng,
            ),
            bn2: BatchNorm::new(out_filters, device),
            shortcut,
        }
    }
}

impl Layer for BasicBlock {
    fn forward(&self, input: &DTensor) -> DTensor {
        let h = self.bn1.forward(&self.conv1.forward(input)).relu();
        let h = self.bn2.forward(&self.conv2.forward(&h));
        let s = match self.shortcut.first() {
            Some(proj) => proj.forward(input),
            None => input.clone(),
        };
        h.add(&s).relu()
    }

    fn forward_with_pullback(&self, input: &DTensor) -> (DTensor, PullbackFn<Self>) {
        let (c1, pb_c1) = self.conv1.forward_with_pullback(input);
        let (b1, pb_b1) = self.bn1.forward_with_pullback(&c1);
        let (r1, pb_r1) = Activation::Relu.vjp(&b1);
        let (c2, pb_c2) = self.conv2.forward_with_pullback(&r1);
        let (b2, pb_b2) = self.bn2.forward_with_pullback(&c2);
        let (s, pb_s) = match self.shortcut.first() {
            Some(proj) => {
                let (s, pb) = proj.forward_with_pullback(input);
                (s, Some(pb))
            }
            None => (input.clone(), None),
        };
        let sum = b2.add(&s);
        let (y, pb_out) = Activation::Relu.vjp(&sum);
        (
            y,
            Box::new(move |dy: &DTensor| {
                let dsum = pb_out(dy);
                // Residual fan-in: the gradient flows to both branches.
                let (g_b2, dc2) = pb_b2(&dsum);
                let (g_c2, dr1) = pb_c2(&dc2);
                let db1 = pb_r1(&dr1);
                let (g_b1, dc1) = pb_b1(&db1);
                let (g_c1, dx_main) = pb_c1(&dc1);
                let (g_short, dx_side) = match &pb_s {
                    Some(pb) => {
                        let (g, dx) = pb(&dsum);
                        (vec![g], dx)
                    }
                    None => (Vec::new(), dsum.clone()),
                };
                (
                    BasicBlockTangent {
                        conv1: g_c1,
                        bn1: g_b1,
                        conv2: g_c2,
                        bn2: g_b2,
                        shortcut: g_short,
                    },
                    dx_main.add(&dx_side),
                )
            }),
        )
    }
}

/// The dynamic model variant (paper §3.5): which ResNet to assemble.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResNetConfig {
    /// Input channels (1 for MNIST-like, 3 for CIFAR/ImageNet-like).
    pub input_channels: usize,
    /// Stem filter count.
    pub stem_filters: usize,
    /// Blocks in each stage.
    pub blocks_per_stage: Vec<usize>,
    /// Filter count of each stage (same length as `blocks_per_stage`).
    pub stage_filters: Vec<usize>,
    /// Output classes.
    pub classes: usize,
    /// ImageNet-style stem (7×7/2 conv + 3×3/2 max pool) instead of the
    /// CIFAR 3×3/1 stem.
    pub imagenet_stem: bool,
}

impl ResNetConfig {
    /// ResNet-56 for CIFAR-10 (paper Table 3): 3 stages × 9 blocks,
    /// 16/32/64 filters, depth 6·9+2 = 56.
    pub fn resnet56_cifar() -> Self {
        ResNetConfig {
            input_channels: 3,
            stem_filters: 16,
            blocks_per_stage: vec![9, 9, 9],
            stage_filters: vec![16, 32, 64],
            classes: 10,
            imagenet_stem: false,
        }
    }

    /// A shallow CIFAR variant (6·1+2 = 8 layers) for tests and quick runs.
    pub fn resnet8_cifar() -> Self {
        ResNetConfig {
            input_channels: 3,
            stem_filters: 16,
            blocks_per_stage: vec![1, 1, 1],
            stage_filters: vec![16, 32, 64],
            classes: 10,
            imagenet_stem: false,
        }
    }

    /// A CIFAR variant of depth `6n+2` — the "dynamic model variant"
    /// argument made executable.
    pub fn cifar_variant(n: usize) -> Self {
        ResNetConfig {
            input_channels: 3,
            stem_filters: 16,
            blocks_per_stage: vec![n, n, n],
            stage_filters: vec![16, 32, 64],
            classes: 10,
            imagenet_stem: false,
        }
    }

    /// ImageNet-geometry ResNet with basic blocks (\[3,4,6,3\] = ResNet-34
    /// structure). Its training-step FLOP count is within ~5% of
    /// ResNet-50's, so the Table 1/2 cost model uses it as the ResNet-50
    /// stand-in (documented in DESIGN.md).
    pub fn resnet_imagenet() -> Self {
        ResNetConfig {
            input_channels: 3,
            stem_filters: 64,
            blocks_per_stage: vec![3, 4, 6, 3],
            stage_filters: vec![64, 128, 256, 512],
            classes: 1000,
            imagenet_stem: true,
        }
    }

    /// Total weighted-layer depth (the "ResNet-N" number).
    pub fn depth(&self) -> usize {
        2 + 2 * self.blocks_per_stage.iter().sum::<usize>()
    }
}

differentiable_struct! {
    /// A ResNet assembled from a [`ResNetConfig`].
    pub struct ResNet tangent ResNetTangent {
        params {
            /// Stem convolution.
            pub stem: Conv2D,
            /// Stem batch norm.
            pub stem_bn: BatchNorm,
            /// All residual blocks, in order.
            pub blocks: Vec<BasicBlock>,
            /// Classification head.
            pub head: Dense,
        }
        nodiff {
            /// The generating configuration.
            pub config: ResNetConfig,
        }
    }
}

impl ResNet {
    /// Assembles the network described by `config` on `device`.
    ///
    /// # Panics
    /// Panics if `blocks_per_stage` and `stage_filters` lengths differ.
    pub fn new<R: Rng + ?Sized>(config: ResNetConfig, device: &Device, rng: &mut R) -> Self {
        assert_eq!(
            config.blocks_per_stage.len(),
            config.stage_filters.len(),
            "one filter count per stage"
        );
        let stem = if config.imagenet_stem {
            Conv2D::new(
                (7, 7, config.input_channels, config.stem_filters),
                (2, 2),
                Padding::Same,
                Activation::Identity,
                device,
                rng,
            )
        } else {
            Conv2D::new(
                (3, 3, config.input_channels, config.stem_filters),
                (1, 1),
                Padding::Same,
                Activation::Identity,
                device,
                rng,
            )
        };
        let mut blocks = Vec::new();
        let mut in_filters = config.stem_filters;
        for (stage, (&n, &filters)) in config
            .blocks_per_stage
            .iter()
            .zip(&config.stage_filters)
            .enumerate()
        {
            for b in 0..n {
                let stride = if stage > 0 && b == 0 { 2 } else { 1 };
                blocks.push(BasicBlock::new(in_filters, filters, stride, device, rng));
                in_filters = filters;
            }
        }
        let head = Dense::new(
            in_filters,
            config.classes,
            Activation::Identity,
            device,
            rng,
        );
        ResNet {
            stem,
            stem_bn: BatchNorm::new(config.stem_filters, device),
            blocks,
            head,
            config,
        }
    }

    fn stem_pool(&self, x: &DTensor) -> DTensor {
        if self.config.imagenet_stem {
            x.max_pool2d((3, 3), (2, 2), Padding::Same)
        } else {
            x.clone()
        }
    }

    fn global_avg_pool(x: &DTensor) -> DTensor {
        let dims = x.dims();
        let (h, w, c) = (dims[1], dims[2], dims[3]);
        x.avg_pool2d((h, w), (1, 1), Padding::Valid)
            .reshape(&[dims[0], c])
    }
}

impl Layer for ResNet {
    fn forward(&self, input: &DTensor) -> DTensor {
        let mut h = self.stem_pool(&self.stem_bn.forward(&self.stem.forward(input)).relu());
        for block in &self.blocks {
            h = block.forward(&h);
        }
        self.head.forward(&Self::global_avg_pool(&h))
    }

    fn forward_with_pullback(&self, input: &DTensor) -> (DTensor, PullbackFn<Self>) {
        let (c, pb_stem) = self.stem.forward_with_pullback(input);
        let (b, pb_bn) = self.stem_bn.forward_with_pullback(&c);
        let (r, pb_relu) = Activation::Relu.vjp(&b);
        // Stem pooling (ImageNet stem only).
        let pooled = self.stem_pool(&r);
        let pre_pool = r.clone();
        let imagenet_stem = self.config.imagenet_stem;

        let mut h = pooled;
        let mut block_pbs = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let (next, pb) = block.forward_with_pullback(&h);
            block_pbs.push(pb);
            h = next;
        }
        let feat_dims = h.dims();
        let (h2, w2, c2) = (feat_dims[1], feat_dims[2], feat_dims[3]);
        let features = Self::global_avg_pool(&h);
        let pre_gap = h;
        let (logits, pb_head) = self.head.forward_with_pullback(&features);
        (
            logits,
            Box::new(move |dy: &DTensor| {
                let (g_head, dfeat) = pb_head(dy);
                // Undo global average pool: expand and scale.
                let batch = dfeat.dims()[0];
                let dgap = dfeat.reshape(&[batch, 1, 1, c2]);
                let dpre_gap = pre_gap.avg_pool2d_backward(&dgap, (h2, w2), (1, 1), Padding::Valid);
                let mut d = dpre_gap;
                let mut g_blocks_rev = Vec::with_capacity(block_pbs.len());
                for pb in block_pbs.iter().rev() {
                    let (g, dx) = pb(&d);
                    g_blocks_rev.push(g);
                    d = dx;
                }
                g_blocks_rev.reverse();
                let d = if imagenet_stem {
                    pre_pool.max_pool2d_backward(&d, (3, 3), (2, 2), Padding::Same)
                } else {
                    d
                };
                let db = pb_relu(&d);
                let (g_bn, dc) = pb_bn(&db);
                let (g_stem, dx) = pb_stem(&dc);
                (
                    ResNetTangent {
                        stem: g_stem,
                        stem_bn: g_bn,
                        blocks: g_blocks_rev,
                        head: g_head,
                    },
                    dx,
                )
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use s4tf_tensor::Tensor;

    #[test]
    fn depths() {
        assert_eq!(ResNetConfig::resnet56_cifar().depth(), 56);
        assert_eq!(ResNetConfig::resnet8_cifar().depth(), 8);
        assert_eq!(ResNetConfig::cifar_variant(3).depth(), 20);
        assert_eq!(ResNetConfig::resnet_imagenet().depth(), 34);
    }

    #[test]
    fn cifar_forward_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let d = Device::naive();
        let model = ResNet::new(ResNetConfig::resnet8_cifar(), &d, &mut rng);
        assert_eq!(model.blocks.len(), 3);
        let x = DTensor::from_tensor(Tensor::zeros(&[2, 32, 32, 3]), &d);
        let y = model.forward(&x);
        assert_eq!(y.dims(), vec![2, 10]);
    }

    #[test]
    fn imagenet_stem_halves_twice() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let d = Device::naive();
        let mut cfg = ResNetConfig::resnet_imagenet();
        cfg.blocks_per_stage = vec![1, 1];
        cfg.stage_filters = vec![8, 16];
        cfg.stem_filters = 8;
        cfg.classes = 10;
        let model = ResNet::new(cfg, &d, &mut rng);
        let x = DTensor::from_tensor(Tensor::zeros(&[1, 64, 64, 3]), &d);
        let y = model.forward(&x);
        assert_eq!(y.dims(), vec![1, 10]);
    }

    #[test]
    fn block_shortcut_projection_appears_when_needed() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let d = Device::naive();
        let same = BasicBlock::new(16, 16, 1, &d, &mut rng);
        assert!(same.shortcut.is_empty());
        let down = BasicBlock::new(16, 32, 2, &d, &mut rng);
        assert_eq!(down.shortcut.len(), 1);
        let x = DTensor::from_tensor(Tensor::<f32>::randn(&[1, 8, 8, 16], &mut rng), &d);
        assert_eq!(same.forward(&x).dims(), vec![1, 8, 8, 16]);
        assert_eq!(down.forward(&x).dims(), vec![1, 4, 4, 32]);
    }

    #[test]
    fn block_gradient_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let d = Device::naive();
        let block = BasicBlock::new(4, 4, 1, &d, &mut rng);
        let x = DTensor::from_tensor(Tensor::<f32>::randn(&[1, 5, 5, 4], &mut rng), &d);
        let (y, pb) = block.forward_with_pullback(&x);
        let (g, dx) = pb(&y.ones_like());
        let loss =
            |b: &BasicBlock, x: &DTensor| b.forward(x).sum().to_tensor().scalar_value() as f64;
        let eps = 1e-2f64;
        // conv1 filter element
        {
            let mut bp = block.clone();
            let mut f = bp.conv1.filter.to_tensor();
            f.as_mut_slice()[7] += eps as f32;
            bp.conv1.filter = DTensor::from_tensor(f, &d);
            let fd = (loss(&bp, &x) - loss(&block, &x)) / eps;
            let ad = g.conv1.filter.to_tensor().as_slice()[7] as f64;
            assert!((fd - ad).abs() < 0.05 * (1.0 + ad.abs()), "fd={fd} ad={ad}");
        }
        // input element (tests residual fan-in accumulation)
        {
            let mut xp = x.to_tensor();
            xp.as_mut_slice()[13] += eps as f32;
            let mut xm = x.to_tensor();
            xm.as_mut_slice()[13] -= eps as f32;
            let fd = (loss(&block, &DTensor::from_tensor(xp, &d))
                - loss(&block, &DTensor::from_tensor(xm, &d)))
                / (2.0 * eps);
            let ad = dx.to_tensor().as_slice()[13] as f64;
            assert!((fd - ad).abs() < 0.05 * (1.0 + ad.abs()), "fd={fd} ad={ad}");
        }
    }

    #[test]
    fn full_model_gradients_have_model_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let d = Device::naive();
        let model = ResNet::new(ResNetConfig::resnet8_cifar(), &d, &mut rng);
        let x = DTensor::from_tensor(Tensor::<f32>::randn(&[2, 16, 16, 3], &mut rng), &d);
        let (y, pb) = model.forward_with_pullback(&x);
        let (g, dx) = pb(&y.ones_like());
        assert_eq!(g.blocks.len(), 3);
        assert_eq!(g.head.weight.dims(), vec![64, 10]);
        assert_eq!(dx.dims(), vec![2, 16, 16, 3]);
        // Block tangent ordering matches block ordering (stage widths).
        assert_eq!(g.blocks[0].conv1.filter.dims(), vec![3, 3, 16, 16]);
        assert_eq!(g.blocks[1].conv1.filter.dims(), vec![3, 3, 16, 32]);
        assert_eq!(g.blocks[2].conv1.filter.dims(), vec![3, 3, 32, 64]);
    }

    #[test]
    fn training_step_reduces_loss() {
        use s4tf_nn::optimizer::Sgd;
        use s4tf_nn::train::train_classifier_step;
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let d = Device::naive();
        let mut model = ResNet::new(ResNetConfig::resnet8_cifar(), &d, &mut rng);
        let x = DTensor::from_tensor(Tensor::<f32>::randn(&[8, 16, 16, 3], &mut rng), &d);
        let labels = DTensor::from_tensor(Tensor::one_hot(&[0, 1, 2, 3, 4, 5, 6, 7], 10), &d);
        let mut opt = Sgd::new(0.05);
        let first = train_classifier_step(&mut model, &mut opt, &x, &labels);
        let mut last = first;
        for _ in 0..8 {
            last = train_classifier_step(&mut model, &mut opt, &x, &labels);
        }
        assert!(last < first, "loss {first} → {last}");
    }
}
