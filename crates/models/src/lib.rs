//! # s4tf-models
//!
//! The models the paper evaluates (§5): LeNet-5 exactly as Figure 6, a
//! configurable ResNet family (§3.5's dynamic-configuration argument,
//! Tables 1–3), and the spline personalization model trained with
//! backtracking line search (Table 4) in four implementation strategies
//! mirroring the four platforms of Table 4.

pub mod lenet;
pub mod recommender;
pub mod resnet;
pub mod spline;

pub use lenet::{LeNet, LeNetTangent};
pub use recommender::{MatrixFactorizer, MatrixFactorizerTangent};
pub use resnet::{ResNet, ResNetConfig};
pub use spline::{BacktrackingLineSearch, SplineModel};
