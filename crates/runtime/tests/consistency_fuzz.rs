//! Property-based cross-backend consistency: random tensor programs must
//! produce identical results on the naive, eager and lazy devices — the
//! paper's "illusion of eager execution" (§3.3) as a fuzzed invariant,
//! including random mid-program observations (which cut lazy traces at
//! arbitrary points) and random barrier insertions.

use proptest::prelude::*;
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::Tensor;

/// One step of a random elementwise/matmul program over two live values.
#[derive(Debug, Clone)]
enum Op {
    Relu,
    Tanh,
    Sigmoid,
    Square,
    Neg,
    AddScalar(f32),
    MulScalar(f32),
    AddPair,
    MulPair,
    Matmul,
    Softmax,
    SumAxisZero,
    Observe,
    Barrier,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Relu),
        Just(Op::Tanh),
        Just(Op::Sigmoid),
        Just(Op::Square),
        Just(Op::Neg),
        (-2.0f32..2.0).prop_map(Op::AddScalar),
        (-1.5f32..1.5).prop_map(Op::MulScalar),
        Just(Op::AddPair),
        Just(Op::MulPair),
        Just(Op::Matmul),
        Just(Op::Softmax),
        Just(Op::SumAxisZero),
        Just(Op::Observe),
        Just(Op::Barrier),
    ]
}

/// Runs the program on one device, returning the final materialized value.
fn run(ops: &[Op], a0: &Tensor<f32>, b0: &Tensor<f32>, device: &Device) -> Tensor<f32> {
    let mut a = DTensor::from_tensor(a0.clone(), device);
    let b = DTensor::from_tensor(b0.clone(), device);
    for op in ops {
        a = match op {
            Op::Relu => a.relu(),
            Op::Tanh => a.tanh(),
            Op::Sigmoid => a.sigmoid(),
            Op::Square => a.square(),
            Op::Neg => a.neg(),
            Op::AddScalar(s) => a.add_scalar(*s),
            Op::MulScalar(s) => a.mul_scalar(*s),
            Op::AddPair => a.add(&b),
            Op::MulPair => a.mul(&b),
            // Keep shapes square so every op stays applicable.
            Op::Matmul => a.matmul(&b).tanh(),
            Op::Softmax => a.softmax(),
            Op::SumAxisZero => {
                let dims = a.dims();
                a.sum_axis(0).broadcast_to(&dims)
            }
            Op::Observe => {
                // A host observation in the middle of the program: forces
                // execution on async backends without changing the value.
                let _ = a.to_tensor();
                a
            }
            Op::Barrier => {
                device.barrier();
                a
            }
        };
    }
    a.to_tensor()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_backends_agree_on_random_programs(
        ops in prop::collection::vec(op_strategy(), 1..14),
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let a0 = Tensor::<f32>::rand_uniform(&[4, 4], -1.0, 1.0, &mut rng);
        let b0 = Tensor::<f32>::rand_uniform(&[4, 4], -1.0, 1.0, &mut rng);

        let reference = run(&ops, &a0, &b0, &Device::naive());
        prop_assume!(reference.all_finite());
        for device in [Device::eager(), Device::lazy()] {
            let out = run(&ops, &a0, &b0, &device);
            prop_assert!(
                out.allclose(&reference, 1e-4),
                "{} diverged by {} on {ops:?}",
                device.kind(),
                out.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn lazy_device_caches_repeated_random_programs(
        ops in prop::collection::vec(op_strategy(), 1..10),
    ) {
        let device = Device::lazy();
        let a0 = Tensor::<f32>::from_fn(&[3, 3], |i| (i as f32) * 0.1 - 0.4);
        let b0 = Tensor::<f32>::from_fn(&[3, 3], |i| 0.3 - (i as f32) * 0.05);
        let first = run(&ops, &a0, &b0, &device);
        let Device::Lazy(ctx) = &device else { unreachable!() };
        let misses_after_first = ctx.cache().stats().misses;
        // Re-running the identical program must not compile anything new.
        let second = run(&ops, &a0, &b0, &device);
        prop_assert_eq!(ctx.cache().stats().misses, misses_after_first);
        let diff = first.max_abs_diff(&second);
        prop_assert!(diff == 0.0 || (first.all_finite() && diff < 1e-6));
    }
}
