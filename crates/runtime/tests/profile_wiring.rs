//! End-to-end checks that the eager and lazy devices feed the profiler
//! the right spans and counters for a *known* op sequence.
//!
//! The profiler is process-global, so these tests serialize on a mutex
//! (this binary is its own process; other test binaries are unaffected).

use s4tf_runtime::eager::{EagerQueue, EagerTensor};
use s4tf_runtime::lazy::{LazyContext, LazyTensor};
use s4tf_runtime::Device;
use s4tf_tensor::Tensor;
use s4tf_xla::{ElemBinary, ElemUnary, HloOp};
use std::sync::{Arc, Mutex, MutexGuard};

static PROFILER_LOCK: Mutex<()> = Mutex::new(());

fn exclusive_profiler() -> MutexGuard<'static, ()> {
    let guard = PROFILER_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    s4tf_profile::set_enabled(true);
    s4tf_profile::reset();
    guard
}

fn teardown() {
    s4tf_profile::set_enabled(false);
    s4tf_profile::reset();
}

#[test]
fn lazy_device_reports_trace_compile_and_cache_activity() {
    let _guard = exclusive_profiler();
    let ctx = Arc::new(LazyContext::new());
    let run = |data: Vec<f32>| {
        let x = LazyTensor::from_host(&ctx, Tensor::from_vec(data, &[2]));
        let y = LazyTensor::record_op(&ctx, HloOp::Unary(ElemUnary::Square), &[&x]);
        let z = LazyTensor::record_op(&ctx, HloOp::Binary(ElemBinary::Add), &[&y, &x]);
        z.to_host()
    };
    // First run compiles; the structurally identical second one hits.
    assert_eq!(run(vec![2.0, 3.0]).as_slice(), &[6.0, 12.0]);
    assert_eq!(run(vec![1.0, 4.0]).as_slice(), &[2.0, 20.0]);

    let report = s4tf_profile::report();
    // Two record_op calls per run.
    assert_eq!(report.counter("lazy.trace_append"), Some(4));
    assert_eq!(report.counter("xla.cache_miss"), Some(1));
    assert_eq!(report.counter("xla.cache_hit"), Some(1));
    // The profiler counters agree with the Device cache-stats API.
    let device = Device::Lazy(Arc::clone(&ctx));
    let stats = device.cache_stats().expect("lazy device has a cache");
    assert_eq!(Some(stats.misses), report.counter("xla.cache_miss"));
    assert_eq!(Some(stats.hits), report.counter("xla.cache_hit"));

    assert_eq!(report.span("lazy.barrier").unwrap().count, 2);
    assert_eq!(report.span("xla.compile").unwrap().count, 1);
    assert_eq!(report.span("xla.execute").unwrap().count, 2);
    for pass in [
        "xla.pass.constant_fold",
        "xla.pass.cse",
        "xla.pass.algebraic_simplify",
        "xla.pass.fuse_elementwise",
        "xla.pass.dce",
    ] {
        assert_eq!(report.span(pass).unwrap().count, 1, "{pass}");
    }
    assert!(report.counter("xla.kernels_run").unwrap_or(0) >= 2);
    teardown();
}

#[test]
fn eager_device_reports_dispatch_and_observe_activity() {
    let _guard = exclusive_profiler();
    const OPS: u64 = 5;
    {
        let q = EagerQueue::new();
        let mut t = EagerTensor::from_host(&q, Tensor::ones(&[4]));
        for _ in 0..OPS {
            t = EagerTensor::dispatch_op(&q, HloOp::Unary(ElemUnary::Neg), &[&t]);
        }
        assert_eq!(t.to_host().as_slice(), &[-1.0; 4]);
        q.sync(); // all kernel_run spans recorded once the queue drains
        assert_eq!(q.dispatched(), OPS);
        assert_eq!(q.queue_depth(), 0, "drained queue has no pending work");
    }
    let report = s4tf_profile::report();
    assert_eq!(report.span("eager.enqueue").unwrap().count, OPS);
    assert_eq!(report.span("eager.kernel_run").unwrap().count, OPS);
    assert_eq!(report.span("eager.block_on_observe").unwrap().count, 1);
    let gauges = report.gauges();
    assert!(
        gauges.iter().any(|(name, _)| name == "eager.queue_depth"),
        "queue-depth gauge sampled"
    );
    teardown();
}

#[test]
fn eager_dispatch_records_op_events_flows_and_critical_path() {
    let _guard = exclusive_profiler();
    const OPS: u64 = 5;
    {
        let q = EagerQueue::new();
        let mut t = EagerTensor::from_host(&q, Tensor::ones(&[4]));
        for _ in 0..OPS {
            t = EagerTensor::dispatch_op(&q, HloOp::Unary(ElemUnary::Neg), &[&t]);
        }
        assert_eq!(t.to_host().as_slice(), &[-1.0; 4]);
        q.sync();
    }

    // One op event per dispatched kernel, with the exact analytic cost:
    // Neg over 4 elements is 4 FLOPs, reads 16 B + writes 16 B.
    let ops = s4tf_profile::op_events();
    assert_eq!(ops.len(), OPS as usize);
    for op in &ops {
        assert_eq!(op.backend, "eager");
        assert_eq!(op.phase, "kernel");
        assert_eq!(op.name, "elementwise");
        assert_eq!(op.flops, 4);
        assert_eq!(op.bytes, 32);
        assert!(op.enqueue_us <= op.start_us && op.start_us <= op.end_us);
    }
    // Each op depends on its predecessor (data edge and/or FIFO edge), so
    // the critical path must walk the whole chain.
    let cp = s4tf_profile::critical_path();
    assert_eq!(cp.steps.len(), OPS as usize);
    assert_eq!(cp.kernel_us + cp.queue_us, cp.chain_us);
    assert_eq!(cp.compile_us, 0);

    // Roofline aggregates the five kernels into one eager/elementwise row.
    let roof = s4tf_profile::roofline();
    let row = roof
        .row("eager", "elementwise")
        .expect("eager kernels aggregated");
    assert_eq!(row.count, OPS);
    assert_eq!(row.flops, 4 * OPS);

    // The Chrome trace links enqueue -> kernel_run with flow arrows.
    let json = s4tf_profile::chrome_trace_json();
    assert!(json.contains("\"ph\":\"s\""), "flow start missing");
    assert!(json.contains("\"ph\":\"f\""), "flow end missing");
    assert!(json.contains("eager-worker"), "worker thread unnamed");
    teardown();
}

#[test]
fn lazy_run_records_trace_compile_and_kernel_phases() {
    let _guard = exclusive_profiler();
    let ctx = Arc::new(LazyContext::new());
    let run = |data: Vec<f32>| {
        let x = LazyTensor::from_host(&ctx, Tensor::from_vec(data, &[2]));
        let y = LazyTensor::record_op(&ctx, HloOp::Unary(ElemUnary::Square), &[&x]);
        let z = LazyTensor::record_op(&ctx, HloOp::Binary(ElemBinary::Add), &[&y, &x]);
        z.to_host()
    };
    assert_eq!(run(vec![2.0, 3.0]).as_slice(), &[6.0, 12.0]);
    assert_eq!(run(vec![1.0, 4.0]).as_slice(), &[2.0, 20.0]);

    let ops = s4tf_profile::op_events();
    let phase_count = |p: &str| -> usize { ops.iter().filter(|o| o.phase == p).count() };
    // Two barriers trace; each records its get_or_compile interval as a
    // compile-phase event (the second is a near-free cache hit — the
    // hit/miss split is covered by the xla.cache_* counters); both
    // execute kernels.
    assert_eq!(phase_count("trace"), 2);
    assert_eq!(phase_count("compile"), 2);
    assert!(phase_count("kernel") >= 2);
    assert!(ops.iter().all(|o| o.backend == "lazy"));

    // The roofline only counts kernel-phase work.
    let roof = s4tf_profile::roofline();
    assert!(roof.rows().iter().all(|r| r.backend == "lazy"));
    assert!(roof.row("lazy", "compile").is_none());

    // The chain reaches back through compile to the trace phase.
    let cp = s4tf_profile::critical_path();
    assert!(!cp.is_empty());
    let phases: Vec<&str> = cp.steps.iter().map(|s| s.phase).collect();
    assert!(phases.contains(&"trace"), "{phases:?}");
    assert!(phases.contains(&"kernel"), "{phases:?}");
    teardown();
}

#[test]
fn naive_dispatch_attaches_exact_matmul_cost() {
    let _guard = exclusive_profiler();
    let device = Device::naive();
    let a = s4tf_runtime::DTensor::from_tensor(Tensor::ones(&[2, 3]), &device);
    let b = s4tf_runtime::DTensor::from_tensor(Tensor::ones(&[3, 4]), &device);
    let c = a.matmul(&b);
    assert_eq!(c.to_tensor().shape().dims(), &[2, 4]);

    let ops = s4tf_profile::op_events();
    let mm = ops
        .iter()
        .find(|o| o.name == "matmul")
        .expect("naive matmul op event");
    assert_eq!(mm.backend, "naive");
    assert_eq!(mm.phase, "kernel");
    // 2x3 x 3x4: 2*2*3*4 = 48 FLOPs; (6 + 12 + 8) * 4 B = 104 B.
    assert_eq!(mm.flops, 48);
    assert_eq!(mm.bytes, 104);
    teardown();
}
