//! End-to-end checks that the eager and lazy devices feed the profiler
//! the right spans and counters for a *known* op sequence.
//!
//! The profiler is process-global, so these tests serialize on a mutex
//! (this binary is its own process; other test binaries are unaffected).

use s4tf_runtime::eager::{EagerQueue, EagerTensor};
use s4tf_runtime::lazy::{LazyContext, LazyTensor};
use s4tf_runtime::Device;
use s4tf_tensor::Tensor;
use s4tf_xla::{ElemBinary, ElemUnary, HloOp};
use std::sync::{Arc, Mutex, MutexGuard};

static PROFILER_LOCK: Mutex<()> = Mutex::new(());

fn exclusive_profiler() -> MutexGuard<'static, ()> {
    let guard = PROFILER_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    s4tf_profile::set_enabled(true);
    s4tf_profile::reset();
    guard
}

fn teardown() {
    s4tf_profile::set_enabled(false);
    s4tf_profile::reset();
}

#[test]
fn lazy_device_reports_trace_compile_and_cache_activity() {
    let _guard = exclusive_profiler();
    let ctx = Arc::new(LazyContext::new());
    let run = |data: Vec<f32>| {
        let x = LazyTensor::from_host(&ctx, Tensor::from_vec(data, &[2]));
        let y = LazyTensor::record_op(&ctx, HloOp::Unary(ElemUnary::Square), &[&x]);
        let z = LazyTensor::record_op(&ctx, HloOp::Binary(ElemBinary::Add), &[&y, &x]);
        z.to_host()
    };
    // First run compiles; the structurally identical second one hits.
    assert_eq!(run(vec![2.0, 3.0]).as_slice(), &[6.0, 12.0]);
    assert_eq!(run(vec![1.0, 4.0]).as_slice(), &[2.0, 20.0]);

    let report = s4tf_profile::report();
    // Two record_op calls per run.
    assert_eq!(report.counter("lazy.trace_append"), Some(4));
    assert_eq!(report.counter("xla.cache_miss"), Some(1));
    assert_eq!(report.counter("xla.cache_hit"), Some(1));
    // The profiler counters agree with the Device cache-stats API.
    let device = Device::Lazy(Arc::clone(&ctx));
    let stats = device.cache_stats().expect("lazy device has a cache");
    assert_eq!(Some(stats.misses), report.counter("xla.cache_miss"));
    assert_eq!(Some(stats.hits), report.counter("xla.cache_hit"));

    assert_eq!(report.span("lazy.barrier").unwrap().count, 2);
    assert_eq!(report.span("xla.compile").unwrap().count, 1);
    assert_eq!(report.span("xla.execute").unwrap().count, 2);
    for pass in [
        "xla.pass.constant_fold",
        "xla.pass.cse",
        "xla.pass.algebraic_simplify",
        "xla.pass.fuse_elementwise",
        "xla.pass.dce",
    ] {
        assert_eq!(report.span(pass).unwrap().count, 1, "{pass}");
    }
    assert!(report.counter("xla.kernels_run").unwrap_or(0) >= 2);
    teardown();
}

#[test]
fn eager_device_reports_dispatch_and_observe_activity() {
    let _guard = exclusive_profiler();
    const OPS: u64 = 5;
    {
        let q = EagerQueue::new();
        let mut t = EagerTensor::from_host(&q, Tensor::ones(&[4]));
        for _ in 0..OPS {
            t = EagerTensor::dispatch_op(&q, HloOp::Unary(ElemUnary::Neg), &[&t]);
        }
        assert_eq!(t.to_host().as_slice(), &[-1.0; 4]);
        q.sync(); // all kernel_run spans recorded once the queue drains
        assert_eq!(q.dispatched(), OPS);
        assert_eq!(q.queue_depth(), 0, "drained queue has no pending work");
    }
    let report = s4tf_profile::report();
    assert_eq!(report.span("eager.enqueue").unwrap().count, OPS);
    assert_eq!(report.span("eager.kernel_run").unwrap().count, OPS);
    assert_eq!(report.span("eager.block_on_observe").unwrap().count, 1);
    let gauges = report.gauges();
    assert!(
        gauges.iter().any(|(name, _)| name == "eager.queue_depth"),
        "queue-depth gauge sampled"
    );
    teardown();
}
