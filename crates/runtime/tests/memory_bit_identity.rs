//! The memory subsystem must be invisible in the numbers: the buffer
//! pool (`S4TF_POOL`) and the memory planner (`S4TF_PLAN`) only change
//! where bytes live, never what is computed. Random programs are run on
//! every backend with each knob on and off, and the results must match
//! *bitwise*.
//!
//! Lives in its own integration-test binary because the toggles are
//! process-wide; a mutex serializes the two properties so a flip in one
//! cannot race a run in the other.

use proptest::prelude::*;
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::Tensor;
use std::sync::Mutex;

static TOGGLES: Mutex<()> = Mutex::new(());

/// One step of a random program over two live values (subset of the
/// cross-backend consistency fuzz, plus fusion-friendly chains so the
/// planner's in-place fused path is exercised).
#[derive(Debug, Clone)]
enum Op {
    Relu,
    Tanh,
    Square,
    Neg,
    AddScalar(f32),
    MulScalar(f32),
    AddPair,
    MulPair,
    Matmul,
    Softmax,
    Observe,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Relu),
        Just(Op::Tanh),
        Just(Op::Square),
        Just(Op::Neg),
        (-2.0f32..2.0).prop_map(Op::AddScalar),
        (-1.5f32..1.5).prop_map(Op::MulScalar),
        Just(Op::AddPair),
        Just(Op::MulPair),
        Just(Op::Matmul),
        Just(Op::Softmax),
        Just(Op::Observe),
    ]
}

fn run(ops: &[Op], a0: &Tensor<f32>, b0: &Tensor<f32>, device: &Device) -> Tensor<f32> {
    let mut a = DTensor::from_tensor(a0.clone(), device);
    let b = DTensor::from_tensor(b0.clone(), device);
    for op in ops {
        a = match op {
            Op::Relu => a.relu(),
            Op::Tanh => a.tanh(),
            Op::Square => a.square(),
            Op::Neg => a.neg(),
            Op::AddScalar(s) => a.add_scalar(*s),
            Op::MulScalar(s) => a.mul_scalar(*s),
            Op::AddPair => a.add(&b),
            Op::MulPair => a.mul(&b),
            Op::Matmul => a.matmul(&b).tanh(),
            Op::Softmax => a.softmax(),
            Op::Observe => {
                let _ = a.to_tensor();
                a
            }
        };
    }
    a.to_tensor()
}

fn bits(t: &Tensor<f32>) -> Vec<u32> {
    t.as_slice().iter().map(|x| x.to_bits()).collect()
}

fn devices() -> [Device; 3] {
    [Device::naive(), Device::eager(), Device::lazy()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pool_toggle_is_bit_transparent(
        ops in proptest::collection::vec(op_strategy(), 1..10),
        a in proptest::collection::vec(-2.0f32..2.0, 16),
        b in proptest::collection::vec(-2.0f32..2.0, 16),
    ) {
        let _g = TOGGLES.lock().unwrap_or_else(|e| e.into_inner());
        let a0 = Tensor::from_vec(a, &[4, 4]);
        let b0 = Tensor::from_vec(b, &[4, 4]);
        for device in devices() {
            s4tf_tensor::set_pool_enabled(true);
            let with_pool = run(&ops, &a0, &b0, &device);
            s4tf_tensor::set_pool_enabled(false);
            let without = run(&ops, &a0, &b0, &device);
            s4tf_tensor::set_pool_enabled(true);
            prop_assert_eq!(
                bits(&with_pool),
                bits(&without),
                "pool must be bit-transparent on {}", device.kind()
            );
        }
    }

    #[test]
    fn plan_toggle_is_bit_transparent(
        ops in proptest::collection::vec(op_strategy(), 1..10),
        a in proptest::collection::vec(-2.0f32..2.0, 16),
        b in proptest::collection::vec(-2.0f32..2.0, 16),
    ) {
        let _g = TOGGLES.lock().unwrap_or_else(|e| e.into_inner());
        let a0 = Tensor::from_vec(a, &[4, 4]);
        let b0 = Tensor::from_vec(b, &[4, 4]);
        for device in devices() {
            s4tf_xla::set_plan_enabled(true);
            let planned = run(&ops, &a0, &b0, &device);
            s4tf_xla::set_plan_enabled(false);
            let unplanned = run(&ops, &a0, &b0, &device);
            s4tf_xla::set_plan_enabled(true);
            prop_assert_eq!(
                bits(&planned),
                bits(&unplanned),
                "planner must be bit-transparent on {}", device.kind()
            );
        }
    }
}
