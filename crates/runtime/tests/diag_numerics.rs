//! First-NaN attribution across the three backends: plant a non-finite
//! value mid-computation and assert the *producing* op is the one
//! reported, with the right backend label.
//!
//! The numerics checker is process-global state, so every test serializes
//! on one mutex and clears the recorded violation before running.

use s4tf_diag::{
    clear_numerics, first_violation, scans_performed, set_numerics_mode, NumericsMode,
};
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::Tensor;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    // A failed assertion in one test poisons the lock; later tests should
    // still run (the state they need is reset below, not the mutex).
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// 0/0 mid-graph: `y = x - x` (finite zeros), `z = y / y` (NaN), then a
/// further op consuming the NaN. The first violation must name the
/// division, not the downstream consumer.
fn nan_mid_graph(device: &Device) -> DTensor {
    let x = DTensor::from_tensor(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]), device);
    let y = x.sub(&x);
    let z = y.div(&y);
    z.add(&x)
}

#[test]
fn naive_attributes_first_nan_to_div() {
    let _g = guard();
    set_numerics_mode(NumericsMode::Warn);
    clear_numerics();
    let device = Device::naive();
    let out = nan_mid_graph(&device);
    assert!(out.to_tensor().as_slice()[0].is_nan());
    let v = first_violation().expect("violation recorded");
    assert_eq!(v.op, "div", "the producing op, not the consuming add");
    assert_eq!(v.backend, "naive");
    assert_eq!(v.kind, "NaN");
    assert_eq!(v.shape, vec![4]);
    assert_eq!(v.dtype, "f32");
    set_numerics_mode(NumericsMode::Off);
}

#[test]
fn eager_attributes_first_nan_to_div() {
    let _g = guard();
    set_numerics_mode(NumericsMode::Warn);
    clear_numerics();
    let device = Device::eager();
    let out = nan_mid_graph(&device);
    assert!(out.to_tensor().as_slice()[0].is_nan());
    // The scan runs on the worker thread after each kernel; the barrier
    // (queue sync) guarantees it has happened before we look.
    device.barrier();
    let v = first_violation().expect("violation recorded");
    assert_eq!(v.op, "div");
    assert_eq!(v.backend, "eager");
    assert_eq!(v.kind, "NaN");
    set_numerics_mode(NumericsMode::Off);
}

#[test]
fn lazy_attributes_first_nan_to_producing_node() {
    let _g = guard();
    set_numerics_mode(NumericsMode::Warn);
    clear_numerics();
    let device = Device::lazy();
    let out = nan_mid_graph(&device);
    assert!(out.to_tensor().as_slice()[0].is_nan());
    let v = first_violation().expect("violation recorded");
    // The fuser may have merged the elementwise chain into one kernel; the
    // report still names the first node whose *output* went non-finite.
    assert!(
        v.op == "div" || v.op.starts_with("fused"),
        "unexpected producing op: {}",
        v.op
    );
    assert_eq!(v.backend, "lazy");
    assert_eq!(v.kind, "NaN");
    set_numerics_mode(NumericsMode::Off);
}

#[test]
fn panic_mode_panics_with_attribution() {
    let _g = guard();
    set_numerics_mode(NumericsMode::Panic);
    clear_numerics();
    let device = Device::naive();
    let result = std::panic::catch_unwind(|| {
        let x = DTensor::from_tensor(Tensor::zeros(&[2]), &device);
        x.div(&x)
    });
    set_numerics_mode(NumericsMode::Off);
    let err = result.expect_err("0/0 must panic in Panic mode");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("numerics check failed") && msg.contains("div"),
        "panic message must attribute the op: {msg}"
    );
    clear_numerics();
}

#[test]
fn disabled_mode_never_scans() {
    let _g = guard();
    set_numerics_mode(NumericsMode::Off);
    clear_numerics();
    let before = scans_performed();
    let device = Device::naive();
    let x = DTensor::from_tensor(Tensor::zeros(&[8]), &device);
    let _ = x.div(&x).to_tensor();
    assert_eq!(
        scans_performed(),
        before,
        "with checking off, the dispatch path must not scan outputs"
    );
    assert!(first_violation().is_none());
}
