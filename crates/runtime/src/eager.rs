//! The eager device: asynchronous op-by-op dispatch (paper §3.2).
//!
//! "The kernels are dispatched to the accelerator to execute asynchronously
//! and control is returned to the user's program before the kernel
//! finishes. As long as the user's program does not observe the contents of
//! a Tensor, the user's program runs ahead and fills a pipeline of
//! accelerator kernel invocations."
//!
//! Here the "accelerator" is a worker thread fed boxed kernel invocations
//! over a channel. The per-op cost of this strategy — allocation, boxing,
//! channel send, slot synchronization — is exactly the dispatch overhead
//! Table 3 measures against the lazy backend.

use crate::diag;
use crate::fault;
use crate::met;
use crate::prof;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use s4tf_tensor::{panic_message, RuntimeError, Shape, Tensor};
use s4tf_xla::exec::eval_op_owned;
use s4tf_xla::HloOp;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// The eager dispatch queue's registry gauge (kernels in flight).
fn eager_queue_gauge() -> &'static met::Gauge {
    static G: OnceLock<&'static met::Gauge> = OnceLock::new();
    G.get_or_init(|| {
        met::gauge(
            "s4tf_queue_depth{queue=\"eager\"}",
            "Kernels dispatched to the eager worker but not yet executed",
        )
    })
}

/// The value a slot resolves to: a materialized tensor, or the attributed
/// error that *poisoned* it (paper §4: asynchronous failures attach to
/// values and surface at observation points).
type SlotValue = Result<Tensor<f32>, RuntimeError>;

/// A write-once result slot the host can block on.
#[derive(Default)]
struct Slot {
    value: Mutex<Option<SlotValue>>,
    ready: Condvar,
}

impl Slot {
    fn fill(&self, t: SlotValue) {
        let mut guard = self.value.lock();
        debug_assert!(guard.is_none(), "slot filled twice");
        *guard = Some(t);
        self.ready.notify_all();
    }

    fn wait(&self) -> SlotValue {
        let mut guard = self.value.lock();
        while guard.is_none() {
            self.ready.wait(&mut guard);
        }
        guard.clone().expect("checked above")
    }

    /// Non-blocking read (used inside the worker, where FIFO execution
    /// guarantees operands are already filled).
    fn take_ready(&self) -> SlotValue {
        self.value
            .lock()
            .clone()
            .expect("FIFO worker ordering guarantees operands are ready")
    }
}

type Job = Box<dyn FnOnce() + Send>;

/// First *originated* error on the queue: kernel panics and injected
/// faults record here (propagated poison does not), so `sync_checked`
/// can report a failure even if every poisoned handle was dropped
/// unobserved.
type FirstError = Arc<Mutex<Option<RuntimeError>>>;

fn record_first(slot: &FirstError, err: &RuntimeError) {
    let mut guard = slot.lock();
    if guard.is_none() {
        *guard = Some(err.clone());
    }
}

struct QueueInner {
    sender: Option<Sender<Job>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    dispatched: AtomicU64,
    /// Profiler op id of the most recently dispatched job: the worker is
    /// a single FIFO lane, so every job also depends on its predecessor.
    /// Critical-path analysis uses this edge to model head-of-line
    /// blocking, not just data dependencies.
    last_op: AtomicU64,
    /// Kernels the worker has finished. Held behind its own `Arc` so
    /// jobs can bump it without keeping the whole queue alive (which
    /// would make the worker join itself on teardown).
    completed: Arc<AtomicU64>,
    /// See [`FirstError`]; its own `Arc` for the same teardown reason.
    first_error: FirstError,
}

impl QueueInner {
    fn sender(&self) -> &Sender<Job> {
        // Infallible: `sender` is only taken in `Drop`, after which no
        // method can run on this queue.
        self.sender.as_ref().expect("sender lives until drop")
    }
}

impl Drop for QueueInner {
    fn drop(&mut self) {
        // Close the channel so the worker exits, then join it.
        self.sender = None;
        if let Some(handle) = self.worker.get_mut().take() {
            let _ = handle.join();
        }
    }
}

/// The eager device's dispatch queue and worker thread.
#[derive(Clone)]
pub struct EagerQueue {
    inner: Arc<QueueInner>,
}

impl std::fmt::Debug for EagerQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EagerQueue(dispatched: {})", self.dispatched())
    }
}

impl Default for EagerQueue {
    fn default() -> Self {
        EagerQueue::new()
    }
}

impl EagerQueue {
    /// Starts a queue with its worker thread.
    pub fn new() -> Self {
        let (sender, receiver) = unbounded::<Job>();
        let worker = std::thread::Builder::new()
            .name("s4tf-eager-worker".into())
            .spawn(move || {
                prof::set_thread_name("eager-worker");
                for job in receiver {
                    job();
                }
            })
            .expect("failed to spawn eager worker");
        EagerQueue {
            inner: Arc::new(QueueInner {
                sender: Some(sender),
                worker: Mutex::new(Some(worker)),
                dispatched: AtomicU64::new(0),
                last_op: AtomicU64::new(0),
                completed: Arc::new(AtomicU64::new(0)),
                first_error: Arc::new(Mutex::new(None)),
            }),
        }
    }

    /// True if both handles share one worker queue.
    pub fn same_queue(&self, other: &EagerQueue) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Total kernels dispatched so far (the op-by-op overhead metric).
    pub fn dispatched(&self) -> u64 {
        self.inner.dispatched.load(Ordering::Relaxed)
    }

    /// Blocks until every dispatched kernel has executed. A dead worker
    /// (killed by a Panic-mode numerics abort) counts as drained.
    pub fn sync(&self) {
        let slot = Arc::new(Slot::default());
        let s = Arc::clone(&slot);
        if self
            .inner
            .sender()
            .send(Box::new(move || s.fill(Ok(Tensor::scalar(0.0)))))
            .is_err()
        {
            // Receiver gone: the worker has terminated, so nothing is
            // still running — there is nothing to wait for.
            return;
        }
        let _ = slot.wait();
    }

    /// [`sync`](EagerQueue::sync), then reports the first error that
    /// *originated* on this queue (kernel panic or injected fault) since
    /// the last check, clearing it. Propagated poison that was already
    /// observed through `to_host_checked` is the same error.
    pub fn sync_checked(&self) -> Result<(), RuntimeError> {
        self.sync();
        match self.inner.first_error.lock().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Kernels dispatched but not yet executed by the worker.
    pub fn queue_depth(&self) -> u64 {
        self.dispatched()
            .saturating_sub(self.inner.completed.load(Ordering::Relaxed))
    }

    /// Enqueues a job; a dead worker is reported as an error rather than
    /// a panic, so the caller can poison the result slot. `flow_id` (0 =
    /// none) draws the Chrome-trace arrow from this enqueue to the
    /// worker-side `kernel_run` span.
    fn dispatch(&self, job: Job, flow_id: u64) -> Result<(), RuntimeError> {
        let mut span = prof::span("eager.enqueue");
        if flow_id != 0 {
            span.flow_start(flow_id);
        }
        self.inner.dispatched.fetch_add(1, Ordering::Relaxed);
        let sent = self.inner.sender().send(job);
        if prof::enabled() {
            prof::gauge_set("eager.queue_depth", self.queue_depth() as f64);
        }
        eager_queue_gauge().set(self.queue_depth() as i64);
        sent.map_err(|_| {
            let e = RuntimeError::kernel(
                "eager.dispatch",
                "eager",
                "eager worker thread has terminated (a previous kernel aborted)",
            );
            record_first(&self.inner.first_error, &e);
            e
        })
    }
}

/// A tensor resident on the eager device: a future-like handle whose shape
/// is known immediately (shape inference is synchronous, §3.2) but whose
/// contents materialize asynchronously.
#[derive(Clone, Debug)]
pub struct EagerTensor {
    queue: EagerQueue,
    shape: Shape,
    slot: Arc<Slot>,
    /// Profiler op id of the kernel that produces this tensor (0 for
    /// host transfers and poisoned handles): the dependency edge recorded
    /// by downstream dispatches for critical-path analysis.
    op_id: u64,
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = if self.value.lock().is_some() {
            "ready"
        } else {
            "pending"
        };
        write!(f, "Slot({state})")
    }
}

impl EagerTensor {
    /// Transfers a host tensor to the device (immediate).
    pub fn from_host(queue: &EagerQueue, t: Tensor<f32>) -> Self {
        let slot = Arc::new(Slot::default());
        let shape = t.shape().clone();
        slot.fill(Ok(t));
        EagerTensor {
            queue: queue.clone(),
            shape,
            slot,
            op_id: 0,
        }
    }

    /// A handle already poisoned with `err` (used when lifting a poisoned
    /// value from another device onto this queue).
    pub fn poisoned(queue: &EagerQueue, dims: &[usize], err: RuntimeError) -> Self {
        let slot = Arc::new(Slot::default());
        slot.fill(Err(err));
        EagerTensor {
            queue: queue.clone(),
            shape: Shape::new(dims),
            slot,
            op_id: 0,
        }
    }

    /// The tensor's shape (known without blocking).
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dispatches one kernel asynchronously; returns immediately with a
    /// handle to the (future) result.
    ///
    /// # Panics
    /// Panics (synchronously) on shape-inference failures.
    pub fn dispatch_op(queue: &EagerQueue, op: HloOp, inputs: &[&EagerTensor]) -> EagerTensor {
        let shapes: Vec<&Shape> = inputs.iter().map(|t| &t.shape).collect();
        let shape = op.infer_shape(&shapes);
        // Cost and identity for the performance observatory: an id is
        // allocated unconditionally (one relaxed fetch-add) so dependency
        // edges stay valid if profiling is switched on mid-run.
        let cost = s4tf_xla::op_cost(&op, &shapes, &shape);
        let op_id = prof::next_op_id();
        let family = op.family();
        let enqueue_us = prof::now_us();
        // Clock for the registry's dispatch-latency histogram (enqueue →
        // kernel completion); `None` keeps the disabled path free.
        let dispatch_timer = met::enabled().then(std::time::Instant::now);
        let flow_id = if prof::enabled() {
            prof::next_flow_id()
        } else {
            0
        };
        let mut deps: Vec<u64> = inputs.iter().map(|t| t.op_id).collect();
        // The single worker lane serializes jobs: the previous dispatch is
        // a scheduling dependency even without a data edge.
        deps.push(queue.inner.last_op.swap(op_id, Ordering::Relaxed));
        let slot = Arc::new(Slot::default());
        let out = Arc::clone(&slot);
        let in_slots: Vec<Arc<Slot>> = inputs.iter().map(|t| Arc::clone(&t.slot)).collect();
        let completed = Arc::clone(&queue.inner.completed);
        let first_error = Arc::clone(&queue.inner.first_error);
        diag::event!("op.dispatch", op = op.mnemonic(), backend = "eager");
        if fault::should_inject(fault::FaultSite::Dispatch) {
            let e = RuntimeError::injected(op.mnemonic(), "eager", "dispatch")
                .with_span(prof::current_span());
            diag::event!(
                "fault.injected",
                site = "dispatch",
                op = op.mnemonic(),
                backend = "eager",
            );
            record_first(&first_error, &e);
            slot.fill(Err(e));
            return EagerTensor {
                queue: queue.clone(),
                shape,
                slot,
                op_id: 0,
            };
        }
        let job = Box::new(move || {
            let start_us = prof::now_us();
            // Result buffers allocated by this kernel are attributed to
            // the eager subsystem in `memory_by_site()`.
            let _site = met::mem_site("eager");
            let mut span = prof::span("eager.kernel_run");
            if span.is_recording() {
                span.annotate("op", op.mnemonic());
                span.annotate_f64("threads_used", s4tf_threads::num_threads() as f64);
                span.record_work(cost.flops, cost.bytes);
                if flow_id != 0 {
                    span.flow_end(flow_id);
                }
            }
            // A poisoned operand propagates without running the kernel:
            // the *first* error (FIFO order makes it the originating op's)
            // rides through the whole downstream dataflow.
            //
            // An operand slot whose only reference is this job (the handle
            // died and no later dispatch captured it) can never be read
            // again, so its value is *stolen* rather than cloned — the
            // kernel then owns the buffer uniquely and may run in place.
            let steal = s4tf_xla::plan_enabled();
            let mut operands: Vec<Tensor<f32>> = Vec::with_capacity(in_slots.len());
            let mut poison: Option<RuntimeError> = None;
            for s in &in_slots {
                let value = if steal && Arc::strong_count(s) == 1 {
                    s.value
                        .lock()
                        .take()
                        .expect("FIFO worker ordering guarantees operands are ready")
                } else {
                    s.take_ready()
                };
                match value {
                    Ok(t) => operands.push(t),
                    Err(e) => {
                        poison = Some(e);
                        break;
                    }
                }
            }
            let result: SlotValue = if let Some(e) = poison {
                Err(e)
            } else if fault::should_inject(fault::FaultSite::Kernel) {
                let e = RuntimeError::injected(op.mnemonic(), "eager", "kernel")
                    .with_span(prof::current_span());
                diag::event!(
                    "fault.injected",
                    site = "kernel",
                    op = op.mnemonic(),
                    backend = "eager",
                );
                record_first(&first_error, &e);
                Err(e)
            } else {
                // Owned dispatch: operands move into the kernel, which
                // releases (or reuses, via `eval_op_owned`) each input
                // buffer as soon as it has executed instead of pinning
                // all of them until the job completes.
                let owned = std::mem::take(&mut operands);
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    eval_op_owned(&op, owned)
                })) {
                    Ok(t) => Ok(t),
                    Err(payload) => {
                        let e =
                            RuntimeError::kernel(op.mnemonic(), "eager", panic_message(&*payload))
                                .with_span(prof::current_span());
                        diag::event!("fault.kernel_panic", op = op.mnemonic(), backend = "eager");
                        record_first(&first_error, &e);
                        Err(e)
                    }
                }
            };
            if let Some(t0) = dispatch_timer {
                met::dispatch_hist("eager", family).record(t0.elapsed().as_micros() as u64);
            }
            if prof::enabled() {
                prof::op_event(
                    op_id,
                    family,
                    "eager",
                    "kernel",
                    s4tf_tensor::path_label(),
                    enqueue_us,
                    start_us,
                    prof::now_us(),
                    deps,
                    cost.flops,
                    cost.bytes,
                );
            }
            if diag::numerics_enabled() {
                // Fill the slot *before* scanning: in Panic mode the scan
                // unwinds the worker thread, and an unfilled slot would
                // deadlock any host thread already blocked in `to_host`.
                // Observers get the (non-finite) value; the worker dies and
                // the next dispatch poisons its result. The clone is an Arc
                // bump, not a data copy.
                let probe = result.clone();
                out.fill(result);
                if prof::enabled() {
                    prof::gauge_set(
                        "mem.live_bytes.eager",
                        diag::memory_stats().live_bytes as f64,
                    );
                    let pool = s4tf_tensor::pool_stats();
                    prof::gauge_set("pool.hits", pool.hits as f64);
                    prof::gauge_set("pool.recycled_bytes", pool.recycled_bytes as f64);
                }
                completed.fetch_add(1, Ordering::Relaxed);
                if let Ok(t) = probe {
                    let _ = diag::check_f32s(
                        &op.mnemonic(),
                        "eager",
                        t.dims(),
                        t.as_slice(),
                        prof::current_span().as_deref(),
                    );
                }
            } else {
                out.fill(result);
                completed.fetch_add(1, Ordering::Relaxed);
            }
        });
        if let Err(e) = queue.dispatch(job, flow_id) {
            // The worker is gone; fill the slot here so observation never
            // deadlocks on a job that will never run.
            slot.fill(Err(e));
        }
        EagerTensor {
            queue: queue.clone(),
            shape,
            slot,
            op_id,
        }
    }

    /// Observes the contents: blocks until the pipeline has produced them.
    ///
    /// # Panics
    /// Panics with the original attributed error if the value is
    /// poisoned; [`to_host_checked`](EagerTensor::to_host_checked) is the
    /// non-panicking observation point.
    pub fn to_host(&self) -> Tensor<f32> {
        self.to_host_checked()
            .unwrap_or_else(|e| panic!("eager tensor observation failed: {e}"))
    }

    /// Observes the contents, surfacing a poisoned value as the error
    /// that originally caused it (with op/backend attribution).
    pub fn to_host_checked(&self) -> Result<Tensor<f32>, RuntimeError> {
        let _span = prof::span("eager.block_on_observe");
        self.slot.wait()
    }

    /// The queue this tensor lives on.
    pub fn queue(&self) -> &EagerQueue {
        &self.queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4tf_xla::{ElemBinary, ElemUnary};

    #[test]
    fn dispatch_and_observe() {
        let q = EagerQueue::new();
        let x = EagerTensor::from_host(&q, Tensor::from_vec(vec![-1.0, 2.0], &[2]));
        let y = EagerTensor::dispatch_op(&q, HloOp::Unary(ElemUnary::Relu), &[&x]);
        assert_eq!(y.shape().dims(), &[2]);
        assert_eq!(y.to_host().as_slice(), &[0.0, 2.0]);
        assert_eq!(q.dispatched(), 1);
    }

    #[test]
    fn pipeline_runs_ahead() {
        let q = EagerQueue::new();
        let mut t = EagerTensor::from_host(&q, Tensor::ones(&[64]));
        // Dispatch a long chain without observing anything: returns fast.
        for _ in 0..100 {
            t = EagerTensor::dispatch_op(&q, HloOp::Binary(ElemBinary::Add), &[&t, &t]);
        }
        assert_eq!(q.dispatched(), 100);
        // Observation drains the pipeline.
        let v = t.to_host();
        assert_eq!(v.as_slice()[0], 2.0f32.powi(100));
    }

    #[test]
    fn sync_drains() {
        let q = EagerQueue::new();
        let x = EagerTensor::from_host(&q, Tensor::ones(&[8]));
        let y = EagerTensor::dispatch_op(&q, HloOp::Unary(ElemUnary::Exp), &[&x]);
        q.sync();
        // After sync the slot is filled; to_host returns without waiting.
        assert!((y.to_host().as_slice()[0] - std::f32::consts::E).abs() < 1e-6);
    }

    #[test]
    fn shape_errors_are_synchronous() {
        let q = EagerQueue::new();
        let a = EagerTensor::from_host(&q, Tensor::ones(&[2, 3]));
        let b = EagerTensor::from_host(&q, Tensor::ones(&[4]));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            EagerTensor::dispatch_op(&q, HloOp::Binary(ElemBinary::Add), &[&a, &b])
        }));
        assert!(r.is_err(), "shape mismatch must fail at dispatch");
    }

    #[test]
    fn queues_are_independent() {
        let q1 = EagerQueue::new();
        let q2 = EagerQueue::new();
        let x = EagerTensor::from_host(&q1, Tensor::ones(&[4]));
        let _ = EagerTensor::dispatch_op(&q1, HloOp::Unary(ElemUnary::Neg), &[&x]);
        assert_eq!(q1.dispatched(), 1);
        assert_eq!(q2.dispatched(), 0);
    }
}
