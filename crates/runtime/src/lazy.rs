//! The lazy device: trace-record / JIT-compile / cache (paper §3.3–3.4).
//!
//! Operations on a [`LazyTensor`] do not execute; they append nodes to the
//! device's trace under construction. The trace is *cut* when the program
//! observes a tensor's contents (`to_host`) or calls the barrier
//! ([`LazyContext::barrier`] — the paper's `LazyTensorBarrier()`). At a
//! cut, every pending tensor becomes an output of the trace, the trace is
//! hashed into the program cache (compiling at most once per unique
//! trace), executed, and the pending handles become materialized values —
//! which the *next* trace consumes as parameters.
//!
//! The host therefore re-traces every step of a training loop (the §3.4
//! retracing overhead, measured by experiment E8), but pays JIT compilation
//! only on cache misses.

use crate::diag;
use crate::fault;
use crate::prof;
use parking_lot::Mutex;
use s4tf_tensor::{RuntimeError, Shape, Tensor};
use s4tf_xla::graph::HloGraph;
use s4tf_xla::{HloOp, NodeId, ProgramCache};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// The state of one lazy handle.
#[derive(Debug)]
enum LazyState {
    /// Materialized on the host.
    Value {
        tensor: Tensor<f32>,
        /// Parameter node already minted for the current trace, if any.
        lifted: Option<(u64, NodeId)>,
        /// Embed as a trace *constant* instead of a runtime parameter.
        /// Used for program-stable scalars (literals, hyper-parameters):
        /// constants participate in constant folding and fusion immediates,
        /// while the fingerprint stays stable across steps because the
        /// values do not change. Data and weights stay parameters so new
        /// values hit the program cache.
        as_constant: bool,
    },
    /// Pending node in the current trace.
    Pending { generation: u64, node: NodeId },
    /// Poisoned: the batch this tensor belonged to failed (a kernel
    /// panic or injected fault during execution), or a poisoned input
    /// propagated into it at record time. The error is the *first*
    /// failure, with op/backend attribution.
    Failed(RuntimeError),
}

struct TraceState {
    graph: HloGraph,
    params: Vec<Tensor<f32>>,
    generation: u64,
    /// Live pending handles; all become outputs at the next cut.
    pending: Vec<Weak<Mutex<LazyState>>>,
    /// Time spent recording trace nodes (the §3.4 tracing overhead).
    trace_time: Duration,
    /// Value of `trace_time` when this trace started: `trace_time` is
    /// cumulative across traces, so the difference is the recording time
    /// of the *current* trace (the per-step trace phase).
    trace_time_base: Duration,
    cuts: u64,
}

impl TraceState {
    fn fresh(generation: u64) -> Self {
        TraceState {
            graph: HloGraph::new(),
            params: Vec::new(),
            generation,
            pending: Vec::new(),
            trace_time: Duration::ZERO,
            trace_time_base: Duration::ZERO,
            cuts: 0,
        }
    }

    /// Starts a fresh trace in place, carrying the cumulative counters
    /// forward and re-basing the per-trace clock.
    fn restart(&mut self) {
        let generation = self.generation + 1;
        let (cuts, trace_time) = (self.cuts, self.trace_time);
        *self = TraceState::fresh(generation);
        self.cuts = cuts;
        self.trace_time = trace_time;
        self.trace_time_base = trace_time;
    }
}

/// A lazy device: one trace under construction plus the program cache.
pub struct LazyContext {
    trace: Mutex<TraceState>,
    cache: ProgramCache,
    /// First error that originated on this device since the last
    /// [`take_error`](LazyContext::take_error) (execution failures and
    /// injected faults; not propagation).
    first_error: Mutex<Option<RuntimeError>>,
    /// Profiler op id of the last event of the previous barrier (its
    /// final executed kernel): the scheduling edge that chains one step's
    /// trace after the previous step's execution on the critical path.
    last_step_op: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for LazyContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = self.trace.lock();
        write!(
            f,
            "LazyContext(trace: {} nodes, gen {}, cache: {:?})",
            t.graph.len(),
            t.generation,
            self.cache
        )
    }
}

impl Default for LazyContext {
    fn default() -> Self {
        LazyContext {
            trace: Mutex::new(TraceState::fresh(0)),
            cache: ProgramCache::new(),
            first_error: Mutex::new(None),
            last_step_op: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl LazyContext {
    /// A fresh lazy device.
    pub fn new() -> Self {
        LazyContext::default()
    }

    /// The program cache (hit/miss statistics, compile time).
    pub fn cache(&self) -> &ProgramCache {
        &self.cache
    }

    /// The first error that originated on this device since the last
    /// call, clearing it.
    pub fn take_error(&self) -> Option<RuntimeError> {
        self.first_error.lock().take()
    }

    fn record_error(&self, err: &RuntimeError) {
        let mut guard = self.first_error.lock();
        if guard.is_none() {
            *guard = Some(err.clone());
        }
    }

    /// Number of nodes in the trace currently under construction.
    pub fn trace_len(&self) -> usize {
        self.trace.lock().graph.len()
    }

    /// Number of trace cuts so far (observations + barriers).
    pub fn cuts(&self) -> u64 {
        self.trace.lock().cuts
    }

    /// Cumulative time spent recording trace nodes.
    pub fn trace_time(&self) -> Duration {
        self.trace.lock().trace_time
    }

    /// The current trace rendered as DOT (paper Figure 4).
    pub fn trace_dot(&self, title: &str) -> String {
        self.trace.lock().graph.to_dot(title)
    }

    /// Op histogram of the current trace.
    pub fn trace_histogram(&self) -> Vec<(String, usize)> {
        self.trace.lock().graph.op_histogram()
    }

    /// Snapshots the current trace as a compilable graph, with every live
    /// pending tensor marked as an output (exactly what [`barrier`] would
    /// compile) — but *without* compiling or executing anything.
    ///
    /// Used by the accelerator-simulation experiments, which feed real
    /// traces of datacenter-scale models through the real compiler while
    /// simulating only the kernel clock. The trace keeps accumulating;
    /// call [`barrier`] (or drop the tensors) to discard it.
    ///
    /// [`barrier`]: LazyContext::barrier
    pub fn snapshot_trace(&self) -> s4tf_xla::graph::HloGraph {
        let trace = self.trace.lock();
        let mut graph = trace.graph.clone();
        for weak in &trace.pending {
            if let Some(handle) = weak.upgrade() {
                if let LazyState::Pending { node, .. } = *handle.lock() {
                    graph.mark_output(node);
                }
            }
        }
        graph
    }

    /// Discards the trace under construction without executing it. Pending
    /// tensors become unusable (their nodes are gone); intended for
    /// simulation workflows that only needed the trace structure.
    pub fn abandon_trace(&self) {
        self.trace.lock().restart();
    }

    /// Cuts the trace (the paper's `LazyTensorBarrier()`): compiles (via
    /// the cache) and executes the pending graph, materializing every
    /// pending tensor, and starts a fresh trace.
    pub fn barrier(self: &Arc<Self>) {
        let mut span = prof::span("lazy.barrier");
        let mut trace = self.trace.lock();
        trace.cuts += 1;

        // Collect live pending handles and mark their nodes as outputs.
        let pending: Vec<Arc<Mutex<LazyState>>> =
            trace.pending.iter().filter_map(Weak::upgrade).collect();
        let mut outputs: Vec<(Arc<Mutex<LazyState>>, NodeId)> = Vec::new();
        for handle in pending {
            let state = handle.lock();
            if let LazyState::Pending { generation, node } = *state {
                debug_assert_eq!(generation, trace.generation);
                outputs.push((Arc::clone(&handle), node));
            }
        }
        if outputs.is_empty() {
            // `restart` (not `fresh`) so the cumulative cut and trace-time
            // counters survive an empty barrier.
            trace.restart();
            return;
        }
        let mut graph = std::mem::take(&mut trace.graph);
        for &(_, node) in &outputs {
            graph.mark_output(node);
        }
        if span.is_recording() {
            span.annotate_f64("nodes", graph.len() as f64);
            span.annotate_f64("outputs", outputs.len() as f64);
        }
        if diag::dump_enabled() {
            // The raw trace as cut, before any compiler pass touches it
            // (the pass pipeline writes its own before/after dumps).
            let _ = diag::dump("lazy", "trace", "dot", &graph.to_dot("lazy trace"));
        }

        // Performance-observatory phase events: the step's trace phase
        // (re-based per trace), then the compile phase, then — inside
        // `try_run_owned` — one kernel event per executed node, chained
        // through the thread-local op root. Each phase depends on its
        // predecessor, and the trace depends on the previous barrier's
        // last kernel, so critical-path analysis sees the full
        // trace → compile → execute chain of every step.
        use std::sync::atomic::Ordering;
        let profiling = prof::enabled();
        let mut trace_id = 0;
        if profiling {
            let now = prof::now_us();
            let trace_us = trace
                .trace_time
                .saturating_sub(trace.trace_time_base)
                .as_micros() as u64;
            trace_id = prof::next_op_id();
            prof::op_event(
                trace_id,
                "trace",
                "lazy",
                "trace",
                "",
                now.saturating_sub(trace_us),
                now.saturating_sub(trace_us),
                now,
                vec![self.last_step_op.load(Ordering::Relaxed)],
                0,
                0,
            );
        }
        let compile_start = prof::now_us();
        let exe = self.cache.get_or_compile(&graph);
        if profiling {
            let compile_id = prof::next_op_id();
            prof::op_event(
                compile_id,
                "compile",
                "lazy",
                "compile",
                "",
                compile_start,
                compile_start,
                prof::now_us(),
                vec![trace_id],
                0,
                0,
            );
            prof::set_op_root(compile_id);
        }
        // Parameters pass by value: the trace's copies are *donated* to
        // the executor. A parameter whose handle was rebound during
        // tracing (the optimizer-update pattern) is uniquely owned here,
        // so the memory plan updates it in place — `param_new` aliases
        // `param_old`'s buffer. Parameters with live handles stay shared
        // and are never overwritten.
        let params = std::mem::take(&mut trace.params);
        // Kernel outputs materialized by this barrier are credited to the
        // lazy executor in `memory_by_site()`.
        let mem_site = crate::met::mem_site("lazy");
        let run_result = exe.try_run_owned(params, "lazy");
        drop(mem_site);
        if profiling {
            // The executor left its last kernel's id in the op root; the
            // next step's trace chains after it.
            self.last_step_op.store(prof::op_root(), Ordering::Relaxed);
            prof::set_op_root(0);
        }
        match run_result {
            Ok(results) => {
                for ((handle, _), tensor) in outputs.into_iter().zip(results) {
                    *handle.lock() = LazyState::Value {
                        tensor,
                        lifted: None,
                        as_constant: false,
                    };
                }
            }
            Err(e) => {
                // The whole batch failed: every pending output is
                // poisoned with the first (attributed) error, and the
                // device records it for `sync_checked`.
                diag::event!(
                    "fault.batch_failed",
                    backend = "lazy",
                    op = e.op,
                    outputs = outputs.len(),
                );
                self.record_error(&e);
                for (handle, _) in outputs {
                    *handle.lock() = LazyState::Failed(e.clone());
                }
            }
        }
        trace.restart();
    }
}

/// A tensor on the lazy device. Cloning shares the handle — which is safe
/// because the logical value never changes (pending → materialized is the
/// same value); mutation in the `DTensor` layer rebinds, preserving value
/// semantics.
#[derive(Clone)]
pub struct LazyTensor {
    ctx: Arc<LazyContext>,
    shape: Shape,
    state: Arc<Mutex<LazyState>>,
}

impl std::fmt::Debug for LazyTensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match &*self.state.lock() {
            LazyState::Value { .. } => "materialized",
            LazyState::Pending { .. } => "pending",
            LazyState::Failed(_) => "failed",
        };
        write!(f, "LazyTensor(shape: {}, {state})", self.shape)
    }
}

impl LazyTensor {
    /// Transfers a host tensor to the device (no trace node until used).
    pub fn from_host(ctx: &Arc<LazyContext>, t: Tensor<f32>) -> Self {
        LazyTensor {
            ctx: Arc::clone(ctx),
            shape: t.shape().clone(),
            state: Arc::new(Mutex::new(LazyState::Value {
                tensor: t,
                lifted: None,
                as_constant: false,
            })),
        }
    }

    /// Transfers a host tensor to the device, to be embedded in traces as
    /// a *constant* (see `LazyState::Value::as_constant`). Use only for
    /// program-stable values; varying values would each compile their own
    /// program.
    pub fn constant_from_host(ctx: &Arc<LazyContext>, t: Tensor<f32>) -> Self {
        LazyTensor {
            ctx: Arc::clone(ctx),
            shape: t.shape().clone(),
            state: Arc::new(Mutex::new(LazyState::Value {
                tensor: t,
                lifted: None,
                as_constant: true,
            })),
        }
    }

    /// A handle already poisoned with `err` (used when lifting a poisoned
    /// value from another device onto this context).
    pub fn poisoned(ctx: &Arc<LazyContext>, dims: &[usize], err: RuntimeError) -> Self {
        LazyTensor {
            ctx: Arc::clone(ctx),
            shape: Shape::new(dims),
            state: Arc::new(Mutex::new(LazyState::Failed(err))),
        }
    }

    /// The tensor's shape (always known: shape inference runs at record
    /// time).
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The device context.
    pub fn context(&self) -> &Arc<LazyContext> {
        &self.ctx
    }

    /// The node for this tensor in the *current* trace, minting a
    /// parameter node for materialized values.
    fn node_in_current_trace(&self, trace: &mut TraceState) -> NodeId {
        let mut state = self.state.lock();
        match &mut *state {
            LazyState::Pending { generation, node } => {
                assert_eq!(
                    *generation, trace.generation,
                    "lazy tensor used after its trace was cut without being \
                     materialized (it was not live at the barrier)"
                );
                *node
            }
            LazyState::Value {
                tensor,
                lifted,
                as_constant,
            } => {
                if let Some((generation, node)) = lifted {
                    if *generation == trace.generation {
                        return *node;
                    }
                }
                // Buffers lifted into the trace (embedded constants and
                // parameter copies) are credited to the trace subsystem.
                let _site = crate::met::mem_site("trace");
                let node = if *as_constant {
                    trace.graph.constant(tensor.clone())
                } else {
                    let index = trace.params.len();
                    trace.params.push(tensor.clone());
                    trace.graph.parameter(index, tensor.dims())
                };
                *lifted = Some((trace.generation, node));
                node
            }
            LazyState::Failed(_) => {
                unreachable!("poisoned inputs are filtered out in record_op")
            }
        }
    }

    /// Records one operation into the trace; returns a pending handle.
    ///
    /// # Panics
    /// Panics on shape-inference failures (at record time, like the
    /// paper's lazy tracing) and when inputs live on different lazy
    /// devices.
    pub fn record_op(ctx: &Arc<LazyContext>, op: HloOp, inputs: &[&LazyTensor]) -> LazyTensor {
        let start = std::time::Instant::now();
        for t in inputs {
            assert!(
                Arc::ptr_eq(&t.ctx, ctx),
                "lazy tensors must live on the same device"
            );
        }
        let poison = inputs.iter().find_map(|t| match &*t.state.lock() {
            LazyState::Failed(e) => Some(e.clone()),
            _ => None,
        });
        let injected = poison.is_none() && fault::should_inject(fault::FaultSite::Dispatch);
        if poison.is_some() || injected {
            // Shape inference stays synchronous (record time) even on
            // the poisoned paths, so shape bugs never hide behind a
            // fault.
            let shapes: Vec<&Shape> = inputs.iter().map(|t| &t.shape).collect();
            let inferred = op.infer_shape(&shapes);
            let e = poison.unwrap_or_else(|| {
                let e = RuntimeError::injected(op.mnemonic(), "lazy", "dispatch")
                    .with_span(prof::current_span());
                diag::event!(
                    "fault.injected",
                    site = "dispatch",
                    op = op.mnemonic(),
                    backend = "lazy",
                );
                ctx.record_error(&e);
                e
            });
            return LazyTensor {
                ctx: Arc::clone(ctx),
                shape: inferred,
                state: Arc::new(Mutex::new(LazyState::Failed(e))),
            };
        }
        let mut trace = ctx.trace.lock();
        let nodes: Vec<NodeId> = inputs
            .iter()
            .map(|t| t.node_in_current_trace(&mut trace))
            .collect();
        let node = trace.graph.add(op, &nodes);
        let shape = trace.graph.node(node).shape.clone();
        let state = Arc::new(Mutex::new(LazyState::Pending {
            generation: trace.generation,
            node,
        }));
        trace.pending.push(Arc::downgrade(&state));
        trace.trace_time += start.elapsed();
        prof::counter_add("lazy.trace_append", 1);
        LazyTensor {
            ctx: Arc::clone(ctx),
            shape,
            state,
        }
    }

    /// Observes the contents: cuts the trace if this tensor is pending.
    ///
    /// # Panics
    /// Panics with the original attributed error if the tensor is
    /// poisoned; [`to_host_checked`](LazyTensor::to_host_checked) is the
    /// non-panicking observation point.
    pub fn to_host(&self) -> Tensor<f32> {
        self.to_host_checked()
            .unwrap_or_else(|e| panic!("lazy tensor observation failed: {e}"))
    }

    /// Observes the contents, surfacing a poisoned value as the error
    /// that originally caused it (with op/backend attribution).
    pub fn to_host_checked(&self) -> Result<Tensor<f32>, RuntimeError> {
        loop {
            {
                let state = self.state.lock();
                match &*state {
                    LazyState::Value { tensor, .. } => return Ok(tensor.clone()),
                    LazyState::Failed(e) => return Err(e.clone()),
                    LazyState::Pending { .. } => {}
                }
            }
            self.ctx.barrier();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4tf_xla::{ElemBinary, ElemUnary, HloOp};

    fn ctx() -> Arc<LazyContext> {
        Arc::new(LazyContext::new())
    }

    #[test]
    fn nothing_executes_until_observation() {
        let c = ctx();
        let x = LazyTensor::from_host(&c, Tensor::from_vec(vec![1.0, -1.0], &[2]));
        let y = LazyTensor::record_op(&c, HloOp::Unary(ElemUnary::Relu), &[&x]);
        let z = LazyTensor::record_op(&c, HloOp::Binary(ElemBinary::Add), &[&y, &x]);
        assert_eq!(c.cache().stats().misses, 0, "no compilation yet");
        assert!(c.trace_len() >= 3);
        assert_eq!(z.to_host().as_slice(), &[2.0, -1.0]);
        assert_eq!(c.cache().stats().misses, 1);
        assert_eq!(c.cuts(), 1);
    }

    #[test]
    fn observation_materializes_all_pending() {
        let c = ctx();
        let x = LazyTensor::from_host(&c, Tensor::ones(&[4]));
        let a = LazyTensor::record_op(&c, HloOp::Unary(ElemUnary::Exp), &[&x]);
        let b = LazyTensor::record_op(&c, HloOp::Unary(ElemUnary::Neg), &[&x]);
        let _ = a.to_host();
        // b was live at the cut, so it materialized too: no new compile.
        let before = c.cache().stats();
        assert_eq!(b.to_host().as_slice(), &[-1.0; 4]);
        assert_eq!(c.cache().stats(), before, "b was already materialized");
    }

    #[test]
    fn retrace_hits_the_cache() {
        let c = ctx();
        let run = |c: &Arc<LazyContext>, data: Vec<f32>| {
            let x = LazyTensor::from_host(c, Tensor::from_vec(data, &[2]));
            let y = LazyTensor::record_op(c, HloOp::Unary(ElemUnary::Square), &[&x]);
            y.to_host()
        };
        assert_eq!(run(&c, vec![2.0, 3.0]).as_slice(), &[4.0, 9.0]);
        assert_eq!(run(&c, vec![4.0, 5.0]).as_slice(), &[16.0, 25.0]);
        assert_eq!(run(&c, vec![6.0, 7.0]).as_slice(), &[36.0, 49.0]);
        let stats = c.cache().stats();
        assert_eq!(stats.misses, 1, "identical traces compile once");
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn shape_change_recompiles() {
        let c = ctx();
        for dims in [&[2usize][..], &[3], &[2]] {
            let x = LazyTensor::from_host(&c, Tensor::ones(dims));
            let y = LazyTensor::record_op(&c, HloOp::Unary(ElemUnary::Neg), &[&x]);
            y.to_host();
        }
        let stats = c.cache().stats();
        // §3.4: a dimension change triggers recompilation; the third run
        // reuses the first program.
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn barrier_cuts_an_unobserved_trace() {
        let c = ctx();
        let x = LazyTensor::from_host(&c, Tensor::ones(&[2]));
        let y = LazyTensor::record_op(&c, HloOp::Unary(ElemUnary::Neg), &[&x]);
        assert!(c.trace_len() > 0);
        c.barrier();
        assert_eq!(c.trace_len(), 0, "barrier starts a fresh trace");
        // y is already materialized; no further compile on observation.
        let misses = c.cache().stats().misses;
        assert_eq!(y.to_host().as_slice(), &[-1.0, -1.0]);
        assert_eq!(c.cache().stats().misses, misses);
    }

    #[test]
    fn empty_barrier_is_cheap() {
        let c = ctx();
        c.barrier();
        c.barrier();
        assert_eq!(c.cache().stats().misses, 0);
    }

    #[test]
    fn materialized_values_feed_the_next_trace_as_parameters() {
        let c = ctx();
        let x = LazyTensor::from_host(&c, Tensor::from_vec(vec![3.0], &[1]));
        let y = LazyTensor::record_op(&c, HloOp::Unary(ElemUnary::Square), &[&x]);
        assert_eq!(y.to_host().as_slice(), &[9.0]);
        // Second trace consumes y (a materialized value) as a parameter —
        // and is structurally identical to the first, so it hits the cache.
        let z = LazyTensor::record_op(&c, HloOp::Unary(ElemUnary::Square), &[&y]);
        assert_eq!(z.to_host().as_slice(), &[81.0]);
        let stats = c.cache().stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn trace_instrumentation() {
        let c = ctx();
        let x = LazyTensor::from_host(&c, Tensor::ones(&[2]));
        let y = LazyTensor::record_op(&c, HloOp::Unary(ElemUnary::Exp), &[&x]);
        let _ = LazyTensor::record_op(&c, HloOp::Binary(ElemBinary::Mul), &[&y, &y]);
        let hist = c.trace_histogram();
        assert!(hist.iter().any(|(n, c)| n == "exp" && *c == 1));
        let dot = c.trace_dot("t");
        assert!(dot.contains("digraph"));
        assert!(c.trace_time() > Duration::ZERO);
    }

    #[test]
    fn dropped_pending_tensors_are_not_outputs() {
        let c = ctx();
        let x = LazyTensor::from_host(&c, Tensor::ones(&[2]));
        {
            let _dead = LazyTensor::record_op(&c, HloOp::Unary(ElemUnary::Exp), &[&x]);
            // dropped before the cut
        }
        let y = LazyTensor::record_op(&c, HloOp::Unary(ElemUnary::Neg), &[&x]);
        assert_eq!(y.to_host().as_slice(), &[-1.0, -1.0]);
    }
}
