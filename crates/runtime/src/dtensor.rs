//! [`DTensor`]: one tensor type, three execution strategies.
//!
//! The paper's central usability claim (§3.3) is that the lazy backend
//! preserves "the illusion of eager execution": as long as the program
//! does not observe a tensor's contents, it cannot tell when an operation
//! actually executes. `DTensor` makes that concrete — the same value-
//! semantic, eagerly-shape-checked API dispatches to direct kernels, an
//! asynchronous pipeline, or a recorded trace, depending on the device the
//! data lives on.
//!
//! `DTensor` also implements the `s4tf-core` differentiable-programming
//! protocol ([`Differentiable`], [`AdditiveArithmetic`], …), so models in
//! `s4tf-nn` train unchanged on every backend.

use crate::device::Device;
use crate::eager::EagerTensor;
use crate::fault;
use crate::lazy::LazyTensor;
use s4tf_core::{AdditiveArithmetic, Differentiable, LossValue, VectorSpace};
use s4tf_tensor::{panic_message, Padding, RuntimeError, Shape, Tensor};
use s4tf_xla::{ElemBinary, ElemUnary, HloOp, ReduceKind};
use std::sync::Arc;

/// A poisoned value: the shape the failed op would have produced plus
/// the attributed error that killed it.
#[derive(Debug)]
pub struct Poison {
    dims: Vec<usize>,
    error: RuntimeError,
}

/// A tensor bound to an execution device.
#[derive(Clone, Debug)]
pub enum DTensor {
    /// Materialized on the host, operated on synchronously.
    Cpu(Tensor<f32>),
    /// Pipelined on an eager device.
    Eager(EagerTensor),
    /// Recorded on a lazy device.
    Lazy(LazyTensor),
    /// Poisoned on the naive device: a kernel fault was captured and
    /// attached to the value (paper §4); it propagates through downstream
    /// ops and surfaces at an observation point. (The asynchronous
    /// devices poison inside their own handle states instead.)
    Poisoned(Arc<Poison>),
}

impl DTensor {
    // ----------------------------------------------------------- transfer

    /// Places a host tensor on `device`.
    pub fn from_tensor(t: Tensor<f32>, device: &Device) -> DTensor {
        match device {
            Device::Naive => DTensor::Cpu(t),
            Device::Eager(q) => DTensor::Eager(EagerTensor::from_host(q, t)),
            Device::Lazy(ctx) => DTensor::Lazy(LazyTensor::from_host(ctx, t)),
        }
    }

    /// Observes the contents, forcing execution on every backend.
    ///
    /// # Panics
    /// Panics with the original attributed error if the value is
    /// poisoned; [`to_tensor_checked`](DTensor::to_tensor_checked) is the
    /// non-panicking observation point.
    pub fn to_tensor(&self) -> Tensor<f32> {
        self.to_tensor_checked()
            .unwrap_or_else(|e| panic!("tensor observation failed: {e}"))
    }

    /// Observes the contents, surfacing a poisoned value as the error
    /// that originally caused it (with op/backend attribution) — the
    /// paper-§4 observation point where deferred failures become
    /// `Result`s.
    pub fn to_tensor_checked(&self) -> Result<Tensor<f32>, RuntimeError> {
        match self {
            DTensor::Cpu(t) => Ok(t.clone()),
            DTensor::Eager(t) => t.to_host_checked(),
            DTensor::Lazy(t) => t.to_host_checked(),
            DTensor::Poisoned(p) => Err(p.error.clone()),
        }
    }

    /// The device this tensor lives on.
    pub fn device(&self) -> Device {
        match self {
            DTensor::Cpu(_) | DTensor::Poisoned(_) => Device::Naive,
            DTensor::Eager(t) => Device::Eager(t.queue().clone()),
            DTensor::Lazy(t) => Device::Lazy(t.context().clone()),
        }
    }

    /// The tensor's dims (known without forcing execution).
    pub fn dims(&self) -> Vec<usize> {
        match self {
            DTensor::Cpu(t) => t.dims().to_vec(),
            DTensor::Eager(t) => t.shape().dims().to_vec(),
            DTensor::Lazy(t) => t.shape().dims().to_vec(),
            DTensor::Poisoned(p) => p.dims.clone(),
        }
    }

    /// Total element count.
    pub fn num_elements(&self) -> usize {
        self.dims().iter().product()
    }

    /// A scalar constant on this tensor's device. On the lazy device the
    /// scalar embeds into the trace as a *constant* (stable fingerprint,
    /// eligible for constant folding and fusion immediates) rather than a
    /// runtime parameter.
    pub fn scalar_like(&self, v: f32) -> DTensor {
        match self {
            DTensor::Lazy(l) => DTensor::Lazy(LazyTensor::constant_from_host(
                l.context(),
                Tensor::scalar(v),
            )),
            _ => DTensor::from_tensor(Tensor::scalar(v), &self.device()),
        }
    }

    /// A zeros tensor with this tensor's shape and device.
    pub fn zeros_like(&self) -> DTensor {
        DTensor::from_tensor(Tensor::zeros(&self.dims()), &self.device())
    }

    /// A ones tensor with this tensor's shape and device.
    pub fn ones_like(&self) -> DTensor {
        DTensor::from_tensor(Tensor::ones(&self.dims()), &self.device())
    }

    // ----------------------------------------------------------- dispatch

    /// Applies one operation, dispatching by device. Mixed-device inputs
    /// are allowed only when the extras are CPU-resident (they are
    /// transferred) — this is what lets the device-agnostic scalar
    /// [`AdditiveArithmetic::zero`] combine with any tensor.
    ///
    /// # Panics
    /// Panics on shape mismatches or genuinely mixed (eager+lazy) devices.
    pub fn apply(op: HloOp, inputs: &[&DTensor]) -> DTensor {
        // Pick the governing device: the first non-CPU one.
        let device = inputs
            .iter()
            .map(|t| t.device())
            .find(|d| !matches!(d, Device::Naive))
            .unwrap_or(Device::Naive);
        match &device {
            Device::Naive => Self::apply_naive(op, inputs),
            Device::Eager(q) => {
                let lifted: Vec<EagerTensor> = inputs
                    .iter()
                    .map(|t| match t {
                        DTensor::Eager(e) => {
                            assert!(e.queue().same_queue(q), "eager tensors must share a device");
                            e.clone()
                        }
                        DTensor::Cpu(c) => EagerTensor::from_host(q, c.clone()),
                        DTensor::Poisoned(p) => EagerTensor::poisoned(q, &p.dims, p.error.clone()),
                        DTensor::Lazy(_) => panic!("cannot mix lazy and eager tensors"),
                    })
                    .collect();
                let refs: Vec<&EagerTensor> = lifted.iter().collect();
                DTensor::Eager(EagerTensor::dispatch_op(q, op, &refs))
            }
            Device::Lazy(ctx) => {
                let lifted: Vec<LazyTensor> = inputs
                    .iter()
                    .map(|t| match t {
                        DTensor::Lazy(l) => l.clone(),
                        DTensor::Cpu(c) => LazyTensor::from_host(ctx, c.clone()),
                        DTensor::Poisoned(p) => LazyTensor::poisoned(ctx, &p.dims, p.error.clone()),
                        DTensor::Eager(_) => panic!("cannot mix eager and lazy tensors"),
                    })
                    .collect();
                let refs: Vec<&LazyTensor> = lifted.iter().collect();
                DTensor::Lazy(LazyTensor::record_op(ctx, op, &refs))
            }
        }
    }

    /// The naive (synchronous) dispatch arm, with poison propagation,
    /// injection, and kernel-panic capture.
    fn apply_naive(op: HloOp, inputs: &[&DTensor]) -> DTensor {
        // Output dims the failed op *would* have produced (poison keeps
        // the shape so downstream shape inference stays accurate).
        let infer_dims = || -> Vec<usize> {
            let shapes: Vec<Shape> = inputs.iter().map(|t| Shape::new(&t.dims())).collect();
            let refs: Vec<&Shape> = shapes.iter().collect();
            op.infer_shape(&refs).dims().to_vec()
        };
        let poison = inputs.iter().find_map(|t| match t {
            DTensor::Poisoned(p) => Some(p.error.clone()),
            _ => None,
        });
        if let Some(error) = poison {
            // Propagate the *first* error; the shape still checks out.
            let dims = infer_dims();
            return DTensor::Poisoned(Arc::new(Poison { dims, error }));
        }
        for (site, name) in [
            (fault::FaultSite::Dispatch, "dispatch"),
            (fault::FaultSite::Kernel, "kernel"),
        ] {
            if fault::should_inject(site) {
                let dims = infer_dims();
                let error = RuntimeError::injected(op.mnemonic(), "naive", name)
                    .with_span(crate::prof::current_span());
                crate::diag::event!(
                    "fault.injected",
                    site = name,
                    op = op.mnemonic(),
                    backend = "naive",
                );
                return DTensor::Poisoned(Arc::new(Poison { dims, error }));
            }
        }
        // Operands move into the kernel: `eval_op_owned` releases each
        // buffer as soon as it is consumed, and runs elementwise kernels
        // in place when a buffer turns out to be uniquely owned.
        let tensors: Vec<Tensor<f32>> = inputs.iter().map(|t| t.to_tensor()).collect();
        let profiling = crate::prof::enabled();
        let start_us = if profiling { crate::prof::now_us() } else { 0 };
        let dispatch_timer = crate::met::enabled().then(std::time::Instant::now);
        let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s4tf_xla::eval_op_owned(&op, tensors)
        })) {
            Ok(t) => t,
            Err(payload) => {
                // Distinguish kernel faults from caller bugs: if shape
                // inference rejects these inputs too, the panic was a
                // shape error — those stay synchronous (paper §4).
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(infer_dims)) {
                    Err(_) => std::panic::resume_unwind(payload),
                    Ok(dims) => {
                        let error =
                            RuntimeError::kernel(op.mnemonic(), "naive", panic_message(&*payload))
                                .with_span(crate::prof::current_span());
                        crate::diag::event!(
                            "fault.kernel_panic",
                            op = op.mnemonic(),
                            backend = "naive",
                        );
                        return DTensor::Poisoned(Arc::new(Poison { dims, error }));
                    }
                }
            }
        };
        if let Some(t0) = dispatch_timer {
            crate::met::dispatch_hist("naive", op.family()).record(t0.elapsed().as_micros() as u64);
        }
        if profiling {
            // Synchronous execution: enqueue == start, and each op chains
            // serially after the previous naive op on this thread.
            thread_local! {
                static LAST_NAIVE_OP: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
            }
            let shapes: Vec<Shape> = inputs.iter().map(|t| Shape::new(&t.dims())).collect();
            let shape_refs: Vec<&Shape> = shapes.iter().collect();
            let cost = s4tf_xla::op_cost(&op, &shape_refs, result.shape());
            let id = crate::prof::next_op_id();
            let prev = LAST_NAIVE_OP.with(|last| last.replace(id));
            crate::prof::op_event(
                id,
                op.family(),
                "naive",
                "kernel",
                s4tf_tensor::path_label(),
                start_us,
                start_us,
                crate::prof::now_us(),
                vec![prev],
                cost.flops,
                cost.bytes,
            );
        }
        if crate::diag::numerics_enabled() {
            let _ = crate::diag::check_f32s(
                &op.mnemonic(),
                "naive",
                result.dims(),
                result.as_slice(),
                crate::prof::current_span().as_deref(),
            );
        }
        DTensor::Cpu(result)
    }

    fn unary(&self, op: ElemUnary) -> DTensor {
        DTensor::apply(HloOp::Unary(op), &[self])
    }

    fn binary(&self, op: ElemBinary, rhs: &DTensor) -> DTensor {
        DTensor::apply(HloOp::Binary(op), &[self, rhs])
    }

    // -------------------------------------------------------- elementwise

    /// Element-wise sum with broadcasting.
    pub fn add(&self, rhs: &DTensor) -> DTensor {
        self.binary(ElemBinary::Add, rhs)
    }

    /// Element-wise difference with broadcasting.
    pub fn sub(&self, rhs: &DTensor) -> DTensor {
        self.binary(ElemBinary::Sub, rhs)
    }

    /// Element-wise product with broadcasting.
    pub fn mul(&self, rhs: &DTensor) -> DTensor {
        self.binary(ElemBinary::Mul, rhs)
    }

    /// Element-wise quotient with broadcasting.
    pub fn div(&self, rhs: &DTensor) -> DTensor {
        self.binary(ElemBinary::Div, rhs)
    }

    /// Element-wise maximum with broadcasting.
    pub fn max_elements(&self, rhs: &DTensor) -> DTensor {
        self.binary(ElemBinary::Max, rhs)
    }

    /// `1.0 where self > rhs else 0.0`.
    pub fn greater_mask(&self, rhs: &DTensor) -> DTensor {
        self.binary(ElemBinary::GreaterMask, rhs)
    }

    /// Negation.
    pub fn neg(&self) -> DTensor {
        self.unary(ElemUnary::Neg)
    }

    /// ReLU.
    pub fn relu(&self) -> DTensor {
        self.unary(ElemUnary::Relu)
    }

    /// `e^x`.
    pub fn exp(&self) -> DTensor {
        self.unary(ElemUnary::Exp)
    }

    /// Natural logarithm.
    pub fn ln(&self) -> DTensor {
        self.unary(ElemUnary::Ln)
    }

    /// Square root.
    pub fn sqrt(&self) -> DTensor {
        self.unary(ElemUnary::Sqrt)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> DTensor {
        self.unary(ElemUnary::Tanh)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> DTensor {
        self.unary(ElemUnary::Sigmoid)
    }

    /// Element-wise square.
    pub fn square(&self) -> DTensor {
        self.unary(ElemUnary::Square)
    }

    /// Adds a scalar.
    pub fn add_scalar(&self, v: f32) -> DTensor {
        let s = self.scalar_like(v);
        self.add(&s)
    }

    /// Multiplies by a scalar.
    pub fn mul_scalar(&self, v: f32) -> DTensor {
        let s = self.scalar_like(v);
        self.mul(&s)
    }

    /// Divides by a scalar.
    pub fn div_scalar(&self, v: f32) -> DTensor {
        let s = self.scalar_like(v);
        self.div(&s)
    }

    // ------------------------------------------------------------- linalg

    /// Matrix product `[m,k] × [k,n]`.
    pub fn matmul(&self, rhs: &DTensor) -> DTensor {
        DTensor::apply(
            HloOp::MatMul {
                t_lhs: false,
                t_rhs: false,
            },
            &[self, rhs],
        )
    }

    /// `selfᵀ × rhs`.
    pub fn matmul_tn(&self, rhs: &DTensor) -> DTensor {
        DTensor::apply(
            HloOp::MatMul {
                t_lhs: true,
                t_rhs: false,
            },
            &[self, rhs],
        )
    }

    /// `self × rhsᵀ`.
    pub fn matmul_nt(&self, rhs: &DTensor) -> DTensor {
        DTensor::apply(
            HloOp::MatMul {
                t_lhs: false,
                t_rhs: true,
            },
            &[self, rhs],
        )
    }

    // -------------------------------------------------------- conv & pool

    /// 2-D convolution (NHWC ⊛ HWIO).
    pub fn conv2d(&self, filter: &DTensor, strides: (usize, usize), padding: Padding) -> DTensor {
        DTensor::apply(HloOp::Conv2D { strides, padding }, &[self, filter])
    }

    /// Gradient of conv2d w.r.t. its input (`self` provides the input's
    /// shape).
    pub fn conv2d_backward_input(
        &self,
        filter: &DTensor,
        grad_out: &DTensor,
        strides: (usize, usize),
        padding: Padding,
    ) -> DTensor {
        DTensor::apply(
            HloOp::Conv2DBackwardInput {
                input_dims: self.dims(),
                strides,
                padding,
            },
            &[filter, grad_out],
        )
    }

    /// Gradient of conv2d w.r.t. its filter (`self` is the forward input).
    pub fn conv2d_backward_filter(
        &self,
        filter_dims: &[usize],
        grad_out: &DTensor,
        strides: (usize, usize),
        padding: Padding,
    ) -> DTensor {
        DTensor::apply(
            HloOp::Conv2DBackwardFilter {
                filter_dims: filter_dims.to_vec(),
                strides,
                padding,
            },
            &[self, grad_out],
        )
    }

    /// Average pooling.
    pub fn avg_pool2d(
        &self,
        pool: (usize, usize),
        strides: (usize, usize),
        padding: Padding,
    ) -> DTensor {
        DTensor::apply(
            HloOp::AvgPool {
                pool,
                strides,
                padding,
            },
            &[self],
        )
    }

    /// Gradient of average pooling (`self` is the forward input).
    pub fn avg_pool2d_backward(
        &self,
        grad_out: &DTensor,
        pool: (usize, usize),
        strides: (usize, usize),
        padding: Padding,
    ) -> DTensor {
        DTensor::apply(
            HloOp::AvgPoolGrad {
                pool,
                strides,
                padding,
            },
            &[self, grad_out],
        )
    }

    /// Max pooling.
    pub fn max_pool2d(
        &self,
        pool: (usize, usize),
        strides: (usize, usize),
        padding: Padding,
    ) -> DTensor {
        DTensor::apply(
            HloOp::MaxPool {
                pool,
                strides,
                padding,
            },
            &[self],
        )
    }

    /// Gradient of max pooling (`self` is the forward input).
    pub fn max_pool2d_backward(
        &self,
        grad_out: &DTensor,
        pool: (usize, usize),
        strides: (usize, usize),
        padding: Padding,
    ) -> DTensor {
        DTensor::apply(
            HloOp::MaxPoolGrad {
                pool,
                strides,
                padding,
            },
            &[self, grad_out],
        )
    }

    // ------------------------------------------------------------- gather

    /// Gathers rows of `self` (`[rows, d…]`) at `indices` (`[batch]`,
    /// float-encoded row numbers) → `[batch, d…]`. Indices travel as a
    /// runtime input, so on the lazy device per-batch index changes reuse
    /// the cached program.
    pub fn gather_rows(&self, indices: &DTensor) -> DTensor {
        DTensor::apply(HloOp::GatherRows, &[self, indices])
    }

    /// Gradient of [`DTensor::gather_rows`]: scatter-adds `grad_out`
    /// (`[batch, d…]`) at `indices` into a zero table with `self`'s row
    /// count (`self` is the forward table; only its leading dim is used).
    pub fn gather_rows_backward(&self, indices: &DTensor, grad_out: &DTensor) -> DTensor {
        DTensor::apply(
            HloOp::GatherRowsGrad {
                table_rows: self.dims()[0],
            },
            &[indices, grad_out],
        )
    }

    // -------------------------------------------- reductions & shape ops

    /// Sum of all elements (rank-0 result).
    pub fn sum(&self) -> DTensor {
        DTensor::apply(
            HloOp::Reduce {
                kind: ReduceKind::Sum,
                axis: None,
            },
            &[self],
        )
    }

    /// Mean of all elements (rank-0 result).
    pub fn mean(&self) -> DTensor {
        DTensor::apply(
            HloOp::Reduce {
                kind: ReduceKind::Mean,
                axis: None,
            },
            &[self],
        )
    }

    /// Sum along `axis` (axis removed).
    pub fn sum_axis(&self, axis: usize) -> DTensor {
        DTensor::apply(
            HloOp::Reduce {
                kind: ReduceKind::Sum,
                axis: Some(axis),
            },
            &[self],
        )
    }

    /// Maximum along `axis`, keeping the axis with extent 1.
    pub fn max_axis_keep(&self, axis: usize) -> DTensor {
        let reduced = DTensor::apply(
            HloOp::Reduce {
                kind: ReduceKind::Max,
                axis: Some(axis),
            },
            &[self],
        );
        let mut dims = self.dims();
        dims[axis] = 1;
        reduced.reshape(&dims)
    }

    /// Reshape (same element count).
    pub fn reshape(&self, dims: &[usize]) -> DTensor {
        DTensor::apply(HloOp::Reshape(dims.to_vec()), &[self])
    }

    /// Materialized broadcast.
    pub fn broadcast_to(&self, dims: &[usize]) -> DTensor {
        DTensor::apply(HloOp::Broadcast(dims.to_vec()), &[self])
    }

    /// Sum-reduce a gradient back to `dims` (inverse of broadcast).
    pub fn reduce_to_shape(&self, dims: &[usize]) -> DTensor {
        DTensor::apply(HloOp::ReduceToShape(dims.to_vec()), &[self])
    }

    /// Dimension permutation.
    pub fn transpose(&self, perm: &[usize]) -> DTensor {
        DTensor::apply(HloOp::Transpose(perm.to_vec()), &[self])
    }

    // --------------------------------------------------------- composites

    /// Numerically stable softmax along the last axis.
    pub fn softmax(&self) -> DTensor {
        let axis = self.dims().len() - 1;
        let m = self.max_axis_keep(axis);
        let shifted = self.sub(&m);
        let exps = shifted.exp();
        let mut keep = self.dims();
        keep[axis] = 1;
        let sums = exps.sum_axis(axis).reshape(&keep);
        exps.div(&sums)
    }

    /// Numerically stable log-softmax along the last axis.
    pub fn log_softmax(&self) -> DTensor {
        let axis = self.dims().len() - 1;
        let m = self.max_axis_keep(axis);
        let shifted = self.sub(&m);
        let mut keep = self.dims();
        keep[axis] = 1;
        let log_sum = shifted.exp().sum_axis(axis).reshape(&keep).ln();
        shifted.sub(&log_sum)
    }

    // ------------------------------------------- mutable value semantics

    /// `self += alpha·rhs` — the optimizer update through a unique borrow
    /// (paper §4.2). In-place on the CPU backend; a value rebinding on the
    /// asynchronous backends (semantically identical, paper Figure 8).
    pub fn scaled_add_assign(&mut self, alpha: f32, rhs: &DTensor) {
        match (self, rhs) {
            (DTensor::Cpu(t), DTensor::Cpu(r)) => t.scaled_add_assign(alpha, r),
            (this, rhs) => {
                let update = rhs.mul_scalar(alpha);
                *this = this.add(&update);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Differentiable-programming protocol (used by s4tf-nn on every backend).
// ---------------------------------------------------------------------

impl PartialEq for DTensor {
    /// Value equality (forces execution on asynchronous backends).
    fn eq(&self, other: &Self) -> bool {
        self.to_tensor() == other.to_tensor()
    }
}

impl AdditiveArithmetic for DTensor {
    /// A device-agnostic scalar zero (broadcast on combination).
    fn zero() -> Self {
        DTensor::Cpu(Tensor::scalar(0.0))
    }

    fn adding(&self, rhs: &Self) -> Self {
        self.add(rhs)
    }

    fn subtracting(&self, rhs: &Self) -> Self {
        self.sub(rhs)
    }

    fn is_zero(&self) -> bool {
        self.to_tensor().as_slice().iter().all(|&x| x == 0.0)
    }
}

impl VectorSpace for DTensor {
    fn scaled_by(&self, factor: f64) -> Self {
        self.mul_scalar(factor as f32)
    }

    /// Computed host-side: observing the value forces materialization, so
    /// on the lazy device call this only at a natural trace cut (the
    /// training loop computes grad norms after its barrier).
    fn norm_squared(&self) -> f64 {
        self.to_tensor()
            .as_slice()
            .iter()
            .map(|&x| {
                let v = x as f64;
                v * v
            })
            .sum()
    }

    fn scale_assign(&mut self, factor: f64) {
        match self {
            // In-place on the CPU backend (copy-on-write: free when the
            // buffer is uniquely owned).
            DTensor::Cpu(t) => t.mul_scalar_assign(factor as f32),
            this => *this = this.mul_scalar(factor as f32),
        }
    }

    fn add_scaled_assign(&mut self, alpha: f64, rhs: &Self) {
        match (self, rhs) {
            (DTensor::Cpu(t), DTensor::Cpu(r)) if t.shape() == r.shape() => {
                t.scaled_add_assign(alpha as f32, r);
            }
            (this, rhs) => *this = this.adding(&rhs.scaled_by(alpha)),
        }
    }
}

impl Differentiable for DTensor {
    type TangentVector = DTensor;

    fn move_along(&mut self, direction: &DTensor) {
        self.scaled_add_assign(1.0, direction);
    }

    fn move_along_scaled(&mut self, direction: &DTensor, alpha: f64) {
        VectorSpace::add_scaled_assign(self, alpha, direction);
    }

    fn zero_tangent(&self) -> DTensor {
        self.zeros_like()
    }
}

/// A device tensor is a single leaf for collective traversal: the
/// distributed all-reduce flattens model tangents down to `DTensor`s.
impl s4tf_core::VisitTangent<DTensor> for DTensor {
    fn visit_leaves(&self, f: &mut dyn FnMut(&DTensor)) {
        f(self);
    }

    fn visit_leaves_mut(&mut self, f: &mut dyn FnMut(&mut DTensor)) {
        f(self);
    }
}

impl s4tf_core::PointwiseMath for DTensor {
    fn pointwise_mul(&self, rhs: &Self) -> Self {
        self.mul(rhs)
    }
    fn pointwise_div(&self, rhs: &Self) -> Self {
        self.div(rhs)
    }
    fn pointwise_sqrt(&self) -> Self {
        self.sqrt()
    }
    fn adding_scalar(&self, v: f64) -> Self {
        self.add_scalar(v as f32)
    }
}

impl LossValue for DTensor {
    fn unit_tangent(&self) -> DTensor {
        self.ones_like()
    }

    fn loss_value(&self) -> f64 {
        self.to_tensor().loss_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn devices() -> Vec<Device> {
        vec![Device::naive(), Device::eager(), Device::lazy()]
    }

    fn t(data: &[f32], dims: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(data.to_vec(), dims)
    }

    #[test]
    fn same_results_on_every_device() {
        let x = t(&[1.0, -2.0, 3.0, -4.0], &[2, 2]);
        let w = t(&[1.0, 0.5, -0.5, 1.0], &[2, 2]);
        let reference = {
            let h = x.relu().matmul(&w);
            h.add(&Tensor::scalar(1.0)).tanh()
        };
        for d in devices() {
            let xd = DTensor::from_tensor(x.clone(), &d);
            let wd = DTensor::from_tensor(w.clone(), &d);
            let y = xd.relu().matmul(&wd).add_scalar(1.0).tanh();
            assert!(
                y.to_tensor().allclose(&reference, 1e-6),
                "device {} diverged",
                d.kind()
            );
        }
    }

    #[test]
    fn softmax_composite_on_every_device() {
        let x = t(&[1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let reference = x.softmax();
        let ref_log = x.log_softmax();
        for d in devices() {
            let xd = DTensor::from_tensor(x.clone(), &d);
            assert!(xd.softmax().to_tensor().allclose(&reference, 1e-6));
            assert!(xd.log_softmax().to_tensor().allclose(&ref_log, 1e-5));
        }
    }

    #[test]
    fn conv_pool_on_every_device() {
        let x = Tensor::<f32>::from_fn(&[1, 4, 4, 1], |i| i as f32);
        let f = Tensor::<f32>::ones(&[2, 2, 1, 1]);
        let reference =
            x.conv2d(&f, (1, 1), Padding::Same)
                .max_pool2d((2, 2), (2, 2), Padding::Valid);
        for d in devices() {
            let xd = DTensor::from_tensor(x.clone(), &d);
            let fd = DTensor::from_tensor(f.clone(), &d);
            let y =
                xd.conv2d(&fd, (1, 1), Padding::Same)
                    .max_pool2d((2, 2), (2, 2), Padding::Valid);
            assert_eq!(y.dims(), vec![1, 2, 2, 1]);
            assert!(y.to_tensor().allclose(&reference, 1e-6));
        }
    }

    #[test]
    fn reductions_and_shapes_on_every_device() {
        let x = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        for d in devices() {
            let xd = DTensor::from_tensor(x.clone(), &d);
            assert_eq!(xd.sum().to_tensor().scalar_value(), 21.0);
            assert_eq!(xd.mean().to_tensor().scalar_value(), 3.5);
            assert_eq!(xd.sum_axis(0).to_tensor().as_slice(), &[5.0, 7.0, 9.0]);
            assert_eq!(xd.max_axis_keep(1).dims(), vec![2, 1]);
            assert_eq!(xd.reshape(&[3, 2]).dims(), vec![3, 2]);
            assert_eq!(xd.transpose(&[1, 0]).dims(), vec![3, 2]);
            let b = xd.sum_axis(0).broadcast_to(&[2, 3]);
            assert_eq!(
                b.reduce_to_shape(&[3]).to_tensor().as_slice(),
                &[10.0, 14.0, 18.0]
            );
        }
    }

    #[test]
    fn backward_kernels_on_every_device() {
        let x = Tensor::<f32>::from_fn(&[1, 4, 4, 2], |i| (i as f32) * 0.1);
        let w = Tensor::<f32>::from_fn(&[3, 3, 2, 2], |i| (i as f32) * 0.01);
        let refs = {
            let y = x.conv2d(&w, (1, 1), Padding::Same);
            let dy = Tensor::ones(y.dims());
            (
                x.conv2d_backward_input(&w, &dy, (1, 1), Padding::Same),
                x.conv2d_backward_filter(w.dims(), &dy, (1, 1), Padding::Same),
            )
        };
        for d in devices() {
            let xd = DTensor::from_tensor(x.clone(), &d);
            let wd = DTensor::from_tensor(w.clone(), &d);
            let y = xd.conv2d(&wd, (1, 1), Padding::Same);
            let dy = y.ones_like();
            let dx = xd.conv2d_backward_input(&wd, &dy, (1, 1), Padding::Same);
            let dw = xd.conv2d_backward_filter(&[3, 3, 2, 2], &dy, (1, 1), Padding::Same);
            assert!(dx.to_tensor().allclose(&refs.0, 1e-5));
            assert!(dw.to_tensor().allclose(&refs.1, 1e-5));
        }
    }

    #[test]
    fn value_semantics_of_scaled_add_assign() {
        for d in devices() {
            let a = DTensor::from_tensor(t(&[1.0, 2.0], &[2]), &d);
            let mut b = a.clone();
            b.scaled_add_assign(10.0, &DTensor::from_tensor(t(&[1.0, 1.0], &[2]), &d));
            assert_eq!(
                a.to_tensor().as_slice(),
                &[1.0, 2.0],
                "{}: mutation leaked through a copy",
                d.kind()
            );
            assert_eq!(b.to_tensor().as_slice(), &[11.0, 12.0]);
        }
    }

    #[test]
    fn differentiable_protocol() {
        for d in devices() {
            let mut x = DTensor::from_tensor(t(&[1.0, 2.0], &[2]), &d);
            let g = DTensor::from_tensor(t(&[0.5, -0.5], &[2]), &d);
            x.move_along(&g.scaled_by(2.0));
            assert_eq!(x.to_tensor().as_slice(), &[2.0, 1.0]);
            assert!(x.zero_tangent().is_zero());
            assert_eq!(x.unit_tangent().to_tensor().as_slice(), &[1.0, 1.0]);
            // Device-agnostic zero combines with any device tensor.
            let z = DTensor::zero();
            assert_eq!(z.adding(&x), x);
        }
    }

    #[test]
    fn lazy_fusion_is_observable_in_cache_kernels() {
        let d = Device::lazy();
        let x = DTensor::from_tensor(t(&[1.0, -1.0, 2.0], &[3]), &d);
        // 4-op elementwise chain: fuses to one kernel on the lazy device.
        let y = x.relu().mul_scalar(2.0).add_scalar(1.0).tanh();
        let _ = y.to_tensor();
        if let Device::Lazy(ctx) = &d {
            assert_eq!(ctx.cache().stats().misses, 1);
        }
    }

    #[test]
    fn gather_and_scatter_on_every_device() {
        let table = Tensor::<f32>::from_fn(&[4, 2], |i| i as f32);
        let idx = Tensor::from_vec(vec![2.0f32, 0.0, 2.0], &[3]);
        for d in devices() {
            let td = DTensor::from_tensor(table.clone(), &d);
            let id = DTensor::from_tensor(idx.clone(), &d);
            let g = td.gather_rows(&id);
            assert_eq!(g.dims(), vec![3, 2]);
            assert_eq!(
                g.to_tensor().as_slice(),
                &[4.0, 5.0, 0.0, 1.0, 4.0, 5.0],
                "{}",
                d.kind()
            );
            // Scatter-add the ones gradient back: duplicate row 2 gets 2.
            let back = td.gather_rows_backward(&id, &g.ones_like());
            let bt = back.to_tensor();
            assert_eq!(bt.dims(), &[4, 2]);
            assert_eq!(bt.at(&[2, 0]), 2.0);
            assert_eq!(bt.at(&[0, 1]), 1.0);
            assert_eq!(bt.at(&[1, 0]), 0.0);
        }
    }

    #[test]
    fn lazy_gather_reuses_program_across_index_changes() {
        let d = Device::lazy();
        let table = DTensor::from_tensor(Tensor::<f32>::from_fn(&[8, 3], |i| i as f32), &d);
        for batch in [vec![0.0f32, 3.0], vec![7.0, 1.0], vec![5.0, 5.0]] {
            let idx = DTensor::from_tensor(Tensor::from_vec(batch, &[2]), &d);
            let _ = table.gather_rows(&idx).sum().to_tensor();
        }
        if let Device::Lazy(ctx) = &d {
            let stats = ctx.cache().stats();
            assert_eq!(stats.misses, 1, "index values are runtime inputs");
            assert_eq!(stats.hits, 2);
        }
    }

    #[test]
    #[should_panic(expected = "cannot mix")]
    fn mixing_lazy_and_eager_panics() {
        let a = DTensor::from_tensor(t(&[1.0], &[1]), &Device::lazy());
        let b = DTensor::from_tensor(t(&[1.0], &[1]), &Device::eager());
        let _ = a.add(&b);
    }
}
