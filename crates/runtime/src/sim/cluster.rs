//! Synchronous data-parallel cluster model with ring all-reduce — the
//! training regime of Table 1 ("8 hosts synchronously training a single
//! model in data-parallel fashion").

use crate::sim::cost::AcceleratorModel;

/// A homogeneous accelerator cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterModel {
    /// The per-core accelerator.
    pub core: AcceleratorModel,
    /// Number of cores training synchronously.
    pub num_cores: usize,
    /// Per-link interconnect bandwidth, bytes/s.
    pub link_bandwidth: f64,
    /// Per-hop interconnect latency, seconds.
    pub link_latency: f64,
}

/// How a measured step time compares to the model's prediction — the
/// honesty check wired into EXPERIMENTS.md: simulated Table-1 numbers are
/// always reported next to what the real `s4tf::dist` runtime measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionGap {
    /// Model-predicted step time, seconds.
    pub predicted: f64,
    /// Measured step time, seconds.
    pub measured: f64,
    /// `measured / predicted` — >1 means the model is optimistic.
    pub ratio: f64,
}

impl ClusterModel {
    /// A TPUv3 pod slice with `num_cores` cores.
    pub fn tpu_v3(num_cores: usize) -> Self {
        ClusterModel {
            core: AcceleratorModel::tpu_v3_core(),
            num_cores,
            link_bandwidth: 70.0e9, // ICI per-link
            link_latency: 2.0e-6,
        }
    }

    /// A model of `s4tf::dist`'s own fabric: worker processes exchanging
    /// ring all-reduce chunks over loopback TCP on one machine. Loopback
    /// moves bytes at memcpy-like speed but every hop pays scheduler +
    /// syscall latency, so the latency term dominates at small tensors.
    pub fn loopback_tcp(num_workers: usize) -> Self {
        ClusterModel {
            core: AcceleratorModel::tpu_v3_core(),
            num_cores: num_workers,
            link_bandwidth: 2.0e9,
            link_latency: 50.0e-6,
        }
    }

    /// Compares a measured step time against this model's prediction for
    /// the same shape. `measured` is seconds; the returned ratio is the
    /// model's honesty metric (>1 ⇒ the model was optimistic).
    pub fn predicted_vs_measured(
        &self,
        per_core_compute: f64,
        grad_bytes: f64,
        measured: f64,
    ) -> PredictionGap {
        let predicted = self.step_time(per_core_compute, grad_bytes);
        let ratio = if predicted > 0.0 {
            measured / predicted
        } else {
            f64::INFINITY
        };
        PredictionGap {
            predicted,
            measured,
            ratio,
        }
    }

    /// Ring all-reduce time for `bytes` of gradients:
    /// `2·(n−1)/n · bytes / bw + 2·(n−1)·latency`.
    ///
    /// The bandwidth term is nearly constant in `n`; the latency term grows
    /// linearly — which is why per-core throughput decays slowly with
    /// scale (Table 1's right-hand column).
    pub fn allreduce_time(&self, bytes: f64) -> f64 {
        let n = self.num_cores as f64;
        if self.num_cores <= 1 {
            return 0.0;
        }
        2.0 * (n - 1.0) / n * bytes / self.link_bandwidth + 2.0 * (n - 1.0) * self.link_latency
    }

    /// One synchronous training step: per-core compute then gradient
    /// all-reduce.
    pub fn step_time(&self, per_core_compute: f64, grad_bytes: f64) -> f64 {
        per_core_compute + self.allreduce_time(grad_bytes)
    }

    /// Global examples/second at the given per-core batch size.
    pub fn throughput(&self, per_core_batch: usize, per_core_compute: f64, grad_bytes: f64) -> f64 {
        let step = self.step_time(per_core_compute, grad_bytes);
        (per_core_batch * self.num_cores) as f64 / step
    }

    /// Per-core examples/second (Table 1's scaling-retention column).
    pub fn per_core_throughput(
        &self,
        per_core_batch: usize,
        per_core_compute: f64,
        grad_bytes: f64,
    ) -> f64 {
        self.throughput(per_core_batch, per_core_compute, grad_bytes) / self.num_cores as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_bandwidth_term_saturates() {
        let c16 = ClusterModel::tpu_v3(16);
        let c128 = ClusterModel::tpu_v3(128);
        let bytes = 100.0e6;
        let t16 = c16.allreduce_time(bytes);
        let t128 = c128.allreduce_time(bytes);
        assert!(t128 > t16, "latency term grows with scale");
        // But far less than linearly: the bandwidth term is ~constant.
        assert!(t128 < t16 * 2.0);
    }

    #[test]
    fn single_core_has_no_allreduce() {
        let c = ClusterModel::tpu_v3(1);
        assert_eq!(c.allreduce_time(1e9), 0.0);
    }

    #[test]
    fn throughput_scales_nearly_linearly() {
        let compute = 0.025; // seconds per step per core
        let grads = 102.0e6; // ResNet-50's ~25.6M f32 params
        let t16 = ClusterModel::tpu_v3(16).throughput(16, compute, grads);
        let t128 = ClusterModel::tpu_v3(128).throughput(16, compute, grads);
        let scaling = t128 / t16;
        assert!(
            scaling > 7.0 && scaling < 8.0,
            "8× cores give a bit under 8× throughput, got {scaling:.2}×"
        );
    }

    #[test]
    fn predicted_vs_measured_reports_the_gap() {
        let c = ClusterModel::loopback_tcp(4);
        let predicted = c.step_time(0.010, 1.0e6);
        let gap = c.predicted_vs_measured(0.010, 1.0e6, predicted * 1.5);
        assert_eq!(gap.predicted, predicted);
        assert!((gap.ratio - 1.5).abs() < 1e-9);
        // A perfect measurement scores exactly 1.
        let exact = c.predicted_vs_measured(0.010, 1.0e6, predicted);
        assert!((exact.ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loopback_is_latency_bound_at_small_tensors() {
        let c = ClusterModel::loopback_tcp(4);
        // LeNet-sized gradients: ~50K params ≈ 200 KB.
        let t = c.allreduce_time(200e3);
        let latency_term = 2.0 * 3.0 * c.link_latency;
        assert!(
            latency_term > t / 2.0,
            "latency should dominate small-tensor loopback all-reduce"
        );
    }

    #[test]
    fn per_core_throughput_declines_gently() {
        let compute = 0.025;
        let grads = 102.0e6;
        let p16 = ClusterModel::tpu_v3(16).per_core_throughput(16, compute, grads);
        let p128 = ClusterModel::tpu_v3(128).per_core_throughput(16, compute, grads);
        assert!(p128 < p16);
        let retention = p128 / p16;
        assert!(
            retention > 0.90,
            "Table 1 shape: ≥90% per-core retention at 8× scale, got {retention:.3}"
        );
    }
}
