//! Analytic kernel costs: FLOPs and memory traffic per compiled HLO node,
//! and a roofline accelerator model.

use s4tf_xla::graph::{HloGraph, HloNode};
use s4tf_xla::{Executable, HloOp};

/// The cost of one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelCost {
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes moved to/from device memory.
    pub bytes: f64,
}

impl KernelCost {
    /// Component-wise sum.
    pub fn plus(self, other: KernelCost) -> KernelCost {
        KernelCost {
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
        }
    }
}

const F32: f64 = 4.0;

/// The cost of one node, given its (shape-inferred) graph context.
pub fn node_cost(graph: &HloGraph, node: &HloNode) -> KernelCost {
    let out_elems = node.shape.num_elements() as f64;
    let in_bytes: f64 = node
        .inputs
        .iter()
        .map(|&i| graph.node(i).shape.num_elements() as f64 * F32)
        .sum();
    let touch = in_bytes + out_elems * F32;
    match &node.op {
        // Leaves are resident; no kernel.
        HloOp::Parameter(_) | HloOp::Constant(_) => KernelCost::default(),
        HloOp::Unary(_) => KernelCost {
            flops: out_elems,
            bytes: touch,
        },
        HloOp::Binary(_) => KernelCost {
            flops: out_elems,
            bytes: touch,
        },
        // Fusion's payoff: k ops of work but one input/output sweep —
        // no intermediate buffers.
        HloOp::Fused { insts, .. } => KernelCost {
            flops: out_elems * insts.len() as f64,
            bytes: touch,
        },
        HloOp::MatMul { .. } => {
            let k =
                graph.node(node.inputs[0]).shape.num_elements() as f64 / node.shape.dim(0) as f64;
            KernelCost {
                flops: 2.0 * node.shape.num_elements() as f64 * k,
                bytes: touch,
            }
        }
        HloOp::Conv2D { .. } => {
            let f = &graph.node(node.inputs[1]).shape;
            let work_per_out = 2.0 * (f.dim(0) * f.dim(1) * f.dim(2)) as f64;
            KernelCost {
                flops: out_elems * work_per_out,
                bytes: touch,
            }
        }
        HloOp::Conv2DBackwardInput { .. } | HloOp::Conv2DBackwardFilter { .. } => {
            // Same asymptotic work as the forward convolution.
            let f_elems = match &node.op {
                HloOp::Conv2DBackwardInput { .. } => {
                    graph.node(node.inputs[0]).shape.num_elements() as f64
                }
                _ => node.shape.num_elements() as f64,
            };
            let grad = &graph.node(node.inputs[1]).shape;
            // out_elems of the *forward* output ≈ grad elements.
            let per_out = 2.0 * f_elems / node.shape.dim(3).max(1) as f64;
            KernelCost {
                flops: grad.num_elements() as f64 * per_out.max(2.0),
                bytes: touch,
            }
        }
        HloOp::AvgPool { pool, .. }
        | HloOp::MaxPool { pool, .. }
        | HloOp::AvgPoolGrad { pool, .. }
        | HloOp::MaxPoolGrad { pool, .. } => KernelCost {
            flops: out_elems * (pool.0 * pool.1) as f64,
            bytes: touch,
        },
        HloOp::Reduce { .. } | HloOp::ReduceToShape(_) => KernelCost {
            flops: in_bytes / F32,
            bytes: touch,
        },
        // Pure data movement.
        HloOp::GatherRows | HloOp::GatherRowsGrad { .. } => KernelCost {
            flops: out_elems,
            bytes: touch,
        },
        HloOp::Transpose(_) | HloOp::Broadcast(_) => KernelCost {
            flops: 0.0,
            bytes: touch,
        },
        // Metadata-only.
        HloOp::Reshape(_) => KernelCost::default(),
    }
}

/// Total cost of a graph (sum over kernels) plus the launch count.
pub fn graph_cost(graph: &HloGraph) -> (KernelCost, usize) {
    let mut total = KernelCost::default();
    let mut launches = 0usize;
    for node in &graph.nodes {
        let c = node_cost(graph, node);
        if !matches!(
            node.op,
            HloOp::Parameter(_) | HloOp::Constant(_) | HloOp::Reshape(_)
        ) {
            launches += 1;
        }
        total = total.plus(c);
    }
    (total, launches)
}

/// A roofline accelerator: each kernel takes
/// `max(flops/peak·eff, bytes/bandwidth) + launch_overhead`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorModel {
    /// Peak FLOP/s.
    pub peak_flops: f64,
    /// Sustained fraction of peak achieved by compiled kernels.
    pub efficiency: f64,
    /// Device-memory bandwidth, bytes/s.
    pub mem_bandwidth: f64,
    /// Fixed cost per kernel launch, seconds.
    pub launch_overhead: f64,
}

impl AcceleratorModel {
    /// A TPUv3-core-like model. Constants are calibrated so a ResNet-50
    /// training step at the paper's per-core batch lands near Table 1's
    /// per-core throughput (see EXPERIMENTS.md for the calibration note).
    pub fn tpu_v3_core() -> Self {
        AcceleratorModel {
            peak_flops: 61.0e12, // half a 123-TFLOP TPUv3 chip
            efficiency: 0.35,    // MLPerf-era ResNet-50 MXU utilization
            mem_bandwidth: 450.0e9,
            launch_overhead: 1.5e-6,
        }
    }

    /// A GTX-1080-like model (Table 3's device).
    pub fn gtx_1080() -> Self {
        AcceleratorModel {
            peak_flops: 8.9e12,
            efficiency: 0.25,
            mem_bandwidth: 320.0e9,
            launch_overhead: 8.0e-6,
        }
    }

    /// Time for one kernel.
    pub fn kernel_time(&self, cost: KernelCost) -> f64 {
        let compute = cost.flops / (self.peak_flops * self.efficiency);
        let memory = cost.bytes / self.mem_bandwidth;
        compute.max(memory) + self.launch_overhead
    }

    /// Time for a whole compiled program (kernels run back-to-back).
    pub fn program_time(&self, graph: &HloGraph) -> f64 {
        let mut total = 0.0;
        for node in &graph.nodes {
            if matches!(
                node.op,
                HloOp::Parameter(_) | HloOp::Constant(_) | HloOp::Reshape(_)
            ) {
                continue;
            }
            total += self.kernel_time(node_cost(graph, node));
        }
        total
    }
}

/// Simulated compute time of a compiled executable on `model`.
pub fn exec_compute_time(exe: &Executable, model: &AcceleratorModel) -> f64 {
    model.program_time(exe.graph())
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4tf_tensor::Tensor;
    use s4tf_xla::{compile, compile_unoptimized, ElemBinary, ElemUnary, HloGraph};

    fn chain_graph(n_ops: usize, dim: usize) -> HloGraph {
        let mut g = HloGraph::new();
        let mut x = g.parameter(0, &[dim]);
        for _ in 0..n_ops {
            x = g.unary(ElemUnary::Tanh, x);
        }
        g.mark_output(x);
        g
    }

    #[test]
    fn matmul_flops() {
        let mut g = HloGraph::new();
        let a = g.parameter(0, &[16, 32]);
        let b = g.parameter(1, &[32, 8]);
        let m = g.add(
            s4tf_xla::HloOp::MatMul {
                t_lhs: false,
                t_rhs: false,
            },
            &[a, b],
        );
        g.mark_output(m);
        let node = g.node(m);
        let c = node_cost(&g, node);
        assert_eq!(c.flops, 2.0 * 16.0 * 32.0 * 8.0);
        assert_eq!(c.bytes, (16.0 * 32.0 + 32.0 * 8.0 + 16.0 * 8.0) * 4.0);
    }

    #[test]
    fn conv_flops() {
        let mut g = HloGraph::new();
        let x = g.parameter(0, &[2, 8, 8, 3]);
        let w = g.parameter(1, &[3, 3, 3, 16]);
        let c = g.add(
            s4tf_xla::HloOp::Conv2D {
                strides: (1, 1),
                padding: s4tf_tensor::Padding::Same,
            },
            &[x, w],
        );
        g.mark_output(c);
        let cost = node_cost(&g, g.node(c));
        let out_elems = 2.0 * 8.0 * 8.0 * 16.0;
        assert_eq!(cost.flops, out_elems * 2.0 * 27.0);
    }

    #[test]
    fn fusion_reduces_modeled_time() {
        let g = chain_graph(8, 1 << 16);
        let model = AcceleratorModel::gtx_1080();
        let fused = compile(&g);
        let unfused = compile_unoptimized(&g);
        let t_fused = exec_compute_time(&fused, &model);
        let t_unfused = exec_compute_time(&unfused, &model);
        assert!(
            t_fused < t_unfused / 2.0,
            "fusion must cut launch + traffic costs: {t_fused} vs {t_unfused}"
        );
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let g = chain_graph(10, 4);
        let model = AcceleratorModel::gtx_1080();
        let t = model.program_time(&g);
        assert!(t >= 10.0 * model.launch_overhead);
        assert!(t < 10.0 * model.launch_overhead * 1.5);
    }

    #[test]
    fn graph_cost_counts_launches() {
        let mut g = chain_graph(3, 8);
        let c = g.constant(Tensor::scalar(1.0));
        let last = s4tf_xla::NodeId(g.len() as u32 - 2);
        let y = g.binary(ElemBinary::Add, last, c);
        let r = g.add(s4tf_xla::HloOp::Reshape(vec![8, 1]), &[y]);
        g.mark_output(r);
        let (total, launches) = graph_cost(&g);
        assert_eq!(launches, 4, "3 tanh + 1 add; reshape/const/param free");
        assert!(total.flops > 0.0);
    }

    #[test]
    fn roofline_picks_the_max() {
        let m = AcceleratorModel {
            peak_flops: 1e12,
            efficiency: 1.0,
            mem_bandwidth: 1e9,
            launch_overhead: 0.0,
        };
        // Memory-bound kernel.
        let t = m.kernel_time(KernelCost {
            flops: 1e6,
            bytes: 1e9,
        });
        assert!((t - 1.0).abs() < 1e-9);
        // Compute-bound kernel.
        let t = m.kernel_time(KernelCost {
            flops: 1e12,
            bytes: 1e3,
        });
        assert!((t - 1.0).abs() < 1e-9);
    }
}
