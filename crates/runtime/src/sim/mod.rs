//! The simulated accelerator — the substitute for the TPU/GPU hardware the
//! paper's §5.1 experiments ran on (see DESIGN.md, "Substitutions").
//!
//! The simulation boundary is deliberately narrow: *real* models are traced
//! by the *real* lazy backend and optimized by the *real* compiler; only
//! the kernel clock is analytic. [`cost`] assigns each compiled kernel a
//! FLOP count and memory traffic, [`AcceleratorModel`] turns those into
//! time (roofline-style), and [`cluster`] adds synchronous data-parallel
//! semantics with a ring all-reduce — the regime Table 1 measures.

pub mod cluster;
pub mod cost;

pub use cluster::ClusterModel;
pub use cost::{exec_compute_time, graph_cost, AcceleratorModel, KernelCost};
