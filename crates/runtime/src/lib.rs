//! # s4tf-runtime
//!
//! The device runtime: the three Tensor execution strategies of paper §3,
//! behind one value-semantic tensor type, plus the simulated accelerator
//! used by the datacenter-scale experiments (§5.1).
//!
//! * **Naive** (§3.1): direct, synchronous CPU kernels — no dispatch layer
//!   at all. Portable, tiny, the backend used for on-device training
//!   (Table 4).
//! * **Eager** (§3.2): define-by-run asynchronous op-by-op dispatch. Each
//!   operation is boxed and queued to a worker thread (the "accelerator");
//!   the host runs ahead, pipelining kernel launches, and blocks only when
//!   the program *observes* a tensor's contents.
//! * **Lazy** (§3.3): operations record a trace (an
//!   [`s4tf_xla::HloGraph`]); nothing executes until a tensor is observed
//!   or [`Device::barrier`] (the paper's `LazyTensorBarrier()`) cuts the
//!   trace, which is then hashed into the program cache, JIT-compiled with
//!   fusion, and run.
//!
//! The user-facing type is [`DTensor`]: the same eager programming model on
//! every device — code cannot tell when a lazy operation actually executes
//! (the paper's "illusion of eager execution"), except through timing.
//! `DTensor` has mutable value semantics like the underlying
//! [`s4tf_tensor::Tensor`], and implements the `s4tf-core` `Differentiable`
//! protocol, so models built from it train on any backend.
//!
//! ## Example
//!
//! ```
//! use s4tf_runtime::{Device, DTensor};
//! use s4tf_tensor::Tensor;
//!
//! for device in [Device::naive(), Device::eager(), Device::lazy()] {
//!     let x = DTensor::from_tensor(Tensor::from_vec(vec![1.0, -2.0], &[2]), &device);
//!     let y = x.relu().mul_scalar(10.0);
//!     // Observation forces execution on every backend:
//!     assert_eq!(y.to_tensor().as_slice(), &[10.0, 0.0]);
//! }
//! ```

pub mod device;
mod diag;
pub mod dtensor;
pub mod eager;
mod fault;
pub mod lazy;
mod met;
mod prof;
pub mod sim;

pub use device::Device;
pub use dtensor::DTensor;
pub use s4tf_tensor::{FaultKind, RuntimeError};
// The fused-kernel compiler behind the lazy backend: its gate and
// counters surface here so training code can ask "which of my fused
// kernels got specialized" without depending on `s4tf-xla` directly.
pub use s4tf_xla::codegen;
pub use s4tf_xla::{codegen_enabled, set_codegen_enabled, CacheStats, CodegenStats};
