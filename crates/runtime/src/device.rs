//! Device handles: the user-facing way to pick an execution strategy
//! (paper §3.3: "end-users can switch between the two implementations by
//! specifying a device for the computation to run on").

use crate::eager::EagerQueue;
use crate::lazy::LazyContext;
use s4tf_xla::CacheStats;
use std::sync::Arc;

/// An execution device.
#[derive(Clone, Debug)]
pub enum Device {
    /// Direct synchronous CPU kernels (paper §3.1, "naïve Tensor").
    Naive,
    /// Asynchronous op-by-op dispatch to a worker thread (§3.2).
    Eager(EagerQueue),
    /// Trace-record with JIT compilation and a program cache (§3.3).
    Lazy(Arc<LazyContext>),
}

impl Device {
    /// The naive CPU device.
    pub fn naive() -> Device {
        Device::Naive
    }

    /// A fresh eager device (spawns its worker thread).
    pub fn eager() -> Device {
        Device::Eager(EagerQueue::new())
    }

    /// A fresh lazy device (its own trace and program cache).
    pub fn lazy() -> Device {
        Device::Lazy(Arc::new(LazyContext::new()))
    }

    /// A short name for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Device::Naive => "naive",
            Device::Eager(_) => "eager",
            Device::Lazy(_) => "lazy",
        }
    }

    /// Synchronization point: the paper's `LazyTensorBarrier()` on the
    /// lazy device, a pipeline drain on the eager device, a no-op on the
    /// naive device.
    pub fn barrier(&self) {
        match self {
            Device::Naive => {}
            Device::Eager(q) => q.sync(),
            Device::Lazy(ctx) => ctx.barrier(),
        }
    }

    /// Like [`Device::barrier`], but surfaces the first runtime error the
    /// device recorded since the last check instead of panicking at an
    /// observation point. `Ok(())` on the naive device (errors there attach
    /// directly to poisoned tensors and surface at observation).
    pub fn sync_checked(&self) -> Result<(), s4tf_tensor::RuntimeError> {
        match self {
            Device::Naive => Ok(()),
            Device::Eager(q) => q.sync_checked(),
            Device::Lazy(ctx) => {
                ctx.barrier();
                match ctx.take_error() {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
        }
    }

    /// Program-cache hit/miss statistics: `Some` on the lazy device (the
    /// only backend with a JIT cache), `None` otherwise.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        match self {
            Device::Lazy(ctx) => Some(ctx.cache().stats()),
            _ => None,
        }
    }

    /// True if both handles denote the same device instance.
    pub fn same_device(&self, other: &Device) -> bool {
        match (self, other) {
            (Device::Naive, Device::Naive) => true,
            (Device::Eager(a), Device::Eager(b)) => a.same_queue(b),
            (Device::Lazy(a), Device::Lazy(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds() {
        assert_eq!(Device::naive().kind(), "naive");
        assert_eq!(Device::eager().kind(), "eager");
        assert_eq!(Device::lazy().kind(), "lazy");
    }

    #[test]
    fn identity() {
        let a = Device::lazy();
        let b = a.clone();
        assert!(a.same_device(&b));
        assert!(!a.same_device(&Device::lazy()));
        assert!(Device::naive().same_device(&Device::naive()));
        assert!(!Device::naive().same_device(&a));
        let e = Device::eager();
        assert!(e.same_device(&e.clone()));
        assert!(!e.same_device(&Device::eager()));
    }

    #[test]
    fn barriers_do_not_panic() {
        for d in [Device::naive(), Device::eager(), Device::lazy()] {
            d.barrier();
        }
    }

    #[test]
    fn cache_stats_only_on_lazy() {
        assert!(Device::naive().cache_stats().is_none());
        assert!(Device::eager().cache_stats().is_none());
        assert_eq!(Device::lazy().cache_stats(), Some(CacheStats::default()));
    }
}
