//! A process-wide telemetry registry for the s4tf runtime.
//!
//! Every subsystem publishes into one registry of named instruments:
//!
//! - [`Counter`] — monotonic `u64` (cache hits, dispatched ops);
//! - [`Gauge`] — signed level (`i64`: live bytes, queue depth);
//! - [`Histogram`] — log₂-bucketed HDR-style distribution with
//!   [`Histogram::quantile`] (p50/p95/p99 within a documented relative
//!   error bound, see [`hist`]).
//!
//! Instruments are interned by name and live for the process; handles are
//! `&'static`, so recording is a couple of relaxed atomic ops. Names
//! follow Prometheus conventions — `s4tf_xla_compile_us`, optionally with
//! inline labels: `s4tf_dispatch_latency_us{backend="eager"}`.
//!
//! Export paths:
//!
//! - **Live pull** — [`start_server`] (or `S4TF_METRICS_ADDR`) binds a
//!   std `TcpListener` serving the Prometheus text exposition format, so
//!   `curl host:port/metrics` mid-run answers "what is p99 step time
//!   right now".
//! - **Periodic snapshots** — [`start_sampler`] (or
//!   `S4TF_METRICS_INTERVAL`) appends registry snapshots as JSONL to the
//!   `S4TF_METRICS_FILE` sink (shared with the per-step training stream
//!   in `s4tf-diag`) and feeds every gauge to the profiler so Chrome
//!   traces carry live-bytes/queue-depth counter tracks.
//!
//! Memory attribution: the storage layer reports allocations through
//! [`mem_alloc`]/[`mem_free`]; subsystems scope allocations to a site
//! with [`mem_site`], and [`memory_by_site`] breaks live/peak bytes down
//! by the allocating subsystem (eager slots, trace constants, checkpoint
//! I/O, …).
//!
//! Recording defaults **on** when the `metrics` feature is compiled in;
//! `S4TF_METRICS=0` (or [`set_enabled`]) turns it off at runtime, leaving
//! one relaxed atomic load per call site. Consumer crates compile the
//! whole surface out through the usual `include!` noop-shim pattern
//! (`noop_shim.rs`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Once, OnceLock, RwLock};

pub mod hist;
mod mem;
mod rate;
mod sampler;
mod serve;
mod snapshot;
mod text;

pub use hist::Histogram;
pub use mem::{
    mem_alloc, mem_free, mem_site, memory_by_site, reset_memory_by_site, MemSiteGuard, SiteMem,
};
pub use rate::rate_per_sec;
pub use sampler::{sample_now, start_sampler};
pub use serve::start_server;
pub use snapshot::{append_jsonl, jsonl_enabled, jsonl_path, set_jsonl_path, snapshot_json};
pub use text::prometheus_text;

// ----------------------------------------------------------------- gate

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// Tri-state recording gate: 0 = consult `S4TF_METRICS` once, then 1/2.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Whether the registry records. Defaults to **on**; `S4TF_METRICS=0`
/// (or [`set_enabled`]`(false)`) disables recording at runtime. The hot
/// path is one relaxed load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_UNINIT => init_slow(),
        s => s == STATE_ON,
    }
}

#[cold]
fn init_slow() -> bool {
    let off = matches!(
        std::env::var("S4TF_METRICS").as_deref().map(str::trim),
        Ok("0") | Ok("false") | Ok("off")
    );
    let target = if off { STATE_OFF } else { STATE_ON };
    // Racing initializers compute the same value; a concurrent
    // `set_enabled` wins.
    let _ = STATE.compare_exchange(STATE_UNINIT, target, Ordering::Relaxed, Ordering::Relaxed);
    init_exporters_from_env();
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// Overrides the recording gate (and, on enable, starts any exporters
/// the environment requests).
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    if on {
        init_exporters_from_env();
    }
}

/// Starts the exporters the environment asks for, exactly once per
/// process: `S4TF_METRICS_ADDR` → Prometheus listener,
/// `S4TF_METRICS_INTERVAL` → sampler thread.
fn init_exporters_from_env() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        if let Ok(addr) = std::env::var("S4TF_METRICS_ADDR") {
            if !addr.is_empty() {
                match serve::start_server(&addr) {
                    Ok(local) => eprintln!(
                        "[s4tf-metrics] serving Prometheus text at http://{local}/metrics"
                    ),
                    Err(e) => eprintln!("[s4tf-metrics] cannot bind {addr}: {e}"),
                }
            }
        }
        if let Ok(iv) = std::env::var("S4TF_METRICS_INTERVAL") {
            match sampler::parse_interval(&iv) {
                Some(d) => sampler::start_sampler(d),
                None => eprintln!(
                    "[s4tf-metrics] unparseable S4TF_METRICS_INTERVAL {iv:?} \
                     (want e.g. `250ms`, `1s`, or seconds as a number)"
                ),
            }
        }
    });
}

// ----------------------------------------------------------- instruments

/// A monotonically increasing `u64` instrument.
#[derive(Debug)]
pub struct Counter {
    help: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Adds `delta` (no-op while recording is disabled).
    #[inline]
    pub fn add(&self, delta: u64) {
        if enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed level instrument (bytes live, queue depth).
#[derive(Debug)]
pub struct Gauge {
    help: &'static str,
    value: AtomicI64,
}

impl Gauge {
    /// Sets the level (no-op while recording is disabled).
    #[inline]
    pub fn set(&self, value: i64) {
        if enabled() {
            self.value.store(value, Ordering::Relaxed);
        }
    }

    /// Moves the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

// -------------------------------------------------------------- registry

struct Registry<T: 'static> {
    map: RwLock<HashMap<String, &'static T>>,
}

impl<T> Default for Registry<T> {
    fn default() -> Self {
        Registry {
            map: RwLock::new(HashMap::new()),
        }
    }
}

impl<T> Registry<T> {
    /// Returns the interned instrument, creating (and leaking — the
    /// registry is process-lived by design) on first use.
    fn get_or(&self, name: &str, make: impl FnOnce() -> T) -> &'static T {
        if let Some(v) = read_unpoisoned(&self.map).get(name) {
            return v;
        }
        let mut map = write_unpoisoned(&self.map);
        if let Some(v) = map.get(name) {
            return v;
        }
        let leaked: &'static T = Box::leak(Box::new(make()));
        map.insert(name.to_string(), leaked);
        leaked
    }

    /// All instruments, sorted by name (the deterministic export order).
    fn sorted(&self) -> Vec<(String, &'static T)> {
        let mut out: Vec<(String, &'static T)> = read_unpoisoned(&self.map)
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

fn counters() -> &'static Registry<Counter> {
    static R: OnceLock<Registry<Counter>> = OnceLock::new();
    R.get_or_init(Registry::default)
}

fn gauges() -> &'static Registry<Gauge> {
    static R: OnceLock<Registry<Gauge>> = OnceLock::new();
    R.get_or_init(Registry::default)
}

fn histograms() -> &'static Registry<Histogram> {
    static R: OnceLock<Registry<Histogram>> = OnceLock::new();
    R.get_or_init(Registry::default)
}

/// The counter named `name` (interned on first use). `help` is kept from
/// the first registration and rendered as the Prometheus `# HELP` line.
pub fn counter(name: &str, help: &'static str) -> &'static Counter {
    counters().get_or(name, || Counter {
        help,
        value: AtomicU64::new(0),
    })
}

/// The gauge named `name` (interned on first use).
pub fn gauge(name: &str, help: &'static str) -> &'static Gauge {
    gauges().get_or(name, || Gauge {
        help,
        value: AtomicI64::new(0),
    })
}

/// The histogram named `name` (interned on first use).
pub fn histogram(name: &str, help: &'static str) -> &'static Histogram {
    histograms().get_or(name, || Histogram::new(help))
}

/// The per-backend, per-op-family dispatch-latency histogram
/// (`s4tf_dispatch_latency_us{backend=…,family=…}`), cached per thread by
/// pointer identity of the two `&'static str` keys so hot dispatch loops
/// never format a name or take the registry lock.
pub fn dispatch_hist(backend: &'static str, family: &'static str) -> &'static Histogram {
    thread_local! {
        static CACHE: std::cell::RefCell<Vec<((usize, usize), &'static Histogram)>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    let key = (backend.as_ptr() as usize, family.as_ptr() as usize);
    CACHE.with(|cache| {
        if let Some(&(_, h)) = cache.borrow().iter().find(|(k, _)| *k == key) {
            return h;
        }
        let h = histogram(
            &format!("s4tf_dispatch_latency_us{{backend=\"{backend}\",family=\"{family}\"}}"),
            "Latency from op dispatch to kernel completion, microseconds",
        );
        cache.borrow_mut().push((key, h));
        h
    })
}

/// Sorted counter (name, total) pairs — the export view.
pub fn counter_values() -> Vec<(String, u64)> {
    counters()
        .sorted()
        .into_iter()
        .map(|(n, c)| (n, c.value()))
        .collect()
}

/// Sorted gauge (name, level) pairs — the export view.
pub fn gauge_values() -> Vec<(String, i64)> {
    gauges()
        .sorted()
        .into_iter()
        .map(|(n, g)| (n, g.value()))
        .collect()
}

pub(crate) fn sorted_counters() -> Vec<(String, &'static Counter)> {
    counters().sorted()
}

pub(crate) fn sorted_gauges() -> Vec<(String, &'static Gauge)> {
    gauges().sorted()
}

pub(crate) fn sorted_histograms() -> Vec<(String, &'static Histogram)> {
    histograms().sorted()
}

pub(crate) fn counter_help(c: &Counter) -> &'static str {
    c.help
}

pub(crate) fn gauge_help(g: &Gauge) -> &'static str {
    g.help
}

// ---------------------------------------------------------------- shared

/// Read-locks ignoring poisoning: the registry holds no invariant a
/// panicked holder could have broken mid-update.
fn read_unpoisoned<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    match l.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn write_unpoisoned<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    match l.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

pub(crate) fn lock_unpoisoned<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Microseconds since the Unix epoch (snapshot timestamps; Chrome-track
/// timestamps come from the profiler's own clock).
pub(crate) fn now_unix_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Splits `fam{a="b"}` into the metric family and the inline label body.
pub(crate) fn split_family(name: &str) -> (&str, Option<&str>) {
    match (name.find('{'), name.ends_with('}')) {
        (Some(i), true) => (&name[..i], Some(&name[i + 1..name.len() - 1])),
        _ => (name, None),
    }
}

/// Appends a JSON string literal (quotes, backslashes and control bytes
/// escaped).
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` as a JSON-legal number (non-finite → 0).
pub(crate) fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&v.to_string());
    } else {
        out.push('0');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_intern_by_name() {
        set_enabled(true);
        let a = counter("s4tf_test_lib_total", "test");
        let b = counter("s4tf_test_lib_total", "ignored second help");
        assert!(std::ptr::eq(a, b));
        a.inc();
        b.add(2);
        assert_eq!(a.value(), 3);

        let g = gauge("s4tf_test_lib_gauge", "test");
        g.set(5);
        g.add(-2);
        assert_eq!(gauge("s4tf_test_lib_gauge", "").value(), 3);
    }

    #[test]
    fn split_family_handles_labels() {
        assert_eq!(split_family("a_total"), ("a_total", None));
        assert_eq!(
            split_family("a_total{x=\"y\",z=\"w\"}"),
            ("a_total", Some("x=\"y\",z=\"w\""))
        );
        // A stray brace without the closer is left alone.
        assert_eq!(split_family("a{b"), ("a{b", None));
    }

    #[test]
    fn json_string_escaping() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
