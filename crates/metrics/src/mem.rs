//! Live/peak memory attribution by allocating subsystem.
//!
//! The tensor storage layer reports every buffer allocation through
//! [`mem_alloc`]/[`mem_free`]. Subsystems scope the allocations they
//! cause with an RAII [`mem_site`] guard ("eager", "trace", "checkpoint",
//! …); unscoped allocations land on the default `"host"` site. Each site
//! keeps live/peak byte levels plus alloc/free counts, and a process
//! total is maintained alongside so the headline
//! `s4tf_mem_live_bytes`/`s4tf_mem_peak_bytes` gauges agree with the sum
//! of attributions.
//!
//! The hot path is a thread-local read, one site lookup (cached
//! per-thread by `&'static str` identity) and three relaxed atomics.

use crate::{read_unpoisoned, write_unpoisoned};
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

#[derive(Default)]
struct SiteStats {
    live: AtomicI64,
    peak: AtomicI64,
    allocs: AtomicU64,
    frees: AtomicU64,
}

impl SiteStats {
    fn on_alloc(&self, bytes: i64) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn on_free(&self, bytes: i64) {
        self.frees.fetch_add(1, Ordering::Relaxed);
        self.live.fetch_sub(bytes, Ordering::Relaxed);
    }
}

/// Process-total live/peak (kept alongside the per-site split so the
/// total never depends on summing sites).
static TOTAL: SiteStats = SiteStats {
    live: AtomicI64::new(0),
    peak: AtomicI64::new(0),
    allocs: AtomicU64::new(0),
    frees: AtomicU64::new(0),
};

fn sites() -> &'static RwLock<Vec<(&'static str, &'static SiteStats)>> {
    static SITES: OnceLock<RwLock<Vec<(&'static str, &'static SiteStats)>>> = OnceLock::new();
    SITES.get_or_init(|| RwLock::new(Vec::new()))
}

thread_local! {
    static CURRENT_SITE: Cell<&'static str> = const { Cell::new("host") };
    /// Per-thread memo of the last site looked up, keyed by pointer
    /// identity of the `&'static str` (site names are literals).
    static SITE_CACHE: Cell<Option<(*const u8, &'static SiteStats)>> = const { Cell::new(None) };
}

fn stats_for(site: &'static str) -> &'static SiteStats {
    if let Some((ptr, stats)) = SITE_CACHE.with(Cell::get) {
        if std::ptr::eq(ptr, site.as_ptr()) {
            return stats;
        }
    }
    let found = read_unpoisoned(sites())
        .iter()
        .find(|(name, _)| *name == site)
        .map(|(_, s)| *s);
    let stats = found.unwrap_or_else(|| {
        let mut table = write_unpoisoned(sites());
        if let Some((_, s)) = table.iter().find(|(name, _)| *name == site) {
            *s
        } else {
            let leaked: &'static SiteStats = Box::leak(Box::default());
            table.push((site, leaked));
            leaked
        }
    });
    SITE_CACHE.with(|c| c.set(Some((site.as_ptr(), stats))));
    stats
}

/// Restores the previous attribution site on drop.
pub struct MemSiteGuard {
    prev: &'static str,
}

impl Drop for MemSiteGuard {
    fn drop(&mut self) {
        CURRENT_SITE.with(|c| c.set(self.prev));
    }
}

/// Attributes allocations on this thread to `site` until the guard
/// drops.
pub fn mem_site(site: &'static str) -> MemSiteGuard {
    let prev = CURRENT_SITE.with(|c| c.replace(site));
    MemSiteGuard { prev }
}

/// Records a `bytes`-sized allocation against the current site and
/// returns that site, which the buffer must hand back to [`mem_free`] —
/// buffers outlive site scopes, so the credit site travels with the
/// buffer. Returns `""` (free becomes a no-op) while recording is
/// disabled.
#[inline]
pub fn mem_alloc(bytes: usize) -> &'static str {
    if !crate::enabled() {
        return "";
    }
    let site = CURRENT_SITE.with(Cell::get);
    stats_for(site).on_alloc(bytes as i64);
    TOTAL.on_alloc(bytes as i64);
    site
}

/// Records the matching free for a [`mem_alloc`] that returned `site`.
#[inline]
pub fn mem_free(site: &'static str, bytes: usize) {
    if site.is_empty() {
        return;
    }
    stats_for(site).on_free(bytes as i64);
    TOTAL.on_free(bytes as i64);
}

/// One site's attribution snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteMem {
    /// The allocating subsystem (`"eager"`, `"trace"`, `"checkpoint"`,
    /// `"host"`, …).
    pub site: &'static str,
    /// Bytes currently live that this site allocated.
    pub live_bytes: i64,
    /// High-water mark of this site's live bytes.
    pub peak_bytes: i64,
    /// Allocations attributed here.
    pub allocs: u64,
    /// Frees of buffers this site allocated.
    pub frees: u64,
}

/// Live/peak bytes broken down by allocating subsystem, sorted by site
/// name.
pub fn memory_by_site() -> Vec<SiteMem> {
    let mut out: Vec<SiteMem> = read_unpoisoned(sites())
        .iter()
        .map(|(site, s)| SiteMem {
            site,
            live_bytes: s.live.load(Ordering::Relaxed),
            peak_bytes: s.peak.load(Ordering::Relaxed),
            allocs: s.allocs.load(Ordering::Relaxed),
            frees: s.frees.load(Ordering::Relaxed),
        })
        .collect();
    out.sort_by_key(|m| m.site);
    out
}

/// Process-total (live, peak) bytes across every site.
pub(crate) fn totals() -> (i64, i64) {
    (
        TOTAL.live.load(Ordering::Relaxed),
        TOTAL.peak.load(Ordering::Relaxed),
    )
}

/// Zeroes every site and the process totals (tests; racing recorders
/// make this approximate at best outside of them).
pub fn reset_memory_by_site() {
    for (_, s) in read_unpoisoned(sites()).iter() {
        s.live.store(0, Ordering::Relaxed);
        s.peak.store(0, Ordering::Relaxed);
        s.allocs.store(0, Ordering::Relaxed);
        s.frees.store(0, Ordering::Relaxed);
    }
    TOTAL.live.store(0, Ordering::Relaxed);
    TOTAL.peak.store(0, Ordering::Relaxed);
    TOTAL.allocs.store(0, Ordering::Relaxed);
    TOTAL.frees.store(0, Ordering::Relaxed);
}

/// Refreshes the registry gauges from the attribution tables (called at
/// every export so scrapes and snapshots see current levels without the
/// hot path touching the registry).
pub(crate) fn publish() {
    let (live, peak) = totals();
    crate::gauge("s4tf_mem_live_bytes", "Live tensor-storage bytes").set(live);
    crate::gauge("s4tf_mem_peak_bytes", "Peak tensor-storage bytes").set(peak);
    for m in memory_by_site() {
        crate::gauge(
            &format!("s4tf_mem_site_live_bytes{{site=\"{}\"}}", m.site),
            "Live bytes by allocating subsystem",
        )
        .set(m.live_bytes);
        crate::gauge(
            &format!("s4tf_mem_site_peak_bytes{{site=\"{}\"}}", m.site),
            "Peak live bytes by allocating subsystem",
        )
        .set(m.peak_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sites_scope_and_nest() {
        crate::set_enabled(true);
        let outer = mem_alloc(8);
        let (inner, nested) = {
            let _g = mem_site("mem-test-a");
            let inner = mem_alloc(100);
            let nested = {
                let _g2 = mem_site("mem-test-b");
                mem_alloc(50)
            };
            (inner, nested)
        };
        assert_eq!(outer, "host");
        assert_eq!(inner, "mem-test-a");
        assert_eq!(nested, "mem-test-b");

        let by_site = memory_by_site();
        let get = |s: &str| *by_site.iter().find(|m| m.site == s).unwrap();
        assert_eq!(get("mem-test-a").live_bytes, 100);
        assert_eq!(get("mem-test-b").live_bytes, 50);

        // Frees credit the allocation site even after the scope is gone.
        mem_free(inner, 100);
        mem_free(nested, 50);
        mem_free(outer, 8);
        let by_site = memory_by_site();
        let get = |s: &str| *by_site.iter().find(|m| m.site == s).unwrap();
        assert_eq!(get("mem-test-a").live_bytes, 0);
        assert_eq!(get("mem-test-a").peak_bytes, 100);
        assert_eq!(get("mem-test-b").allocs, 1);
        assert_eq!(get("mem-test-b").frees, 1);
    }
}
