//! Windowed rate derivation over the counter registry.
//!
//! The sampler (or any [`crate::sample_now`] call) appends a timestamped
//! snapshot of every counter to a bounded ring. [`rate_per_sec`] then
//! answers "how fast is this counter moving" by diffing the counter's
//! current value against the oldest in-window sample — ops/sec,
//! bytes/sec over a sliding window, without the instruments themselves
//! carrying any timing state.

use crate::lock_unpoisoned;
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Ring capacity: at the default 1 s sampling cadence this holds over
/// two minutes of history.
const RING_CAP: usize = 128;

type Sample = (u64, Vec<(String, u64)>);

fn ring() -> &'static Mutex<VecDeque<Sample>> {
    static RING: OnceLock<Mutex<VecDeque<Sample>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Appends one timestamped counter snapshot (sampler tick).
pub(crate) fn tick() {
    let sample = (crate::now_unix_us(), crate::counter_values());
    let mut ring = lock_unpoisoned(ring());
    if ring.len() == RING_CAP {
        ring.pop_front();
    }
    ring.push_back(sample);
}

/// The counter's average rate per second over the trailing `window`
/// (`None` until a sample at least that old — but at least one tick —
/// exists). The newest endpoint is the counter's *current* value, so the
/// rate reflects activity since the last tick too.
pub fn rate_per_sec(name: &str, window: Duration) -> Option<f64> {
    let now = crate::now_unix_us();
    let current = crate::counter_values()
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v)?;
    let floor = now.saturating_sub(window.as_micros() as u64);
    let ring = lock_unpoisoned(ring());
    // Oldest sample still inside the window; fall back to the newest
    // sample older than it so short histories still answer.
    let base = ring
        .iter()
        .find(|(ts, _)| *ts >= floor)
        .or_else(|| ring.back())?;
    let dt_us = now.saturating_sub(base.0);
    if dt_us == 0 {
        return None;
    }
    let then = base
        .1
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0);
    Some(current.saturating_sub(then) as f64 * 1e6 / dt_us as f64)
}

/// `(name, rate/sec)` for every counter that moved within the window
/// (the snapshot export view; empty before the first tick).
pub(crate) fn all_rates(window: Duration) -> Vec<(String, f64)> {
    let now = crate::now_unix_us();
    let floor = now.saturating_sub(window.as_micros() as u64);
    let base = {
        let ring = lock_unpoisoned(ring());
        match ring
            .iter()
            .find(|(ts, _)| *ts >= floor)
            .or_else(|| ring.back())
        {
            Some(s) => s.clone(),
            None => return Vec::new(),
        }
    };
    let dt_us = now.saturating_sub(base.0);
    if dt_us == 0 {
        return Vec::new();
    }
    crate::counter_values()
        .into_iter()
        .filter_map(|(name, current)| {
            let then = base
                .1
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0);
            let delta = current.saturating_sub(then);
            (delta > 0).then(|| (name, delta as f64 * 1e6 / dt_us as f64))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_tracks_counter_movement() {
        crate::set_enabled(true);
        let c = crate::counter("s4tf_test_rate_total", "test");
        tick();
        c.add(1000);
        std::thread::sleep(Duration::from_millis(20));
        let r =
            rate_per_sec("s4tf_test_rate_total", Duration::from_secs(60)).expect("a tick exists");
        // 1000 increments over ≥20 ms → at most 50k/sec, and definitely
        // positive.
        assert!(r > 0.0 && r <= 60_000.0, "{r}");
    }
}
