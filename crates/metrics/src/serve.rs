//! The live-pull exporter: a minimal std `TcpListener` HTTP endpoint
//! serving [`crate::prometheus_text`].
//!
//! Deliberately tiny — one detached accept thread, one short-lived
//! handler thread per connection, `Connection: close` — because its job
//! is a scrape every few seconds, not traffic. Any `GET` path answers
//! with the full exposition; anything else gets `405`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// Binds `addr` (e.g. `127.0.0.1:9464`; port `0` picks a free one) and
/// serves Prometheus text exposition from a detached thread. Returns the
/// bound address.
pub fn start_server(addr: &str) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new()
        .name("s4tf-metrics-http".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                // One thread per scrape: handlers are short-lived and a
                // stuck client must not block the accept loop.
                let _ = std::thread::Builder::new()
                    .name("s4tf-metrics-conn".to_string())
                    .spawn(move || handle(stream));
            }
        })?;
    Ok(local)
}

fn handle(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));

    // Read until the end of the request head (or 8 KiB, whichever first);
    // the request body, if any, is irrelevant to a scrape.
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
        }
    }

    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let response = if request_line.starts_with(b"GET ") {
        let body = crate::prometheus_text();
        format!(
            "HTTP/1.1 200 OK\r\n\
             Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        )
    } else {
        "HTTP/1.1 405 Method Not Allowed\r\nAllow: GET\r\nContent-Length: 0\r\n\
         Connection: close\r\n\r\n"
            .to_string()
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}
