//! HDR-style log₂ histograms.
//!
//! Buckets cover the whole `u64` range with bounded *relative* width:
//! values below 32 get exact unit buckets; from 32 up, every power-of-two
//! octave is split into 32 sub-buckets of equal width (the classic
//! HdrHistogram layout with 5 significant bits). Bucket width is
//! therefore at most `lower_bound / 32`, so:
//!
//! - [`Histogram::quantile`] returns the bucket **midpoint**, which is
//!   within **1/64 ≈ 1.6 %** relative error of the true nearest-rank
//!   quantile for values ≥ 32, and exact below 32;
//! - recording is O(1): two relaxed adds plus one bucket increment, no
//!   locks, no allocation.
//!
//! Octaves above 2⁴⁴ (≈ 1.8 · 10¹³ — half a year in microseconds, 16 TiB
//! in bytes) collapse into one overflow bucket; quantiles landing there
//! clamp to its lower bound.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2⁵ = 32 sub-buckets per octave.
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Highest fully-resolved octave exponent.
const MAX_EXP: u32 = 44;
/// 32 exact unit buckets + 40 octaves × 32 sub-buckets (the last doubles
/// as the overflow bucket).
pub(crate) const N_BUCKETS: usize = SUB + (MAX_EXP - SUB_BITS + 1) as usize * SUB;

/// The bucket index `v` lands in.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    if exp > MAX_EXP {
        return N_BUCKETS - 1;
    }
    let sub = ((v >> (exp - SUB_BITS)) as usize) & (SUB - 1);
    SUB + (exp - SUB_BITS) as usize * SUB + sub
}

/// Inclusive lower bound of bucket `idx`.
pub(crate) fn bucket_lower(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let block = (idx - SUB) / SUB;
        let sub = (idx - SUB) % SUB;
        ((SUB + sub) as u64) << block
    }
}

/// Exclusive upper bound of bucket `idx` (`u64::MAX` for the overflow
/// bucket).
pub(crate) fn bucket_upper(idx: usize) -> u64 {
    if idx + 1 >= N_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(idx + 1)
    }
}

/// A concurrent log₂-bucketed histogram of `u64` observations
/// (microseconds, bytes, …). See the module docs for the error bounds.
pub struct Histogram {
    help: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Histogram {
    pub(crate) fn new(help: &'static str) -> Histogram {
        let mut buckets = Vec::with_capacity(N_BUCKETS);
        buckets.resize_with(N_BUCKETS, || AtomicU64::new(0));
        Histogram {
            help,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: buckets.into_boxed_slice(),
        }
    }

    pub(crate) fn help(&self) -> &'static str {
        self.help
    }

    /// Records one observation (no-op while recording is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// The nearest-rank `q`-quantile estimate (`q` in `[0, 1]`; 0 when
    /// empty). Exact for values < 32; within 1/64 relative error above
    /// (bucket midpoint — see the module docs).
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        let mut last_nonempty = 0usize;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            last_nonempty = i;
            seen += c;
            if seen >= target {
                return Self::estimate(i);
            }
        }
        // Concurrent recording can make `count` run ahead of the bucket
        // array; answer from the highest populated bucket.
        Self::estimate(last_nonempty)
    }

    fn estimate(idx: usize) -> f64 {
        let lo = bucket_lower(idx);
        if idx < SUB || idx + 1 >= N_BUCKETS {
            // Unit buckets are exact; the overflow bucket clamps.
            lo as f64
        } else {
            (lo as f64 + bucket_upper(idx) as f64) / 2.0
        }
    }

    /// `(exclusive_upper_bound, count)` for every non-empty bucket,
    /// ascending — the Prometheus `_bucket` series source. The overflow
    /// bucket reports `u64::MAX` (rendered as `+Inf`).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_upper(i), c))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_contiguous_and_monotonic() {
        for idx in 0..N_BUCKETS - 1 {
            assert_eq!(bucket_upper(idx), bucket_lower(idx + 1), "idx {idx}");
            assert!(bucket_lower(idx) < bucket_upper(idx), "idx {idx}");
        }
        assert_eq!(bucket_upper(N_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn every_value_lands_between_its_bucket_bounds() {
        let probes = [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1 << 20,
            (1 << 20) + 12345,
            u64::MAX / 2,
            u64::MAX,
        ];
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(idx < N_BUCKETS);
            if idx + 1 < N_BUCKETS {
                assert!(bucket_lower(idx) <= v && v < bucket_upper(idx), "v={v}");
            } else {
                assert!(v >= bucket_lower(idx), "v={v}");
            }
        }
    }

    #[test]
    fn relative_width_is_bounded() {
        for idx in SUB..N_BUCKETS - 1 {
            let lo = bucket_lower(idx);
            let width = bucket_upper(idx) - lo;
            // The documented bound: width ≤ lower/32.
            assert!(width * SUB as u64 <= lo, "idx {idx}: {lo} width {width}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        crate::set_enabled(true);
        let h = Histogram::new("");
        for v in [0u64, 1, 5, 31] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 37);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(0.5), 1.0);
        assert_eq!(h.quantile(1.0), 31.0);
    }
}
