//! Registry snapshots and the shared JSONL sink.
//!
//! One file (`S4TF_METRICS_FILE` or [`set_jsonl_path`]), one writer, one
//! schema: every line is a JSON object with a `"kind"` discriminator.
//! The training loop's per-step records (written through `s4tf-diag`)
//! carry `"kind":"step"`; the sampler's registry snapshots carry
//! `"kind":"snapshot"`:
//!
//! ```json
//! {"kind":"snapshot","ts_us":1717171717000000,
//!  "counters":{"s4tf_xla_cache_total{result=\"hit\"}":41},
//!  "gauges":{"s4tf_mem_live_bytes":524288},
//!  "histograms":{"s4tf_train_step_us":{"count":10,"sum":51234,
//!    "p50":4096.0,"p95":8320.0,"p99":8320.0}},
//!  "memory_by_site":{"eager":{"live_bytes":1024,"peak_bytes":4096,
//!    "allocs":12,"frees":10}},
//!  "rates":{"s4tf_xla_cache_total{result=\"hit\"}":12.5}}
//! ```
//!
//! The file is opened in append mode per write, so several short runs
//! can share one log and a crashed run loses at most the in-flight line.

use crate::{lock_unpoisoned, push_json_f64, push_json_string};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The window snapshot rates are computed over.
const RATE_WINDOW: Duration = Duration::from_secs(60);

static PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

const SINK_UNINIT: u8 = 0;
const SINK_OFF: u8 = 1;
const SINK_ON: u8 = 2;
static SINK: AtomicU8 = AtomicU8::new(SINK_UNINIT);

#[cold]
fn sink_init() -> bool {
    let state = match std::env::var("S4TF_METRICS_FILE") {
        Ok(p) if !p.is_empty() => {
            *lock_unpoisoned(&PATH) = Some(PathBuf::from(p));
            SINK_ON
        }
        _ => SINK_OFF,
    };
    let _ = SINK.compare_exchange(SINK_UNINIT, state, Ordering::Relaxed, Ordering::Relaxed);
    SINK.load(Ordering::Relaxed) == SINK_ON
}

/// Whether a JSONL sink is configured (`S4TF_METRICS_FILE` or
/// [`set_jsonl_path`]) — one relaxed load.
#[inline]
pub fn jsonl_enabled() -> bool {
    match SINK.load(Ordering::Relaxed) {
        SINK_UNINIT => sink_init(),
        s => s == SINK_ON,
    }
}

/// Points the JSONL sink at `path` (`None` disables). Overrides
/// `S4TF_METRICS_FILE`.
pub fn set_jsonl_path(path: Option<&Path>) {
    *lock_unpoisoned(&PATH) = path.map(Path::to_path_buf);
    SINK.store(
        if path.is_some() { SINK_ON } else { SINK_OFF },
        Ordering::Relaxed,
    );
}

/// The configured sink path, if any.
pub fn jsonl_path() -> Option<PathBuf> {
    if !jsonl_enabled() {
        return None;
    }
    lock_unpoisoned(&PATH).clone()
}

/// Appends one pre-rendered JSON line to the sink (no-op without one).
pub fn append_jsonl(line: &str) {
    if !jsonl_enabled() {
        return;
    }
    let Some(path) = lock_unpoisoned(&PATH).clone() else {
        return;
    };
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{line}"));
    if let Err(e) = result {
        eprintln!(
            "[s4tf-metrics] JSONL write to {} failed: {e}",
            path.display()
        );
    }
}

/// Renders the whole registry as one `"kind":"snapshot"` JSON line (no
/// trailing newline).
pub fn snapshot_json() -> String {
    crate::mem::publish();
    let mut out = String::with_capacity(1024);
    out.push_str("{\"kind\":\"snapshot\",\"ts_us\":");
    out.push_str(&crate::now_unix_us().to_string());

    out.push_str(",\"counters\":{");
    let mut first = true;
    for (name, value) in crate::counter_values() {
        sep(&mut out, &mut first);
        push_json_string(&mut out, &name);
        out.push(':');
        out.push_str(&value.to_string());
    }

    out.push_str("},\"gauges\":{");
    let mut first = true;
    for (name, value) in crate::gauge_values() {
        sep(&mut out, &mut first);
        push_json_string(&mut out, &name);
        out.push(':');
        out.push_str(&value.to_string());
    }

    out.push_str("},\"histograms\":{");
    let mut first = true;
    for (name, h) in crate::sorted_histograms() {
        sep(&mut out, &mut first);
        push_json_string(&mut out, &name);
        out.push_str(":{\"count\":");
        out.push_str(&h.count().to_string());
        out.push_str(",\"sum\":");
        out.push_str(&h.sum().to_string());
        for (key, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            push_json_f64(&mut out, h.quantile(q));
        }
        out.push('}');
    }

    out.push_str("},\"memory_by_site\":{");
    let mut first = true;
    for m in crate::memory_by_site() {
        sep(&mut out, &mut first);
        push_json_string(&mut out, m.site);
        out.push_str(":{\"live_bytes\":");
        out.push_str(&m.live_bytes.to_string());
        out.push_str(",\"peak_bytes\":");
        out.push_str(&m.peak_bytes.to_string());
        out.push_str(",\"allocs\":");
        out.push_str(&m.allocs.to_string());
        out.push_str(",\"frees\":");
        out.push_str(&m.frees.to_string());
        out.push('}');
    }

    out.push_str("},\"rates\":{");
    let mut first = true;
    for (name, rate) in crate::rate::all_rates(RATE_WINDOW) {
        sep(&mut out, &mut first);
        push_json_string(&mut out, &name);
        out.push(':');
        push_json_f64(&mut out, rate);
    }
    out.push_str("}}");
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}
