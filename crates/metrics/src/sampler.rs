//! The periodic sampler: JSONL snapshots + Chrome-trace counter tracks.
//!
//! Started by `S4TF_METRICS_INTERVAL` (e.g. `250ms`, `1s`, or a number
//! of seconds) or [`start_sampler`]. Each tick:
//!
//! 1. appends a counter snapshot to the rate ring (powers
//!    [`crate::rate_per_sec`]);
//! 2. forwards every gauge to `s4tf_profile::gauge_set`, so the Chrome
//!    trace grows `"ph":"C"` counter tracks (live bytes, queue depths)
//!    alongside the span flame graph;
//! 3. appends one `"kind":"snapshot"` line to the JSONL sink, when one
//!    is configured.
//!
//! [`sample_now`] runs one tick synchronously — tests and short-lived
//! examples use it to flush a snapshot without waiting out an interval.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Runs one sampler tick synchronously.
pub fn sample_now() {
    crate::mem::publish();
    crate::rate::tick();
    if s4tf_profile::enabled() {
        for (name, value) in crate::gauge_values() {
            s4tf_profile::gauge_set(name, value as f64);
        }
    }
    if crate::jsonl_enabled() {
        crate::append_jsonl(&crate::snapshot_json());
    }
}

/// Spawns the detached sampler thread (idempotent; the first interval
/// wins).
pub fn start_sampler(interval: Duration) {
    static STARTED: AtomicBool = AtomicBool::new(false);
    if STARTED.swap(true, Ordering::Relaxed) {
        return;
    }
    let interval = interval.max(Duration::from_millis(1));
    let _ = std::thread::Builder::new()
        .name("s4tf-metrics-sampler".to_string())
        .spawn(move || loop {
            std::thread::sleep(interval);
            sample_now();
        });
}

/// Parses `S4TF_METRICS_INTERVAL`: `250ms`, `2s`, or a bare (possibly
/// fractional) number of seconds.
pub(crate) fn parse_interval(s: &str) -> Option<Duration> {
    let s = s.trim();
    let (number, scale) = if let Some(ms) = s.strip_suffix("ms") {
        (ms, 1e-3)
    } else if let Some(secs) = s.strip_suffix('s') {
        (secs, 1.0)
    } else {
        (s, 1.0)
    };
    let v: f64 = number.trim().parse().ok()?;
    (v.is_finite() && v > 0.0).then(|| Duration::from_secs_f64(v * scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_parsing() {
        assert_eq!(parse_interval("250ms"), Some(Duration::from_millis(250)));
        assert_eq!(parse_interval("2s"), Some(Duration::from_secs(2)));
        assert_eq!(parse_interval("0.5"), Some(Duration::from_millis(500)));
        assert_eq!(parse_interval(" 1 "), Some(Duration::from_secs(1)));
        assert_eq!(parse_interval("0"), None);
        assert_eq!(parse_interval("-1s"), None);
        assert_eq!(parse_interval("soon"), None);
    }
}
