// Inert mirror of the `s4tf-metrics` surface the runtime crates
// instrument against. Not compiled into `s4tf-metrics` itself: consumer
// crates `include!` this file from their `met.rs` shim when their
// `metrics` feature is off, so every instrumentation site compiles
// identically and costs nothing (see `s4tf-profile`'s shim for the
// pattern).

/// Inert stand-in for `s4tf_metrics::Counter`.
pub(crate) struct Counter;

impl Counter {
    #[inline(always)]
    pub(crate) fn add(&self, _delta: u64) {}
    #[inline(always)]
    pub(crate) fn inc(&self) {}
    #[inline(always)]
    pub(crate) fn value(&self) -> u64 {
        0
    }
}

/// Inert stand-in for `s4tf_metrics::Gauge`.
pub(crate) struct Gauge;

impl Gauge {
    #[inline(always)]
    pub(crate) fn set(&self, _value: i64) {}
    #[inline(always)]
    pub(crate) fn add(&self, _delta: i64) {}
    #[inline(always)]
    pub(crate) fn value(&self) -> i64 {
        0
    }
}

/// Inert stand-in for `s4tf_metrics::Histogram`.
pub(crate) struct Histogram;

impl Histogram {
    #[inline(always)]
    pub(crate) fn record(&self, _v: u64) {}
    #[inline(always)]
    pub(crate) fn count(&self) -> u64 {
        0
    }
    #[inline(always)]
    pub(crate) fn sum(&self) -> u64 {
        0
    }
    #[inline(always)]
    pub(crate) fn mean(&self) -> f64 {
        0.0
    }
    #[inline(always)]
    pub(crate) fn quantile(&self, _q: f64) -> f64 {
        0.0
    }
}

static NOOP_COUNTER: Counter = Counter;
static NOOP_GAUGE: Gauge = Gauge;
static NOOP_HISTOGRAM: Histogram = Histogram;

#[inline(always)]
pub(crate) fn enabled() -> bool {
    false
}

#[inline(always)]
pub(crate) fn counter(_name: &str, _help: &'static str) -> &'static Counter {
    &NOOP_COUNTER
}

#[inline(always)]
pub(crate) fn gauge(_name: &str, _help: &'static str) -> &'static Gauge {
    &NOOP_GAUGE
}

#[inline(always)]
pub(crate) fn dispatch_hist(_backend: &'static str, _family: &'static str) -> &'static Histogram {
    &NOOP_HISTOGRAM
}

#[inline(always)]
pub(crate) fn histogram(_name: &str, _help: &'static str) -> &'static Histogram {
    &NOOP_HISTOGRAM
}

/// Inert stand-in for `s4tf_metrics::MemSiteGuard`.
pub(crate) struct MemSiteGuard;

#[inline(always)]
pub(crate) fn mem_site(_site: &'static str) -> MemSiteGuard {
    MemSiteGuard
}

#[inline(always)]
pub(crate) fn mem_alloc(_bytes: usize) -> &'static str {
    ""
}

#[inline(always)]
pub(crate) fn mem_free(_site: &'static str, _bytes: usize) {}

/// Inert stand-in for `s4tf_metrics::SiteMem`.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SiteMem {
    pub(crate) site: &'static str,
    pub(crate) live_bytes: i64,
    pub(crate) peak_bytes: i64,
    pub(crate) allocs: u64,
    pub(crate) frees: u64,
}

#[inline(always)]
pub(crate) fn memory_by_site() -> Vec<SiteMem> {
    Vec::new()
}

#[inline(always)]
pub(crate) fn sample_now() {}
