//! Prometheus text exposition (format version 0.0.4).
//!
//! Families are grouped and sorted by name, each introduced by `# HELP` /
//! `# TYPE` lines. Histograms render the standard cumulative
//! `_bucket{le="…"}` series (only non-empty buckets plus the mandatory
//! `le="+Inf"` — cumulative counts stay valid under omission) followed by
//! `_sum` and `_count`. Instrument names may carry inline labels
//! (`fam{backend="eager"}`); the family line uses the bare name and the
//! labels are spliced into every series.
//!
//! Observations are integers, so a bucket's exclusive upper bound `u`
//! is rendered as `le="u-1"` — the exact inclusive bound.

use crate::split_family;
use std::collections::BTreeMap;
use std::fmt::Write as _;

enum Series<'a> {
    Counter(&'a str, u64),
    Gauge(&'a str, i64),
    Histogram(Option<&'a str>, &'a crate::Histogram),
}

/// Renders the whole registry (refreshing the memory gauges first) as
/// Prometheus text.
pub fn prometheus_text() -> String {
    crate::mem::publish();
    let counters = crate::sorted_counters();
    let gauges = crate::sorted_gauges();
    let hists = crate::sorted_histograms();

    // family → (type, help, series) — BTreeMap gives the sorted, grouped
    // exposition order.
    let mut families: BTreeMap<&str, (&'static str, &'static str, Vec<Series>)> = BTreeMap::new();
    for (name, c) in &counters {
        let (family, _) = split_family(name);
        families
            .entry(family)
            .or_insert_with(|| ("counter", crate::counter_help(c), Vec::new()))
            .2
            .push(Series::Counter(name, c.value()));
    }
    for (name, g) in &gauges {
        let (family, _) = split_family(name);
        families
            .entry(family)
            .or_insert_with(|| ("gauge", crate::gauge_help(g), Vec::new()))
            .2
            .push(Series::Gauge(name, g.value()));
    }
    for (name, h) in &hists {
        let (family, labels) = split_family(name);
        families
            .entry(family)
            .or_insert_with(|| ("histogram", h.help(), Vec::new()))
            .2
            .push(Series::Histogram(labels, h));
    }

    let mut out = String::with_capacity(4096);
    for (family, (kind, help, series)) in families {
        if !help.is_empty() {
            let _ = writeln!(out, "# HELP {family} {help}");
        }
        let _ = writeln!(out, "# TYPE {family} {kind}");
        for s in series {
            match s {
                Series::Counter(name, v) => {
                    let _ = writeln!(out, "{name} {v}");
                }
                Series::Gauge(name, v) => {
                    let _ = writeln!(out, "{name} {v}");
                }
                Series::Histogram(labels, h) => render_histogram(&mut out, family, labels, h),
            }
        }
    }
    out
}

fn render_histogram(out: &mut String, family: &str, labels: Option<&str>, h: &crate::Histogram) {
    let with = |extra: &str| -> String {
        match (labels, extra.is_empty()) {
            (Some(l), false) => format!("{{{l},{extra}}}"),
            (Some(l), true) => format!("{{{l}}}"),
            (None, false) => format!("{{{extra}}}"),
            (None, true) => String::new(),
        }
    };
    let mut cumulative = 0u64;
    for (upper, count) in h.nonzero_buckets() {
        cumulative += count;
        if upper == u64::MAX {
            continue; // the overflow bucket only shows in +Inf
        }
        let le = upper - 1; // exclusive → inclusive (integer values)
        let series = with(&format!("le=\"{le}\""));
        let _ = writeln!(out, "{family}_bucket{series} {cumulative}");
    }
    let inf = with("le=\"+Inf\"");
    let _ = writeln!(out, "{family}_bucket{inf} {}", h.count());
    let plain = with("");
    let _ = writeln!(out, "{family}_sum{plain} {}", h.sum());
    let _ = writeln!(out, "{family}_count{plain} {}", h.count());
}
