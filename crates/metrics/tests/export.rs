//! Export-path tests: the Prometheus text exposition (golden block +
//! format lint), the live TCP scrape endpoint, and the JSON snapshot
//! shape.
//!
//! All tests share one process-wide registry, so every instrument name
//! is unique to this file and assertions are block/substring-based —
//! the registry accumulates instruments from whichever test ran first.

use s4tf_metrics::{
    counter, gauge, histogram, mem_alloc, mem_free, mem_site, memory_by_site, prometheus_text,
    set_enabled, snapshot_json, start_server,
};
use std::io::{Read, Write};
use std::net::TcpStream;

/// The canonical histogram rendering: cumulative `_bucket` series over
/// the non-empty buckets (inclusive `le` bounds), the mandatory `+Inf`,
/// then `_sum` and `_count`, with inline instrument labels spliced into
/// every series.
#[test]
fn prometheus_text_golden_block() {
    set_enabled(true);
    let h = histogram(
        "s4tf_test_export_us{backend=\"golden\"}",
        "export golden test",
    );
    h.record(1);
    h.record(2);
    h.record(3);
    counter("s4tf_test_export_total", "export golden counter").add(7);
    gauge("s4tf_test_export_depth", "export golden gauge").set(-3);

    let text = prometheus_text();

    let hist_block = "\
# HELP s4tf_test_export_us export golden test
# TYPE s4tf_test_export_us histogram
s4tf_test_export_us_bucket{backend=\"golden\",le=\"1\"} 1
s4tf_test_export_us_bucket{backend=\"golden\",le=\"2\"} 2
s4tf_test_export_us_bucket{backend=\"golden\",le=\"3\"} 3
s4tf_test_export_us_bucket{backend=\"golden\",le=\"+Inf\"} 3
s4tf_test_export_us_sum{backend=\"golden\"} 6
s4tf_test_export_us_count{backend=\"golden\"} 3
";
    assert!(
        text.contains(hist_block),
        "histogram block missing or mis-rendered:\n{text}"
    );
    assert!(text.contains("# TYPE s4tf_test_export_total counter\ns4tf_test_export_total 7\n"));
    assert!(text.contains("# TYPE s4tf_test_export_depth gauge\ns4tf_test_export_depth -3\n"));
}

/// Every line of the exposition is either a comment or
/// `name[{labels}] value` with a parseable numeric value — the format
/// lint a Prometheus scraper effectively applies.
#[test]
fn prometheus_text_is_well_formed() {
    set_enabled(true);
    counter("s4tf_test_export_lint_total", "lint seed").inc();
    let text = prometheus_text();
    assert!(!text.is_empty());
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "bad comment line: {line}"
            );
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line without value: {line:?}"));
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable value in line: {line:?}"
        );
        // Series name: bare metric or metric{labels}; never whitespace.
        let name = series.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad series name in line: {line:?}"
        );
        if let Some(rest) = series.strip_prefix(name) {
            if !rest.is_empty() {
                assert!(
                    rest.starts_with('{') && rest.ends_with('}'),
                    "bad label section in line: {line:?}"
                );
            }
        }
    }
}

/// Histograms must render cumulative bucket counts ending exactly at
/// `_count` — the invariant PromQL's `histogram_quantile` relies on.
#[test]
fn prometheus_buckets_are_cumulative() {
    set_enabled(true);
    let h = histogram("s4tf_test_export_cumulative_us", "cumulative check");
    for v in [5u64, 50, 500, 5_000, 50_000] {
        h.record(v);
    }
    let text = prometheus_text();
    let mut last = 0u64;
    let mut inf = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("s4tf_test_export_cumulative_us_bucket{le=") {
            let count: u64 = rest.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= last, "non-cumulative bucket: {line}");
            last = count;
            if rest.starts_with("\"+Inf\"") {
                inf = Some(count);
            }
        }
    }
    assert_eq!(inf, Some(5), "le=\"+Inf\" must equal the observation count");
}

/// A live scrape over TCP: bind an ephemeral port, GET it, and get the
/// full exposition back with the right status, content type and length.
#[test]
fn tcp_scrape_returns_prometheus_text() {
    set_enabled(true);
    counter("s4tf_test_export_scrape_total", "scrape seed").add(42);
    let addr = start_server("127.0.0.1:0").expect("bind ephemeral port");

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();

    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
    assert!(response.contains("Content-Type: text/plain; version=0.0.4"));
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length header")
        .parse()
        .unwrap();
    assert_eq!(content_length, body.len());
    assert!(body.contains("s4tf_test_export_scrape_total 42"));
    assert!(body.contains("# TYPE s4tf_test_export_scrape_total counter"));

    // Non-GET requests are refused, not served.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 405 "), "{response}");
}

/// The sampler's JSONL snapshot parses and carries the full registry
/// cross-section: kind discriminator, timestamp, counters, gauges,
/// histogram quantile digests, memory-by-site and rates.
#[test]
fn snapshot_json_shape() {
    set_enabled(true);
    counter("s4tf_test_export_snap_total", "snapshot seed").add(5);
    gauge("s4tf_test_export_snap_depth", "snapshot seed").set(11);
    let h = histogram("s4tf_test_export_snap_us", "snapshot seed");
    for v in [100u64, 200, 300] {
        h.record(v);
    }
    let site = {
        let _g = mem_site("export-test");
        mem_alloc(4096)
    };

    let line = snapshot_json();
    let value: serde_json::Value = serde_json::from_str(&line).expect("snapshot parses");

    assert_eq!(
        value.get("kind"),
        Some(&serde_json::Value::Str("snapshot".to_string()))
    );
    assert!(
        matches!(
            value.get("ts_us"),
            Some(serde_json::Value::UInt(_) | serde_json::Value::Int(_))
        ),
        "ts_us missing or non-numeric"
    );
    let counters = value.get("counters").expect("counters object");
    assert!(
        matches!(
            counters.get("s4tf_test_export_snap_total"),
            Some(serde_json::Value::UInt(5) | serde_json::Value::Int(5))
        ),
        "snapshot counter wrong: {line}"
    );
    let gauges = value.get("gauges").expect("gauges object");
    assert!(gauges.get("s4tf_test_export_snap_depth").is_some());

    let digest = value
        .get("histograms")
        .and_then(|h| h.get("s4tf_test_export_snap_us"))
        .expect("histogram digest");
    for key in ["count", "sum", "p50", "p95", "p99"] {
        assert!(digest.get(key).is_some(), "digest missing {key}: {line}");
    }

    let by_site = value.get("memory_by_site").expect("memory_by_site object");
    let entry = by_site.get("export-test").expect("export-test site");
    for key in ["live_bytes", "peak_bytes", "allocs", "frees"] {
        assert!(entry.get(key).is_some(), "site entry missing {key}");
    }
    assert!(value.get("rates").is_some());

    mem_free(site, 4096);
    let after = memory_by_site();
    let m = after.iter().find(|m| m.site == "export-test").unwrap();
    assert_eq!(m.live_bytes, 0);
    assert_eq!(m.peak_bytes, 4096);
}

/// Exports publish the memory gauges: after an attributed allocation the
/// exposition carries both the headline live-bytes gauge and the
/// per-site breakdown series.
#[test]
fn memory_gauges_reach_the_exposition() {
    set_enabled(true);
    let site = {
        let _g = mem_site("export-gauge-test");
        mem_alloc(1 << 20)
    };
    let text = prometheus_text();
    assert!(text.contains("# TYPE s4tf_mem_live_bytes gauge"));
    assert!(text.contains("s4tf_mem_site_live_bytes{site=\"export-gauge-test\"} 1048576"));
    mem_free(site, 1 << 20);
}
