//! The shared JSONL sink: one file, one writer, lines discriminated by
//! `"kind"`. Kept in its own test binary because the sink path is
//! process-global — other test binaries must not race it.

use s4tf_metrics::{
    append_jsonl, counter, jsonl_enabled, jsonl_path, sample_now, set_enabled, set_jsonl_path,
};
use std::path::PathBuf;

fn scratch_file() -> PathBuf {
    std::env::temp_dir().join(format!(
        "s4tf_metrics_sink_test_{}.jsonl",
        std::process::id()
    ))
}

/// Step-style lines (what `s4tf-diag` appends) and sampler snapshots
/// land in the same file, every line parses, and each carries the
/// `kind` discriminator.
#[test]
fn step_and_snapshot_lines_share_one_file() {
    set_enabled(true);
    let path = scratch_file();
    let _ = std::fs::remove_file(&path);

    set_jsonl_path(Some(&path));
    assert!(jsonl_enabled());
    assert_eq!(jsonl_path(), Some(path.clone()));

    // A training-step record, as the diag stream renders it.
    append_jsonl(
        "{\"kind\":\"step\",\"step\":1,\"loss\":0.5,\"grad_norm\":1.0,\
         \"examples_per_sec\":100,\"peak_bytes\":0,\"live_bytes\":0,\
         \"backend\":\"naive\"}",
    );
    // A sampler tick appends one registry snapshot.
    counter("s4tf_test_sink_total", "sink test seed").inc();
    sample_now();

    let contents = std::fs::read_to_string(&path).expect("sink file exists");
    let lines: Vec<&str> = contents.lines().collect();
    assert_eq!(lines.len(), 2, "expected step + snapshot:\n{contents}");

    let mut kinds = Vec::new();
    for line in &lines {
        let value: serde_json::Value = serde_json::from_str(line).expect("line parses");
        match value.get("kind") {
            Some(serde_json::Value::Str(k)) => kinds.push(k.clone()),
            other => panic!("line without kind ({other:?}): {line}"),
        }
    }
    assert_eq!(kinds, ["step", "snapshot"]);

    // The snapshot carries the counter recorded before the tick.
    let snap: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
    assert!(
        snap.get("counters")
            .and_then(|c| c.get("s4tf_test_sink_total"))
            .is_some(),
        "snapshot missing registry counter: {}",
        lines[1]
    );

    // Disabling the sink makes appends no-ops again.
    set_jsonl_path(None);
    assert!(!jsonl_enabled());
    append_jsonl("{\"kind\":\"step\"}");
    let after = std::fs::read_to_string(&path).unwrap();
    assert_eq!(
        after.lines().count(),
        2,
        "write-after-disable leaked through"
    );

    let _ = std::fs::remove_file(&path);
}
