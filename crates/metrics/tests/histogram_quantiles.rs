//! Histogram correctness: quantile estimates against an exact sorted
//! reference, concurrent recording, and the documented edge cases.
//!
//! The documented bound (see `s4tf_metrics::hist`): `quantile(q)` is the
//! midpoint of the bucket containing the true nearest-rank quantile, so
//! it is exact for values < 32 and within `1/64` relative error for
//! values ≥ 32 (bucket width ≤ lower_bound / 32).

use proptest::prelude::*;
use s4tf_metrics::{histogram, set_enabled, Histogram};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fresh, uniquely named histogram (the registry interns by name and
/// never forgets, so each test case gets its own instrument).
fn fresh_hist() -> &'static Histogram {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    histogram(
        &format!("s4tf_test_quantile_case_{id}"),
        "quantile proptest scratch",
    )
}

/// Exact nearest-rank quantile: the value at rank `ceil(q·n)` (1-based)
/// of the sorted sample.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    /// p0/p25/p50/p90/p95/p99/p100 all land within the documented
    /// relative-error bound of the exact sorted reference.
    #[test]
    fn quantiles_within_documented_bound(
        values in prop::collection::vec(0u64..(1u64 << 40), 1..200),
    ) {
        set_enabled(true);
        let h = fresh_hist();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();

        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let est = h.quantile(q);
            let truth = exact_quantile(&sorted, q);
            if truth < 32 {
                // Unit buckets: exact.
                prop_assert_eq!(est, truth as f64, "q={} values={:?}", q, values);
            } else {
                let err = (est - truth as f64).abs();
                let bound = truth as f64 / 64.0;
                prop_assert!(
                    err <= bound + 1e-9,
                    "q={}: est {} vs exact {} (err {} > bound {})",
                    q, est, truth, err, bound
                );
            }
        }
    }

    /// `quantile` is monotone in `q` — a p99 can never undercut a p50.
    #[test]
    fn quantiles_are_monotone_in_q(
        values in prop::collection::vec(0u64..(1u64 << 40), 1..100),
    ) {
        set_enabled(true);
        let h = fresh_hist();
        for &v in &values {
            h.record(v);
        }
        let mut prev = -1.0f64;
        for i in 0..=20 {
            let cur = h.quantile(i as f64 / 20.0);
            prop_assert!(cur >= prev, "quantile({}) = {} < {}", i as f64 / 20.0, cur, prev);
            prev = cur;
        }
    }

    /// `count`/`sum`/`mean` agree with the recorded sample exactly.
    #[test]
    fn count_and_sum_are_exact(
        values in prop::collection::vec(0u64..(1u64 << 32), 0..100),
    ) {
        set_enabled(true);
        let h = fresh_hist();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let sum: u64 = values.iter().sum();
        prop_assert_eq!(h.sum(), sum);
        if values.is_empty() {
            prop_assert_eq!(h.mean(), 0.0);
        } else {
            prop_assert!((h.mean() - sum as f64 / values.len() as f64).abs() < 1e-9);
        }
    }
}

/// Eight threads hammer one histogram; totals come out exact (relaxed
/// atomics lose nothing, they only reorder).
#[test]
fn concurrent_recording_is_lossless() {
    set_enabled(true);
    let h = fresh_hist();
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // A spread of octaves, deterministic per thread.
                    h.record((t * 1000 + i) % 100_000);
                }
            });
        }
    });
    assert_eq!(h.count(), THREADS * PER_THREAD);
    let expected: u64 = (0..THREADS)
        .flat_map(|t| (0..PER_THREAD).map(move |i| (t * 1000 + i) % 100_000))
        .sum();
    assert_eq!(h.sum(), expected);
    // Quantiles stay ordered and inside the recorded range.
    let p50 = h.quantile(0.5);
    let p99 = h.quantile(0.99);
    assert!(p50 <= p99);
    assert!(h.quantile(1.0) <= 100_000.0 * (1.0 + 1.0 / 64.0));
}

/// Values past the highest resolved octave (2⁴⁴) collapse into the
/// overflow bucket, and quantiles landing there clamp to its lower bound
/// instead of inventing a midpoint with `u64::MAX`.
#[test]
fn overflow_bucket_clamps() {
    set_enabled(true);
    let h = fresh_hist();
    h.record(u64::MAX);
    h.record(u64::MAX / 2);
    assert_eq!(h.count(), 2);
    let p99 = h.quantile(0.99);
    assert!(p99.is_finite());
    assert!(p99 <= (u64::MAX / 2) as f64);
    assert!(p99 >= (1u64 << 44) as f64);
}

/// An empty histogram answers 0 for everything rather than panicking.
#[test]
fn empty_histogram_is_all_zero() {
    let h = fresh_hist();
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0);
    assert_eq!(h.mean(), 0.0);
    assert_eq!(h.quantile(0.5), 0.0);
}
