//! Measured machine ceilings for roofline reporting.
//!
//! [`machine_probe`] runs two short microbenchmarks — a dependent-free
//! multiply-add loop for peak single-thread f32 FLOP/s and a large
//! out-of-cache buffer copy for peak memory bandwidth — and caches the
//! result for the process lifetime. The ceilings are *practical* peaks
//! (what straightforward compiled Rust achieves on one core), which is
//! the honest denominator for kernels that are themselves straightforward
//! compiled Rust.
//!
//! The FLOP probe exists per *dispatch path* ([`machine_probe_path`]):
//! the SIMD-path probe runs the same lane-chunked `f32::mul_add` pattern
//! the vectorized kernels use, inside the same `avx2,fma` target-feature
//! frame, so kernel GFLOP/s and the roofline ceiling are measured like
//! for like. (An earlier revision probed `mul_add` *without* the
//! target-feature frame; it lowered to a libm call and under-reported
//! the ceiling ~60×, pinned by `simd_probe_ceiling_is_sane` below.)
//! Which path [`machine_probe`] reports follows the same `S4TF_SIMD` +
//! CPU-detection rule the kernels use — duplicated here because this
//! crate sits *below* `s4tf-tensor` (where the dispatch switch lives) in
//! the dependency graph. Programmatic `set_simd_enabled` overrides are
//! not visible at this level; benches that flip paths ask for
//! [`machine_probe_path`] explicitly.

use std::hint::black_box;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Measured machine ceilings, single-threaded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineProfile {
    /// Peak sustained f32 GFLOP/s (fma loop, one core).
    pub peak_gflops: f64,
    /// Peak sustained memory bandwidth in GB/s (streaming copy, read +
    /// write counted, one core).
    pub peak_gbps: f64,
}

impl MachineProfile {
    /// The attainable GFLOP/s roof for a kernel of the given arithmetic
    /// intensity (FLOPs per byte): `min(peak_gflops, intensity · peak_gbps)`.
    pub fn roof_gflops(&self, intensity: f64) -> f64 {
        self.peak_gflops.min(intensity * self.peak_gbps)
    }

    /// Intensity at which the machine transitions from bandwidth-bound to
    /// compute-bound (the roofline "ridge point"), in FLOPs/byte.
    pub fn ridge_intensity(&self) -> f64 {
        if self.peak_gbps > 0.0 {
            self.peak_gflops / self.peak_gbps
        } else {
            0.0
        }
    }
}

/// True when this CPU can run the SIMD dispatch path's target features
/// (the same test `s4tf_tensor::simd_supported` performs).
pub fn simd_probe_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static SUPPORTED: OnceLock<bool> = OnceLock::new();
        *SUPPORTED.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(target_arch = "aarch64")]
    {
        true
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// The dispatch path the kernels select by default: `S4TF_SIMD` (off
/// values `0`/`false`/`off`/`no`, default on) ANDed with CPU support.
fn simd_env_active() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        !std::env::var("S4TF_SIMD")
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                v == "0" || v == "false" || v == "off" || v == "no"
            })
            .unwrap_or(false)
    }) && simd_probe_supported()
}

/// Probes (once per process, then cached) the machine's practical peak
/// FLOP rate and memory bandwidth *on the active dispatch path* (see the
/// module docs). Costs roughly 100 ms on first call.
pub fn machine_probe() -> MachineProfile {
    machine_probe_path(simd_env_active())
}

/// Ceilings for one dispatch path: `simd = true` probes the lane-chunked
/// `mul_add` pattern the vectorized kernels run (falling back to the
/// scalar pattern when the CPU lacks the features), `false` the plain
/// multiply-add loop of the scalar reference kernels. Cached per path.
pub fn machine_probe_path(simd: bool) -> MachineProfile {
    static SCALAR: OnceLock<MachineProfile> = OnceLock::new();
    static SIMD: OnceLock<MachineProfile> = OnceLock::new();
    let simd = simd && simd_probe_supported();
    let cell = if simd { &SIMD } else { &SCALAR };
    *cell.get_or_init(|| MachineProfile {
        peak_gflops: if simd {
            probe_flops_simd()
        } else {
            probe_flops_scalar()
        },
        peak_gbps: probe_bandwidth(),
    })
}

/// Peak scalar-path f32 FLOP/s: 64 independent accumulators of `a*s + b`
/// (2 FLOPs each), wide enough to autovectorize and hide arithmetic
/// latency. Deliberately a plain multiply-add, not `f32::mul_add`:
/// without fused codegen the latter lowers to a libm call and would
/// report a ceiling far below what the scalar kernels (plain mul + add)
/// achieve.
fn probe_flops_scalar() -> f64 {
    let mut acc = [1.0f32; 64];
    let scale = black_box(1.000_000_1f32);
    let bias = black_box(1.0e-9f32);
    let mut passes = 0u64;
    let start = Instant::now();
    loop {
        for _ in 0..512 {
            for a in acc.iter_mut() {
                *a = *a * scale + bias;
            }
        }
        passes += 512;
        if start.elapsed() >= Duration::from_millis(40) {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    black_box(acc);
    (passes as f64 * acc.len() as f64 * 2.0) / secs / 1e9
}

/// The SIMD-path probe body: 12 independent 8-wide lanes of
/// `f32::mul_add` — the exact accumulator pattern of the 6×16 GEMM
/// micro-kernel. Must be inlined into a target-feature frame to compile
/// as `vfmadd` (see [`probe_flops_simd`]).
#[inline(always)]
fn probe_flops_lanes_body() -> f64 {
    const LANES: usize = 8;
    const ACCS: usize = 12;
    let mut acc = [[1.0f32; LANES]; ACCS];
    let scale = black_box([1.000_000_1f32; LANES]);
    let bias = black_box([1.0e-9f32; LANES]);
    let mut passes = 0u64;
    let start = Instant::now();
    loop {
        for _ in 0..512 {
            for a in acc.iter_mut() {
                for j in 0..LANES {
                    a[j] = a[j].mul_add(scale[j], bias[j]);
                }
            }
        }
        passes += 512;
        if start.elapsed() >= Duration::from_millis(40) {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    black_box(acc);
    (passes as f64 * (ACCS * LANES) as f64 * 2.0) / secs / 1e9
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn probe_flops_lanes_x86() -> f64 {
    probe_flops_lanes_body()
}

/// Peak SIMD-path f32 FLOP/s. Callers guarantee [`simd_probe_supported`].
fn probe_flops_simd() -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: gated on runtime detection in `machine_probe_path`.
        unsafe { probe_flops_lanes_x86() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        probe_flops_lanes_body()
    }
}

/// Peak memory bandwidth: stream-copy a 32 MiB f32 buffer (large enough
/// to defeat last-level caches), counting each pass as read + write.
fn probe_bandwidth() -> f64 {
    const ELEMS: usize = 8 << 20; // 8 Mi f32 = 32 MiB per buffer
    let src = vec![1.0f32; ELEMS];
    let mut dst = vec![0.0f32; ELEMS];
    dst.copy_from_slice(&src); // warm the pages
    let mut passes = 0u64;
    let start = Instant::now();
    loop {
        dst.copy_from_slice(black_box(&src));
        black_box(&dst);
        passes += 1;
        if start.elapsed() >= Duration::from_millis(60) {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    (passes as f64 * (2 * ELEMS * 4) as f64) / secs / 1e9
}

/// A stable fingerprint of the benchmarking host, recorded into bench
/// artifacts so the CI regression gate can refuse to compare numbers
/// from unlike machines.
pub fn machine_fingerprint() -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!(
        "{}-{}-{}c",
        std::env::consts::ARCH,
        std::env::consts::OS,
        cores
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roof_is_min_of_ceilings() {
        let m = MachineProfile {
            peak_gflops: 10.0,
            peak_gbps: 5.0,
        };
        // ridge at 2 FLOPs/byte
        assert!((m.ridge_intensity() - 2.0).abs() < 1e-12);
        // below the ridge: bandwidth-bound
        assert!((m.roof_gflops(1.0) - 5.0).abs() < 1e-12);
        // above the ridge: compute-bound
        assert!((m.roof_gflops(4.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn fingerprint_mentions_arch() {
        assert!(machine_fingerprint().contains(std::env::consts::ARCH));
    }

    /// Pins the PR 6 probe bug: `f32::mul_add` outside a fused-codegen
    /// frame lowers to a libm call and under-reported the ceiling ~60×.
    /// The lane probe now runs inside the kernels' target-feature frame,
    /// so where the SIMD path exists its ceiling must be at least
    /// comparable to the scalar probe (in practice it is ~2× higher —
    /// FMA doubles FLOPs per instruction).
    #[test]
    fn simd_probe_ceiling_is_sane() {
        if !simd_probe_supported() {
            return;
        }
        let scalar = machine_probe_path(false).peak_gflops;
        let simd = machine_probe_path(true).peak_gflops;
        assert!(
            simd >= 0.8 * scalar,
            "simd-path probe ({simd:.2} GF/s) far below scalar probe \
             ({scalar:.2} GF/s): mul_add is compiling as a libm call again"
        );
    }
}
