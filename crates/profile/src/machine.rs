//! Measured machine ceilings for roofline reporting.
//!
//! [`machine_probe`] runs two short microbenchmarks — a dependent-free
//! fused-multiply-add loop for peak single-thread f32 FLOP/s and a large
//! out-of-cache buffer copy for peak memory bandwidth — and caches the
//! result for the process lifetime. The ceilings are *practical* peaks
//! (what straightforward compiled Rust achieves on one core), which is
//! the honest denominator for kernels that are themselves straightforward
//! compiled Rust.

use std::hint::black_box;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Measured machine ceilings, single-threaded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineProfile {
    /// Peak sustained f32 GFLOP/s (fma loop, one core).
    pub peak_gflops: f64,
    /// Peak sustained memory bandwidth in GB/s (streaming copy, read +
    /// write counted, one core).
    pub peak_gbps: f64,
}

impl MachineProfile {
    /// The attainable GFLOP/s roof for a kernel of the given arithmetic
    /// intensity (FLOPs per byte): `min(peak_gflops, intensity · peak_gbps)`.
    pub fn roof_gflops(&self, intensity: f64) -> f64 {
        self.peak_gflops.min(intensity * self.peak_gbps)
    }

    /// Intensity at which the machine transitions from bandwidth-bound to
    /// compute-bound (the roofline "ridge point"), in FLOPs/byte.
    pub fn ridge_intensity(&self) -> f64 {
        if self.peak_gbps > 0.0 {
            self.peak_gflops / self.peak_gbps
        } else {
            0.0
        }
    }
}

/// Probes (once per process, then cached) the machine's practical peak
/// FLOP rate and memory bandwidth. Costs roughly 100 ms on first call.
pub fn machine_probe() -> MachineProfile {
    static PROBE: OnceLock<MachineProfile> = OnceLock::new();
    *PROBE.get_or_init(|| MachineProfile {
        peak_gflops: probe_flops(),
        peak_gbps: probe_bandwidth(),
    })
}

/// Peak f32 FLOP/s: 64 independent accumulators of `a*s + b` (2 FLOPs
/// each), wide enough to autovectorize and hide arithmetic latency.
/// Deliberately a plain multiply-add, not `f32::mul_add`: without fused
/// codegen the latter lowers to a libm call and would report a ceiling
/// far below what the actual kernels (plain mul + add) achieve.
fn probe_flops() -> f64 {
    let mut acc = [1.0f32; 64];
    let scale = black_box(1.000_000_1f32);
    let bias = black_box(1.0e-9f32);
    let mut passes = 0u64;
    let start = Instant::now();
    loop {
        for _ in 0..512 {
            for a in acc.iter_mut() {
                *a = *a * scale + bias;
            }
        }
        passes += 512;
        if start.elapsed() >= Duration::from_millis(40) {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    black_box(acc);
    (passes as f64 * acc.len() as f64 * 2.0) / secs / 1e9
}

/// Peak memory bandwidth: stream-copy a 32 MiB f32 buffer (large enough
/// to defeat last-level caches), counting each pass as read + write.
fn probe_bandwidth() -> f64 {
    const ELEMS: usize = 8 << 20; // 8 Mi f32 = 32 MiB per buffer
    let src = vec![1.0f32; ELEMS];
    let mut dst = vec![0.0f32; ELEMS];
    dst.copy_from_slice(&src); // warm the pages
    let mut passes = 0u64;
    let start = Instant::now();
    loop {
        dst.copy_from_slice(black_box(&src));
        black_box(&dst);
        passes += 1;
        if start.elapsed() >= Duration::from_millis(60) {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    (passes as f64 * (2 * ELEMS * 4) as f64) / secs / 1e9
}

/// A stable fingerprint of the benchmarking host, recorded into bench
/// artifacts so the CI regression gate can refuse to compare numbers
/// from unlike machines.
pub fn machine_fingerprint() -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!(
        "{}-{}-{}c",
        std::env::consts::ARCH,
        std::env::consts::OS,
        cores
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roof_is_min_of_ceilings() {
        let m = MachineProfile {
            peak_gflops: 10.0,
            peak_gbps: 5.0,
        };
        // ridge at 2 FLOPs/byte
        assert!((m.ridge_intensity() - 2.0).abs() < 1e-12);
        // below the ridge: bandwidth-bound
        assert!((m.roof_gflops(1.0) - 5.0).abs() < 1e-12);
        // above the ridge: compute-bound
        assert!((m.roof_gflops(4.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn fingerprint_mentions_arch() {
        assert!(machine_fingerprint().contains(std::env::consts::ARCH));
    }
}
