//! Aggregation of raw profiler events into a human-readable report.

use std::collections::BTreeMap;
use std::fmt;

use crate::Recorder;

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Span name as passed to [`crate::span`].
    pub name: String,
    /// Number of recorded occurrences.
    pub count: u64,
    /// Sum of all durations, microseconds.
    pub total_us: u64,
    /// Mean duration, microseconds.
    pub mean_us: f64,
    /// 95th-percentile duration, microseconds.
    pub p95_us: u64,
    /// Shortest occurrence, microseconds.
    pub min_us: u64,
    /// Longest occurrence, microseconds.
    pub max_us: u64,
    /// Total analytic FLOPs attributed via `SpanGuard::record_work`.
    pub flops: u64,
    /// Total analytic bytes moved attributed via `record_work`.
    pub bytes: u64,
}

impl SpanStats {
    /// Achieved throughput in GFLOP/s over this span's total time
    /// (0 when no work or no time was recorded).
    pub fn gflops(&self) -> f64 {
        if self.total_us == 0 {
            0.0
        } else {
            self.flops as f64 / 1e3 / self.total_us as f64
        }
    }

    /// Achieved memory throughput in GB/s over this span's total time.
    pub fn gbps(&self) -> f64 {
        if self.total_us == 0 {
            0.0
        } else {
            self.bytes as f64 / 1e3 / self.total_us as f64
        }
    }
}

/// Final value of one monotonic counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterTotal {
    /// Counter name as passed to [`crate::counter_add`].
    pub name: String,
    /// Accumulated total.
    pub total: u64,
}

/// An aggregated view over everything the profiler recorded.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    spans: Vec<SpanStats>,
    counters: Vec<CounterTotal>,
    gauges: Vec<(String, f64)>,
}

impl ProfileReport {
    /// Span statistics, sorted by descending total time.
    pub fn spans(&self) -> &[SpanStats] {
        &self.spans
    }

    /// Looks up one span's statistics by name.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Counter totals, sorted by name.
    pub fn counters(&self) -> &[CounterTotal] {
        &self.counters
    }

    /// Looks up one counter's total; `None` if it never fired.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.total)
    }

    /// Last sampled value of each gauge, sorted by name.
    pub fn gauges(&self) -> &[(String, f64)] {
        &self.gauges
    }

    /// True when nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.gauges.is_empty()
    }

    /// Plain-text rendering (also available via `Display`).
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "profile: no events recorded");
        }
        if !self.spans.is_empty() {
            let name_w = self
                .spans
                .iter()
                .map(|s| s.name.len())
                .max()
                .unwrap_or(4)
                .max(4);
            let has_work = self.spans.iter().any(|s| s.flops > 0 || s.bytes > 0);
            write!(
                f,
                "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}",
                "span", "count", "total", "mean", "p95"
            )?;
            if has_work {
                write!(f, "  {:>9}  {:>8}", "gflop/s", "gb/s")?;
            }
            writeln!(f)?;
            for s in &self.spans {
                write!(
                    f,
                    "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}",
                    s.name,
                    s.count,
                    fmt_us(s.total_us as f64),
                    fmt_us(s.mean_us),
                    fmt_us(s.p95_us as f64),
                )?;
                if has_work {
                    if s.flops > 0 || s.bytes > 0 {
                        write!(f, "  {:>9.2}  {:>8.2}", s.gflops(), s.gbps())?;
                    } else {
                        write!(f, "  {:>9}  {:>8}", "-", "-")?;
                    }
                }
                writeln!(f)?;
            }
        }
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for c in &self.counters {
                writeln!(f, "  {} = {}", c.name, c.total)?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges (last value):")?;
            for (name, value) in &self.gauges {
                writeln!(f, "  {name} = {value}")?;
            }
        }
        Ok(())
    }
}

fn fmt_us(us: f64) -> String {
    if us >= 1_000_000.0 {
        format!("{:.2}s", us / 1_000_000.0)
    } else if us >= 1_000.0 {
        format!("{:.2}ms", us / 1_000.0)
    } else {
        format!("{us:.0}us")
    }
}

/// Nearest-rank 95th percentile of a sorted duration list.
fn p95(sorted: &[u64]) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = (sorted.len() as f64 * 0.95).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

pub(crate) fn build(recorder: &mut Recorder) -> ProfileReport {
    let mut durations: BTreeMap<&str, (Vec<u64>, u64, u64)> = BTreeMap::new();
    for event in &recorder.spans {
        let entry = durations.entry(&event.name).or_default();
        entry.0.push(event.dur_us);
        entry.1 += event.flops;
        entry.2 += event.bytes;
    }
    let mut spans: Vec<SpanStats> = durations
        .into_iter()
        .map(|(name, (mut durs, flops, bytes))| {
            durs.sort_unstable();
            let count = durs.len() as u64;
            let total_us: u64 = durs.iter().sum();
            SpanStats {
                name: name.to_string(),
                count,
                total_us,
                mean_us: total_us as f64 / count as f64,
                p95_us: p95(&durs),
                min_us: durs[0],
                max_us: *durs.last().unwrap(),
                flops,
                bytes,
            }
        })
        .collect();
    spans.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));

    let mut counters: Vec<CounterTotal> = recorder
        .counters
        .iter()
        .map(|(name, total)| CounterTotal {
            name: name.to_string(),
            total: *total,
        })
        .collect();
    counters.sort_by(|a, b| a.name.cmp(&b.name));

    let mut gauges: Vec<(String, f64)> = recorder
        .gauges
        .iter()
        .filter_map(|(name, samples)| samples.last().map(|s| (name.to_string(), s.value)))
        .collect();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));

    ProfileReport {
        spans,
        counters,
        gauges,
    }
}

#[cfg(test)]
mod tests {
    use super::p95;

    #[test]
    fn p95_nearest_rank() {
        assert_eq!(p95(&[7]), 7);
        assert_eq!(p95(&[1, 2]), 2);
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(p95(&hundred), 95);
        let twenty: Vec<u64> = (1..=20).collect();
        assert_eq!(p95(&twenty), 19);
    }
}
