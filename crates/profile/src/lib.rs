//! Runtime-wide profiling for the s4tf runtime: scoped RAII spans,
//! monotonic counters, gauges, aggregated reports and Chrome-trace
//! (Perfetto-compatible) JSON export.
//!
//! The profiler is a process-wide singleton designed so that the
//! *disabled* path costs a single relaxed atomic load — cheap enough to
//! leave instrumentation in every dispatch path of the eager, lazy and
//! XLA backends. It is enabled either programmatically via
//! [`set_enabled`] or by setting the `S4TF_PROFILE` environment
//! variable (`1`, `true`, `on`) before first use.
//!
//! ```
//! s4tf_profile::set_enabled(true);
//! {
//!     let mut span = s4tf_profile::span("compile");
//!     span.annotate("kernels", "3");
//! } // span records its duration when dropped
//! s4tf_profile::counter_add("cache.miss", 1);
//! let report = s4tf_profile::report();
//! assert_eq!(report.span("compile").unwrap().count, 1);
//! s4tf_profile::set_enabled(false);
//! s4tf_profile::reset();
//! ```

use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

mod chrome;
mod report;

pub use report::{CounterTotal, ProfileReport, SpanStats};

// --------------------------------------------------------------- state

/// Tri-state enable flag: 0 = uninitialized (consult `S4TF_PROFILE`),
/// 1 = disabled, 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);

const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// Returns whether profiling is currently enabled.
///
/// This is the hot-path check every instrumentation site performs; when
/// the profiler is off it is exactly one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        state => state == STATE_ON,
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = matches!(
        std::env::var("S4TF_PROFILE").as_deref(),
        Ok("1") | Ok("true") | Ok("on") | Ok("TRUE") | Ok("ON")
    );
    let state = if on { STATE_ON } else { STATE_OFF };
    // Racing initializers compute the same value; last store wins
    // harmlessly unless `set_enabled` ran in between, so only install
    // when still uninitialized.
    let _ = STATE.compare_exchange(0, state, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// Turns the profiler on or off, overriding `S4TF_PROFILE`.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Microseconds since the profiler's (lazily fixed) epoch.
fn now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_micros() as u64
}

thread_local! {
    /// Names of the spans currently open on this thread, innermost last.
    /// Maintained only while the profiler is enabled; read by
    /// [`current_span`] so diagnostics (e.g. a numerics violation) can
    /// report the enclosing span as provenance.
    static SPAN_STACK: std::cell::RefCell<Vec<Cow<'static, str>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The innermost profile span open on the calling thread, or `None`
/// when the profiler is off or no span is open.
pub fn current_span() -> Option<String> {
    SPAN_STACK.with(|stack| stack.borrow().last().map(|name| name.to_string()))
}

/// Small dense per-thread id used as the Chrome-trace `tid`.
fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

// ---------------------------------------------------------- recording

/// A finished span occurrence.
#[derive(Debug, Clone)]
pub(crate) struct SpanEvent {
    pub name: Cow<'static, str>,
    pub start_us: u64,
    pub dur_us: u64,
    pub thread: u64,
    pub annotations: Vec<(Cow<'static, str>, String)>,
}

/// One recorded gauge sample.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GaugeSample {
    pub ts_us: u64,
    pub value: f64,
}

#[derive(Default)]
pub(crate) struct Recorder {
    pub spans: Vec<SpanEvent>,
    pub counters: HashMap<Cow<'static, str>, u64>,
    pub gauges: HashMap<Cow<'static, str>, Vec<GaugeSample>>,
}

static RECORDER: Mutex<Option<Recorder>> = Mutex::new(None);

fn with_recorder<R>(f: impl FnOnce(&mut Recorder) -> R) -> R {
    let mut guard = match RECORDER.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(guard.get_or_insert_with(Recorder::default))
}

// -------------------------------------------------------------- spans

/// RAII guard for a profiling span; records `[start, drop)` on drop.
///
/// When profiling is disabled the guard is inert: construction is one
/// atomic load and drop is a `None` check.
#[must_use = "a span measures the scope it is bound to; binding to `_` drops it immediately"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: Cow<'static, str>,
    start_us: u64,
    annotations: Vec<(Cow<'static, str>, String)>,
}

/// Opens a span named `name`, closed (and recorded) when the returned
/// guard drops.
#[inline]
pub fn span(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    let name = name.into();
    SPAN_STACK.with(|stack| stack.borrow_mut().push(name.clone()));
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            start_us: now_us(),
            annotations: Vec::new(),
        }),
    }
}

impl SpanGuard {
    /// Attaches a key/value annotation, exported into the Chrome-trace
    /// `args` object. A no-op when the profiler was disabled at open.
    pub fn annotate(&mut self, key: impl Into<Cow<'static, str>>, value: impl Into<String>) {
        if let Some(active) = &mut self.active {
            active.annotations.push((key.into(), value.into()));
        }
    }

    /// Numeric-annotation convenience; the value is formatted lazily
    /// only when the span is live.
    pub fn annotate_f64(&mut self, key: impl Into<Cow<'static, str>>, value: f64) {
        if self.active.is_some() {
            self.annotate(key, format!("{value}"));
        }
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            // RAII guards close LIFO, so popping restores the enclosing
            // span. (A guard sent to another thread would pop that
            // thread's stack instead; spans are scope-local in practice.)
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
            let end = now_us();
            let event = SpanEvent {
                dur_us: end.saturating_sub(active.start_us),
                start_us: active.start_us,
                name: active.name,
                thread: thread_id(),
                annotations: active.annotations,
            };
            with_recorder(|r| r.spans.push(event));
        }
    }
}

// -------------------------------------------- counters and gauges

/// Adds `delta` to the named monotonic counter (no-op when disabled).
#[inline]
pub fn counter_add(name: impl Into<Cow<'static, str>>, delta: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|r| *r.counters.entry(name.into()).or_insert(0) += delta);
}

/// Records an instantaneous gauge sample, e.g. a queue depth
/// (no-op when disabled).
#[inline]
pub fn gauge_set(name: impl Into<Cow<'static, str>>, value: f64) {
    if !enabled() {
        return;
    }
    let sample = GaugeSample {
        ts_us: now_us(),
        value,
    };
    with_recorder(|r| r.gauges.entry(name.into()).or_default().push(sample));
}

// ------------------------------------------------------- pool statistics

/// Lifetime counters for the kernel thread pool (`s4tf-threads`), in the
/// style of `Device::cache_stats()`: independent of the span recorder and
/// never reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads currently spawned (excludes callers).
    pub workers: usize,
    /// Chunks executed by pool workers.
    pub tasks_run: u64,
    /// Chunks handed to the pool queue.
    pub chunks_dispatched: u64,
    /// Parallel calls that ran inline (below grain, single-threaded, or
    /// nested inside a worker).
    pub inline_runs: u64,
    /// Total wall time workers spent executing chunks, in microseconds.
    pub busy_us: u64,
}

/// Snapshot provider installed by the thread-pool crate; `s4tf-profile`
/// sits below `s4tf-threads` in the dependency graph, so the pool pushes
/// its accessor up here instead of being linked directly.
static POOL_STATS_PROVIDER: OnceLock<fn() -> PoolStats> = OnceLock::new();

/// Registers the pool's stats accessor (called by `s4tf-threads` on
/// first use; later registrations are ignored).
pub fn register_pool_stats(provider: fn() -> PoolStats) {
    let _ = POOL_STATS_PROVIDER.set(provider);
}

/// Current kernel-pool counters, or `None` if no pool has announced
/// itself yet (e.g. a build with the pool's `profile` feature off).
pub fn pool_stats() -> Option<PoolStats> {
    POOL_STATS_PROVIDER.get().map(|provider| provider())
}

// ------------------------------------------------------------ exports

/// Aggregates everything recorded so far into a [`ProfileReport`].
pub fn report() -> ProfileReport {
    with_recorder(report::build)
}

/// Renders everything recorded so far as Chrome-trace JSON, loadable in
/// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
pub fn chrome_trace_json() -> String {
    with_recorder(chrome::render)
}

/// Discards all recorded spans, counters and gauges (the enabled flag
/// is left unchanged).
pub fn reset() {
    with_recorder(|r| *r = Recorder::default());
}

// Hand-rolled string formatting helpers shared by the exporters.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    // The profiler is process-global state; tests that flip it live in
    // `tests/profiler.rs` behind a serializing lock. Unit tests here
    // only touch pure helpers.
    use super::push_json_string;

    #[test]
    fn json_strings_are_escaped() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
