//! Runtime-wide profiling for the s4tf runtime: scoped RAII spans,
//! monotonic counters, gauges, aggregated reports and Chrome-trace
//! (Perfetto-compatible) JSON export.
//!
//! The profiler is a process-wide singleton designed so that the
//! *disabled* path costs a single relaxed atomic load — cheap enough to
//! leave instrumentation in every dispatch path of the eager, lazy and
//! XLA backends. It is enabled either programmatically via
//! [`set_enabled`] or by setting the `S4TF_PROFILE` environment
//! variable (`1`, `true`, `on`) before first use.
//!
//! ```
//! s4tf_profile::set_enabled(true);
//! {
//!     let mut span = s4tf_profile::span("compile");
//!     span.annotate("kernels", "3");
//! } // span records its duration when dropped
//! s4tf_profile::counter_add("cache.miss", 1);
//! let report = s4tf_profile::report();
//! assert_eq!(report.span("compile").unwrap().count, 1);
//! s4tf_profile::set_enabled(false);
//! s4tf_profile::reset();
//! ```

use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

mod chrome;
mod critical_path;
mod machine;
mod report;
mod roofline;

pub use critical_path::{critical_path, CriticalPathReport, PathStep};
pub use machine::{
    machine_fingerprint, machine_probe, machine_probe_path, simd_probe_supported, MachineProfile,
};
pub use report::{CounterTotal, ProfileReport, SpanStats};
pub use roofline::{roofline, RooflineReport, RooflineRow};

// --------------------------------------------------------------- state

/// Tri-state enable flag: 0 = uninitialized (consult `S4TF_PROFILE`),
/// 1 = disabled, 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);

const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// Returns whether profiling is currently enabled.
///
/// This is the hot-path check every instrumentation site performs; when
/// the profiler is off it is exactly one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        state => state == STATE_ON,
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = matches!(
        std::env::var("S4TF_PROFILE").as_deref(),
        Ok("1") | Ok("true") | Ok("on") | Ok("TRUE") | Ok("ON")
    );
    let state = if on { STATE_ON } else { STATE_OFF };
    // Racing initializers compute the same value; last store wins
    // harmlessly unless `set_enabled` ran in between, so only install
    // when still uninitialized.
    let _ = STATE.compare_exchange(0, state, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// Turns the profiler on or off, overriding `S4TF_PROFILE`.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Microseconds since the profiler's (lazily fixed) epoch.
///
/// Public so the backends can timestamp op-event phases (enqueue, start,
/// finish) on the same clock the span recorder uses.
pub fn now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_micros() as u64
}

thread_local! {
    /// Names of the spans currently open on this thread, innermost last.
    /// Maintained only while the profiler is enabled; read by
    /// [`current_span`] so diagnostics (e.g. a numerics violation) can
    /// report the enclosing span as provenance.
    static SPAN_STACK: std::cell::RefCell<Vec<Cow<'static, str>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The innermost profile span open on the calling thread, or `None`
/// when the profiler is off or no span is open.
pub fn current_span() -> Option<String> {
    SPAN_STACK.with(|stack| stack.borrow().last().map(|name| name.to_string()))
}

/// Small dense per-thread id used as the Chrome-trace `tid`.
fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

// ---------------------------------------------------------- recording

/// A finished span occurrence.
#[derive(Debug, Clone)]
pub(crate) struct SpanEvent {
    pub name: Cow<'static, str>,
    pub start_us: u64,
    pub dur_us: u64,
    pub thread: u64,
    pub annotations: Vec<(Cow<'static, str>, String)>,
    /// Analytic work attributed to this span (see [`SpanGuard::record_work`]).
    pub flops: u64,
    pub bytes: u64,
    /// Chrome-trace flow bindings: `(flow id, is_start)`. A start on one
    /// span and an end on another draws an arrow between them, e.g.
    /// eager `enqueue` → `kernel_run`.
    pub flows: Vec<(u64, bool)>,
}

/// One recorded gauge sample.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GaugeSample {
    pub ts_us: u64,
    pub value: f64,
}

/// One dispatched tensor operation, as recorded by a backend for
/// roofline and critical-path analysis.
///
/// Unlike a [`SpanEvent`] (a wall-clock interval on one thread), an
/// `OpEvent` carries *scheduling* structure: when the op was enqueued vs.
/// when it actually started (queue latency), which ops it depends on, and
/// the analytic work it performed. The eager backend emits one per
/// dispatched kernel; the lazy backend emits trace/compile phase events
/// per barrier plus one kernel event per executed HLO node; the naive
/// backend emits synchronous events chained serially.
#[derive(Debug, Clone)]
pub struct OpEvent {
    /// Process-unique id (ids start at 1; 0 means "no op").
    pub id: u64,
    /// Op mnemonic, e.g. `matmul`, `conv2d`, `fused`, `compile`.
    pub name: Cow<'static, str>,
    /// Which backend dispatched it: `eager`, `lazy`, `naive`.
    pub backend: &'static str,
    /// Execution phase: `kernel`, `compile`, or `trace`.
    pub phase: &'static str,
    /// Kernel dispatch path the tensor engine was on when the op ran:
    /// `simd8` (8-wide lane kernels) or `scalar` (the reference loops).
    /// Keyed into the roofline so regressions are attributable to path
    /// selection vs. kernel quality.
    pub path: &'static str,
    /// When the op was submitted ([`now_us`] clock).
    pub enqueue_us: u64,
    /// When execution actually began.
    pub start_us: u64,
    /// When execution finished.
    pub end_us: u64,
    /// Ids of the ops whose results this op consumed (0 entries ignored).
    pub deps: Vec<u64>,
    /// Analytic FLOPs performed.
    pub flops: u64,
    /// Analytic bytes moved.
    pub bytes: u64,
}

impl OpEvent {
    /// Queue latency: time between submission and execution start.
    pub fn queue_us(&self) -> u64 {
        self.start_us.saturating_sub(self.enqueue_us)
    }

    /// Execution time.
    pub fn run_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

#[derive(Default)]
pub(crate) struct Recorder {
    pub spans: Vec<SpanEvent>,
    pub counters: HashMap<Cow<'static, str>, u64>,
    pub gauges: HashMap<Cow<'static, str>, Vec<GaugeSample>>,
    pub ops: Vec<OpEvent>,
}

static RECORDER: Mutex<Option<Recorder>> = Mutex::new(None);

fn with_recorder<R>(f: impl FnOnce(&mut Recorder) -> R) -> R {
    let mut guard = match RECORDER.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(guard.get_or_insert_with(Recorder::default))
}

// -------------------------------------------------------------- spans

/// RAII guard for a profiling span; records `[start, drop)` on drop.
///
/// When profiling is disabled the guard is inert: construction is one
/// atomic load and drop is a `None` check.
#[must_use = "a span measures the scope it is bound to; binding to `_` drops it immediately"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: Cow<'static, str>,
    start_us: u64,
    annotations: Vec<(Cow<'static, str>, String)>,
    flops: u64,
    bytes: u64,
    flows: Vec<(u64, bool)>,
}

/// Opens a span named `name`, closed (and recorded) when the returned
/// guard drops.
#[inline]
pub fn span(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    let name = name.into();
    SPAN_STACK.with(|stack| stack.borrow_mut().push(name.clone()));
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            start_us: now_us(),
            annotations: Vec::new(),
            flops: 0,
            bytes: 0,
            flows: Vec::new(),
        }),
    }
}

impl SpanGuard {
    /// Attaches a key/value annotation, exported into the Chrome-trace
    /// `args` object. A no-op when the profiler was disabled at open.
    pub fn annotate(&mut self, key: impl Into<Cow<'static, str>>, value: impl Into<String>) {
        if let Some(active) = &mut self.active {
            active.annotations.push((key.into(), value.into()));
        }
    }

    /// Numeric-annotation convenience; the value is formatted lazily
    /// only when the span is live.
    pub fn annotate_f64(&mut self, key: impl Into<Cow<'static, str>>, value: f64) {
        if self.active.is_some() {
            self.annotate(key, format!("{value}"));
        }
    }

    /// Attributes analytic work (FLOPs + bytes moved) to this span.
    /// Accumulates across calls; the report derives achieved-GFLOP/s and
    /// GB/s per span name from these totals, and the Chrome exporter adds
    /// `flops`/`bytes`/`gflops` to the event's `args`.
    pub fn record_work(&mut self, flops: u64, bytes: u64) {
        if let Some(active) = &mut self.active {
            active.flops += flops;
            active.bytes += bytes;
        }
    }

    /// Marks this span as the *origin* of a Chrome-trace flow arrow.
    pub fn flow_start(&mut self, flow_id: u64) {
        if let Some(active) = &mut self.active {
            active.flows.push((flow_id, true));
        }
    }

    /// Marks this span as the *destination* of a Chrome-trace flow arrow.
    pub fn flow_end(&mut self, flow_id: u64) {
        if let Some(active) = &mut self.active {
            active.flows.push((flow_id, false));
        }
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            // RAII guards close LIFO, so popping restores the enclosing
            // span. (A guard sent to another thread would pop that
            // thread's stack instead; spans are scope-local in practice.)
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
            let end = now_us();
            let event = SpanEvent {
                dur_us: end.saturating_sub(active.start_us),
                start_us: active.start_us,
                name: active.name,
                thread: thread_id(),
                annotations: active.annotations,
                flops: active.flops,
                bytes: active.bytes,
                flows: active.flows,
            };
            with_recorder(|r| r.spans.push(event));
        }
    }
}

// -------------------------------------------- counters and gauges

/// Adds `delta` to the named monotonic counter (no-op when disabled).
#[inline]
pub fn counter_add(name: impl Into<Cow<'static, str>>, delta: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|r| *r.counters.entry(name.into()).or_insert(0) += delta);
}

/// Records an instantaneous gauge sample, e.g. a queue depth
/// (no-op when disabled).
#[inline]
pub fn gauge_set(name: impl Into<Cow<'static, str>>, value: f64) {
    if !enabled() {
        return;
    }
    let sample = GaugeSample {
        ts_us: now_us(),
        value,
    };
    with_recorder(|r| r.gauges.entry(name.into()).or_default().push(sample));
}

// ----------------------------------------------------------- op events

static NEXT_OP_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_FLOW_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh process-unique op id (never 0).
///
/// Backends allocate one per dispatched op even when recording is off so
/// dependency edges stay valid if profiling is enabled mid-run; the
/// allocation is a single relaxed fetch-add.
#[inline]
pub fn next_op_id() -> u64 {
    NEXT_OP_ID.fetch_add(1, Ordering::Relaxed)
}

/// Allocates a fresh flow id for a Chrome-trace arrow.
#[inline]
pub fn next_flow_id() -> u64 {
    NEXT_FLOW_ID.fetch_add(1, Ordering::Relaxed)
}

/// Records a dispatched-op event (no-op when the profiler is disabled).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn op_event(
    id: u64,
    name: impl Into<Cow<'static, str>>,
    backend: &'static str,
    phase: &'static str,
    path: &'static str,
    enqueue_us: u64,
    start_us: u64,
    end_us: u64,
    deps: Vec<u64>,
    flops: u64,
    bytes: u64,
) {
    if !enabled() {
        return;
    }
    let event = OpEvent {
        id,
        name: name.into(),
        backend,
        phase,
        path,
        enqueue_us,
        start_us,
        end_us,
        deps,
        flops,
        bytes,
    };
    with_recorder(|r| r.ops.push(event));
}

/// Snapshot of all recorded op events (in recording order).
pub fn op_events() -> Vec<OpEvent> {
    with_recorder(|r| r.ops.clone())
}

thread_local! {
    /// An op id that subsequently recorded ops on this thread should
    /// depend on when they have no data dependency of their own. The lazy
    /// backend sets this to its compile-phase event so per-node kernel
    /// events chain after compilation on the critical path.
    static OP_ROOT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Sets the calling thread's root dependency for op events (0 clears it).
pub fn set_op_root(id: u64) {
    OP_ROOT.with(|root| root.set(id));
}

/// The calling thread's current root op dependency (0 when unset).
pub fn op_root() -> u64 {
    OP_ROOT.with(|root| root.get())
}

// --------------------------------------------------------- thread names

/// Human-readable names for profiler thread ids, exported as Chrome-trace
/// `thread_name` metadata. Survives [`reset`] — worker threads register
/// once at spawn.
static THREAD_NAMES: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());

/// Names the calling thread in trace exports (e.g. `eager-worker`).
/// Idempotent; later calls rename.
pub fn set_thread_name(name: impl Into<String>) {
    let id = thread_id();
    let name = name.into();
    let mut guard = match THREAD_NAMES.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(entry) = guard.iter_mut().find(|(tid, _)| *tid == id) {
        entry.1 = name;
    } else {
        guard.push((id, name));
    }
}

pub(crate) fn thread_names() -> Vec<(u64, String)> {
    match THREAD_NAMES.lock() {
        Ok(g) => g.clone(),
        Err(poisoned) => poisoned.into_inner().clone(),
    }
}

// ------------------------------------------------------- pool statistics

/// Lifetime counters for the kernel thread pool (`s4tf-threads`), in the
/// style of `Device::cache_stats()`: independent of the span recorder and
/// never reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads currently spawned (excludes callers).
    pub workers: usize,
    /// Chunks executed by pool workers.
    pub tasks_run: u64,
    /// Chunks handed to the pool queue.
    pub chunks_dispatched: u64,
    /// Parallel calls that ran inline (below grain, single-threaded, or
    /// nested inside a worker).
    pub inline_runs: u64,
    /// Total wall time workers spent executing chunks, in microseconds.
    pub busy_us: u64,
}

/// Snapshot provider installed by the thread-pool crate; `s4tf-profile`
/// sits below `s4tf-threads` in the dependency graph, so the pool pushes
/// its accessor up here instead of being linked directly.
static POOL_STATS_PROVIDER: OnceLock<fn() -> PoolStats> = OnceLock::new();

/// Registers the pool's stats accessor (called by `s4tf-threads` on
/// first use; later registrations are ignored).
pub fn register_pool_stats(provider: fn() -> PoolStats) {
    let _ = POOL_STATS_PROVIDER.set(provider);
}

/// Current kernel-pool counters, or `None` if no pool has announced
/// itself yet (e.g. a build with the pool's `profile` feature off).
pub fn pool_stats() -> Option<PoolStats> {
    POOL_STATS_PROVIDER.get().map(|provider| provider())
}

// ------------------------------------------------------------ exports

/// Aggregates everything recorded so far into a [`ProfileReport`].
pub fn report() -> ProfileReport {
    with_recorder(report::build)
}

/// Renders everything recorded so far as Chrome-trace JSON, loadable in
/// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
pub fn chrome_trace_json() -> String {
    with_recorder(chrome::render)
}

/// Discards all recorded spans, counters, gauges and op events (the
/// enabled flag and thread names are left unchanged).
pub fn reset() {
    with_recorder(|r| *r = Recorder::default());
}

/// Whether the user asked for a performance report via
/// `S4TF_PERF_REPORT=1` (checked once, cached).
pub fn perf_report_requested() -> bool {
    static REQUESTED: OnceLock<bool> = OnceLock::new();
    *REQUESTED.get_or_init(|| {
        matches!(
            std::env::var("S4TF_PERF_REPORT").as_deref(),
            Ok("1") | Ok("true") | Ok("on") | Ok("TRUE") | Ok("ON")
        )
    })
}

/// Renders the full performance observatory — aggregated span report,
/// roofline table (against the machine probe), and critical-path
/// decomposition — as one printable string.
pub fn perf_report() -> String {
    let mut out = String::new();
    let _ = write!(out, "{}", report());
    let machine = machine_probe();
    let _ = write!(out, "\n{}", roofline().with_machine(machine));
    let _ = write!(out, "\n{}", critical_path());
    out
}

// Hand-rolled string formatting helpers shared by the exporters.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    // The profiler is process-global state; tests that flip it live in
    // `tests/profiler.rs` behind a serializing lock. Unit tests here
    // only touch pure helpers.
    use super::push_json_string;

    #[test]
    fn json_strings_are_escaped() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
