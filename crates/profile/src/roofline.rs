//! Roofline aggregation: achieved throughput vs. machine ceilings per op.
//!
//! [`roofline`] folds the recorded op events (kernel phase only — compile
//! and trace phases perform no tensor math) into one row per
//! `(backend, op)` pair, reporting achieved GFLOP/s, GB/s and arithmetic
//! intensity. Combined with a [`MachineProfile`] the report also shows
//! each op's attainable roof `min(peak_flops, intensity · peak_bw)` and
//! the percentage of it achieved — the classic roofline diagnosis of
//! whether an op is compute- or bandwidth-bound and how far from the
//! ceiling it runs.

use std::collections::BTreeMap;
use std::fmt;

use crate::machine::MachineProfile;

/// One `(backend, op, path)` aggregate in the roofline report.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflineRow {
    /// Op mnemonic (e.g. `matmul`, `conv2d`, `fused`).
    pub name: String,
    /// Dispatching backend (`eager`, `lazy`, `naive`).
    pub backend: String,
    /// Kernel dispatch path the op ran on (`simd8` / `scalar`), so a
    /// mixed-path run shows each path's achieved throughput separately.
    pub path: String,
    /// Number of kernel invocations.
    pub count: u64,
    /// Total execution time across invocations, microseconds.
    pub total_us: u64,
    /// Total analytic FLOPs.
    pub flops: u64,
    /// Total analytic bytes moved.
    pub bytes: u64,
}

impl RooflineRow {
    /// Achieved GFLOP/s over this row's execution time.
    pub fn gflops(&self) -> f64 {
        if self.total_us == 0 {
            0.0
        } else {
            self.flops as f64 / 1e3 / self.total_us as f64
        }
    }

    /// Achieved GB/s over this row's execution time.
    pub fn gbps(&self) -> f64 {
        if self.total_us == 0 {
            0.0
        } else {
            self.bytes as f64 / 1e3 / self.total_us as f64
        }
    }

    /// Arithmetic intensity, FLOPs per byte.
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.flops as f64 / self.bytes as f64
        }
    }
}

/// Roofline rows, optionally paired with machine ceilings.
#[derive(Debug, Clone, Default)]
pub struct RooflineReport {
    rows: Vec<RooflineRow>,
    machine: Option<MachineProfile>,
}

impl RooflineReport {
    /// Rows sorted by descending total time.
    pub fn rows(&self) -> &[RooflineRow] {
        &self.rows
    }

    /// Looks up the row for one op on one backend (any dispatch path; a
    /// run that mixed paths returns the first, most-expensive row).
    pub fn row(&self, backend: &str, name: &str) -> Option<&RooflineRow> {
        self.rows
            .iter()
            .find(|r| r.backend == backend && r.name == name)
    }

    /// Looks up the row for one op on one backend and dispatch path.
    pub fn row_on_path(&self, backend: &str, name: &str, path: &str) -> Option<&RooflineRow> {
        self.rows
            .iter()
            .find(|r| r.backend == backend && r.name == name && r.path == path)
    }

    /// True when no kernel op events were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Attaches machine ceilings, enabling the `%roof` column.
    pub fn with_machine(mut self, machine: MachineProfile) -> RooflineReport {
        self.machine = Some(machine);
        self
    }
}

impl fmt::Display for RooflineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rows.is_empty() {
            return writeln!(f, "roofline: no op events recorded");
        }
        if let Some(m) = &self.machine {
            writeln!(
                f,
                "roofline (peaks: {:.2} gflop/s, {:.2} gb/s, ridge {:.2} flop/byte):",
                m.peak_gflops,
                m.peak_gbps,
                m.ridge_intensity()
            )?;
        } else {
            writeln!(f, "roofline:")?;
        }
        let name_w = self
            .rows
            .iter()
            .map(|r| r.name.len() + r.backend.len() + r.path.len() + 2)
            .max()
            .unwrap_or(2)
            .max(10);
        write!(
            f,
            "{:<name_w$}  {:>7}  {:>10}  {:>9}  {:>8}  {:>9}",
            "op", "count", "total", "gflop/s", "gb/s", "flop/byte"
        )?;
        if self.machine.is_some() {
            write!(f, "  {:>6}  {:>5}", "%roof", "bound")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            let label = if row.path.is_empty() {
                format!("{}/{}", row.backend, row.name)
            } else {
                format!("{}/{}@{}", row.backend, row.name, row.path)
            };
            write!(
                f,
                "{:<name_w$}  {:>7}  {:>9.2}ms  {:>9.2}  {:>8.2}  {:>9.2}",
                label,
                row.count,
                row.total_us as f64 / 1e3,
                row.gflops(),
                row.gbps(),
                row.intensity()
            )?;
            if let Some(m) = &self.machine {
                let roof = m.roof_gflops(row.intensity());
                let pct = if roof > 0.0 {
                    row.gflops() / roof * 100.0
                } else {
                    0.0
                };
                let bound = if row.intensity() >= m.ridge_intensity() {
                    "comp"
                } else {
                    "mem"
                };
                write!(f, "  {pct:>5.1}%  {bound:>5}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Builds the roofline report from all op events recorded so far.
pub fn roofline() -> RooflineReport {
    let mut agg: BTreeMap<(String, String, String), RooflineRow> = BTreeMap::new();
    for op in crate::op_events() {
        if op.phase != "kernel" {
            continue;
        }
        let key = (
            op.backend.to_string(),
            op.name.to_string(),
            op.path.to_string(),
        );
        let row = agg.entry(key).or_insert_with(|| RooflineRow {
            name: op.name.to_string(),
            backend: op.backend.to_string(),
            path: op.path.to_string(),
            count: 0,
            total_us: 0,
            flops: 0,
            bytes: 0,
        });
        row.count += 1;
        row.total_us += op.run_us();
        row.flops += op.flops;
        row.bytes += op.bytes;
    }
    let mut rows: Vec<RooflineRow> = agg.into_values().collect();
    rows.sort_by(|a, b| {
        b.total_us
            .cmp(&a.total_us)
            .then_with(|| a.name.cmp(&b.name))
    });
    RooflineReport {
        rows,
        machine: None,
    }
}
