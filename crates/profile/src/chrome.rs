//! Chrome-trace (Perfetto JSON) export of raw profiler events.
//!
//! Emits the `{"traceEvents": [...]}` object format: spans as `"ph":
//! "X"` complete events, gauges as `"ph": "C"` counter tracks and
//! counter totals as one final `"C"` sample each, all under a single
//! `pid`. The file loads directly in `chrome://tracing` and
//! <https://ui.perfetto.dev>.

use std::fmt::Write as _;

use crate::{push_json_string, Recorder};

const PID: u64 = 1;

pub(crate) fn render(recorder: &mut Recorder) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;

    for event in &recorder.spans {
        sep(&mut out, &mut first);
        out.push_str("{\"name\":");
        push_json_string(&mut out, &event.name);
        let _ = write!(
            out,
            ",\"cat\":\"s4tf\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{PID},\"tid\":{}",
            event.start_us, event.dur_us, event.thread
        );
        if !event.annotations.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (key, value)) in event.annotations.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_string(&mut out, key);
                out.push(':');
                push_json_string(&mut out, value);
            }
            out.push('}');
        }
        out.push('}');
    }

    for (name, samples) in &recorder.gauges {
        for sample in samples {
            sep(&mut out, &mut first);
            counter_event(&mut out, name, sample.ts_us, sample.value);
        }
    }

    // Counters carry only totals; exported as a single sample at the
    // last known timestamp so the track shows the final value.
    let last_ts = recorder
        .spans
        .iter()
        .map(|s| s.start_us + s.dur_us)
        .max()
        .unwrap_or(0);
    for (name, total) in &recorder.counters {
        sep(&mut out, &mut first);
        counter_event(&mut out, name, last_ts, *total as f64);
    }

    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

fn counter_event(out: &mut String, name: &str, ts_us: u64, value: f64) {
    out.push_str("{\"name\":");
    push_json_string(out, name);
    let _ = write!(
        out,
        ",\"cat\":\"s4tf\",\"ph\":\"C\",\"ts\":{ts_us},\"pid\":{PID},\"args\":{{\"value\":{}}}}}",
        json_number(value)
    );
}

/// Formats an f64 as a JSON-legal number (no NaN/inf, no `1e5` for
/// round values the `f64::to_string` already avoids).
fn json_number(value: f64) -> String {
    if value.is_finite() {
        value.to_string()
    } else {
        "0".to_string()
    }
}
