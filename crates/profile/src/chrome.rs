//! Chrome-trace (Perfetto JSON) export of raw profiler events.
//!
//! Emits the `{"traceEvents": [...]}` object format: spans as `"ph":
//! "X"` complete events, gauges as `"ph": "C"` counter tracks, counter
//! totals as one final `"C"` sample each, `process_name`/`thread_name`
//! `"M"` metadata events, and `"s"`/`"f"` flow arrows linking producer
//! spans to consumer spans (e.g. eager `enqueue` → `kernel_run`), all
//! under a single `pid`. The file loads directly in `chrome://tracing`
//! and <https://ui.perfetto.dev>.

use std::fmt::Write as _;

use crate::{push_json_string, thread_names, Recorder};

const PID: u64 = 1;

pub(crate) fn render(recorder: &mut Recorder) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;

    // Metadata: name the process and every registered thread.
    sep(&mut out, &mut first);
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"args\":{{\"name\":\"s4tf\"}}}}"
    );
    for (tid, name) in thread_names() {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"args\":{{\"name\":"
        );
        push_json_string(&mut out, &name);
        out.push_str("}}");
    }

    for event in &recorder.spans {
        sep(&mut out, &mut first);
        out.push_str("{\"name\":");
        push_json_string(&mut out, &event.name);
        let _ = write!(
            out,
            ",\"cat\":\"s4tf\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{PID},\"tid\":{}",
            event.start_us, event.dur_us, event.thread
        );
        let has_work = event.flops > 0 || event.bytes > 0;
        if !event.annotations.is_empty() || has_work {
            out.push_str(",\"args\":{");
            let mut first_arg = true;
            for (key, value) in &event.annotations {
                sep(&mut out, &mut first_arg);
                push_json_string(&mut out, key);
                out.push(':');
                push_json_string(&mut out, value);
            }
            if has_work {
                let gflops = if event.dur_us > 0 {
                    event.flops as f64 / 1e3 / event.dur_us as f64
                } else {
                    0.0
                };
                sep(&mut out, &mut first_arg);
                let _ = write!(
                    out,
                    "\"flops\":{},\"bytes\":{},\"gflops\":{gflops:.3}",
                    event.flops, event.bytes
                );
            }
            out.push('}');
        }
        out.push('}');

        // Flow arrows bound to this slice: starts anchor at the end of
        // the producer span, finishes bind to the enclosing consumer
        // slice (`"bp":"e"`).
        for &(flow_id, is_start) in &event.flows {
            sep(&mut out, &mut first);
            let (ph, extra, ts) = if is_start {
                ("s", "", event.start_us + event.dur_us.saturating_sub(1))
            } else {
                ("f", ",\"bp\":\"e\"", event.start_us)
            };
            let _ = write!(
                out,
                "{{\"name\":\"dispatch\",\"cat\":\"flow\",\"ph\":\"{ph}\"{extra},\"id\":{flow_id},\"ts\":{ts},\"pid\":{PID},\"tid\":{}}}",
                event.thread
            );
        }
    }

    for (name, samples) in &recorder.gauges {
        for sample in samples {
            sep(&mut out, &mut first);
            counter_event(&mut out, name, sample.ts_us, sample.value);
        }
    }

    // Counters carry only totals; exported as a single sample at the
    // last known timestamp so the track shows the final value.
    let last_ts = recorder
        .spans
        .iter()
        .map(|s| s.start_us + s.dur_us)
        .max()
        .unwrap_or(0);
    for (name, total) in &recorder.counters {
        sep(&mut out, &mut first);
        counter_event(&mut out, name, last_ts, *total as f64);
    }

    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

fn counter_event(out: &mut String, name: &str, ts_us: u64, value: f64) {
    out.push_str("{\"name\":");
    push_json_string(out, name);
    let _ = write!(
        out,
        ",\"cat\":\"s4tf\",\"ph\":\"C\",\"ts\":{ts_us},\"pid\":{PID},\"args\":{{\"value\":{}}}}}",
        json_number(value)
    );
}

/// Formats an f64 as a JSON-legal number (no NaN/inf, no `1e5` for
/// round values the `f64::to_string` already avoids).
fn json_number(value: f64) -> String {
    if value.is_finite() {
        value.to_string()
    } else {
        "0".to_string()
    }
}
