// Inert mirror of the `s4tf-profile` surface the runtime crates
// instrument against. Not compiled into `s4tf-profile` itself: consumer
// crates `include!` this file from their `prof.rs` shim when their
// `profile` feature is off, so every instrumentation site compiles
// identically and costs nothing. Keeping the one copy here (instead of
// a per-crate paste) is what lets the shims stay four lines each.

/// Inert stand-in for `s4tf_profile::SpanGuard`.
pub(crate) struct SpanGuard;

impl SpanGuard {
    pub(crate) fn annotate(&mut self, _key: &'static str, _value: impl Into<String>) {}
    pub(crate) fn annotate_f64(&mut self, _key: &'static str, _value: f64) {}
    pub(crate) fn record_work(&mut self, _flops: u64, _bytes: u64) {}
    pub(crate) fn flow_start(&mut self, _flow_id: u64) {}
    pub(crate) fn flow_end(&mut self, _flow_id: u64) {}
    pub(crate) fn is_recording(&self) -> bool {
        false
    }
}

#[inline(always)]
pub(crate) fn enabled() -> bool {
    false
}

#[inline(always)]
pub(crate) fn span(_name: impl Into<std::borrow::Cow<'static, str>>) -> SpanGuard {
    SpanGuard
}

#[inline(always)]
pub(crate) fn counter_add(_name: impl Into<std::borrow::Cow<'static, str>>, _delta: u64) {}

#[inline(always)]
pub(crate) fn gauge_set(_name: impl Into<std::borrow::Cow<'static, str>>, _value: f64) {}

#[inline(always)]
pub(crate) fn current_span() -> Option<String> {
    None
}

#[inline(always)]
pub(crate) fn now_us() -> u64 {
    0
}

#[inline(always)]
pub(crate) fn next_op_id() -> u64 {
    0
}

#[inline(always)]
pub(crate) fn next_flow_id() -> u64 {
    0
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn op_event(
    _id: u64,
    _name: impl Into<std::borrow::Cow<'static, str>>,
    _backend: &'static str,
    _phase: &'static str,
    _path: &'static str,
    _enqueue_us: u64,
    _start_us: u64,
    _end_us: u64,
    _deps: Vec<u64>,
    _flops: u64,
    _bytes: u64,
) {
}

#[inline(always)]
pub(crate) fn set_op_root(_id: u64) {}

#[inline(always)]
pub(crate) fn op_root() -> u64 {
    0
}

#[inline(always)]
pub(crate) fn set_thread_name(_name: impl Into<String>) {}
