//! Critical-path reconstruction over the recorded op events.
//!
//! Each [`crate::OpEvent`] carries its dependencies (the ops whose
//! results it consumed, plus scheduling edges like "previous job on the
//! eager worker" or "the compile that produced this kernel"), so the
//! recorded events form a DAG. [`critical_path`] finds the longest
//! weighted chain through it — the sequence of dependent ops that bounds
//! the step time no matter how much run-ahead or parallelism the
//! scheduler achieves — and decomposes that chain's time into queue wait
//! vs. kernel execution vs. compile vs. trace recording.
//!
//! Events are processed in recording order, which is topological for all
//! three backends (an op's event is recorded at completion, after all of
//! its dependencies completed); a dependency recorded later (impossible
//! today) would simply be ignored.

use std::collections::HashMap;
use std::fmt;

/// One op on the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Op mnemonic.
    pub name: String,
    /// Backend that dispatched it.
    pub backend: &'static str,
    /// Phase bucket: `kernel`, `compile`, or `trace`.
    pub phase: &'static str,
    /// Time spent ready-but-waiting before execution, microseconds
    /// (measured from the later of its enqueue and its chain
    /// predecessor's completion).
    pub queue_us: u64,
    /// Execution time, microseconds.
    pub run_us: u64,
}

/// The longest dependency chain and its time decomposition.
#[derive(Debug, Clone, Default)]
pub struct CriticalPathReport {
    /// Chain steps in execution order.
    pub steps: Vec<PathStep>,
    /// Total chain time (sum of queue + run along the path), microseconds.
    pub chain_us: u64,
    /// Wall time spanned by *all* recorded ops (first enqueue to last
    /// finish), microseconds. `chain_us / wall_us` close to 1 means the
    /// workload is serialized on this chain.
    pub wall_us: u64,
    /// Chain time spent waiting in queues.
    pub queue_us: u64,
    /// Chain time executing kernels.
    pub kernel_us: u64,
    /// Chain time compiling programs.
    pub compile_us: u64,
    /// Chain time recording lazy traces.
    pub trace_us: u64,
}

impl CriticalPathReport {
    /// True when no op events were recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Fraction of chain time in `bucket_us`, as a percentage.
    fn pct(&self, bucket_us: u64) -> f64 {
        if self.chain_us == 0 {
            0.0
        } else {
            bucket_us as f64 / self.chain_us as f64 * 100.0
        }
    }

    /// Percentage of chain time spent waiting in queues.
    pub fn queue_pct(&self) -> f64 {
        self.pct(self.queue_us)
    }

    /// Percentage of chain time executing kernels.
    pub fn kernel_pct(&self) -> f64 {
        self.pct(self.kernel_us)
    }

    /// Percentage of chain time compiling.
    pub fn compile_pct(&self) -> f64 {
        self.pct(self.compile_us)
    }

    /// Percentage of chain time recording traces.
    pub fn trace_pct(&self) -> f64 {
        self.pct(self.trace_us)
    }
}

impl fmt::Display for CriticalPathReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return writeln!(f, "critical path: no op events recorded");
        }
        writeln!(
            f,
            "critical path: {} ops, {:.2}ms of {:.2}ms wall ({:.0}%)",
            self.steps.len(),
            self.chain_us as f64 / 1e3,
            self.wall_us as f64 / 1e3,
            if self.wall_us > 0 {
                self.chain_us as f64 / self.wall_us as f64 * 100.0
            } else {
                0.0
            }
        )?;
        writeln!(
            f,
            "  queue {:.1}%  kernel {:.1}%  compile {:.1}%  trace {:.1}%",
            self.queue_pct(),
            self.kernel_pct(),
            self.compile_pct(),
            self.trace_pct()
        )?;
        // Collapse runs of the same (backend, name, phase) so long chains
        // of small elementwise kernels stay readable.
        let mut i = 0;
        while i < self.steps.len() {
            let step = &self.steps[i];
            let mut count = 1;
            let mut queue = step.queue_us;
            let mut run = step.run_us;
            while i + count < self.steps.len() {
                let next = &self.steps[i + count];
                if next.name == step.name
                    && next.backend == step.backend
                    && next.phase == step.phase
                {
                    queue += next.queue_us;
                    run += next.run_us;
                    count += 1;
                } else {
                    break;
                }
            }
            let label = format!("{}/{}", step.backend, step.name);
            write!(f, "  {label:<24} [{:<7}]", step.phase)?;
            if count > 1 {
                write!(f, " x{count:<4}")?;
            } else {
                write!(f, "      ")?;
            }
            writeln!(
                f,
                " queue {:>9}  run {:>9}",
                format!("{:.1}us", queue as f64),
                format!("{:.1}us", run as f64)
            )?;
            i += count;
        }
        Ok(())
    }
}

/// Reconstructs the longest dependency chain over everything recorded.
pub fn critical_path() -> CriticalPathReport {
    let ops = crate::op_events();
    if ops.is_empty() {
        return CriticalPathReport::default();
    }

    let index: HashMap<u64, usize> = ops.iter().enumerate().map(|(i, op)| (op.id, i)).collect();
    // chain[i] = (total chain cost ending at i, predecessor index)
    let mut chain: Vec<(u64, Option<usize>)> = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let mut best: Option<usize> = None;
        for dep in &op.deps {
            // Only already-processed events can be predecessors (recording
            // order is topological); id 0 means "no dependency".
            let Some(&j) = index.get(dep) else { continue };
            if j >= i {
                continue;
            }
            if best.is_none_or(|b| chain[j].0 > chain[b].0) {
                best = Some(j);
            }
        }
        let ready = match best {
            Some(j) => ops[j].end_us.max(op.enqueue_us),
            None => op.enqueue_us,
        };
        let wait = op.start_us.saturating_sub(ready);
        let cost = best.map(|j| chain[j].0).unwrap_or(0) + wait + op.run_us();
        chain.push((cost, best));
    }

    let mut at = chain
        .iter()
        .enumerate()
        .max_by_key(|(_, (cost, _))| *cost)
        .map(|(i, _)| i)
        .unwrap();
    let chain_us = chain[at].0;

    let mut steps = Vec::new();
    loop {
        let op = &ops[at];
        let pred = chain[at].1;
        let ready = match pred {
            Some(j) => ops[j].end_us.max(op.enqueue_us),
            None => op.enqueue_us,
        };
        steps.push(PathStep {
            name: op.name.to_string(),
            backend: op.backend,
            phase: op.phase,
            queue_us: op.start_us.saturating_sub(ready),
            run_us: op.run_us(),
        });
        match pred {
            Some(j) => at = j,
            None => break,
        }
    }
    steps.reverse();

    let wall_us = ops.iter().map(|op| op.end_us).max().unwrap_or(0)
        - ops.iter().map(|op| op.enqueue_us).min().unwrap_or(0);
    let queue_us = steps.iter().map(|s| s.queue_us).sum();
    let bucket = |phase: &str| -> u64 {
        steps
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.run_us)
            .sum()
    };
    CriticalPathReport {
        chain_us,
        wall_us,
        queue_us,
        kernel_us: bucket("kernel"),
        compile_us: bucket("compile"),
        trace_us: bucket("trace"),
        steps,
    }
}
