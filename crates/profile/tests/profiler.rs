//! Integration tests for the process-global profiler.
//!
//! The profiler is a singleton, so every test that enables, records or
//! resets it must hold `PROFILER_LOCK` — cargo runs tests in one binary
//! on multiple threads, and unserialized tests would see each other's
//! spans.

use std::sync::{Mutex, MutexGuard};

static PROFILER_LOCK: Mutex<()> = Mutex::new(());

/// Takes the serializing lock and starts from a clean, enabled profiler.
fn exclusive_profiler(enabled: bool) -> MutexGuard<'static, ()> {
    let guard = PROFILER_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    s4tf_profile::set_enabled(enabled);
    s4tf_profile::reset();
    guard
}

#[test]
fn disabled_mode_records_nothing() {
    let _guard = exclusive_profiler(false);
    {
        let mut span = s4tf_profile::span("never");
        assert!(!span.is_recording());
        span.annotate("key", "value");
        span.annotate_f64("n", 1.0);
    }
    s4tf_profile::counter_add("never.counter", 5);
    s4tf_profile::gauge_set("never.gauge", 1.0);
    let report = s4tf_profile::report();
    assert!(report.is_empty());
    assert!(report.span("never").is_none());
    assert!(report.counter("never.counter").is_none());
}

#[test]
fn counters_accumulate_exactly_across_threads() {
    let _guard = exclusive_profiler(true);
    const THREADS: u64 = 8;
    const ADDS: u64 = 250;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..ADDS {
                    s4tf_profile::counter_add("test.adds", 1);
                }
                s4tf_profile::counter_add("test.bulk", 10);
            });
        }
    });
    let report = s4tf_profile::report();
    assert_eq!(report.counter("test.adds"), Some(THREADS * ADDS));
    assert_eq!(report.counter("test.bulk"), Some(THREADS * 10));
    s4tf_profile::set_enabled(false);
    s4tf_profile::reset();
}

#[test]
fn nested_spans_record_on_every_thread() {
    let _guard = exclusive_profiler(true);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let _outer = s4tf_profile::span("outer");
                for _ in 0..3 {
                    let _inner = s4tf_profile::span("inner");
                    std::hint::black_box(0u64);
                }
            });
        }
    });
    let report = s4tf_profile::report();
    let outer = report.span("outer").expect("outer spans recorded");
    let inner = report.span("inner").expect("inner spans recorded");
    assert_eq!(outer.count, 4);
    assert_eq!(inner.count, 12);
    // The outer span closes after its inner spans, so it cannot be
    // shorter than any single inner span on the same thread; the
    // aggregate check below is the weaker cross-thread version.
    assert!(outer.total_us >= inner.min_us * 4 || inner.min_us == 0);
    s4tf_profile::set_enabled(false);
    s4tf_profile::reset();
}

#[test]
fn report_aggregation_math_holds() {
    let _guard = exclusive_profiler(true);
    for i in 0..10 {
        let _span = s4tf_profile::span("work");
        // Spread the durations so min < max.
        std::thread::sleep(std::time::Duration::from_micros(50 * (i + 1)));
    }
    let report = s4tf_profile::report();
    let stats = report.span("work").expect("spans recorded");
    assert_eq!(stats.count, 10);
    assert!(stats.min_us <= stats.max_us);
    assert!(stats.min_us as f64 <= stats.mean_us && stats.mean_us <= stats.max_us as f64);
    assert!((stats.mean_us - stats.total_us as f64 / 10.0).abs() < 1e-9);
    assert!(stats.p95_us >= stats.min_us && stats.p95_us <= stats.max_us);
    // Sleeps are monotonically increasing, so p95 lands near the top.
    assert!(stats.p95_us as f64 >= stats.mean_us);

    let rendered = report.to_string();
    assert!(rendered.contains("work"));
    assert!(rendered.contains("count"));
    s4tf_profile::set_enabled(false);
    s4tf_profile::reset();
}

#[test]
fn reset_discards_everything() {
    let _guard = exclusive_profiler(true);
    {
        let _span = s4tf_profile::span("gone");
    }
    s4tf_profile::counter_add("gone.counter", 1);
    assert!(!s4tf_profile::report().is_empty());
    s4tf_profile::reset();
    assert!(s4tf_profile::report().is_empty());
    s4tf_profile::set_enabled(false);
}

#[test]
fn chrome_trace_is_valid_json_with_expected_events() {
    let _guard = exclusive_profiler(true);
    {
        let mut span = s4tf_profile::span("compile \"fast\"");
        span.annotate("kernels", "3");
        std::thread::sleep(std::time::Duration::from_micros(100));
    }
    s4tf_profile::counter_add("cache.miss", 2);
    s4tf_profile::gauge_set("queue.depth", 4.0);

    let json = s4tf_profile::chrome_trace_json();
    let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");

    let display = value.get("displayTimeUnit").expect("displayTimeUnit");
    assert_eq!(display, &serde_json::Value::Str("ms".to_string()));

    let events = match value.get("traceEvents") {
        Some(serde_json::Value::Array(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    let get_str = |event: &serde_json::Value, key: &str| -> String {
        match event.get(key) {
            Some(serde_json::Value::Str(s)) => s.clone(),
            other => panic!("{key} must be a string, got {other:?}"),
        }
    };

    // The complete ("X") event for the span, with escaped name and args.
    let span_event = events
        .iter()
        .find(|e| get_str(e, "ph") == "X")
        .expect("span event present");
    assert_eq!(get_str(span_event, "name"), "compile \"fast\"");
    assert_eq!(get_str(span_event, "cat"), "s4tf");
    assert!(span_event.get("ts").is_some());
    assert!(span_event.get("dur").is_some());
    assert!(span_event.get("pid").is_some());
    assert!(span_event.get("tid").is_some());
    let args = span_event.get("args").expect("span args");
    assert_eq!(
        args.get("kernels"),
        Some(&serde_json::Value::Str("3".to_string()))
    );

    // Counter ("C") events for both the counter and the gauge.
    let counter_names: Vec<String> = events
        .iter()
        .filter(|e| get_str(e, "ph") == "C")
        .map(|e| get_str(e, "name"))
        .collect();
    assert!(counter_names.iter().any(|n| n == "cache.miss"));
    assert!(counter_names.iter().any(|n| n == "queue.depth"));

    s4tf_profile::set_enabled(false);
    s4tf_profile::reset();
}

#[test]
fn span_names_accept_owned_strings() {
    let _guard = exclusive_profiler(true);
    let dynamic = format!("pass.{}", 7);
    {
        let _span = s4tf_profile::span(dynamic.clone());
    }
    assert!(s4tf_profile::report().span(&dynamic).is_some());
    s4tf_profile::set_enabled(false);
    s4tf_profile::reset();
}
