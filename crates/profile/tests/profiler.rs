//! Integration tests for the process-global profiler.
//!
//! The profiler is a singleton, so every test that enables, records or
//! resets it must hold `PROFILER_LOCK` — cargo runs tests in one binary
//! on multiple threads, and unserialized tests would see each other's
//! spans.

use std::sync::{Mutex, MutexGuard};

static PROFILER_LOCK: Mutex<()> = Mutex::new(());

/// Takes the serializing lock and starts from a clean, enabled profiler.
fn exclusive_profiler(enabled: bool) -> MutexGuard<'static, ()> {
    let guard = PROFILER_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    s4tf_profile::set_enabled(enabled);
    s4tf_profile::reset();
    guard
}

#[test]
fn disabled_mode_records_nothing() {
    let _guard = exclusive_profiler(false);
    {
        let mut span = s4tf_profile::span("never");
        assert!(!span.is_recording());
        span.annotate("key", "value");
        span.annotate_f64("n", 1.0);
    }
    s4tf_profile::counter_add("never.counter", 5);
    s4tf_profile::gauge_set("never.gauge", 1.0);
    let report = s4tf_profile::report();
    assert!(report.is_empty());
    assert!(report.span("never").is_none());
    assert!(report.counter("never.counter").is_none());
}

#[test]
fn counters_accumulate_exactly_across_threads() {
    let _guard = exclusive_profiler(true);
    const THREADS: u64 = 8;
    const ADDS: u64 = 250;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..ADDS {
                    s4tf_profile::counter_add("test.adds", 1);
                }
                s4tf_profile::counter_add("test.bulk", 10);
            });
        }
    });
    let report = s4tf_profile::report();
    assert_eq!(report.counter("test.adds"), Some(THREADS * ADDS));
    assert_eq!(report.counter("test.bulk"), Some(THREADS * 10));
    s4tf_profile::set_enabled(false);
    s4tf_profile::reset();
}

#[test]
fn nested_spans_record_on_every_thread() {
    let _guard = exclusive_profiler(true);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let _outer = s4tf_profile::span("outer");
                for _ in 0..3 {
                    let _inner = s4tf_profile::span("inner");
                    std::hint::black_box(0u64);
                }
            });
        }
    });
    let report = s4tf_profile::report();
    let outer = report.span("outer").expect("outer spans recorded");
    let inner = report.span("inner").expect("inner spans recorded");
    assert_eq!(outer.count, 4);
    assert_eq!(inner.count, 12);
    // The outer span closes after its inner spans, so it cannot be
    // shorter than any single inner span on the same thread; the
    // aggregate check below is the weaker cross-thread version.
    assert!(outer.total_us >= inner.min_us * 4 || inner.min_us == 0);
    s4tf_profile::set_enabled(false);
    s4tf_profile::reset();
}

#[test]
fn report_aggregation_math_holds() {
    let _guard = exclusive_profiler(true);
    for i in 0..10 {
        let _span = s4tf_profile::span("work");
        // Spread the durations so min < max.
        std::thread::sleep(std::time::Duration::from_micros(50 * (i + 1)));
    }
    let report = s4tf_profile::report();
    let stats = report.span("work").expect("spans recorded");
    assert_eq!(stats.count, 10);
    assert!(stats.min_us <= stats.max_us);
    assert!(stats.min_us as f64 <= stats.mean_us && stats.mean_us <= stats.max_us as f64);
    assert!((stats.mean_us - stats.total_us as f64 / 10.0).abs() < 1e-9);
    assert!(stats.p95_us >= stats.min_us && stats.p95_us <= stats.max_us);
    // Sleeps are monotonically increasing, so p95 lands near the top.
    assert!(stats.p95_us as f64 >= stats.mean_us);

    let rendered = report.to_string();
    assert!(rendered.contains("work"));
    assert!(rendered.contains("count"));
    s4tf_profile::set_enabled(false);
    s4tf_profile::reset();
}

#[test]
fn reset_discards_everything() {
    let _guard = exclusive_profiler(true);
    {
        let _span = s4tf_profile::span("gone");
    }
    s4tf_profile::counter_add("gone.counter", 1);
    assert!(!s4tf_profile::report().is_empty());
    s4tf_profile::reset();
    assert!(s4tf_profile::report().is_empty());
    s4tf_profile::set_enabled(false);
}

#[test]
fn chrome_trace_is_valid_json_with_expected_events() {
    let _guard = exclusive_profiler(true);
    {
        let mut span = s4tf_profile::span("compile \"fast\"");
        span.annotate("kernels", "3");
        std::thread::sleep(std::time::Duration::from_micros(100));
    }
    s4tf_profile::counter_add("cache.miss", 2);
    s4tf_profile::gauge_set("queue.depth", 4.0);

    let json = s4tf_profile::chrome_trace_json();
    let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");

    let display = value.get("displayTimeUnit").expect("displayTimeUnit");
    assert_eq!(display, &serde_json::Value::Str("ms".to_string()));

    let events = match value.get("traceEvents") {
        Some(serde_json::Value::Array(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    let get_str = |event: &serde_json::Value, key: &str| -> String {
        match event.get(key) {
            Some(serde_json::Value::Str(s)) => s.clone(),
            other => panic!("{key} must be a string, got {other:?}"),
        }
    };

    // The complete ("X") event for the span, with escaped name and args.
    let span_event = events
        .iter()
        .find(|e| get_str(e, "ph") == "X")
        .expect("span event present");
    assert_eq!(get_str(span_event, "name"), "compile \"fast\"");
    assert_eq!(get_str(span_event, "cat"), "s4tf");
    assert!(span_event.get("ts").is_some());
    assert!(span_event.get("dur").is_some());
    assert!(span_event.get("pid").is_some());
    assert!(span_event.get("tid").is_some());
    let args = span_event.get("args").expect("span args");
    assert_eq!(
        args.get("kernels"),
        Some(&serde_json::Value::Str("3".to_string()))
    );

    // Counter ("C") events for both the counter and the gauge.
    let counter_names: Vec<String> = events
        .iter()
        .filter(|e| get_str(e, "ph") == "C")
        .map(|e| get_str(e, "name"))
        .collect();
    assert!(counter_names.iter().any(|n| n == "cache.miss"));
    assert!(counter_names.iter().any(|n| n == "queue.depth"));

    s4tf_profile::set_enabled(false);
    s4tf_profile::reset();
}

#[test]
fn span_names_accept_owned_strings() {
    let _guard = exclusive_profiler(true);
    let dynamic = format!("pass.{}", 7);
    {
        let _span = s4tf_profile::span(dynamic.clone());
    }
    assert!(s4tf_profile::report().span(&dynamic).is_some());
    s4tf_profile::set_enabled(false);
    s4tf_profile::reset();
}

#[test]
fn record_work_surfaces_throughput_in_the_report() {
    let _guard = exclusive_profiler(true);
    {
        let mut span = s4tf_profile::span("gemm");
        span.record_work(2_000_000, 1_000_000);
        std::thread::sleep(std::time::Duration::from_micros(500));
    }
    let report = s4tf_profile::report();
    let stats = report.span("gemm").expect("span recorded");
    assert_eq!(stats.flops, 2_000_000);
    assert_eq!(stats.bytes, 1_000_000);
    assert!(stats.gflops() > 0.0);
    assert!(stats.gbps() > 0.0);
    // 2e6 FLOPs over total_us: the identity gflops = flops/1e3/total_us.
    let expect = stats.flops as f64 / 1e3 / stats.total_us as f64;
    assert!((stats.gflops() - expect).abs() < 1e-9);
    let rendered = report.to_string();
    assert!(rendered.contains("gflop/s"), "{rendered}");
    s4tf_profile::set_enabled(false);
    s4tf_profile::reset();
}

#[test]
fn roofline_aggregates_only_kernel_phase_events() {
    let _guard = exclusive_profiler(true);
    let (a, b, c) = (
        s4tf_profile::next_op_id(),
        s4tf_profile::next_op_id(),
        s4tf_profile::next_op_id(),
    );
    s4tf_profile::op_event(
        a,
        "matmul",
        "eager",
        "kernel",
        "simd8",
        0,
        0,
        1000,
        vec![],
        1_000_000,
        500_000,
    );
    s4tf_profile::op_event(
        b,
        "matmul",
        "eager",
        "kernel",
        "simd8",
        1000,
        1000,
        2000,
        vec![a],
        1_000_000,
        500_000,
    );
    // Compile-phase events must not count toward kernel throughput.
    s4tf_profile::op_event(
        c,
        "program",
        "lazy",
        "compile",
        "",
        0,
        0,
        5000,
        vec![],
        0,
        0,
    );

    let roof = s4tf_profile::roofline();
    assert!(!roof.is_empty());
    let row = roof.row("eager", "matmul").expect("aggregated row");
    assert_eq!(row.count, 2);
    assert_eq!(row.flops, 2_000_000);
    assert_eq!(row.total_us, 2000);
    // 2e6 FLOPs / 2000 us = 1 GFLOP/s; intensity = 2e6/1e6 = 2 FLOPs/byte.
    assert!((row.gflops() - 1.0).abs() < 1e-9);
    assert!((row.intensity() - 2.0).abs() < 1e-9);
    assert!(roof.row("lazy", "program").is_none());

    // With machine ceilings the rendering gains %-of-roof and bound labels.
    let machine = s4tf_profile::MachineProfile {
        peak_gflops: 10.0,
        peak_gbps: 5.0,
    };
    let rendered = roof.with_machine(machine).to_string();
    assert!(rendered.contains("matmul"), "{rendered}");
    assert!(rendered.contains("roof"), "{rendered}");
    s4tf_profile::set_enabled(false);
    s4tf_profile::reset();
}

#[test]
fn critical_path_follows_the_longest_diamond_arm() {
    let _guard = exclusive_profiler(true);
    let (a, b, c, d) = (
        s4tf_profile::next_op_id(),
        s4tf_profile::next_op_id(),
        s4tf_profile::next_op_id(),
        s4tf_profile::next_op_id(),
    );
    // Diamond: a fans out to b (slow arm) and c (fast arm); d joins both.
    s4tf_profile::op_event(a, "a", "eager", "kernel", "scalar", 0, 0, 100, vec![], 0, 0);
    s4tf_profile::op_event(
        b,
        "b",
        "eager",
        "kernel",
        "scalar",
        0,
        100,
        600,
        vec![a],
        0,
        0,
    );
    s4tf_profile::op_event(
        c,
        "c",
        "eager",
        "kernel",
        "scalar",
        0,
        100,
        150,
        vec![a],
        0,
        0,
    );
    s4tf_profile::op_event(
        d,
        "d",
        "eager",
        "kernel",
        "scalar",
        0,
        620,
        720,
        vec![b, c],
        0,
        0,
    );

    let cp = s4tf_profile::critical_path();
    let names: Vec<&str> = cp.steps.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["a", "b", "d"], "must pick the slow arm, skip c");
    // a runs 100, b runs 500, d waits 20 (620 - b's finish at 600) + runs 100.
    assert_eq!(cp.chain_us, 100 + 500 + 20 + 100);
    assert_eq!(cp.queue_us, 20);
    assert_eq!(cp.kernel_us, 700);
    assert_eq!(cp.wall_us, 720);
    assert!((cp.kernel_pct() - 700.0 / 720.0 * 100.0).abs() < 1e-9);
    let rendered = cp.to_string();
    assert!(rendered.contains("critical path"), "{rendered}");
    s4tf_profile::set_enabled(false);
    s4tf_profile::reset();
}

#[test]
fn critical_path_decomposes_lazy_phases() {
    let _guard = exclusive_profiler(true);
    let (t, c, k) = (
        s4tf_profile::next_op_id(),
        s4tf_profile::next_op_id(),
        s4tf_profile::next_op_id(),
    );
    // trace -> compile -> kernel, strictly chained.
    s4tf_profile::op_event(t, "step", "lazy", "trace", "", 0, 0, 200, vec![], 0, 0);
    s4tf_profile::op_event(
        c,
        "program",
        "lazy",
        "compile",
        "",
        200,
        200,
        1200,
        vec![t],
        0,
        0,
    );
    s4tf_profile::op_event(
        k,
        "matmul",
        "lazy",
        "kernel",
        "simd8",
        1200,
        1200,
        1500,
        vec![c],
        9,
        9,
    );

    let cp = s4tf_profile::critical_path();
    assert_eq!(cp.steps.len(), 3);
    assert_eq!(cp.trace_us, 200);
    assert_eq!(cp.compile_us, 1000);
    assert_eq!(cp.kernel_us, 300);
    assert_eq!(cp.queue_us, 0);
    assert_eq!(cp.chain_us, 1500);
    s4tf_profile::set_enabled(false);
    s4tf_profile::reset();
}

#[test]
fn chrome_trace_carries_metadata_flows_and_work_args() {
    let _guard = exclusive_profiler(true);
    s4tf_profile::set_thread_name("test-worker");
    let flow = s4tf_profile::next_flow_id();
    {
        let mut span = s4tf_profile::span("enqueue");
        span.flow_start(flow);
        std::thread::sleep(std::time::Duration::from_micros(50));
    }
    {
        let mut span = s4tf_profile::span("kernel_run");
        span.record_work(1_000, 2_000);
        span.flow_end(flow);
        std::thread::sleep(std::time::Duration::from_micros(50));
    }

    let json = s4tf_profile::chrome_trace_json();
    let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    let events = match value.get("traceEvents") {
        Some(serde_json::Value::Array(events)) => events.clone(),
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    let ph = |e: &serde_json::Value| match e.get("ph") {
        Some(serde_json::Value::Str(s)) => s.clone(),
        _ => String::new(),
    };
    let name = |e: &serde_json::Value| match e.get("name") {
        Some(serde_json::Value::Str(s)) => s.clone(),
        _ => String::new(),
    };

    // Metadata: a process_name record and our named thread.
    assert!(events
        .iter()
        .any(|e| ph(e) == "M" && name(e) == "process_name"));
    let thread_meta: Vec<String> = events
        .iter()
        .filter(|e| ph(e) == "M" && name(e) == "thread_name")
        .map(|e| format!("{:?}", e.get("args")))
        .collect();
    assert!(
        thread_meta.iter().any(|a| a.contains("test-worker")),
        "{thread_meta:?}"
    );

    // Flow arrows: a start ("s") and a binding end ("f").
    assert!(events.iter().any(|e| ph(e) == "s"));
    let flow_end = events
        .iter()
        .find(|e| ph(e) == "f")
        .expect("flow end event");
    assert_eq!(
        flow_end.get("bp"),
        Some(&serde_json::Value::Str("e".to_string()))
    );

    // The kernel_run span's args carry the cost-model work.
    let kernel = events
        .iter()
        .find(|e| ph(e) == "X" && name(e) == "kernel_run")
        .expect("kernel_run span event");
    let args = kernel.get("args").expect("work args");
    assert!(args.get("flops").is_some(), "{args:?}");
    assert!(args.get("bytes").is_some(), "{args:?}");
    assert!(args.get("gflops").is_some(), "{args:?}");
    s4tf_profile::set_enabled(false);
    s4tf_profile::reset();
}

#[test]
fn machine_probe_reports_positive_ceilings() {
    let machine = s4tf_profile::machine_probe();
    assert!(machine.peak_gflops > 0.0, "{machine:?}");
    assert!(machine.peak_gbps > 0.0, "{machine:?}");
    // The roof can never exceed the compute ceiling, and the ridge point
    // is where both ceilings meet.
    assert!(machine.roof_gflops(1e9) <= machine.peak_gflops + 1e-9);
    let ridge = machine.ridge_intensity();
    assert!((machine.roof_gflops(ridge) - machine.peak_gflops).abs() < 1e-6);
    assert!(s4tf_profile::machine_fingerprint().contains(std::env::consts::OS));
}

#[test]
fn op_events_survive_until_reset_and_ids_advance() {
    let _guard = exclusive_profiler(true);
    let id = s4tf_profile::next_op_id();
    let id2 = s4tf_profile::next_op_id();
    assert!(id2 > id);
    s4tf_profile::op_event(
        id,
        "op",
        "naive",
        "kernel",
        "scalar",
        0,
        0,
        10,
        vec![],
        1,
        1,
    );
    assert_eq!(s4tf_profile::op_events().len(), 1);
    s4tf_profile::reset();
    assert!(s4tf_profile::op_events().is_empty());
    assert!(s4tf_profile::critical_path().is_empty());
    assert!(s4tf_profile::roofline().is_empty());
    s4tf_profile::set_enabled(false);
}
