//! Length-prefixed, checksummed framing for the distributed runtime.
//!
//! Every message on either plane (control or data) is one frame:
//!
//! ```text
//! magic    u32  "S4DF"
//! kind     u8   message discriminant (see [`crate::protocol`])
//! sender   u32  sender rank ([`COORDINATOR`] for the coordinator)
//! epoch    u32  membership-view epoch the frame belongs to
//! attempt  u32  collective attempt within the step
//! step     u64  training step
//! seq      u64  data-plane sequence tag (bucket/phase/iteration)
//! len      u32  payload length in bytes
//! payload  [u8; len]
//! digest   u64  FNV-1a over every preceding byte
//! ```
//!
//! A frame that fails magic, bounds, or digest validation surfaces a typed
//! [`RuntimeError`] (`FaultKind::Net`) attributed to the peer the stream
//! belongs to — corruption can never deliver garbage into a gradient, and
//! the sender's identity travels in the header so attribution survives
//! multi-peer fan-in.

use s4tf_tensor::RuntimeError;
use std::io::{Read, Write};

/// Frame magic: `S4DF`.
pub const MAGIC: u32 = 0x5334_4446;

/// Sender id used by the coordinator (workers use their rank).
pub const COORDINATOR: u32 = u32::MAX;

/// Fixed header length in bytes (everything before the payload).
pub const HEADER_LEN: usize = 4 + 1 + 4 + 4 + 4 + 8 + 8 + 4;

/// Hard cap on payload size — a corrupted length field must not cause an
/// unbounded allocation before the digest check can reject the frame.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// One parsed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message discriminant.
    pub kind: u8,
    /// Sender rank, or [`COORDINATOR`].
    pub sender: u32,
    /// Membership epoch.
    pub epoch: u32,
    /// Collective attempt within the step.
    pub attempt: u32,
    /// Training step.
    pub step: u64,
    /// Data-plane sequence tag.
    pub seq: u64,
    /// Message payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A control-plane frame (no sequence tag).
    pub fn control(kind: u8, sender: u32, epoch: u32, attempt: u32, step: u64) -> Frame {
        Frame {
            kind,
            sender,
            epoch,
            attempt,
            step,
            seq: 0,
            payload: Vec::new(),
        }
    }

    /// Serializes the frame, appending the trailing digest.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len() + 8);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(self.kind);
        out.extend_from_slice(&self.sender.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.attempt.to_le_bytes());
        out.extend_from_slice(&self.step.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let digest = fnv1a(&out);
        out.extend_from_slice(&digest.to_le_bytes());
        out
    }
}

/// FNV-1a over `bytes` — matches the checkpoint format's digest.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    hash
}

/// Maps an I/O failure on a peer stream to a typed net error. Timeouts are
/// labelled as straggler timeouts so the failure mode is legible in logs.
pub fn io_err(op: &'static str, peer: Option<usize>, e: &std::io::Error) -> RuntimeError {
    use std::io::ErrorKind;
    let detail = match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => {
            format!("straggler timeout waiting on the wire ({e})")
        }
        ErrorKind::UnexpectedEof | ErrorKind::ConnectionReset | ErrorKind::BrokenPipe => {
            format!("connection lost ({e})")
        }
        _ => e.to_string(),
    };
    RuntimeError::net(op, peer, detail)
}

/// Writes one frame to `w`. `peer` is the destination's rank, for error
/// attribution.
pub fn write_frame(
    w: &mut impl Write,
    frame: &Frame,
    peer: Option<usize>,
) -> Result<(), RuntimeError> {
    write_encoded(w, &frame.encode(), peer)
}

/// Writes pre-encoded frame bytes (the send path encodes once, so the
/// injector can corrupt the serialized form after the digest is computed).
pub fn write_encoded(
    w: &mut impl Write,
    bytes: &[u8],
    peer: Option<usize>,
) -> Result<(), RuntimeError> {
    w.write_all(bytes)
        .and_then(|_| w.flush())
        .map_err(|e| io_err("dist.send", peer, &e))
}

/// Reads one frame from `r`, validating magic, bounds and digest. Every
/// failure mode is a typed net error attributed to `peer`.
pub fn read_frame(r: &mut impl Read, peer: Option<usize>) -> Result<Frame, RuntimeError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)
        .map_err(|e| io_err("dist.recv", peer, &e))?;
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("fixed slice"));
    if magic != MAGIC {
        return Err(RuntimeError::net(
            "dist.recv",
            peer,
            format!("bad frame magic {magic:08x} (stream corrupt or desynchronized)"),
        ));
    }
    let kind = header[4];
    let sender = u32::from_le_bytes(header[5..9].try_into().expect("fixed slice"));
    let epoch = u32::from_le_bytes(header[9..13].try_into().expect("fixed slice"));
    let attempt = u32::from_le_bytes(header[13..17].try_into().expect("fixed slice"));
    let step = u64::from_le_bytes(header[17..25].try_into().expect("fixed slice"));
    let seq = u64::from_le_bytes(header[25..33].try_into().expect("fixed slice"));
    let len = u32::from_le_bytes(header[33..37].try_into().expect("fixed slice")) as usize;
    if len > MAX_PAYLOAD {
        return Err(RuntimeError::net(
            "dist.recv",
            peer,
            format!("frame declares {len} payload bytes (cap {MAX_PAYLOAD}); rejecting"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| io_err("dist.recv", peer, &e))?;
    let mut tail = [0u8; 8];
    r.read_exact(&mut tail)
        .map_err(|e| io_err("dist.recv", peer, &e))?;
    let stored = u64::from_le_bytes(tail);
    let mut whole = Vec::with_capacity(HEADER_LEN + len);
    whole.extend_from_slice(&header);
    whole.extend_from_slice(&payload);
    let computed = fnv1a(&whole);
    if stored != computed {
        return Err(RuntimeError::net(
            "dist.recv",
            peer,
            format!(
                "frame checksum mismatch: stored {stored:016x}, computed {computed:016x} \
                 (wire corruption)"
            ),
        ));
    }
    Ok(Frame {
        kind,
        sender,
        epoch,
        attempt,
        step,
        seq,
        payload,
    })
}

/// Little-endian payload writer for protocol messages.
#[derive(Default)]
pub struct PayloadWriter(pub Vec<u8>);

impl PayloadWriter {
    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64`.
    pub fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked payload reader for protocol messages.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
    peer: Option<usize>,
}

impl<'a> PayloadReader<'a> {
    /// A reader over `buf`; decode errors are attributed to `peer`.
    pub fn new(buf: &'a [u8], peer: Option<usize>) -> Self {
        PayloadReader { buf, pos: 0, peer }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RuntimeError> {
        if self.pos + n > self.buf.len() {
            return Err(RuntimeError::net(
                "dist.decode",
                self.peer,
                format!(
                    "truncated payload: wanted {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len()
                ),
            ));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, RuntimeError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("fixed slice"),
        ))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, RuntimeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("fixed slice"),
        ))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, RuntimeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("fixed slice"),
        ))
    }

    /// Reads an `f64`.
    pub fn f64(&mut self) -> Result<f64, RuntimeError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("fixed slice"),
        ))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, RuntimeError> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|e| {
            RuntimeError::net("dist.decode", self.peer, format!("non-UTF-8 string: {e}"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s4tf_tensor::FaultKind;

    fn sample() -> Frame {
        Frame {
            kind: 2,
            sender: 3,
            epoch: 1,
            attempt: 0,
            step: 7,
            seq: 42,
            payload: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let f = sample();
        let bytes = f.encode();
        let back = read_frame(&mut bytes.as_slice(), Some(3)).expect("valid frame");
        assert_eq!(back, f);
    }

    #[test]
    fn corruption_surfaces_typed_net_error_with_peer() {
        let mut bytes = sample().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        let err = read_frame(&mut bytes.as_slice(), Some(3)).expect_err("must reject");
        assert_eq!(err.kind, FaultKind::Net);
        assert!(err.to_string().contains("peer rank 3"), "{err}");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn truncation_and_bad_magic_are_errors() {
        let bytes = sample().encode();
        let err = read_frame(&mut bytes[..10].to_vec().as_slice(), None).expect_err("short");
        assert_eq!(err.kind, FaultKind::Net);

        let mut wrong = bytes.clone();
        wrong[0] ^= 0x55;
        // Recompute the digest so only the magic is wrong.
        let body = wrong.len() - 8;
        let digest = fnv1a(&wrong[..body]).to_le_bytes();
        wrong[body..].copy_from_slice(&digest);
        let err = read_frame(&mut wrong.as_slice(), Some(1)).expect_err("bad magic");
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = sample().encode();
        bytes[33..37].copy_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut bytes.as_slice(), Some(2)).expect_err("oversized");
        assert!(err.to_string().contains("cap"), "{err}");
    }

    #[test]
    fn payload_reader_round_trips() {
        let mut w = PayloadWriter::default();
        w.u16(9);
        w.u32(12345);
        w.u64(1 << 40);
        w.f64(0.5);
        w.str("hello");
        let mut r = PayloadReader::new(&w.0, None);
        assert_eq!(r.u16().expect("u16"), 9);
        assert_eq!(r.u32().expect("u32"), 12345);
        assert_eq!(r.u64().expect("u64"), 1 << 40);
        assert_eq!(r.f64().expect("f64"), 0.5);
        assert_eq!(r.str().expect("str"), "hello");
        assert!(r.u16().is_err(), "reads past the end are typed errors");
    }
}
