//! Canonical LeNet data-parallel setup, shared by the distributed tests,
//! the `dist_lenet` example, and the `dist` bench.
//!
//! One function builds the shard data stream, one runs the worker role,
//! and one replays the in-process reference — all from the same seeds and
//! hyperparameters, so every consumer agrees on what "bit-identical"
//! means.

use crate::reference::reference_run;
use crate::worker::{is_worker_process, run_worker, WorkerEnv};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use s4tf_data::images::{Dataset, ImageSpec};
use s4tf_models::LeNet;
use s4tf_nn::Sgd;
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::RuntimeError;

/// Shard dataset size, in batches. Batch indices wrap modulo this.
const SHARD_BATCHES: usize = 8;

fn shard_dataset(shard_batch: usize, data_seed: u64, rank: u32) -> Dataset {
    // Disjoint per-rank streams: each rank owns its own generated shard,
    // keyed by the *original* rank so survivors keep their data after an
    // expulsion and a rejoiner resumes its own stream.
    let seed = data_seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(rank) + 1));
    Dataset::generate(ImageSpec::mnist_like(), shard_batch * SHARD_BATCHES, seed)
}

/// The `(step) → (images, one-hot labels)` stream for one worker rank.
pub fn shard_data(
    device: &Device,
    shard_batch: usize,
    data_seed: u64,
    rank: u32,
) -> impl FnMut(u64) -> (DTensor, DTensor) {
    let dataset = shard_dataset(shard_batch, data_seed, rank);
    let device = device.clone();
    move |step: u64| {
        let batch = dataset.batch(shard_batch, step as usize, 0);
        let images = DTensor::from_tensor(batch.images.clone(), &device);
        let labels = DTensor::from_tensor(batch.one_hot(10), &device);
        (images, labels)
    }
}

/// Builds the seeded LeNet every participant starts from.
pub fn build_model(device: &Device, seed: u64) -> LeNet {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    LeNet::new(device, &mut rng)
}

/// The worker role for LeNet runs. Call this first thing in `main` of any
/// binary that launches LeNet clusters; when the process was spawned as a
/// worker it runs to completion here and exits.
pub fn worker_main_if_spawned() {
    if !is_worker_process() {
        return;
    }
    let code = match lenet_worker() {
        Ok(_steps) => 0,
        Err(e) => {
            eprintln!("s4tf-dist worker: {e}");
            1
        }
    };
    std::process::exit(code);
}

fn lenet_worker() -> Result<u64, RuntimeError> {
    let env = WorkerEnv::from_env()?;
    let device = Device::naive();
    let model = build_model(&device, env.seed);
    let optimizer: Sgd<LeNet> = Sgd::new(env.learning_rate);
    let data = shard_data(&device, env.shard_batch, env.data_seed, env.rank);
    run_worker(&env, model, optimizer, data, &device)
}

/// Replays a membership schedule in-process with the same LeNet setup.
/// Returns the per-step mean survivor losses and the final model.
pub fn lenet_reference(
    schedule: &[Vec<u32>],
    shard_batch: usize,
    learning_rate: f64,
    seed: u64,
    data_seed: u64,
    bucket_bytes: usize,
) -> Result<(Vec<f64>, LeNet, Device), RuntimeError> {
    let device = Device::naive();
    let mut model = build_model(&device, seed);
    let mut optimizer: Sgd<LeNet> = Sgd::new(learning_rate);
    let mut streams: std::collections::BTreeMap<u32, _> = std::collections::BTreeMap::new();
    let losses = reference_run(
        &mut model,
        &mut optimizer,
        schedule,
        |step, rank| {
            let stream = streams
                .entry(rank)
                .or_insert_with(|| shard_data(&device, shard_batch, data_seed, rank));
            stream(step)
        },
        (bucket_bytes / 4).max(1),
        &device,
    )?;
    Ok((losses, model, device))
}
