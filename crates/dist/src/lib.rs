//! Multi-process data-parallel training with a fault-hardened ring
//! all-reduce over local TCP (paper §7: the distributed training story,
//! reproduced std-only).
//!
//! One launcher process ([`cluster::run`]) spawns `world` worker
//! processes — this same executable re-exec'd with
//! `S4TF_DIST_ROLE=worker` — and drives them through a typed control
//! protocol ([`protocol::Control`]) while gradients travel the data plane
//! as a bucketed ring all-reduce ([`collective::ring_all_reduce`]) with
//! length-prefixed, checksummed frames ([`wire`]).
//!
//! The headline is robustness, not just bandwidth:
//!
//! * **Bit-exact data parallelism.** The ring's f32 addition order is
//!   fixed and replayable ([`collective::reference_ring_sum`]), so a
//!   4-worker run matches the single-process baseline bit for bit
//!   ([`reference::reference_run`]).
//! * **Two-phase commit.** Updates apply only after every member reported
//!   the collective done; a worker dying mid-step can never cause
//!   divergence among survivors.
//! * **Failure detection and expulsion.** Per-peer heartbeats, straggler
//!   timeouts, and control-connection EOF detect a dead worker; under
//!   [`s4tf_nn::FaultPolicy::DropShard`] it is expelled, the step is
//!   redone by the survivors, and the gradient average renormalizes over
//!   the shrunken membership — graceful degradation, never a hang.
//! * **Checkpoint rejoin.** A restarted worker is readmitted at a commit
//!   boundary via a sync checkpoint ([`s4tf_nn::checkpoint`]), resuming
//!   bit-identically.
//! * **Deterministic chaos.** The `net` fault site
//!   (`S4TF_FAULT_SPEC=net:p:seed=s`) injects corrupt/drop/delay wire
//!   faults with per-link replayable draws ([`faults`]), and
//!   `S4TF_DIST_ABORT_SPEC` plants a `kill -9`-style death at an exact
//!   step and phase.
//!
//! Every socket and thread-join path returns typed per-peer
//! [`s4tf_tensor::RuntimeError`]s (`FaultKind::Net`, message prefixed
//! with `peer rank N:`); there are no `unwrap()`s on I/O.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cluster;
pub mod collective;
pub mod coordinator;
pub mod faults;
pub mod lenet;
pub mod protocol;
pub mod reference;
pub mod wire;
pub mod worker;

pub use cluster::{run, ClusterConfig};
pub use coordinator::{ClusterReport, StepRecord};
pub use faults::NetFaultMode;
pub use reference::{full_schedule, reference_run};
pub use worker::{is_worker_process, run_worker, WorkerEnv};
