//! Bucketed ring all-reduce on the wire, plus the in-process reference
//! that replays its exact addition order.
//!
//! The gradient is flattened (leaf order is the tangent's declaration
//! order, identical on every worker), split into buckets of
//! `bucket_elems`, and each bucket is reduced with the classic two-phase
//! ring: *reduce-scatter* (k−1 iterations of send/accumulate, after which
//! position `p` owns the fully reduced chunk `p+1 mod k`) then
//! *all-gather* (k−1 iterations circulating the reduced chunks). Sends go
//! through a dedicated writer thread per link, so a worker never blocks on
//! its own send while a peer is mid-send — the ring cannot self-deadlock
//! on full socket buffers, and bucket `b+1`'s frames stream while bucket
//! `b`'s are still in flight.
//!
//! **Bit-exactness.** f32 addition is commutative but not associative, so
//! the reduced bits depend on the grouping. The ring's grouping for chunk
//! `c` is the left fold over positions `c, c+1, …, c+k−1 (mod k)`;
//! [`reference_ring_sum`] replays exactly that fold in-process, which is
//! what lets the tests demand *bit-identical* convergence between a real
//! multi-process run and the single-process baseline.

use crate::faults::{corrupt_encoded, delay_ms, LinkFaults, NetFaultMode};
use crate::protocol::kind;
use crate::wire::{read_frame, write_encoded, Frame};
use s4tf_core::VisitTangent;
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::{RuntimeError, Tensor};
use std::net::TcpStream;
use std::ops::Range;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Header fields stamped on every data frame of one collective attempt.
#[derive(Debug, Clone, Copy)]
pub struct RingHeader {
    /// This worker's rank.
    pub rank: u32,
    /// Membership epoch of the view the ring was built from.
    pub epoch: u32,
    /// Collective attempt within the step.
    pub attempt: u32,
    /// Training step.
    pub step: u64,
}

/// The two wire phases of the ring.
const PHASE_REDUCE_SCATTER: u64 = 0;
const PHASE_ALL_GATHER: u64 = 1;

/// Sequence tag for a data frame: `bucket << 32 | phase << 16 | iter`.
fn seq_tag(bucket: usize, phase: u64, iter: usize) -> u64 {
    ((bucket as u64) << 32) | (phase << 16) | iter as u64
}

enum WriterCmd {
    Frame(Vec<u8>),
    Delay(u64),
}

/// One established ring link: a read stream from the left neighbor and a
/// writer thread feeding the right neighbor.
pub struct RingConnection {
    /// Rank of the left neighbor (frames are read from it).
    pub left_rank: u32,
    /// Rank of the right neighbor (frames are written to it).
    pub right_rank: u32,
    left: TcpStream,
    tx: Option<mpsc::Sender<WriterCmd>>,
    writer: Option<JoinHandle<()>>,
    write_err: Arc<Mutex<Option<RuntimeError>>>,
    faults: LinkFaults,
    /// Bytes actually written to the right neighbor on this link.
    pub tx_bytes: u64,
}

impl RingConnection {
    /// Builds a link from an accepted left-neighbor stream and a dialed
    /// right-neighbor stream. Read/write timeouts must already be set on
    /// both streams; the writer thread starts immediately.
    pub fn new(
        my_rank: u32,
        left_rank: u32,
        left: TcpStream,
        right_rank: u32,
        right: TcpStream,
    ) -> RingConnection {
        let write_err: Arc<Mutex<Option<RuntimeError>>> = Arc::new(Mutex::new(None));
        let err_slot = Arc::clone(&write_err);
        let (tx, rx) = mpsc::channel::<WriterCmd>();
        let peer = right_rank as usize;
        let writer = std::thread::spawn(move || {
            let mut right = right;
            let mut dead = false;
            for cmd in rx {
                match cmd {
                    WriterCmd::Delay(ms) => {
                        std::thread::sleep(std::time::Duration::from_millis(ms))
                    }
                    WriterCmd::Frame(bytes) => {
                        if dead {
                            continue; // drain so senders never block on a dead link
                        }
                        if let Err(e) = write_encoded(&mut right, &bytes, Some(peer)) {
                            if let Ok(mut slot) = err_slot.lock() {
                                *slot = Some(e);
                            }
                            dead = true;
                        }
                    }
                }
            }
        });
        RingConnection {
            left_rank,
            right_rank,
            left,
            tx: Some(tx),
            writer: Some(writer),
            write_err,
            faults: LinkFaults::new(my_rank, right_rank),
            tx_bytes: 0,
        }
    }

    fn pending_write_err(&self) -> Option<RuntimeError> {
        self.write_err.lock().ok().and_then(|slot| slot.clone())
    }

    /// Enqueues one frame toward the right neighbor, applying any injected
    /// wire fault for this link. Never blocks on the socket.
    pub fn send(&mut self, frame: &Frame) -> Result<(), RuntimeError> {
        if let Some(e) = self.pending_write_err() {
            return Err(e);
        }
        let mut bytes = frame.encode();
        let injected = self.faults.next_frame();
        match injected {
            Some((NetFaultMode::Drop, _)) => return Ok(()),
            Some((NetFaultMode::Corrupt, _)) => corrupt_encoded(&mut bytes),
            Some((NetFaultMode::Delay, _)) => {
                let tx = self.tx.as_ref().ok_or_else(|| {
                    RuntimeError::net("dist.send", Some(self.right_rank as usize), "link closed")
                })?;
                tx.send(WriterCmd::Delay(delay_ms())).map_err(|_| {
                    RuntimeError::net(
                        "dist.send",
                        Some(self.right_rank as usize),
                        "writer thread exited",
                    )
                })?;
            }
            None => {}
        }
        self.tx_bytes += bytes.len() as u64;
        let tx = self.tx.as_ref().ok_or_else(|| {
            RuntimeError::net("dist.send", Some(self.right_rank as usize), "link closed")
        })?;
        tx.send(WriterCmd::Frame(bytes)).map_err(|_| {
            RuntimeError::net(
                "dist.send",
                Some(self.right_rank as usize),
                "writer thread exited",
            )
        })
    }

    /// Reads the next data frame from the left neighbor and validates its
    /// header against the expected collective coordinates.
    pub fn recv(&mut self, header: RingHeader, expect_seq: u64) -> Result<Frame, RuntimeError> {
        let peer = Some(self.left_rank as usize);
        let frame = read_frame(&mut self.left, peer)?;
        if frame.kind != kind::DATA_CHUNK
            || frame.sender != self.left_rank
            || frame.epoch != header.epoch
            || frame.attempt != header.attempt
            || frame.step != header.step
            || frame.seq != expect_seq
        {
            return Err(RuntimeError::net(
                "dist.recv",
                peer,
                format!(
                    "ring desync: got kind {} sender {} epoch {} attempt {} step {} seq {:x}, \
                     expected sender {} epoch {} attempt {} step {} seq {:x}",
                    frame.kind,
                    frame.sender,
                    frame.epoch,
                    frame.attempt,
                    frame.step,
                    frame.seq,
                    self.left_rank,
                    header.epoch,
                    header.attempt,
                    header.step,
                    expect_seq,
                ),
            ));
        }
        Ok(frame)
    }

    /// Tears the link down, surfacing any writer-thread error. Join
    /// failures are typed, not unwrapped.
    pub fn shutdown(mut self) -> Result<u64, RuntimeError> {
        drop(self.tx.take());
        if let Some(writer) = self.writer.take() {
            writer.join().map_err(|_| {
                RuntimeError::net(
                    "dist.link",
                    Some(self.right_rank as usize),
                    "writer thread panicked",
                )
            })?;
        }
        match self.pending_write_err() {
            Some(e) => Err(e),
            None => Ok(self.tx_bytes),
        }
    }
}

impl Drop for RingConnection {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

/// Even chunk partition of `len` elements into `k` ranges
/// (`[i·len/k, (i+1)·len/k)`), identical on every worker.
pub fn chunk_ranges(len: usize, k: usize) -> Vec<Range<usize>> {
    (0..k).map(|i| (i * len / k)..((i + 1) * len / k)).collect()
}

/// Bucket partition of `len` elements into spans of at most
/// `bucket_elems`.
pub fn bucket_ranges(len: usize, bucket_elems: usize) -> Vec<Range<usize>> {
    let be = bucket_elems.max(1);
    let mut out = Vec::new();
    let mut start = 0;
    while start < len {
        let end = (start + be).min(len);
        out.push(start..end);
        start = end;
    }
    if out.is_empty() {
        out.push(0..0);
    }
    out
}

fn chunk_to_payload(data: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn payload_to_chunk(
    payload: &[u8],
    expect_elems: usize,
    peer: u32,
) -> Result<Vec<f32>, RuntimeError> {
    if payload.len() != expect_elems * 4 {
        return Err(RuntimeError::net(
            "dist.recv",
            Some(peer as usize),
            format!(
                "chunk size mismatch: got {} bytes, expected {}",
                payload.len(),
                expect_elems * 4
            ),
        ));
    }
    Ok(payload
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("fixed slice")))
        .collect())
}

/// In-place bucketed ring all-reduce (sum) of `flat` across `k` members,
/// with this worker at `position`. On return every member holds the same
/// bits: for chunk `c`, the left fold of the members' chunks in position
/// order `c, c+1, …, c+k−1 (mod k)`.
pub fn ring_all_reduce(
    flat: &mut [f32],
    position: usize,
    k: usize,
    ring: &mut RingConnection,
    header: RingHeader,
    bucket_elems: usize,
) -> Result<(), RuntimeError> {
    if k <= 1 {
        return Ok(());
    }
    let mut span = s4tf_profile::span("dist.allreduce");
    for (b, bucket) in bucket_ranges(flat.len(), bucket_elems)
        .into_iter()
        .enumerate()
    {
        let buf = &mut flat[bucket];
        let ranges = chunk_ranges(buf.len(), k);
        // Phase 1: reduce-scatter. Iteration t sends chunk (p−t) and
        // accumulates the incoming chunk (p−t−1) into the local buffer.
        for t in 0..k - 1 {
            let send_idx = (position + k - t) % k;
            let recv_idx = (position + 2 * k - t - 1) % k;
            let mut frame = Frame::control(
                kind::DATA_CHUNK,
                header.rank,
                header.epoch,
                header.attempt,
                header.step,
            );
            frame.seq = seq_tag(b, PHASE_REDUCE_SCATTER, t);
            frame.payload = chunk_to_payload(&buf[ranges[send_idx].clone()]);
            ring.send(&frame)?;
            let incoming = ring.recv(header, seq_tag(b, PHASE_REDUCE_SCATTER, t))?;
            let recv_range = ranges[recv_idx].clone();
            let chunk = payload_to_chunk(&incoming.payload, recv_range.len(), ring.left_rank)?;
            for (dst, src) in buf[recv_range].iter_mut().zip(chunk.iter()) {
                *dst += *src;
            }
        }
        // Phase 2: all-gather. Iteration t sends chunk (p+1−t) and
        // overwrites the incoming chunk (p−t) with the reduced bits.
        for t in 0..k - 1 {
            let send_idx = (position + 1 + k - t) % k;
            let recv_idx = (position + k - t) % k;
            let mut frame = Frame::control(
                kind::DATA_CHUNK,
                header.rank,
                header.epoch,
                header.attempt,
                header.step,
            );
            frame.seq = seq_tag(b, PHASE_ALL_GATHER, t);
            frame.payload = chunk_to_payload(&buf[ranges[send_idx].clone()]);
            ring.send(&frame)?;
            let incoming = ring.recv(header, seq_tag(b, PHASE_ALL_GATHER, t))?;
            let recv_range = ranges[recv_idx].clone();
            let chunk = payload_to_chunk(&incoming.payload, recv_range.len(), ring.left_rank)?;
            buf[recv_range].copy_from_slice(&chunk);
        }
    }
    if span.is_recording() {
        span.annotate_f64("elems", flat.len() as f64);
        span.annotate_f64("members", k as f64);
    }
    Ok(())
}

/// The exact bits [`ring_all_reduce`] produces, computed in-process: for
/// every bucket and chunk `c`, the left fold of the shards' chunks in
/// position order `c, c+1, …, c+k−1 (mod k)`. `shards[p]` is the flat
/// gradient of the member at ring position `p`; all shards must have the
/// same length.
pub fn reference_ring_sum(shards: &[&[f32]], bucket_elems: usize) -> Vec<f32> {
    let k = shards.len();
    assert!(k >= 1, "reference_ring_sum needs ≥1 shard");
    let len = shards[0].len();
    for s in shards {
        assert_eq!(s.len(), len, "shards must have equal length");
    }
    let mut out = shards[0].to_vec();
    if k == 1 {
        return out;
    }
    for bucket in bucket_ranges(len, bucket_elems) {
        let base = bucket.start;
        let blen = bucket.end - bucket.start;
        for (c, chunk) in chunk_ranges(blen, k).into_iter().enumerate() {
            let abs = (base + chunk.start)..(base + chunk.end);
            out[abs.clone()].copy_from_slice(&shards[c][abs.clone()]);
            for j in 1..k {
                let src = &shards[(c + j) % k][abs.clone()];
                for (dst, s) in out[abs.clone()].iter_mut().zip(src.iter()) {
                    *dst += *s;
                }
            }
        }
    }
    out
}

/// Flattens a tangent's `DTensor` leaves into one host buffer, in leaf
/// declaration order. Returns the flat values and each leaf's shape.
pub fn flatten_tangent<T: VisitTangent<DTensor>>(
    tangent: &T,
) -> Result<(Vec<f32>, Vec<Vec<usize>>), RuntimeError> {
    let mut flat = Vec::new();
    let mut shapes = Vec::new();
    let mut first_err: Option<RuntimeError> = None;
    tangent.visit_leaves(&mut |leaf: &DTensor| {
        if first_err.is_some() {
            return;
        }
        match leaf.to_tensor_checked() {
            Ok(host) => {
                flat.extend_from_slice(host.as_slice());
                shapes.push(host.dims().to_vec());
            }
            Err(e) => first_err = Some(e),
        }
    });
    match first_err {
        Some(e) => Err(e),
        None => Ok((flat, shapes)),
    }
}

/// Scatters a flat buffer back into a tangent's leaves (inverse of
/// [`flatten_tangent`]), placing each leaf on `device`.
pub fn unflatten_tangent<T: VisitTangent<DTensor>>(
    tangent: &mut T,
    flat: &[f32],
    device: &Device,
) -> Result<(), RuntimeError> {
    let mut offset = 0usize;
    let mut first_err: Option<RuntimeError> = None;
    tangent.visit_leaves_mut(&mut |leaf: &mut DTensor| {
        if first_err.is_some() {
            return;
        }
        let dims = leaf.dims();
        let numel: usize = dims.iter().product();
        if offset + numel > flat.len() {
            first_err = Some(RuntimeError::net(
                "dist.unflatten",
                None,
                format!(
                    "flat buffer too short: leaf {dims:?} needs {numel} elements at offset \
                     {offset}, buffer has {}",
                    flat.len()
                ),
            ));
            return;
        }
        let host = Tensor::from_vec(flat[offset..offset + numel].to_vec(), &dims);
        *leaf = DTensor::from_tensor(host, device);
        offset += numel;
    });
    if let Some(e) = first_err {
        return Err(e);
    }
    if offset != flat.len() {
        return Err(RuntimeError::net(
            "dist.unflatten",
            None,
            format!(
                "flat buffer length mismatch: leaves consumed {offset} of {} elements",
                flat.len()
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn chunk_and_bucket_geometry() {
        let r = chunk_ranges(10, 3);
        assert_eq!(r, vec![0..3, 3..6, 6..10]);
        assert_eq!(chunk_ranges(2, 4), vec![0..0, 0..1, 1..1, 1..2]);
        assert_eq!(bucket_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(bucket_ranges(0, 4), vec![0..0]);
    }

    #[test]
    fn reference_sum_matches_plain_sum_in_value() {
        let a: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..100).map(|i| 1.0 - i as f32).collect();
        let c: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        let out = reference_ring_sum(&[&a, &b, &c], 16);
        for i in 0..100 {
            let expect = a[i] + b[i] + c[i];
            assert!(
                (out[i] - expect).abs() < 1e-4,
                "{i}: {} vs {expect}",
                out[i]
            );
        }
    }

    /// The real wire ring (threads + localhost TCP) must produce exactly
    /// the bits of [`reference_ring_sum`].
    #[test]
    fn wire_ring_is_bit_identical_to_reference() {
        for k in [2usize, 3, 4] {
            let n = 1000usize;
            let shards: Vec<Vec<f32>> = (0..k)
                .map(|p| {
                    (0..n)
                        .map(|i| ((i * 31 + p * 7) as f32 * 0.001).sin() * 3.0)
                        .collect()
                })
                .collect();
            let refs: Vec<&[f32]> = shards.iter().map(|s| s.as_slice()).collect();
            let expect = reference_ring_sum(&refs, 173);

            // Build the ring: listener per position, everyone dials right.
            let listeners: Vec<TcpListener> = (0..k)
                .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
                .collect();
            let ports: Vec<u16> = listeners
                .iter()
                .map(|l| l.local_addr().expect("addr").port())
                .collect();
            let results: Vec<Vec<f32>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..k)
                    .map(|p| {
                        let mut flat = shards[p].clone();
                        let listener = &listeners[p];
                        let right_port = ports[(p + 1) % k];
                        scope.spawn(move || {
                            let right =
                                TcpStream::connect(("127.0.0.1", right_port)).expect("dial");
                            let (left, _) = listener.accept().expect("accept");
                            let timeout = Some(std::time::Duration::from_secs(5));
                            left.set_read_timeout(timeout).expect("timeout");
                            right.set_write_timeout(timeout).expect("timeout");
                            let left_rank = ((p + k - 1) % k) as u32;
                            let right_rank = ((p + 1) % k) as u32;
                            let mut ring =
                                RingConnection::new(p as u32, left_rank, left, right_rank, right);
                            let header = RingHeader {
                                rank: p as u32,
                                epoch: 0,
                                attempt: 0,
                                step: 0,
                            };
                            ring_all_reduce(&mut flat, p, k, &mut ring, header, 173)
                                .expect("ring all-reduce");
                            ring.shutdown().expect("clean shutdown");
                            flat
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("ring thread"))
                    .collect()
            });
            for (p, got) in results.iter().enumerate() {
                assert_eq!(
                    got.as_slice(),
                    expect.as_slice(),
                    "k={k} position {p}: wire bits must equal the reference fold"
                );
            }
        }
    }

    #[test]
    fn single_member_ring_is_identity() {
        let mut flat = vec![1.0f32, 2.0, 3.0];
        // k = 1 never touches the connection; build a dummy loopback.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let port = listener.local_addr().expect("addr").port();
        let right = TcpStream::connect(("127.0.0.1", port)).expect("dial");
        let (left, _) = listener.accept().expect("accept");
        let mut ring = RingConnection::new(0, 0, left, 0, right);
        let header = RingHeader {
            rank: 0,
            epoch: 0,
            attempt: 0,
            step: 0,
        };
        ring_all_reduce(&mut flat, 0, 1, &mut ring, header, 2).expect("k=1");
        assert_eq!(flat, vec![1.0, 2.0, 3.0]);
    }
}
