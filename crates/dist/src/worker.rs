//! The worker process: shard compute, ring collectives, two-phase apply,
//! checkpoint sync, and deterministic chaos hooks.
//!
//! A worker is a child process launched by [`crate::cluster::Cluster`]. It
//! dials the coordinator, registers its data-plane port, and then follows
//! the control protocol: on `View` it (re)builds its ring neighbors and
//! computes the step's shard gradient; the bucketed ring all-reduce runs
//! on the wire; `StepDone` is reported and the update is applied only when
//! `Commit` arrives (two-phase — a peer dying mid-collective can never
//! leave this worker half-applied). The per-step gradient is kept pristine
//! so a `Retry` or a membership change replays the collective without
//! recomputing — and without any bit drift.
//!
//! Rejoin: a restarted worker registers like a fresh one; its first `View`
//! carries a `resume_step` ahead of its local progress, which it satisfies
//! by loading the sync checkpoint the surviving lowest rank saved at the
//! admission barrier. Training resumes bit-identically because the
//! optimizer is stateless ([`Sgd`] without momentum) and shard data is
//! keyed by original rank and step, not by ring position.

use crate::collective::{
    flatten_tangent, ring_all_reduce, unflatten_tangent, RingConnection, RingHeader,
};
use crate::protocol::{kind, Control, Member};
use crate::wire::{read_frame, write_encoded, Frame, COORDINATOR};
use s4tf_core::{LossValue, VisitTangent};
use s4tf_nn::checkpoint::{latest, Checkpoint, Checkpointable};
use s4tf_nn::loss::softmax_cross_entropy;
use s4tf_nn::{Layer, Optimizer};
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::RuntimeError;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Role marker: is this process a spawned dist worker?
///
/// Binaries that host workers (tests, examples, benches) call this first
/// and hand control to their worker entry point when it returns true.
pub fn is_worker_process() -> bool {
    std::env::var("S4TF_DIST_ROLE").as_deref() == Ok("worker")
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Worker-side configuration, read from the `S4TF_DIST_*` environment the
/// launcher sets on each child.
#[derive(Debug, Clone)]
pub struct WorkerEnv {
    /// This worker's rank (stable across restarts).
    pub rank: u32,
    /// Coordinator control port on 127.0.0.1.
    pub coord_port: u16,
    /// Examples per shard per step.
    pub shard_batch: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Model-init seed (identical on every worker).
    pub seed: u64,
    /// Base seed for shard data (mixed with the rank).
    pub data_seed: u64,
    /// All-reduce bucket size, bytes of f32 payload.
    pub bucket_bytes: usize,
    /// Heartbeat interval, milliseconds.
    pub heartbeat_ms: u64,
    /// Straggler timeout for ring and control I/O, milliseconds.
    pub timeout_ms: u64,
    /// Overall worker deadline, milliseconds.
    pub deadline_ms: u64,
    /// Directory for sync checkpoints (shared with the coordinator).
    pub ckpt_dir: PathBuf,
    /// Deterministic chaos hook: `"<step>:<phase>"` with phase `midring`
    /// (abort with the ring established, peers mid-collective) or
    /// `precommit` (abort after `StepDone`, before `Commit` applies).
    pub abort_spec: Option<(u64, String)>,
}

impl WorkerEnv {
    /// Reads the configuration from the environment. Fails with a typed
    /// error when a required variable is missing or malformed.
    pub fn from_env() -> Result<WorkerEnv, RuntimeError> {
        let req = |name: &str| -> Result<String, RuntimeError> {
            std::env::var(name)
                .map_err(|_| RuntimeError::net("dist.worker", None, format!("{name} is not set")))
        };
        let rank: u32 = req("S4TF_DIST_RANK")?.trim().parse().map_err(|_| {
            RuntimeError::net("dist.worker", None, "S4TF_DIST_RANK is not a number")
        })?;
        let coord_port: u16 = req("S4TF_DIST_COORD")?
            .trim()
            .parse()
            .map_err(|_| RuntimeError::net("dist.worker", None, "S4TF_DIST_COORD is not a port"))?;
        let ckpt_dir = PathBuf::from(req("S4TF_DIST_CKPT_DIR")?);
        let abort_spec = std::env::var("S4TF_DIST_ABORT_SPEC").ok().and_then(|v| {
            let (step, phase) = v.split_once(':')?;
            Some((step.trim().parse().ok()?, phase.trim().to_string()))
        });
        Ok(WorkerEnv {
            rank,
            coord_port,
            shard_batch: env_u64("S4TF_DIST_SHARD_BATCH", 8) as usize,
            learning_rate: env_f64("S4TF_DIST_LR", 0.05),
            seed: env_u64("S4TF_DIST_SEED", 7),
            data_seed: env_u64("S4TF_DIST_DATA_SEED", 11),
            bucket_bytes: env_u64("S4TF_DIST_BUCKET_BYTES", 64 * 1024) as usize,
            heartbeat_ms: env_u64("S4TF_DIST_HEARTBEAT_MS", 200),
            timeout_ms: env_u64("S4TF_DIST_TIMEOUT_MS", 3000),
            deadline_ms: env_u64("S4TF_DIST_DEADLINE_MS", 120_000),
            ckpt_dir,
            abort_spec,
        })
    }

    fn bucket_elems(&self) -> usize {
        (self.bucket_bytes / 4).max(1)
    }
}

/// Applies a reduced flat gradient to the model: renormalize by the
/// survivor count, scatter into the tangent, and run the optimizer
/// update + barrier. Shared verbatim by the worker and by
/// [`crate::reference`], which is what makes the multi-process run
/// bit-identical to the in-process baseline.
pub fn apply_reduced<L, O>(
    model: &mut L,
    optimizer: &mut O,
    tangent: &mut L::TangentVector,
    reduced: &[f32],
    survivors: u32,
    device: &Device,
) -> Result<(), RuntimeError>
where
    L: Layer,
    L::TangentVector: VisitTangent<DTensor>,
    O: Optimizer<L>,
{
    let scale = survivors.max(1) as f32;
    let averaged: Vec<f32> = reduced.iter().map(|v| v / scale).collect();
    unflatten_tangent(tangent, &averaged, device)?;
    optimizer.update(model, tangent);
    device.barrier();
    Ok(())
}

/// Forward + loss + pullback for one shard batch, without applying the
/// update (that waits for `Commit`). Returns the shard loss and the
/// gradient tangent.
pub fn shard_gradient<L: Layer>(
    model: &L,
    images: &DTensor,
    labels: &DTensor,
) -> (f64, L::TangentVector) {
    let _span = s4tf_profile::span("dist.shard_grad");
    let (logits, pullback) = model.forward_with_pullback(images);
    let (loss, loss_pullback) = softmax_cross_entropy(&logits, labels);
    let dlogits = loss_pullback(&loss.scalar_like(1.0));
    let (gradients, _dinput) = pullback(&dlogits);
    images.device().barrier();
    (loss.loss_value(), gradients)
}

/// Control-plane connection: serialized writes (main thread + heartbeat
/// thread) over one stream, reads on a private clone.
struct ControlLink {
    writer: Arc<Mutex<TcpStream>>,
    reader: TcpStream,
    rank: u32,
    epoch: u32,
    attempt: u32,
    step: u64,
}

impl ControlLink {
    fn connect(env: &WorkerEnv) -> Result<ControlLink, RuntimeError> {
        let stream = TcpStream::connect(("127.0.0.1", env.coord_port)).map_err(|e| {
            RuntimeError::net(
                "dist.control",
                None,
                format!(
                    "could not reach coordinator on port {}: {e}",
                    env.coord_port
                ),
            )
        })?;
        stream
            .set_write_timeout(Some(Duration::from_millis(env.timeout_ms.max(1))))
            .map_err(|e| RuntimeError::net("dist.control", None, e.to_string()))?;
        // Control reads wait on the coordinator's pacing (commits arrive
        // only after the slowest member), so the read budget is the run
        // deadline, not the straggler timeout.
        stream
            .set_read_timeout(Some(Duration::from_millis(env.deadline_ms.max(1))))
            .map_err(|e| RuntimeError::net("dist.control", None, e.to_string()))?;
        let reader = stream
            .try_clone()
            .map_err(|e| RuntimeError::net("dist.control", None, e.to_string()))?;
        Ok(ControlLink {
            writer: Arc::new(Mutex::new(stream)),
            reader,
            rank: env.rank,
            epoch: 0,
            attempt: 0,
            step: 0,
        })
    }

    fn send(&self, ctrl: &Control) -> Result<(), RuntimeError> {
        let frame = ctrl.frame(self.rank, self.epoch, self.attempt, self.step);
        let bytes = frame.encode();
        let mut w = self
            .writer
            .lock()
            .map_err(|_| RuntimeError::net("dist.control", None, "control writer poisoned"))?;
        write_encoded(&mut *w, &bytes, None)
    }

    fn recv(&mut self) -> Result<(Frame, Control), RuntimeError> {
        let frame = read_frame(&mut self.reader, None)?;
        if frame.sender != COORDINATOR {
            return Err(RuntimeError::net(
                "dist.control",
                Some(frame.sender as usize),
                "unexpected non-coordinator frame on the control stream",
            ));
        }
        let ctrl = Control::decode(&frame, None)?;
        Ok((frame, ctrl))
    }
}

/// Heartbeat thread handle; stops and joins on drop.
struct HeartbeatPump {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatPump {
    fn start(writer: Arc<Mutex<TcpStream>>, rank: u32, interval_ms: u64) -> HeartbeatPump {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let beat = Control::Heartbeat;
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(interval_ms.max(10)));
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                let frame = beat.frame(rank, 0, 0, 0);
                let bytes = frame.encode();
                let Ok(mut w) = writer.lock() else { break };
                if write_encoded(&mut *w, &bytes, None).is_err() {
                    break; // coordinator gone; the main thread will notice
                }
            }
        });
        HeartbeatPump {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for HeartbeatPump {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// An accepted (but not yet claimed) incoming ring connection.
type PendingConn = (Frame, TcpStream);

/// Free-running acceptor for the data-plane listener: completes the
/// `DATA_HELLO` handshake off the main thread and queues the connection.
fn spawn_data_acceptor(listener: TcpListener, timeout_ms: u64) -> mpsc::Receiver<PendingConn> {
    let (tx, rx) = mpsc::channel::<PendingConn>();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let tx = tx.clone();
            std::thread::spawn(move || {
                let timeout = Some(Duration::from_millis(timeout_ms.max(1)));
                if stream.set_read_timeout(timeout).is_err()
                    || stream.set_write_timeout(timeout).is_err()
                {
                    return;
                }
                let mut s = stream;
                let Ok(hello) = read_frame(&mut s, None) else {
                    return;
                };
                if hello.kind == kind::DATA_HELLO {
                    let _ = tx.send((hello, s));
                }
            });
        }
    });
    rx
}

/// The current membership view, from the worker's perspective.
struct ViewState {
    members: Vec<Member>,
    /// My index in `members`.
    position: usize,
}

impl ViewState {
    fn from_members(rank: u32, members: Vec<Member>) -> Result<ViewState, RuntimeError> {
        let position = members
            .iter()
            .position(|(r, _)| *r == rank)
            .ok_or_else(|| {
                RuntimeError::net(
                    "dist.view",
                    Some(rank as usize),
                    "this rank is not in the view it was sent",
                )
            })?;
        Ok(ViewState { members, position })
    }

    fn k(&self) -> usize {
        self.members.len()
    }

    fn left(&self) -> Member {
        self.members[(self.position + self.k() - 1) % self.k()]
    }

    fn right(&self) -> Member {
        self.members[(self.position + 1) % self.k()]
    }

    fn lowest_rank(&self) -> u32 {
        self.members.iter().map(|(r, _)| *r).min().unwrap_or(0)
    }
}

/// Establishes the per-(epoch, attempt, step) ring: dial the right
/// neighbor, send `DATA_HELLO`, and claim the left neighbor's incoming
/// connection from the acceptor queue. Stale pending connections are
/// discarded; ones from the future are kept for the next attempt.
#[allow(clippy::too_many_arguments)]
fn establish_ring(
    env: &WorkerEnv,
    view: &ViewState,
    header: RingHeader,
    incoming: &mpsc::Receiver<PendingConn>,
    pending: &mut Vec<PendingConn>,
) -> Result<RingConnection, RuntimeError> {
    let (right_rank, right_port) = view.right();
    let (left_rank, _) = view.left();
    let deadline = Instant::now() + Duration::from_millis(env.timeout_ms.max(1));

    // Dial the right neighbor, retrying while it (re)binds its acceptor.
    let right = loop {
        match TcpStream::connect(("127.0.0.1", right_port)) {
            Ok(s) => break s,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(RuntimeError::net(
                        "dist.ring",
                        Some(right_rank as usize),
                        format!("could not dial right neighbor: {e}"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    };
    let timeout = Some(Duration::from_millis(env.timeout_ms.max(1)));
    right
        .set_write_timeout(timeout)
        .and_then(|()| right.set_read_timeout(timeout))
        .map_err(|e| RuntimeError::net("dist.ring", Some(right_rank as usize), e.to_string()))?;
    {
        let hello = Frame::control(
            kind::DATA_HELLO,
            header.rank,
            header.epoch,
            header.attempt,
            header.step,
        );
        let bytes = hello.encode();
        let mut w = &right;
        write_encoded(&mut w, &bytes, Some(right_rank as usize))?;
    }

    // Claim the left neighbor's connection for these exact coordinates.
    let want = (header.epoch, header.step, header.attempt);
    let claim = |pending: &mut Vec<PendingConn>| -> Option<TcpStream> {
        let mut found = None;
        pending.retain_mut(|(hello, stream)| {
            if found.is_some() {
                return true;
            }
            let coords = (hello.epoch, hello.step, hello.attempt);
            if hello.sender == left_rank && coords == want {
                // `retain_mut` can't move the stream out; swap a dummy in.
                if let Ok(taken) = stream.try_clone() {
                    found = Some(taken);
                    return false;
                }
            }
            coords >= want // keep the future, drop the stale
        });
        found
    };
    loop {
        if let Some(left) = claim(pending) {
            return Ok(RingConnection::new(
                header.rank,
                left_rank,
                left,
                right_rank,
                right,
            ));
        }
        let now = Instant::now();
        if now >= deadline {
            return Err(RuntimeError::net(
                "dist.ring",
                Some(left_rank as usize),
                "timed out waiting for the left neighbor to connect",
            ));
        }
        match incoming.recv_timeout(deadline - now) {
            Ok(conn) => pending.push(conn),
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(RuntimeError::net(
                    "dist.ring",
                    Some(left_rank as usize),
                    "data acceptor thread exited",
                ));
            }
        }
    }
}

/// Outcome of one collective attempt.
enum CycleOutcome {
    Done {
        loss: f64,
        allreduce_us: u64,
        tx_bytes: u64,
        reduced: Vec<f32>,
    },
    Failed(RuntimeError),
}

/// Deterministic chaos: `S4TF_DIST_ABORT_SPEC="<step>:<phase>"`.
fn maybe_abort(env: &WorkerEnv, step: u64, phase: &str) {
    if let Some((at_step, at_phase)) = &env.abort_spec {
        if *at_step == step && at_phase == phase {
            eprintln!(
                "s4tf-dist: worker rank {} dying at step {step} phase {phase} (injected kill -9)",
                env.rank
            );
            // The hardest death available: SIGKILL from outside — no
            // unwinding, no flush; peers must detect it on the wire.
            let _ = std::process::Command::new("kill")
                .args(["-9", &std::process::id().to_string()])
                .status();
            std::process::abort(); // fallback when `kill` is unavailable
        }
    }
}

/// Generic worker driver. `data` maps `step` to this worker's shard batch
/// `(images, one-hot labels)` — keyed by the worker's *original* rank so
/// survivors keep their own data stream after an expulsion. Returns the
/// number of committed steps on clean shutdown.
pub fn run_worker<L, O, D>(
    env: &WorkerEnv,
    mut model: L,
    mut optimizer: O,
    mut data: D,
    device: &Device,
) -> Result<u64, RuntimeError>
where
    L: Layer + Checkpointable,
    L::TangentVector: VisitTangent<DTensor>,
    O: Optimizer<L>,
    D: FnMut(u64) -> (DTensor, DTensor),
{
    let mut ctl = ControlLink::connect(env)?;
    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| RuntimeError::net("dist.worker", None, e.to_string()))?;
    let data_port = listener
        .local_addr()
        .map_err(|e| RuntimeError::net("dist.worker", None, e.to_string()))?
        .port();
    let incoming = spawn_data_acceptor(listener, env.timeout_ms);
    let mut pending: Vec<PendingConn> = Vec::new();

    ctl.send(&Control::Register { data_port })?;
    let _pump = HeartbeatPump::start(Arc::clone(&ctl.writer), env.rank, env.heartbeat_ms);

    let mut view: Option<ViewState> = None;
    let mut completed: u64 = 0;
    // Pristine per-step state: (loss, tangent, flat gradient). Kept across
    // retries and view changes; dropped on commit or checkpoint load.
    let mut pristine: Option<(f64, L::TangentVector, Vec<f32>)> = None;
    let mut reduced: Option<Vec<f32>> = None;

    loop {
        let (frame, ctrl) = ctl.recv()?;
        match ctrl {
            Control::Welcome | Control::Heartbeat => {}
            Control::Shutdown { error } => {
                return if error.is_empty() {
                    Ok(completed)
                } else {
                    Err(RuntimeError::net("dist.run", None, error))
                };
            }
            Control::View {
                resume_step,
                members,
            } => {
                ctl.epoch = frame.epoch;
                ctl.step = resume_step;
                ctl.attempt = 0;
                let v = ViewState::from_members(env.rank, members)?;
                if resume_step != completed {
                    // Rejoin (or admission barrier catch-up): load the
                    // sync checkpoint saved at `resume_step`.
                    load_sync_checkpoint(env, resume_step, &mut model, device)
                        .inspect_err(|e| report_fatal(&ctl, e))?;
                    completed = resume_step;
                    pristine = None;
                }
                view = Some(v);
                run_cycle(
                    env,
                    &mut ctl,
                    &mut model,
                    &mut data,
                    view.as_ref(),
                    &incoming,
                    &mut pending,
                    &mut pristine,
                    &mut reduced,
                )?;
            }
            Control::Retry => {
                if frame.epoch != ctl.epoch || frame.step != ctl.step {
                    continue; // stale retry from a superseded view
                }
                ctl.attempt = frame.attempt;
                run_cycle(
                    env,
                    &mut ctl,
                    &mut model,
                    &mut data,
                    view.as_ref(),
                    &incoming,
                    &mut pending,
                    &mut pristine,
                    &mut reduced,
                )?;
            }
            Control::Commit {
                survivors,
                then_sync,
            } => {
                if frame.epoch != ctl.epoch || frame.step != ctl.step {
                    continue; // stale
                }
                let Some((_, tangent, _)) = pristine.as_mut() else {
                    continue; // stale commit for state we no longer hold
                };
                let Some(red) = reduced.take() else { continue };
                apply_reduced(&mut model, &mut optimizer, tangent, &red, survivors, device)
                    .inspect_err(|e| report_fatal(&ctl, e))?;
                completed = ctl.step + 1;
                pristine = None;
                if then_sync {
                    if let Some(v) = &view {
                        if v.lowest_rank() == env.rank {
                            save_sync_checkpoint(env, completed, &model)
                                .inspect_err(|e| report_fatal(&ctl, e))?;
                            ctl.step = completed;
                            ctl.send(&Control::SavedSync)?;
                        }
                    }
                    // Barrier: wait for the next View or Shutdown.
                } else {
                    ctl.step = completed;
                    ctl.attempt = 0;
                    run_cycle(
                        env,
                        &mut ctl,
                        &mut model,
                        &mut data,
                        view.as_ref(),
                        &incoming,
                        &mut pending,
                        &mut pristine,
                        &mut reduced,
                    )?;
                }
            }
            // Worker-bound streams never carry these kinds.
            Control::Register { .. }
            | Control::StepDone { .. }
            | Control::CollectiveFailed { .. }
            | Control::SavedSync
            | Control::Fatal { .. } => {}
        }
    }
}

/// One collective attempt for the current (epoch, step, attempt): compute
/// the shard gradient if this step has none yet, run the ring, and report
/// `StepDone` or `CollectiveFailed`. Wire failures are reported and
/// survived; local compute failures are fatal.
#[allow(clippy::too_many_arguments)]
fn run_cycle<L, D>(
    env: &WorkerEnv,
    ctl: &mut ControlLink,
    model: &mut L,
    data: &mut D,
    view: Option<&ViewState>,
    incoming: &mpsc::Receiver<PendingConn>,
    pending: &mut Vec<PendingConn>,
    pristine: &mut Option<(f64, L::TangentVector, Vec<f32>)>,
    reduced: &mut Option<Vec<f32>>,
) -> Result<(), RuntimeError>
where
    L: Layer + Checkpointable,
    L::TangentVector: VisitTangent<DTensor>,
    D: FnMut(u64) -> (DTensor, DTensor),
{
    let Some(view) = view else {
        return Ok(()); // no view yet; wait for one
    };
    let step = ctl.step;
    if pristine.is_none() {
        let (images, labels) = data(step);
        let (loss, tangent) = shard_gradient(model, &images, &labels);
        let flat = flatten_tangent(&tangent).inspect_err(|e| report_fatal(ctl, e))?;
        *pristine = Some((loss, tangent, flat.0));
    }
    let (loss, _, flat_ref) = pristine.as_ref().expect("set above");
    let loss = *loss;
    let mut flat = flat_ref.clone();

    let outcome = if view.k() == 1 {
        maybe_abort(env, step, "midring");
        CycleOutcome::Done {
            loss,
            allreduce_us: 0,
            tx_bytes: 0,
            reduced: flat,
        }
    } else {
        let header = RingHeader {
            rank: env.rank,
            epoch: ctl.epoch,
            attempt: ctl.attempt,
            step,
        };
        match establish_ring(env, view, header, incoming, pending) {
            Err(e) => CycleOutcome::Failed(e),
            Ok(mut ring) => {
                maybe_abort(env, step, "midring");
                let t0 = Instant::now();
                match ring_all_reduce(
                    &mut flat,
                    view.position,
                    view.k(),
                    &mut ring,
                    header,
                    env.bucket_elems(),
                ) {
                    Err(e) => CycleOutcome::Failed(e),
                    Ok(()) => {
                        let allreduce_us = t0.elapsed().as_micros() as u64;
                        match ring.shutdown() {
                            Err(e) => CycleOutcome::Failed(e),
                            Ok(tx_bytes) => CycleOutcome::Done {
                                loss,
                                allreduce_us,
                                tx_bytes,
                                reduced: flat,
                            },
                        }
                    }
                }
            }
        }
    };

    match outcome {
        CycleOutcome::Done {
            loss,
            allreduce_us,
            tx_bytes,
            reduced: red,
        } => {
            *reduced = Some(red);
            ctl.send(&Control::StepDone {
                loss,
                allreduce_us,
                tx_bytes,
            })?;
            maybe_abort(env, step, "precommit");
        }
        CycleOutcome::Failed(e) => {
            *reduced = None;
            ctl.send(&Control::CollectiveFailed {
                error: e.to_string(),
            })?;
        }
    }
    Ok(())
}

fn report_fatal(ctl: &ControlLink, e: &RuntimeError) {
    let _ = ctl.send(&Control::Fatal {
        error: e.to_string(),
    });
}

fn save_sync_checkpoint<L: Checkpointable>(
    env: &WorkerEnv,
    step: u64,
    model: &L,
) -> Result<(), RuntimeError> {
    let ckpt = Checkpoint::from_model(step, model)?;
    ckpt.save(&env.ckpt_dir)?;
    s4tf_diag::event!("dist.sync_checkpoint", rank = env.rank, step = step);
    Ok(())
}

fn load_sync_checkpoint<L: Checkpointable>(
    env: &WorkerEnv,
    step: u64,
    model: &mut L,
    device: &Device,
) -> Result<(), RuntimeError> {
    let path = latest(&env.ckpt_dir)?.ok_or_else(|| {
        RuntimeError::net(
            "dist.rejoin",
            Some(env.rank as usize),
            format!("no sync checkpoint in {}", env.ckpt_dir.display()),
        )
    })?;
    let ckpt = Checkpoint::load(&path)?;
    if ckpt.step != step {
        return Err(RuntimeError::net(
            "dist.rejoin",
            Some(env.rank as usize),
            format!(
                "sync checkpoint is at step {}, but the view resumes at {step}",
                ckpt.step
            ),
        ));
    }
    ckpt.restore(model, device)?;
    s4tf_diag::event!("dist.rejoin_load", rank = env.rank, step = step);
    Ok(())
}
