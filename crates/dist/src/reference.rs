//! In-process replay of a cluster run: the *prediction-free* baseline the
//! multi-process runtime must match bit for bit.
//!
//! Given the membership schedule a coordinator committed (which ranks
//! contributed at each step — shrinking after a `DropShard` expulsion,
//! growing back after a rejoin), [`reference_run`] executes the identical
//! numeric program single-process: each member's shard gradient, the ring
//! fold of [`crate::collective::reference_ring_sum`], and the shared
//! [`crate::worker::apply_reduced`] renormalize-and-update. Any bit of
//! divergence in the real cluster is therefore a runtime bug, not noise.

use crate::collective::{flatten_tangent, reference_ring_sum};
use crate::worker::{apply_reduced, shard_gradient};
use s4tf_core::VisitTangent;
use s4tf_nn::{Layer, Optimizer};
use s4tf_runtime::{DTensor, Device};
use s4tf_tensor::RuntimeError;

/// Replays `schedule` (ascending member ranks per committed step) against
/// `model`, returning the per-step mean survivor loss. `shard_data` maps
/// `(step, rank)` to that member's batch, exactly as the workers see it.
pub fn reference_run<L, O, D>(
    model: &mut L,
    optimizer: &mut O,
    schedule: &[Vec<u32>],
    mut shard_data: D,
    bucket_elems: usize,
    device: &Device,
) -> Result<Vec<f64>, RuntimeError>
where
    L: Layer,
    L::TangentVector: VisitTangent<DTensor>,
    O: Optimizer<L>,
    D: FnMut(u64, u32) -> (DTensor, DTensor),
{
    let mut losses = Vec::with_capacity(schedule.len());
    for (step, members) in schedule.iter().enumerate() {
        if members.is_empty() {
            return Err(RuntimeError::net(
                "dist.reference",
                None,
                format!("empty membership at step {step}"),
            ));
        }
        let mut flats: Vec<Vec<f32>> = Vec::with_capacity(members.len());
        let mut tangent = None;
        let mut loss_sum = 0.0;
        // Position order == ascending rank order, as in a real `View`.
        for &rank in members {
            let (images, labels) = shard_data(step as u64, rank);
            let (loss, grads) = shard_gradient(model, &images, &labels);
            loss_sum += loss;
            let (flat, _) = flatten_tangent(&grads)?;
            flats.push(flat);
            if tangent.is_none() {
                tangent = Some(grads);
            }
        }
        let shards: Vec<&[f32]> = flats.iter().map(|f| f.as_slice()).collect();
        let reduced = reference_ring_sum(&shards, bucket_elems);
        let mut tangent = tangent.expect("members is nonempty");
        apply_reduced(
            model,
            optimizer,
            &mut tangent,
            &reduced,
            members.len() as u32,
            device,
        )?;
        losses.push(loss_sum / members.len() as f64);
    }
    Ok(losses)
}

/// The schedule of a fault-free run: `world` members for every step.
pub fn full_schedule(world: u32, steps: u64) -> Vec<Vec<u32>> {
    (0..steps).map(|_| (0..world).collect()).collect()
}
