//! Control-plane message vocabulary.
//!
//! The coordinator and the workers speak a small typed protocol over the
//! framing of [`crate::wire`]. Worker→coordinator messages report liveness
//! and step progress; coordinator→worker messages drive the membership
//! view, the two-phase commit of each step, retries, checkpoint barriers,
//! and shutdown. Step, attempt and epoch travel in the frame header; the
//! payload carries only message-specific fields.

use crate::wire::{Frame, PayloadReader, PayloadWriter};
use s4tf_tensor::RuntimeError;

/// One member of the active view: `(rank, data-plane port)`. All workers
/// live on 127.0.0.1, so an address is just a port.
pub type Member = (u32, u16);

/// A control-plane message (worker→coordinator or coordinator→worker).
#[derive(Debug, Clone, PartialEq)]
pub enum Control {
    // -- worker → coordinator ------------------------------------------
    /// First message on a worker's control connection: its rank is in the
    /// frame header, the payload carries its data-plane listener port.
    Register {
        /// Port the worker's ring listener is bound to.
        data_port: u16,
    },
    /// Periodic liveness beacon.
    Heartbeat,
    /// The worker finished the collective for (step, attempt) and is
    /// waiting for [`Control::Commit`] before applying the update.
    StepDone {
        /// The worker's shard loss for the step.
        loss: f64,
        /// Wall time its all-reduce took, microseconds.
        allreduce_us: u64,
        /// Bytes it sent on the ring during the collective.
        tx_bytes: u64,
    },
    /// The collective for (step, attempt) failed with a wire error.
    CollectiveFailed {
        /// Rendered [`RuntimeError`] message.
        error: String,
    },
    /// The sync checkpoint requested by [`Control::Commit`] is durable.
    SavedSync,
    /// The worker is giving up (unrecoverable local error).
    Fatal {
        /// Rendered error message.
        error: String,
    },

    // -- coordinator → worker ------------------------------------------
    /// Registration accepted; a [`Control::View`] follows.
    Welcome,
    /// The active membership for the epoch in the frame header. Workers
    /// (re)build their ring from this list and continue at `resume_step`.
    View {
        /// Step training continues from under this view.
        resume_step: u64,
        /// Active members, ascending by rank.
        members: Vec<Member>,
    },
    /// All members finished (step, attempt): apply the update, averaged
    /// over `survivors` shards. When `then_sync` is set, the lowest active
    /// rank saves a sync checkpoint and everyone barriers on the next
    /// [`Control::View`] before computing further (rejoin admission and
    /// end-of-run both ride on this).
    Commit {
        /// Number of shards that contributed to the reduced gradient.
        survivors: u32,
        /// Checkpoint-and-barrier flag.
        then_sync: bool,
    },
    /// Abandon the in-flight collective for the step in the header and
    /// redo it as the attempt in the header (under the current view).
    Retry,
    /// The run is over (`ok`) or aborted (`error` is non-empty).
    Shutdown {
        /// Error message; empty on clean shutdown.
        error: String,
    },
}

/// Frame kind discriminants for [`Control`].
pub mod kind {
    /// Data-plane ring handshake.
    pub const DATA_HELLO: u8 = 1;
    /// Data-plane gradient chunk.
    pub const DATA_CHUNK: u8 = 2;
    /// [`super::Control::Register`].
    pub const REGISTER: u8 = 10;
    /// [`super::Control::Heartbeat`].
    pub const HEARTBEAT: u8 = 11;
    /// [`super::Control::StepDone`].
    pub const STEP_DONE: u8 = 12;
    /// [`super::Control::CollectiveFailed`].
    pub const COLLECTIVE_FAILED: u8 = 13;
    /// [`super::Control::SavedSync`].
    pub const SAVED_SYNC: u8 = 14;
    /// [`super::Control::Fatal`].
    pub const FATAL: u8 = 15;
    /// [`super::Control::Welcome`].
    pub const WELCOME: u8 = 20;
    /// [`super::Control::View`].
    pub const VIEW: u8 = 21;
    /// [`super::Control::Commit`].
    pub const COMMIT: u8 = 22;
    /// [`super::Control::Retry`].
    pub const RETRY: u8 = 23;
    /// [`super::Control::Shutdown`].
    pub const SHUTDOWN: u8 = 24;
}

impl Control {
    /// The frame kind for this message.
    pub fn kind(&self) -> u8 {
        match self {
            Control::Register { .. } => kind::REGISTER,
            Control::Heartbeat => kind::HEARTBEAT,
            Control::StepDone { .. } => kind::STEP_DONE,
            Control::CollectiveFailed { .. } => kind::COLLECTIVE_FAILED,
            Control::SavedSync => kind::SAVED_SYNC,
            Control::Fatal { .. } => kind::FATAL,
            Control::Welcome => kind::WELCOME,
            Control::View { .. } => kind::VIEW,
            Control::Commit { .. } => kind::COMMIT,
            Control::Retry => kind::RETRY,
            Control::Shutdown { .. } => kind::SHUTDOWN,
        }
    }

    /// Wraps the message into a frame with the given header fields.
    pub fn frame(&self, sender: u32, epoch: u32, attempt: u32, step: u64) -> Frame {
        let mut w = PayloadWriter::default();
        match self {
            Control::Register { data_port } => w.u16(*data_port),
            Control::Heartbeat | Control::SavedSync | Control::Welcome | Control::Retry => {}
            Control::StepDone {
                loss,
                allreduce_us,
                tx_bytes,
            } => {
                w.f64(*loss);
                w.u64(*allreduce_us);
                w.u64(*tx_bytes);
            }
            Control::CollectiveFailed { error } | Control::Fatal { error } => w.str(error),
            Control::View {
                resume_step,
                members,
            } => {
                w.u64(*resume_step);
                w.u32(members.len() as u32);
                for (rank, port) in members {
                    w.u32(*rank);
                    w.u16(*port);
                }
            }
            Control::Commit {
                survivors,
                then_sync,
            } => {
                w.u32(*survivors);
                w.u16(u16::from(*then_sync));
            }
            Control::Shutdown { error } => w.str(error),
        }
        let mut f = Frame::control(self.kind(), sender, epoch, attempt, step);
        f.payload = w.0;
        f
    }

    /// Decodes a control message from a frame. `peer` attributes decode
    /// failures.
    pub fn decode(frame: &Frame, peer: Option<usize>) -> Result<Control, RuntimeError> {
        let mut r = PayloadReader::new(&frame.payload, peer);
        Ok(match frame.kind {
            kind::REGISTER => Control::Register {
                data_port: r.u16()?,
            },
            kind::HEARTBEAT => Control::Heartbeat,
            kind::STEP_DONE => Control::StepDone {
                loss: r.f64()?,
                allreduce_us: r.u64()?,
                tx_bytes: r.u64()?,
            },
            kind::COLLECTIVE_FAILED => Control::CollectiveFailed { error: r.str()? },
            kind::SAVED_SYNC => Control::SavedSync,
            kind::FATAL => Control::Fatal { error: r.str()? },
            kind::WELCOME => Control::Welcome,
            kind::VIEW => {
                let resume_step = r.u64()?;
                let n = r.u32()? as usize;
                let mut members = Vec::with_capacity(n);
                for _ in 0..n {
                    let rank = r.u32()?;
                    let port = r.u16()?;
                    members.push((rank, port));
                }
                Control::View {
                    resume_step,
                    members,
                }
            }
            kind::COMMIT => Control::Commit {
                survivors: r.u32()?,
                then_sync: r.u16()? != 0,
            },
            kind::RETRY => Control::Retry,
            kind::SHUTDOWN => Control::Shutdown { error: r.str()? },
            other => {
                return Err(RuntimeError::net(
                    "dist.decode",
                    peer,
                    format!("unknown control frame kind {other}"),
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_round_trips() {
        let msgs = vec![
            Control::Register { data_port: 4321 },
            Control::Heartbeat,
            Control::StepDone {
                loss: 2.5,
                allreduce_us: 777,
                tx_bytes: 65536,
            },
            Control::CollectiveFailed {
                error: "peer rank 2: checksum mismatch".into(),
            },
            Control::SavedSync,
            Control::Fatal {
                error: "boom".into(),
            },
            Control::Welcome,
            Control::View {
                resume_step: 9,
                members: vec![(0, 1111), (2, 2222), (3, 3333)],
            },
            Control::Commit {
                survivors: 3,
                then_sync: true,
            },
            Control::Retry,
            Control::Shutdown {
                error: String::new(),
            },
        ];
        for msg in msgs {
            let frame = msg.frame(7, 3, 1, 42);
            assert_eq!(frame.sender, 7);
            assert_eq!(frame.epoch, 3);
            assert_eq!(frame.attempt, 1);
            assert_eq!(frame.step, 42);
            let bytes = frame.encode();
            let back = crate::wire::read_frame(&mut bytes.as_slice(), Some(7)).expect("frame");
            let decoded = Control::decode(&back, Some(7)).expect("decode");
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn unknown_kind_is_a_typed_error() {
        let f = Frame::control(199, 0, 0, 0, 0);
        let err = Control::decode(&f, Some(4)).expect_err("unknown kind");
        assert!(err.to_string().contains("peer rank 4"), "{err}");
    }
}
