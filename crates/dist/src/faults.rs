//! Deterministic per-peer wire-fault injection (`S4TF_FAULT_SPEC` site
//! `net`).
//!
//! The global injector in `s4tf-fault` draws from one per-site counter,
//! which would make multi-peer draws order-dependent (whichever link sends
//! first consumes the next index). The distributed runtime instead derives
//! an *independent deterministic stream per directed link*: the `net`
//! site's seed is mixed with `(src_rank, dst_rank)` and indexed by a local
//! per-link counter, so the k-th frame from worker 1 to worker 2 draws the
//! same verdict in every run with the same spec — regardless of scheduling
//! — and the global site counters are left untouched.
//!
//! An injected fault takes one of three modes (chosen by hash, or forced
//! with `S4TF_DIST_NET_MODE`):
//!
//! * `corrupt` — flip a payload byte *after* the frame digest is computed,
//!   so the receiver's checksum rejects it as a typed net error;
//! * `drop`    — the frame is never written; the receiver hits its
//!   straggler read timeout;
//! * `delay`   — the writer stalls `S4TF_DIST_NET_DELAY_MS` (default 50)
//!   before sending, exercising the timeout/retry path without a failure
//!   when the delay fits the budget.

use s4tf_fault as fault;

/// What an injected wire fault does to the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultMode {
    /// Flip a payload byte post-digest (receiver detects corruption).
    Corrupt,
    /// Suppress the frame entirely (receiver times out).
    Drop,
    /// Stall before sending.
    Delay,
}

impl NetFaultMode {
    /// Stable name, as logged in `fault.injected` events.
    pub fn name(self) -> &'static str {
        match self {
            NetFaultMode::Corrupt => "corrupt",
            NetFaultMode::Drop => "drop",
            NetFaultMode::Delay => "delay",
        }
    }

    fn parse(s: &str) -> Option<NetFaultMode> {
        match s.trim() {
            "corrupt" => Some(NetFaultMode::Corrupt),
            "drop" => Some(NetFaultMode::Drop),
            "delay" => Some(NetFaultMode::Delay),
            _ => None,
        }
    }
}

/// Deterministic fault stream for one directed link `src → dst`.
#[derive(Debug)]
pub struct LinkFaults {
    src: u32,
    dst: u32,
    index: u64,
    forced_mode: Option<NetFaultMode>,
}

impl LinkFaults {
    /// A stream for the directed link `src → dst`, starting at draw 0.
    pub fn new(src: u32, dst: u32) -> LinkFaults {
        LinkFaults {
            src,
            dst,
            index: 0,
            forced_mode: std::env::var("S4TF_DIST_NET_MODE")
                .ok()
                .and_then(|v| NetFaultMode::parse(&v)),
        }
    }

    /// Per-link seed: the `net` site seed mixed with the directed pair.
    fn link_seed(&self, site_seed: u64) -> u64 {
        site_seed ^ fault::mix64(((self.src as u64) << 32) | self.dst as u64)
    }

    /// Draws the verdict for the next frame on this link. Advances the
    /// local index on every call while the `net` site is armed; returns
    /// the mode (and the draw index, for logging) when this frame is hit.
    pub fn next_frame(&mut self) -> Option<(NetFaultMode, u64)> {
        let (prob, seed) = fault::site_params(fault::FaultSite::Net)?;
        let idx = self.index;
        self.index += 1;
        let link_seed = self.link_seed(seed);
        if !fault::would_inject(link_seed, fault::FaultSite::Net, idx, prob) {
            return None;
        }
        let mode = self.forced_mode.unwrap_or({
            match fault::mix64(link_seed ^ idx.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 3 {
                0 => NetFaultMode::Corrupt,
                1 => NetFaultMode::Drop,
                _ => NetFaultMode::Delay,
            }
        });
        s4tf_diag::event!(
            "fault.injected",
            site = "net",
            mode = mode.name(),
            src = self.src,
            dst = self.dst,
            index = idx,
        );
        Some((mode, idx))
    }
}

/// The configured delay for [`NetFaultMode::Delay`] faults.
pub fn delay_ms() -> u64 {
    std::env::var("S4TF_DIST_NET_DELAY_MS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(50)
}

/// Corrupts one byte of an encoded frame *after* the digest trailer was
/// computed, guaranteeing the receiver's checksum rejects it. The flipped
/// byte sits inside the payload region when one exists, else mid-header.
pub fn corrupt_encoded(bytes: &mut [u8]) {
    let lo = crate::wire::HEADER_LEN.min(bytes.len().saturating_sub(9));
    let hi = bytes.len().saturating_sub(8);
    let at = if hi > lo {
        lo + (hi - lo) / 2
    } else {
        bytes.len() / 2
    };
    bytes[at] ^= 0xa5;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{read_frame, Frame};

    #[test]
    fn corrupt_encoded_is_always_detected() {
        for payload_len in [0usize, 1, 5, 1024] {
            let mut f = Frame::control(2, 1, 0, 0, 3);
            f.payload = vec![7u8; payload_len];
            let mut bytes = f.encode();
            corrupt_encoded(&mut bytes);
            let err = read_frame(&mut bytes.as_slice(), Some(1)).expect_err("corrupt");
            assert_eq!(err.kind, s4tf_tensor::FaultKind::Net);
        }
    }

    #[test]
    fn draws_are_per_link_and_replayable() {
        // No spec armed in the test environment: streams stay silent but
        // still advance deterministically.
        let mut a = LinkFaults::new(0, 1);
        assert!(a.next_frame().is_none());
        assert_eq!(a.index, 0, "unarmed site must not advance the index");
    }

    #[test]
    fn mode_parse_accepts_known_names_only() {
        assert_eq!(NetFaultMode::parse("corrupt"), Some(NetFaultMode::Corrupt));
        assert_eq!(NetFaultMode::parse(" drop "), Some(NetFaultMode::Drop));
        assert_eq!(NetFaultMode::parse("delay"), Some(NetFaultMode::Delay));
        assert_eq!(NetFaultMode::parse("nope"), None);
    }
}
