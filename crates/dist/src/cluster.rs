//! The launcher: spawns worker processes, supervises them, and runs the
//! coordinator to completion.
//!
//! Workers are this very executable re-exec'd with `S4TF_DIST_ROLE=worker`
//! and the run's parameters in `S4TF_DIST_*` environment variables. The
//! hosting binary (test, example, or bench) checks
//! [`crate::worker::is_worker_process`] first thing in `main` and branches
//! into its worker entry point, so one artifact plays both roles.
//!
//! Chaos hooks: [`ClusterConfig::abort`] plants a deterministic
//! `kill -9`-style death in one worker (see `S4TF_DIST_ABORT_SPEC`), and
//! [`ClusterConfig::restart_ms`] makes the supervisor respawn a dead
//! worker once — without the abort spec — so it registers again and
//! exercises the checkpoint rejoin path.

use crate::coordinator::{self, ClusterReport};
use s4tf_nn::FaultPolicy;
use s4tf_tensor::RuntimeError;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything a cluster run needs. Fields mirror the `S4TF_DIST_*`
/// environment the launcher sets on each worker.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Initial number of workers.
    pub world: u32,
    /// Steps to train.
    pub steps: u64,
    /// Examples per shard per step.
    pub shard_batch: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Model-init seed (identical on every worker).
    pub seed: u64,
    /// Base seed for shard data (mixed with each worker's rank).
    pub data_seed: u64,
    /// All-reduce bucket size in bytes.
    pub bucket_bytes: usize,
    /// Worker heartbeat interval, milliseconds.
    pub heartbeat_ms: u64,
    /// Straggler timeout (ring + control silence), milliseconds.
    pub timeout_ms: u64,
    /// Whole-run deadline, milliseconds: no code path outlives it.
    pub deadline_ms: u64,
    /// Collective retries per step before the run fails.
    pub max_retries: u32,
    /// Directory for sync checkpoints; created if missing.
    pub ckpt_dir: PathBuf,
    /// Reaction to a worker death: `DropShard` expels and renormalizes,
    /// `FailFast` aborts the run. (`Retry` is treated like `DropShard`.)
    pub fault_policy: FaultPolicy,
    /// Deterministic chaos: `(rank, step, phase)` makes that worker die a
    /// `kill -9` death at the step, with phase `midring` or `precommit`.
    pub abort: Option<(u32, u64, String)>,
    /// When set, the supervisor respawns a dead worker once after this
    /// many milliseconds (without the abort spec), exercising rejoin.
    pub restart_ms: Option<u64>,
    /// `S4TF_FAULT_SPEC` for the workers (e.g. `net:0.01:seed=7`), on top
    /// of whatever the parent environment carries.
    pub fault_spec: Option<String>,
    /// Forces the injected wire-fault mode (`S4TF_DIST_NET_MODE`).
    pub net_mode: Option<String>,
}

impl ClusterConfig {
    /// A config with robust defaults for `world` workers × `steps` steps,
    /// checkpointing into `ckpt_dir`.
    pub fn new(world: u32, steps: u64, ckpt_dir: PathBuf) -> ClusterConfig {
        ClusterConfig {
            world,
            steps,
            shard_batch: 8,
            learning_rate: 0.05,
            seed: 7,
            data_seed: 11,
            bucket_bytes: 64 * 1024,
            heartbeat_ms: 200,
            timeout_ms: 3000,
            deadline_ms: 120_000,
            max_retries: 8,
            ckpt_dir,
            fault_policy: FaultPolicy::DropShard,
            abort: None,
            restart_ms: None,
            fault_spec: None,
            net_mode: None,
        }
    }
}

fn net_err(op: &'static str, msg: impl Into<String>) -> RuntimeError {
    RuntimeError::net(op, None, msg.into())
}

/// Builds the child command for one worker rank. `with_abort` controls
/// whether the configured abort spec is planted (restarts omit it so the
/// rejoined incarnation lives).
fn worker_command(
    cfg: &ClusterConfig,
    coord_port: u16,
    rank: u32,
    with_abort: bool,
) -> Result<Command, RuntimeError> {
    let exe = std::env::current_exe()
        .map_err(|e| net_err("dist.spawn", format!("current_exe failed: {e}")))?;
    let mut cmd = Command::new(exe);
    cmd.env("S4TF_DIST_ROLE", "worker")
        .env("S4TF_DIST_RANK", rank.to_string())
        .env("S4TF_DIST_COORD", coord_port.to_string())
        .env("S4TF_DIST_SHARD_BATCH", cfg.shard_batch.to_string())
        .env("S4TF_DIST_LR", cfg.learning_rate.to_string())
        .env("S4TF_DIST_SEED", cfg.seed.to_string())
        .env("S4TF_DIST_DATA_SEED", cfg.data_seed.to_string())
        .env("S4TF_DIST_BUCKET_BYTES", cfg.bucket_bytes.to_string())
        .env("S4TF_DIST_HEARTBEAT_MS", cfg.heartbeat_ms.to_string())
        .env("S4TF_DIST_TIMEOUT_MS", cfg.timeout_ms.to_string())
        .env("S4TF_DIST_DEADLINE_MS", cfg.deadline_ms.to_string())
        .env("S4TF_DIST_CKPT_DIR", &cfg.ckpt_dir)
        // Bit-determinism across process shapes: one compute thread.
        .env("S4TF_NUM_THREADS", "1")
        .stdin(Stdio::null())
        .stdout(Stdio::inherit())
        .stderr(Stdio::inherit());
    if let Some(spec) = &cfg.fault_spec {
        cmd.env("S4TF_FAULT_SPEC", spec);
    }
    if let Some(mode) = &cfg.net_mode {
        cmd.env("S4TF_DIST_NET_MODE", mode);
    }
    match &cfg.abort {
        Some((at_rank, step, phase)) if with_abort && *at_rank == rank => {
            cmd.env("S4TF_DIST_ABORT_SPEC", format!("{step}:{phase}"));
        }
        _ => {
            cmd.env_remove("S4TF_DIST_ABORT_SPEC");
        }
    }
    Ok(cmd)
}

/// Launches `cfg.world` workers, drives the coordinator to completion,
/// and reaps every child before returning. The supervisor thread restarts
/// dead workers when [`ClusterConfig::restart_ms`] asks for it.
pub fn run(cfg: &ClusterConfig) -> Result<ClusterReport, RuntimeError> {
    if cfg.world == 0 || cfg.steps == 0 {
        return Err(net_err("dist.run", "world and steps must both be nonzero"));
    }
    std::fs::create_dir_all(&cfg.ckpt_dir).map_err(|e| {
        net_err(
            "dist.run",
            format!("creating {}: {e}", cfg.ckpt_dir.display()),
        )
    })?;
    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| net_err("dist.run", format!("binding control listener: {e}")))?;
    let coord_port = listener
        .local_addr()
        .map_err(|e| net_err("dist.run", e.to_string()))?
        .port();

    let children: Arc<Mutex<Vec<(u32, Child)>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let mut kids = children.lock().expect("fresh mutex");
        for rank in 0..cfg.world {
            let child = worker_command(cfg, coord_port, rank, true)?
                .spawn()
                .map_err(|e| net_err("dist.spawn", format!("spawning rank {rank}: {e}")))?;
            kids.push((rank, child));
        }
    }

    // Supervisor: reap exits; optionally respawn each dead rank once.
    let stop = Arc::new(AtomicBool::new(false));
    let supervisor = {
        let stop = Arc::clone(&stop);
        let children = Arc::clone(&children);
        let cfg = cfg.clone();
        std::thread::spawn(move || {
            let mut restarted: Vec<u32> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(25));
                let mut respawn: Vec<u32> = Vec::new();
                {
                    let Ok(mut kids) = children.lock() else { break };
                    kids.retain_mut(|(rank, child)| match child.try_wait() {
                        Ok(Some(_status)) => {
                            if cfg.restart_ms.is_some() && !restarted.contains(rank) {
                                respawn.push(*rank);
                            }
                            false
                        }
                        Ok(None) => true,
                        Err(_) => true,
                    });
                }
                for rank in respawn {
                    restarted.push(rank);
                    std::thread::sleep(Duration::from_millis(cfg.restart_ms.unwrap_or(0)));
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(mut cmd) = worker_command(&cfg, coord_port, rank, false) else {
                        continue;
                    };
                    if let Ok(child) = cmd.spawn() {
                        if let Ok(mut kids) = children.lock() {
                            kids.push((rank, child));
                        }
                    }
                }
            }
        })
    };

    let result = coordinator::run(cfg, listener);

    // Tear down: stop the supervisor, give workers a grace window to act
    // on their Shutdown message, then force-kill stragglers and reap.
    stop.store(true, Ordering::Relaxed);
    let _ = supervisor.join();
    let grace = Instant::now() + Duration::from_millis(2000);
    loop {
        let alive = {
            let Ok(mut kids) = children.lock() else { break };
            kids.retain_mut(|(_rank, child)| !matches!(child.try_wait(), Ok(Some(_))));
            !kids.is_empty()
        };
        if !alive || Instant::now() >= grace {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    if let Ok(mut kids) = children.lock() {
        for (_rank, child) in kids.iter_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        kids.clear();
    }
    result
}
