//! The cluster coordinator: membership, failure detection, two-phase step
//! commit, retries, and rejoin admission.
//!
//! The coordinator runs in the launcher process. Workers dial its control
//! listener, `Register`, and are driven step by step:
//!
//! 1. a `View` names the active members; workers build the ring from it;
//! 2. every member reports `StepDone` for (step, attempt) → the
//!    coordinator broadcasts `Commit` and only then do workers apply the
//!    averaged update (two-phase: a worker that dies mid-collective can
//!    never leave survivors half-applied);
//! 3. any `CollectiveFailed` triggers a bounded, backoff-spaced `Retry`
//!    of the same step under the same view;
//! 4. a dead worker (control EOF or straggler timeout) is expelled under
//!    [`FaultPolicy::DropShard`]: the coordinator logs the degradation,
//!    bumps the epoch, and re-issues the step to the survivors, whose
//!    update renormalizes by the survivor count;
//! 5. a `Register` from a restarted worker is parked until the next
//!    commit boundary, where `Commit { then_sync: true }` makes the
//!    lowest active rank save a sync checkpoint; the rejoiner loads it
//!    and enters the next `View` bit-identical to the others.
//!
//! Every wait is bounded: reader threads impose the straggler timeout on
//! worker silence, and the run as a whole has a deadline.

use crate::cluster::ClusterConfig;
use crate::protocol::{Control, Member};
use crate::wire::{read_frame, write_encoded, Frame};
use s4tf_nn::FaultPolicy;
use s4tf_tensor::RuntimeError;
use std::collections::BTreeMap;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// What happened to one committed step, as seen by the coordinator.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Step index.
    pub step: u64,
    /// Membership epoch the commit happened under.
    pub epoch: u32,
    /// Number of shards that contributed to the reduced gradient.
    pub survivors: u32,
    /// Mean shard loss across survivors.
    pub loss: f64,
    /// Wall time of the step at the coordinator, microseconds.
    pub step_us: u64,
    /// Slowest member's all-reduce time, microseconds.
    pub allreduce_us: u64,
    /// Total ring bytes sent by all members for the step.
    pub tx_bytes: u64,
}

/// Outcome of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Steps committed (equals the configured step count on success).
    pub steps_completed: u64,
    /// Mean survivor loss of the final committed step.
    pub final_loss: f64,
    /// Per-committed-step records, in order.
    pub steps: Vec<StepRecord>,
    /// Ranks expelled under `DropShard`, with the step they died on.
    pub expelled: Vec<(u32, u64)>,
    /// Ranks readmitted after a restart, with their admission step.
    pub rejoined: Vec<(u32, u64)>,
    /// Total collective retries across the run.
    pub retries: u64,
    /// Ranks active at the end of the run.
    pub survivors: Vec<u32>,
    /// Directory holding the final sync checkpoint.
    pub ckpt_dir: PathBuf,
}

impl ClusterReport {
    /// Step the final sync checkpoint was saved at (== steps completed).
    pub fn final_checkpoint_step(&self) -> u64 {
        self.steps_completed
    }
}

enum Event {
    /// A new control connection finished its `Register` handshake.
    Connected {
        stream: TcpStream,
        frame: Frame,
        data_port: u16,
    },
    /// A registered worker sent a control message.
    Msg {
        rank: u32,
        frame: Frame,
        ctrl: Control,
    },
    /// A registered worker's control connection died or went silent.
    Gone { rank: u32, error: RuntimeError },
}

struct WorkerConn {
    stream: TcpStream,
    data_port: u16,
    /// `StepDone` metrics for the current (step, attempt), if reported.
    done: Option<(f64, u64, u64)>,
}

/// Runs the control plane to completion. `listener` must already be
/// bound; workers are expected to dial it and `Register`.
pub fn run(cfg: &ClusterConfig, listener: TcpListener) -> Result<ClusterReport, RuntimeError> {
    let mut span = s4tf_profile::span("dist.coordinator");
    let deadline = Instant::now() + Duration::from_millis(cfg.deadline_ms);
    let (tx, events) = mpsc::channel::<Event>();
    spawn_acceptor(listener, tx.clone(), cfg.timeout_ms);

    let step_hist = s4tf_metrics::histogram(
        "s4tf_dist_step_us",
        "Distributed training step wall time (coordinator view), microseconds",
    );
    let allreduce_hist = s4tf_metrics::histogram(
        "s4tf_dist_allreduce_us",
        "Slowest-member ring all-reduce time per step, microseconds",
    );
    let retries_ctr = s4tf_metrics::counter(
        "s4tf_dist_retries_total",
        "Collective retries issued by the coordinator",
    );
    let expelled_ctr = s4tf_metrics::counter(
        "s4tf_dist_expelled_total",
        "Workers expelled under the DropShard policy",
    );
    let bytes_ctr = s4tf_metrics::counter(
        "s4tf_dist_ring_tx_bytes_total",
        "Ring bytes sent across all members",
    );

    let mut active: BTreeMap<u32, WorkerConn> = BTreeMap::new();
    let mut pending_rejoin: Vec<(u32, WorkerConn, Frame)> = Vec::new();
    let mut report = ClusterReport {
        steps_completed: 0,
        final_loss: f64::NAN,
        steps: Vec::new(),
        expelled: Vec::new(),
        rejoined: Vec::new(),
        retries: 0,
        survivors: Vec::new(),
        ckpt_dir: cfg.ckpt_dir.clone(),
    };

    // -- phase 0: wait for the initial world to register -----------------
    while active.len() < cfg.world as usize {
        match recv_deadline(&events, deadline, "initial registration")? {
            Event::Connected {
                stream,
                frame,
                data_port,
            } => {
                let rank = frame.sender;
                admit(&tx, cfg, rank, stream, data_port, &mut active)?;
            }
            Event::Msg { .. } => {}
            Event::Gone { rank, error } => {
                return Err(fail_run(
                    &mut active,
                    &mut pending_rejoin,
                    RuntimeError::net(
                        "dist.register",
                        Some(rank as usize),
                        format!("worker died before the first step: {error}"),
                    ),
                ));
            }
        }
    }

    let mut epoch: u32 = 1;
    let mut step: u64 = 0;
    let mut attempt: u32 = 0;
    let mut step_started = Instant::now();
    broadcast_view(&mut active, epoch, step)?;

    // -- main loop: drive steps to completion ----------------------------
    while step < cfg.steps {
        let ev = match recv_deadline(&events, deadline, "step progress") {
            Ok(ev) => ev,
            Err(e) => return Err(fail_run(&mut active, &mut pending_rejoin, e)),
        };
        match ev {
            Event::Connected {
                stream,
                frame,
                data_port,
            } => {
                // A restarted worker asking to rejoin: park it until the
                // next commit boundary provides a sync checkpoint.
                let rank = frame.sender;
                if active.contains_key(&rank) {
                    // A rank we believe alive re-registered: its old
                    // incarnation is gone; treat the old link as dead
                    // first, then park the new one.
                    handle_death(
                        cfg,
                        &mut active,
                        rank,
                        &RuntimeError::net(
                            "dist.control",
                            Some(rank as usize),
                            "superseded by a new incarnation",
                        ),
                        step,
                        &mut epoch,
                        &mut attempt,
                        &mut report,
                        expelled_ctr,
                    )
                    .map_err(|e| fail_run(&mut active, &mut pending_rejoin, e))?;
                }
                let mut conn = WorkerConn {
                    stream,
                    data_port,
                    done: None,
                };
                if send_ctl(
                    &mut conn.stream,
                    rank,
                    &Control::Welcome,
                    epoch,
                    attempt,
                    step,
                )
                .is_ok()
                {
                    spawn_reader(rank, &conn.stream, tx.clone(), cfg.timeout_ms);
                    pending_rejoin.push((rank, conn, frame));
                }
            }
            Event::Gone { rank, error } => {
                if !active.contains_key(&rank) {
                    continue; // an already-expelled incarnation's reader
                }
                handle_death(
                    cfg,
                    &mut active,
                    rank,
                    &error,
                    step,
                    &mut epoch,
                    &mut attempt,
                    &mut report,
                    expelled_ctr,
                )
                .map_err(|e| fail_run(&mut active, &mut pending_rejoin, e))?;
            }
            Event::Msg { rank, frame, ctrl } => {
                if !active.contains_key(&rank) {
                    continue;
                }
                match ctrl {
                    Control::Heartbeat | Control::Register { .. } => {}
                    Control::SavedSync => {
                        // Only expected inside the commit barrier below;
                        // a stray one is stale and ignorable.
                    }
                    Control::Fatal { error } => {
                        return Err(fail_run(
                            &mut active,
                            &mut pending_rejoin,
                            RuntimeError::net("dist.worker", Some(rank as usize), error),
                        ));
                    }
                    Control::StepDone {
                        loss,
                        allreduce_us,
                        tx_bytes,
                    } => {
                        if frame.epoch != epoch || frame.step != step || frame.attempt != attempt {
                            continue; // stale
                        }
                        if let Some(w) = active.get_mut(&rank) {
                            w.done = Some((loss, allreduce_us, tx_bytes));
                        }
                    }
                    Control::CollectiveFailed { error } => {
                        if frame.epoch != epoch || frame.step != step || frame.attempt < attempt {
                            continue; // stale: a Retry for it already went out
                        }
                        if attempt >= cfg.max_retries {
                            let err = RuntimeError::net(
                                "dist.allreduce",
                                Some(rank as usize),
                                format!(
                                    "collective failed after {} retries: {error}",
                                    cfg.max_retries
                                ),
                            );
                            return Err(fail_run(&mut active, &mut pending_rejoin, err));
                        }
                        report.retries += 1;
                        retries_ctr.inc();
                        s4tf_diag::event!(
                            "dist.retry",
                            step = step,
                            attempt = attempt + 1,
                            rank = rank,
                            error = error.as_str(),
                        );
                        std::thread::sleep(s4tf_fault::backoff_delay(attempt + 1));
                        attempt += 1;
                        for w in active.values_mut() {
                            w.done = None;
                        }
                        broadcast(&mut active, &Control::Retry, epoch, attempt, step)?;
                    }
                    // Coordinator-bound frames never carry these kinds.
                    Control::Welcome
                    | Control::View { .. }
                    | Control::Commit { .. }
                    | Control::Retry
                    | Control::Shutdown { .. } => {}
                }
            }
        }

        // Commit when every active member has reported the current
        // (step, attempt).
        if !active.is_empty() && active.values().all(|w| w.done.is_some()) {
            let survivors = active.len() as u32;
            let loss = active
                .values()
                .map(|w| w.done.expect("checked").0)
                .sum::<f64>()
                / survivors as f64;
            let allreduce_us = active
                .values()
                .map(|w| w.done.expect("checked").1)
                .max()
                .unwrap_or(0);
            let tx_bytes: u64 = active.values().map(|w| w.done.expect("checked").2).sum();
            let step_us = step_started.elapsed().as_micros() as u64;
            let then_sync = !pending_rejoin.is_empty() || step + 1 == cfg.steps;
            broadcast(
                &mut active,
                &Control::Commit {
                    survivors,
                    then_sync,
                },
                epoch,
                attempt,
                step,
            )?;
            report.steps.push(StepRecord {
                step,
                epoch,
                survivors,
                loss,
                step_us,
                allreduce_us,
                tx_bytes,
            });
            if s4tf_metrics::enabled() {
                step_hist.record(step_us);
                allreduce_hist.record(allreduce_us);
                bytes_ctr.add(tx_bytes);
            }
            report.final_loss = loss;
            report.steps_completed = step + 1;
            step += 1;
            attempt = 0;
            for w in active.values_mut() {
                w.done = None;
            }
            step_started = Instant::now();

            if then_sync {
                wait_for_sync(cfg, &events, &mut active, deadline)
                    .map_err(|e| fail_run(&mut active, &mut pending_rejoin, e))?;
                if step < cfg.steps {
                    // Admit any parked rejoiners into the next view.
                    for (rank, conn, _frame) in pending_rejoin.drain(..) {
                        report.rejoined.push((rank, step));
                        s4tf_diag::event!("dist.rejoin", rank = rank, step = step);
                        active.insert(rank, conn);
                    }
                    epoch += 1;
                    broadcast_view(&mut active, epoch, step)?;
                }
            }
        }
    }

    report.survivors = active.keys().copied().collect();
    broadcast(
        &mut active,
        &Control::Shutdown {
            error: String::new(),
        },
        epoch,
        attempt,
        step,
    )?;
    for (_, mut conn, _) in pending_rejoin.drain(..) {
        let _ = send_ctl(
            &mut conn.stream,
            u32::MAX,
            &Control::Shutdown {
                error: String::new(),
            },
            epoch,
            attempt,
            step,
        );
    }
    if span.is_recording() {
        span.annotate_f64("steps", report.steps_completed as f64);
        span.annotate_f64("retries", report.retries as f64);
        span.annotate_f64("expelled", report.expelled.len() as f64);
    }
    Ok(report)
}

/// Waits for the lowest active rank to confirm the sync checkpoint.
fn wait_for_sync(
    cfg: &ClusterConfig,
    events: &mpsc::Receiver<Event>,
    active: &mut BTreeMap<u32, WorkerConn>,
    deadline: Instant,
) -> Result<(), RuntimeError> {
    let saver = *active.keys().next().ok_or_else(|| {
        RuntimeError::net("dist.sync", None, "no active workers left to checkpoint")
    })?;
    loop {
        match recv_deadline(events, deadline, "sync checkpoint")? {
            Event::Msg {
                rank,
                ctrl: Control::SavedSync,
                ..
            } if rank == saver => return Ok(()),
            Event::Msg {
                rank,
                ctrl: Control::Fatal { error },
                ..
            } => {
                return Err(RuntimeError::net("dist.sync", Some(rank as usize), error));
            }
            Event::Gone { rank, error } if rank == saver => {
                return Err(RuntimeError::net(
                    "dist.sync",
                    Some(rank as usize),
                    format!("checkpoint saver died during sync barrier: {error}"),
                ));
            }
            Event::Gone { rank, error } if active.contains_key(&rank) => {
                // A non-saver death at the barrier: expel it; the commit
                // already went through, so no step needs redoing.
                eprintln!(
                    "s4tf-dist: DropShard degradation: worker rank {rank} lost at sync \
                     barrier ({error}); continuing with {} of {} shards",
                    active.len() - 1,
                    cfg.world
                );
                active.remove(&rank);
                if active.is_empty() {
                    return Err(RuntimeError::net(
                        "dist.sync",
                        Some(rank as usize),
                        "all workers lost at sync barrier",
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Applies the fault policy to a worker death.
#[allow(clippy::too_many_arguments)]
fn handle_death(
    cfg: &ClusterConfig,
    active: &mut BTreeMap<u32, WorkerConn>,
    rank: u32,
    error: &RuntimeError,
    step: u64,
    epoch: &mut u32,
    attempt: &mut u32,
    report: &mut ClusterReport,
    expelled_ctr: &'static s4tf_metrics::Counter,
) -> Result<(), RuntimeError> {
    if matches!(cfg.fault_policy, FaultPolicy::FailFast) {
        return Err(RuntimeError::net(
            "dist.control",
            Some(rank as usize),
            format!("worker lost under FailFast policy: {error}"),
        ));
    }
    active.remove(&rank);
    report.expelled.push((rank, step));
    expelled_ctr.inc();
    eprintln!(
        "s4tf-dist: DropShard degradation: worker rank {rank} lost at step {step} \
         ({error}); continuing with {} of {} shards",
        active.len(),
        cfg.world
    );
    s4tf_diag::event!(
        "dist.expel",
        rank = rank,
        step = step,
        survivors = active.len() as u64,
    );
    if active.is_empty() {
        return Err(RuntimeError::net(
            "dist.control",
            Some(rank as usize),
            "all workers lost; nothing left to train on",
        ));
    }
    // Survivors redo the in-flight step under a fresh view.
    *epoch += 1;
    *attempt = 0;
    for w in active.values_mut() {
        w.done = None;
    }
    broadcast_view(active, *epoch, step)?;
    Ok(())
}

/// Accepts the first `world` registrations.
fn admit(
    tx: &mpsc::Sender<Event>,
    cfg: &ClusterConfig,
    rank: u32,
    stream: TcpStream,
    data_port: u16,
    active: &mut BTreeMap<u32, WorkerConn>,
) -> Result<(), RuntimeError> {
    let mut conn = WorkerConn {
        stream,
        data_port,
        done: None,
    };
    send_ctl(&mut conn.stream, rank, &Control::Welcome, 0, 0, 0)?;
    spawn_reader(rank, &conn.stream, tx.clone(), cfg.timeout_ms);
    active.insert(rank, conn);
    Ok(())
}

fn members_of(active: &BTreeMap<u32, WorkerConn>) -> Vec<Member> {
    active.iter().map(|(r, w)| (*r, w.data_port)).collect()
}

fn broadcast_view(
    active: &mut BTreeMap<u32, WorkerConn>,
    epoch: u32,
    resume_step: u64,
) -> Result<(), RuntimeError> {
    let members = members_of(active);
    broadcast(
        active,
        &Control::View {
            resume_step,
            members,
        },
        epoch,
        0,
        resume_step,
    )
}

/// Sends one control message to every active worker. A send failure here
/// is not fatal by itself — the worker's reader thread will report it as
/// `Gone` and the policy decides.
fn broadcast(
    active: &mut BTreeMap<u32, WorkerConn>,
    ctrl: &Control,
    epoch: u32,
    attempt: u32,
    step: u64,
) -> Result<(), RuntimeError> {
    for (rank, conn) in active.iter_mut() {
        let _ = send_ctl(&mut conn.stream, *rank, ctrl, epoch, attempt, step);
    }
    Ok(())
}

fn send_ctl(
    stream: &mut TcpStream,
    rank: u32,
    ctrl: &Control,
    epoch: u32,
    attempt: u32,
    step: u64,
) -> Result<(), RuntimeError> {
    let frame = ctrl.frame(crate::wire::COORDINATOR, epoch, attempt, step);
    let bytes = frame.encode();
    let peer = if rank == u32::MAX {
        None
    } else {
        Some(rank as usize)
    };
    write_encoded(stream, &bytes, peer)
}

fn recv_deadline(
    events: &mpsc::Receiver<Event>,
    deadline: Instant,
    what: &str,
) -> Result<Event, RuntimeError> {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(RuntimeError::net(
                "dist.coordinator",
                None,
                format!("run deadline exceeded while waiting for {what}"),
            ));
        }
        let wait = (deadline - now).min(Duration::from_millis(500));
        match events.recv_timeout(wait) {
            Ok(ev) => return Ok(ev),
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(RuntimeError::net(
                    "dist.coordinator",
                    None,
                    "event channel closed (acceptor and all readers gone)",
                ));
            }
        }
    }
}

/// Accepts control connections forever, completing the `Register`
/// handshake off the main thread so a half-open dial can't stall the run.
fn spawn_acceptor(listener: TcpListener, tx: mpsc::Sender<Event>, timeout_ms: u64) {
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let tx = tx.clone();
            std::thread::spawn(move || {
                let timeout = Some(Duration::from_millis(timeout_ms.max(1)));
                if stream.set_read_timeout(timeout).is_err()
                    || stream.set_write_timeout(timeout).is_err()
                {
                    return;
                }
                let mut s = stream;
                let Ok(frame) = read_frame(&mut s, None) else {
                    return;
                };
                let Ok(Control::Register { data_port }) = Control::decode(&frame, None) else {
                    return;
                };
                let _ = tx.send(Event::Connected {
                    stream: s,
                    frame,
                    data_port,
                });
            });
        }
    });
}

/// Streams one worker's control messages into the event channel. A read
/// error or straggler timeout becomes a single `Gone` event.
fn spawn_reader(rank: u32, stream: &TcpStream, tx: mpsc::Sender<Event>, timeout_ms: u64) {
    let Ok(read_half) = stream.try_clone() else {
        let _ = tx.send(Event::Gone {
            rank,
            error: RuntimeError::net(
                "dist.control",
                Some(rank as usize),
                "could not clone control stream",
            ),
        });
        return;
    };
    std::thread::spawn(move || {
        let mut read_half = read_half;
        // Workers heartbeat every heartbeat interval; total silence for
        // the straggler window means the worker is gone or wedged.
        let _ = read_half.set_read_timeout(Some(Duration::from_millis(timeout_ms.max(1))));
        loop {
            match read_frame(&mut read_half, Some(rank as usize)) {
                Ok(frame) => match Control::decode(&frame, Some(rank as usize)) {
                    Ok(ctrl) => {
                        if tx.send(Event::Msg { rank, frame, ctrl }).is_err() {
                            return;
                        }
                    }
                    Err(error) => {
                        let _ = tx.send(Event::Gone { rank, error });
                        return;
                    }
                },
                Err(error) => {
                    let _ = tx.send(Event::Gone { rank, error });
                    return;
                }
            }
        }
    });
}

/// Tears the cluster down after a fatal error, telling every reachable
/// worker why, and returns the error for the caller.
fn fail_run(
    active: &mut BTreeMap<u32, WorkerConn>,
    pending: &mut [(u32, WorkerConn, Frame)],
    err: RuntimeError,
) -> RuntimeError {
    let msg = Control::Shutdown {
        error: err.to_string(),
    };
    for (rank, conn) in active.iter_mut() {
        let _ = send_ctl(&mut conn.stream, *rank, &msg, u32::MAX, 0, 0);
    }
    for (rank, conn, _) in pending.iter_mut() {
        let _ = send_ctl(&mut conn.stream, *rank, &msg, u32::MAX, 0, 0);
    }
    err
}
